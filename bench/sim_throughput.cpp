// Simulator-throughput baseline: decisions/sec and episodes/sec of the
// discrete-event core under the non-learned schedulers, on the tile
// counts the paper trains over. RL training replays thousands of
// episodes per configuration, so this loop *is* the training hot path;
// the numbers land in BENCH_sim_throughput.json so successive PRs can
// track the trajectory.
//
// A "decision" is one task placement (one SimEngine::start); an episode
// schedules every task of the DAG, so decisions/sec ~= tasks simulated
// per second.
//
//   READYS_BENCH_TILES     comma list of Cholesky tile counts (10,20,30)
//   READYS_BENCH_SECONDS   min wall time per (scheduler, T) cell (0.5)
//   READYS_BENCH_SIGMA     duration noise level (0.3)
//   READYS_BENCH_EPISODES  fixed episode count per cell (0 = time-target);
//                          makes mean_makespan comparable across engines
//   READYS_BENCH_TELEMETRY_OVERHEAD=1
//                          instead measure the telemetry subsystem's cost
//                          on the MCT cells: disabled vs registry-only vs
//                          full tracing, written to
//                          BENCH_telemetry_overhead.json
//   READYS_BENCH_RESOURCES comma list of platform sizes (e.g. 4,16,64,256):
//                          instead sweep the resource count on the first
//                          tile count, written to
//                          BENCH_sim_throughput_resources.json — the
//                          single-engine half of the scaling story that
//                          bench/cluster_scale extends with sharding

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace readys;

namespace {

struct Cell {
  std::string scheduler;
  int tiles = 0;
  std::size_t tasks = 0;
  int episodes = 0;
  double wall_s = 0.0;
  double decisions_per_s = 0.0;
  double episodes_per_s = 0.0;
  double mean_makespan = 0.0;  ///< fingerprint: must not move across PRs
};

Cell run_cell(const std::string& name, const core::SchedulerFactory& factory,
              const dag::TaskGraph& graph, const sim::Platform& platform,
              const sim::CostModel& costs, int tiles, double sigma,
              double min_seconds, int fixed_episodes) {
  using clock = std::chrono::steady_clock;
  Cell cell;
  cell.scheduler = name;
  cell.tiles = tiles;
  cell.tasks = graph.num_tasks();

  // Warm-up run (touches cold memory, builds HEFT's static schedule).
  {
    auto sched = factory(0);
    sim::Simulator sim(graph, platform, costs, {sigma, 1});
    sim.run(*sched);
  }

  double makespan_acc = 0.0;
  const auto t0 = clock::now();
  double elapsed = 0.0;
  while (fixed_episodes > 0 ? cell.episodes < fixed_episodes
                            : elapsed < min_seconds) {
    const std::uint64_t seed = static_cast<std::uint64_t>(cell.episodes) + 1;
    auto sched = factory(seed);
    sim::Simulator sim(graph, platform, costs, {sigma, seed});
    makespan_acc += sim.run(*sched).makespan;
    ++cell.episodes;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  }
  cell.wall_s = elapsed;
  const double decisions =
      static_cast<double>(cell.tasks) * static_cast<double>(cell.episodes);
  cell.decisions_per_s = decisions / elapsed;
  cell.episodes_per_s = static_cast<double>(cell.episodes) / elapsed;
  cell.mean_makespan = makespan_acc / static_cast<double>(cell.episodes);
  return cell;
}

/// Telemetry-overhead mode: times the MCT cells with (a) no telemetry
/// installed — the shipping default, which must stay within noise of the
/// PR1 baseline — (b) the registry active but no sink/tracing (counters
/// only), and (c) full tracing + metrics sink. Overhead is reported
/// relative to the disabled run of the same tile count.
int run_overhead_mode(const std::vector<int>& tiles, double sigma,
                      double min_seconds, int fixed_episodes,
                      const sim::Platform& platform,
                      const sim::CostModel& costs) {
  struct Variant {
    const char* mode;
    bool install = false;
    obs::TelemetryConfig cfg;
  };
  std::vector<Variant> variants(3);
  variants[0].mode = "disabled";
  variants[1].mode = "registry";
  variants[1].install = true;
  variants[2].mode = "tracing";
  variants[2].install = true;
  variants[2].cfg.metrics_path = "telemetry_overhead.metrics.jsonl";
  variants[2].cfg.trace_path = "telemetry_overhead.trace.json";

  struct Row {
    std::string mode;
    Cell cell;
    double overhead_pct = 0.0;  ///< vs the disabled run, same tiles
  };
  std::vector<Row> rows;
  for (const auto& v : variants) {
    if (v.install) obs::install(v.cfg);
    for (int t : tiles) {
      const auto graph = dag::cholesky_graph(t);
      rows.push_back({v.mode,
                      run_cell("MCT", core::mct_factory(), graph, platform,
                               costs, t, sigma, min_seconds, fixed_episodes),
                      0.0});
    }
    if (v.install) obs::shutdown();
  }
  for (Row& r : rows) {
    for (const Row& base : rows) {
      if (base.mode == "disabled" && base.cell.tiles == r.cell.tiles) {
        r.overhead_pct = 100.0 * (base.cell.decisions_per_s -
                                  r.cell.decisions_per_s) /
                         base.cell.decisions_per_s;
      }
    }
  }

  std::printf("=== Telemetry overhead (MCT / Cholesky, sigma=%.2f) ===\n\n",
              sigma);
  util::Table table(
      {"mode", "T", "episodes", "decisions/s", "overhead vs off"});
  for (const Row& r : rows) {
    table.add_row({r.mode, std::to_string(r.cell.tiles),
                   std::to_string(r.cell.episodes),
                   util::Table::num(r.cell.decisions_per_s, 0),
                   util::Table::num(r.overhead_pct, 2) + "%"});
  }
  table.print();

  const char* path = "BENCH_telemetry_overhead.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror(path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"telemetry_overhead\",\n");
  std::fprintf(f, "  \"platform\": \"%s\",\n  \"sigma\": %.3f,\n",
               platform.name().c_str(), sigma);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"tiles\": %d, \"episodes\": %d, "
                 "\"decisions_per_s\": %.1f, \"overhead_pct\": %.3f}%s\n",
                 r.mode.c_str(), r.cell.tiles, r.cell.episodes,
                 r.cell.decisions_per_s, r.overhead_pct,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\noverhead series written to %s\n", path);

  bench::BenchRun run("sim_throughput --telemetry-overhead");
  run.manifest.set("sigma", sigma);
  run.manifest.set("fixed_episodes", fixed_episodes);
  run.manifest.set("platform", platform.name());
  run.set_schedulers({"mct"});
  run.finish(path);
  return 0;
}

/// Resource-count scaling mode: fixed DAG, growing platform. Pins how
/// the single (unsharded) engine + MCT degrade as P grows — every decide
/// scans all P resources — providing the centralized half of the curve
/// that bench/cluster_scale compares against the sharded scheduler.
int run_resource_mode(const std::vector<int>& resources, int tiles,
                      double sigma, double min_seconds, int fixed_episodes,
                      const sim::CostModel& costs) {
  bench::BenchRun run("sim_throughput --resources");
  run.manifest.set("sigma", sigma);
  run.manifest.set("tiles", tiles);
  run.manifest.set("fixed_episodes", fixed_episodes);
  run.set_schedulers({"mct"});

  const auto graph = dag::cholesky_graph(tiles);
  std::printf("=== Simulator throughput vs resource count "
              "(MCT / Cholesky T=%d, sigma=%.2f) ===\n\n",
              tiles, sigma);
  util::Table table(
      {"P", "tasks", "episodes", "decisions/s", "mean mk (ms)"});
  struct Row {
    int resources;
    Cell cell;
  };
  std::vector<Row> rows;
  for (const int p : resources) {
    const auto platform = sim::Platform::hybrid(p / 2, p - p / 2);
    const auto cell =
        run_cell("MCT", core::mct_factory(), graph, platform, costs, tiles,
                 sigma, min_seconds, fixed_episodes);
    table.add_row({std::to_string(p), std::to_string(cell.tasks),
                   std::to_string(cell.episodes),
                   util::Table::num(cell.decisions_per_s, 0),
                   util::Table::num(cell.mean_makespan, 1)});
    rows.push_back({p, cell});
  }
  table.print();

  const char* path = "BENCH_sim_throughput_resources.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror(path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"sim_throughput_resources\",\n");
  std::fprintf(f, "  \"tiles\": %d,\n  \"sigma\": %.3f,\n  \"cells\": [\n",
               tiles, sigma);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"resources\": %d, \"tasks\": %zu, \"episodes\": %d, "
                 "\"decisions_per_s\": %.1f, \"mean_makespan_ms\": %.3f}%s\n",
                 r.resources, r.cell.tasks, r.cell.episodes,
                 r.cell.decisions_per_s, r.cell.mean_makespan,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nresource-scaling series written to %s\n", path);
  run.finish(path);
  return 0;
}

}  // namespace

int main() {
  const auto tiles = util::env_int_list("READYS_BENCH_TILES", {10, 20, 30});
  const double min_seconds = util::env_double("READYS_BENCH_SECONDS", 0.5);
  const double sigma = util::env_double("READYS_BENCH_SIGMA", 0.3);
  const int fixed_episodes = util::env_int("READYS_BENCH_EPISODES", 0);
  const auto platform = sim::Platform::hybrid(2, 2);
  const auto costs = sim::CostModel::cholesky();

  if (util::env_int("READYS_BENCH_TELEMETRY_OVERHEAD", 0) != 0) {
    return run_overhead_mode(tiles, sigma, min_seconds, fixed_episodes,
                             platform, costs);
  }
  const auto resources = util::env_int_list("READYS_BENCH_RESOURCES", {});
  if (!resources.empty()) {
    return run_resource_mode(resources, tiles.front(), sigma, min_seconds,
                             fixed_episodes, costs);
  }

  // Honors READYS_METRICS_OUT / READYS_TRACE_OUT; leave both unset when
  // measuring the headline throughput numbers.
  bench::BenchRun run("sim_throughput");
  run.manifest.set("sigma", sigma);
  run.manifest.set("min_seconds", min_seconds);
  run.manifest.set("fixed_episodes", fixed_episodes);
  run.manifest.set("platform", platform.name());
  run.set_schedulers({"mct", "heft", "random"});

  // Display names stay uppercase so the committed BENCH series is
  // comparable across PRs; construction goes through the registry.
  const std::vector<std::pair<std::string, core::SchedulerFactory>> scheds{
      {"MCT", core::registry_factory("mct")},
      {"HEFT", core::registry_factory("heft")},
      {"RANDOM", core::registry_factory("random")},
  };

  std::printf("=== Simulator throughput on %s, sigma=%.2f ===\n\n",
              platform.name().c_str(), sigma);
  util::Table table({"scheduler", "T", "tasks", "episodes", "decisions/s",
                     "episodes/s", "mean mk (ms)"});
  std::vector<Cell> cells;
  for (int t : tiles) {
    const auto graph = dag::cholesky_graph(t);
    for (const auto& [name, factory] : scheds) {
      const auto cell = run_cell(name, factory, graph, platform, costs, t,
                                 sigma, min_seconds, fixed_episodes);
      table.add_row({cell.scheduler, std::to_string(cell.tiles),
                     std::to_string(cell.tasks),
                     std::to_string(cell.episodes),
                     util::Table::num(cell.decisions_per_s, 0),
                     util::Table::num(cell.episodes_per_s, 1),
                     util::Table::num(cell.mean_makespan, 1)});
      cells.push_back(cell);
    }
  }
  table.print();

  const char* path = "BENCH_sim_throughput.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"benchmark\": \"sim_throughput\",\n");
    std::fprintf(f, "  \"platform\": \"%s\",\n  \"sigma\": %.3f,\n",
                 platform.name().c_str(), sigma);
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"scheduler\": \"%s\", \"tiles\": %d, \"tasks\": "
                   "%zu, \"episodes\": %d, \"wall_s\": %.3f, "
                   "\"decisions_per_s\": %.1f, \"episodes_per_s\": %.2f, "
                   "\"mean_makespan_ms\": %.3f}%s\n",
                   c.scheduler.c_str(), c.tiles, c.tasks, c.episodes,
                   c.wall_s, c.decisions_per_s, c.episodes_per_s,
                   c.mean_makespan, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nbaseline written to %s\n", path);
  } else {
    std::perror("BENCH_sim_throughput.json");
    return 1;
  }
  run.finish(path);
  return 0;
}
