#pragma once

// Shared helpers for the figure-reproduction harnesses.
//
// Budgets are environment-tunable so the same binaries serve as smoke
// tests and as full paper-scale reproductions:
//   READYS_TRAIN_EPISODES  training episodes per agent (default 3000)
//   READYS_EVAL_SEEDS      evaluation runs per point (default 5)
//   READYS_SIGMAS          comma list of noise levels
//   READYS_TILES           comma list of tile counts
//   READYS_HIDDEN          embedding width (default 64)
//   READYS_CHECKPOINT_DIR  checkpoint trainings here (resumable; each
//                          training seed gets its own subdirectory)
//   READYS_RESUME          1 = resume trainings from READYS_CHECKPOINT_DIR

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/readys.hpp"

namespace bench {

using namespace readys;

struct Budget {
  int base_episodes;
  int eval_seeds;
  int hidden;
  int train_seeds;  ///< independent trainings per cell; the best is kept
  std::string checkpoint_dir;  ///< empty = no checkpointing
  bool resume;                 ///< restart trainings from checkpoint_dir

  static Budget from_env() {
    Budget b;
    b.base_episodes = util::env_int("READYS_TRAIN_EPISODES", 2500);
    b.eval_seeds = util::env_int("READYS_EVAL_SEEDS", 5);
    b.hidden = util::env_int("READYS_HIDDEN", 64);
    b.train_seeds = util::env_int("READYS_TRAIN_SEEDS", 2);
    b.checkpoint_dir = util::env_string("READYS_CHECKPOINT_DIR", "");
    b.resume = util::env_int("READYS_RESUME", 0) != 0;
    return b;
  }

  /// With episode-end A2C updates (one gradient step per episode) every
  /// instance needs the same number of episodes to get the same number
  /// of updates, so the budget is flat in the graph size.
  int episodes_for(std::size_t num_tasks) const {
    (void)num_tasks;
    return std::max(20, base_episodes);
  }
};

/// Telemetry + manifest scope for a bench main. Construction installs
/// telemetry from READYS_METRICS_OUT / READYS_TRACE_OUT (a no-op when
/// neither is set) and stamps the manifest start time; destruction
/// finalizes telemetry (flushes the JSONL sink, writes the trace file).
/// Call finish(artifact) after each artifact the bench writes to drop a
/// "<artifact>.manifest.json" reproducibility record next to it.
struct BenchRun {
  obs::RunManifest manifest;

  explicit BenchRun(const std::string& tool) : manifest(tool) {
    obs::install_from_env();
  }

  BenchRun(const std::string& tool, const Budget& budget) : BenchRun(tool) {
    manifest.set("train_episodes", budget.base_episodes);
    manifest.set("eval_seeds", budget.eval_seeds);
    manifest.set("hidden", budget.hidden);
    manifest.set("train_seeds", budget.train_seeds);
    if (!budget.checkpoint_dir.empty()) {
      manifest.set("checkpoint_dir", budget.checkpoint_dir);
    }
    manifest.set("resume", budget.resume);
  }

  ~BenchRun() { obs::shutdown(); }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  /// Records `artifact` as an output and writes the manifest to its
  /// conventional sibling path.
  void finish(const std::string& artifact) {
    manifest.add_output(artifact);
    manifest.write(obs::RunManifest::sibling_path(artifact));
  }

  /// Records which schedulers the bench exercised, by registry name, as
  /// a JSON array under "schedulers".
  void set_schedulers(const std::vector<std::string>& names) {
    std::string arr = "[";
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) arr += ",";
      arr += "\"" + obs::json_escape(names[i]) + "\"";
    }
    arr += "]";
    manifest.set_raw("schedulers", arr);
  }
};

inline rl::AgentConfig default_agent_config(const Budget& b,
                                            std::uint64_t seed = 1) {
  rl::AgentConfig cfg;
  cfg.hidden = b.hidden;
  cfg.window = 1;
  cfg.gcn_layers = 2;
  cfg.seed = seed;
  return cfg;
}

/// Trains `budget.train_seeds` independent agents on the instance and
/// returns the one with the best mean evaluation makespan. A2C on this
/// MDP has a known bad local optimum (serialize everything on one GPU);
/// best-of-k seeds is the standard cheap hedge and is reported as such
/// in EXPERIMENTS.md.
///
/// The k trainings share nothing (each owns its net, env and RNG
/// streams), so with a pool they run concurrently; the selection scan
/// stays serial and deterministic. Results are identical with and
/// without a pool.
inline std::unique_ptr<rl::ReadysAgent> train_agent(
    const dag::TaskGraph& graph, const sim::Platform& platform,
    const sim::CostModel& costs, double sigma, const Budget& budget,
    std::uint64_t seed = 1, util::ThreadPool* pool = nullptr) {
  const int k = std::max(1, budget.train_seeds);
  std::vector<std::unique_ptr<rl::ReadysAgent>> agents(
      static_cast<std::size_t>(k));
  std::vector<double> means(static_cast<std::size_t>(k), 0.0);
  const auto train_one = [&](std::size_t i) {
    const std::uint64_t s = seed + static_cast<std::uint64_t>(i) * 7919;
    auto agent = std::make_unique<rl::ReadysAgent>(
        graph.num_kernel_types(), default_agent_config(budget, s));
    rl::TrainOptions opts;
    opts.episodes = budget.episodes_for(graph.num_tasks());
    opts.sigma = sigma;
    opts.seed = s;
    if (!budget.checkpoint_dir.empty()) {
      // One subdirectory per training seed: the k trainings run
      // concurrently and must not clobber each other's checkpoints.
      opts.checkpoint_dir =
          budget.checkpoint_dir + "/seed-" + std::to_string(s);
      opts.resume = budget.resume;
    }
    agent->train(graph, platform, costs, opts);
    // Serial evaluation on purpose: the pool's workers are already busy
    // with sibling trainings and nested parallel_for would deadlock.
    means[i] = util::mean(
        agent->evaluate(graph, platform, costs, sigma, budget.eval_seeds,
                        20'000));
    agents[i] = std::move(agent);
  };
  if (pool != nullptr && k > 1) {
    pool->parallel_for(static_cast<std::size_t>(k), train_one);
  } else {
    for (std::size_t i = 0; i < static_cast<std::size_t>(k); ++i) {
      train_one(i);
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < means.size(); ++i) {
    if (means[i] < means[best]) best = i;
  }
  return std::move(agents[best]);
}

/// Factory adapter for a trained agent (greedy evaluation policy).
inline core::SchedulerFactory agent_factory(const rl::ReadysAgent& agent) {
  return [&agent](std::uint64_t seed) {
    return std::make_unique<rl::ReadysScheduler>(
        agent.net(), agent.config().window, /*greedy=*/true, seed);
  };
}

/// Mean makespans of READYS / HEFT / MCT on one evaluation point.
struct Point {
  double readys = 0.0;
  double heft = 0.0;
  double mct = 0.0;
  double over_heft() const { return heft / readys; }
  double over_mct() const { return mct / readys; }
};

inline Point evaluate_point(const dag::TaskGraph& graph,
                            const sim::Platform& platform,
                            const sim::CostModel& costs,
                            const rl::ReadysAgent& agent, double sigma,
                            int seeds, util::ThreadPool* pool) {
  const std::uint64_t seed_base = 10'000;
  Point p;
  p.readys = util::mean(core::evaluate_makespans(
      graph, platform, costs, agent_factory(agent), sigma, seeds, seed_base,
      pool));
  p.heft = util::mean(core::evaluate_makespans(
      graph, platform, costs, core::heft_factory(), sigma, seeds, seed_base,
      pool));
  p.mct = util::mean(core::evaluate_makespans(
      graph, platform, costs, core::mct_factory(), sigma, seeds, seed_base,
      pool));
  return p;
}

inline std::string fmt(double v, int precision = 3) {
  return util::Table::num(v, precision);
}

}  // namespace bench
