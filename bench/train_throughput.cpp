// Training-throughput + quality baseline: episodes/sec AND final mean
// reward of the sequential trainer vs the vectorized (VecEnv +
// batched-forward) rollout engine and the async actor–learner, on one
// small instance. On a single core the speedup comes from NoGrad
// inference rollouts and amortizing per-op autograd dispatch over the
// batch, not from threads — which is exactly the regime RL training
// lives in (many tiny forwards). Numbers land in
// BENCH_train_throughput.json (throughput series, kept stable for
// continuity) and BENCH_train_quality.json (speed AND reward per mode,
// the series PR 6's cadence fix is judged by: multi-env runs must match
// sequential reward, not just outrun it).
//
//   READYS_BENCH_EPISODES  episodes per mode (default 192)
//   READYS_BENCH_TILES     Cholesky tile count (default 4)
//   READYS_BENCH_SIGMA     duration noise level (default 0.3)
//   READYS_BENCH_TRAINER   a2c | ppo (default a2c)
//   READYS_HIDDEN          embedding width (default 32)
//
// The vec N=1 cell doubles as a live bit-exactness probe: its final
// mean reward must equal the sequential cell's. The vec-coarse cell
// keeps the old one-update-per-round cadence (updates_per_round = 1) as
// a regression fingerprint of the reward collapse this bench guards
// against.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace readys;

namespace {

struct ModeSpec {
  const char* mode;  ///< sequential | vec | vec-coarse | async | async-strict
  int num_envs;
};

struct Cell {
  std::string mode;
  int num_envs = 1;
  int episodes = 0;
  std::size_t updates = 0;
  double wall_s = 0.0;
  double episodes_per_s = 0.0;
  double updates_per_s = 0.0;
  double final_mean_reward = 0.0;  ///< fingerprint (seq == vec N=1)
};

Cell run_mode(const core::RunConfig& cfg, const dag::TaskGraph& graph,
              const sim::Platform& platform, const sim::CostModel& costs,
              const ModeSpec& spec) {
  using clock = std::chrono::steady_clock;
  Cell cell;
  cell.mode = spec.mode;
  cell.num_envs = spec.num_envs;
  cell.episodes = cfg.episodes;

  // A fresh net per mode, identical init seed: every cell trains the
  // same model on the same episode seeds.
  rl::PolicyNet net(
      rl::StateEncoder::node_feature_width(graph.num_kernel_types()),
      rl::StateEncoder::kResourceFeatureWidth, cfg.agent);
  rl::TrainOptions opts = cfg.train_options();
  rl::AgentConfig agent = cfg.agent;
  const std::string mode = spec.mode;
  if (mode == "vec-coarse") {
    opts.updates_per_round = 1;  // the pre-fix cadence: 1 update/round
  } else if (mode == "vec-g2") {
    opts.updates_per_round = spec.num_envs / 2;  // 2-episode groups
  } else if (mode == "vec-coarse-lr") {
    opts.updates_per_round = 1;
    agent.lr *= spec.num_envs;  // linear LR scaling with batch size
  } else if (mode == "async" || mode == "async-strict") {
    opts.async = true;
    opts.async_strict = (mode == "async-strict");
    opts.async_actors = util::env_int("READYS_BENCH_ASYNC_ACTORS", 0);
    opts.async_batch = util::env_int("READYS_BENCH_ASYNC_BATCH", 1);
  }
  rl::TrainReport report;
  const auto t0 = clock::now();
  if (mode == "sequential") {
    rl::SchedulingEnv env(graph, platform, costs, cfg.env_config());
    if (cfg.trainer == "ppo") {
      rl::PpoTrainer trainer(net, agent);
      report = trainer.train(env, opts);
    } else {
      rl::A2CTrainer trainer(net, agent);
      report = trainer.train(env, opts);
    }
  } else {
    rl::VecEnv envs(graph, platform, costs, cfg.env_config(),
                    static_cast<std::size_t>(spec.num_envs));
    if (cfg.trainer == "ppo") {
      rl::PpoTrainer trainer(net, agent);
      report = trainer.train(envs, opts);
    } else {
      rl::A2CTrainer trainer(net, agent);
      report = trainer.train(envs, opts);
    }
  }
  cell.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  cell.updates = report.updates;
  cell.episodes_per_s =
      cell.wall_s > 0.0 ? static_cast<double>(cfg.episodes) / cell.wall_s : 0.0;
  cell.updates_per_s =
      cell.wall_s > 0.0 ? static_cast<double>(report.updates) / cell.wall_s
                        : 0.0;
  cell.final_mean_reward = report.final_mean_reward;
  return cell;
}

}  // namespace

int main() {
  core::RunConfig cfg;
  cfg.tiles = util::env_int("READYS_BENCH_TILES", 4);
  cfg.sigma = util::env_double("READYS_BENCH_SIGMA", 0.3);
  cfg.episodes = util::env_int("READYS_BENCH_EPISODES", 192);
  cfg.trainer = util::env_string("READYS_BENCH_TRAINER", "a2c");
  cfg.agent.hidden = util::env_int("READYS_HIDDEN", 32);
  cfg.seed = static_cast<std::uint64_t>(util::env_int("READYS_BENCH_SEED", 1));
  cfg.validate();

  const auto graph = cfg.make_graph();
  const auto platform = cfg.make_platform();
  const auto costs = cfg.make_costs();

  bench::BenchRun run("train_throughput");
  run.manifest.set_raw("run_config", cfg.to_json());
  run.manifest.set("platform", platform.name());
  run.manifest.set("graph", graph.name());

  std::printf(
      "=== Training throughput + quality (%s / %s / %s, %d episodes/mode, "
      "sigma=%.2f) ===\n\n",
      cfg.trainer.c_str(), graph.name().c_str(), platform.name().c_str(),
      cfg.episodes, cfg.sigma);

  const std::vector<ModeSpec> modes{
      {"sequential", 1}, {"vec", 1},         {"vec", 4},  {"vec", 8},
      {"vec-g2", 8},     {"vec-coarse", 8},   {"vec-coarse-lr", 8},
      {"async-strict", 8}, {"async", 8}};
  std::vector<Cell> cells;
  for (const auto& m : modes) {
    cells.push_back(run_mode(cfg, graph, platform, costs, m));
    std::fflush(stdout);
  }

  const Cell& seq = cells[0];
  const auto speedup_of = [&](const Cell& c) {
    return seq.episodes_per_s > 0.0 ? c.episodes_per_s / seq.episodes_per_s
                                    : 0.0;
  };
  // Reward gap vs sequential in percent of |sequential|; the acceptance
  // bar for the cadence fix is |gap| <= 10 on the fast multi-env cells.
  const auto reward_delta_pct = [&](const Cell& c) {
    const double denom = std::fabs(seq.final_mean_reward);
    return denom > 0.0
               ? 100.0 * (c.final_mean_reward - seq.final_mean_reward) / denom
               : 0.0;
  };

  util::Table table({"mode", "envs", "episodes", "updates", "wall (s)",
                     "episodes/s", "speedup", "final reward", "dreward %"});
  for (const Cell& c : cells) {
    table.add_row({c.mode, std::to_string(c.num_envs),
                   std::to_string(c.episodes), std::to_string(c.updates),
                   util::Table::num(c.wall_s, 2),
                   util::Table::num(c.episodes_per_s, 2),
                   util::Table::num(speedup_of(c), 2),
                   util::Table::num(c.final_mean_reward, 4),
                   util::Table::num(reward_delta_pct(c), 1)});
  }
  table.print();

  // The headline cell: the fastest multi-env mode whose reward matched
  // sequential within the +-10% acceptance band. Speed that was bought
  // by degrading the learned policy (vec-coarse, and async free mode on
  // an oversubscribed core) never headlines.
  const Cell* headline = &cells.front();
  for (const Cell& c : cells) {
    if (&c == &cells.front()) continue;
    if (std::fabs(reward_delta_pct(c)) > 10.0) continue;
    if (c.episodes_per_s > headline->episodes_per_s) headline = &c;
  }
  std::printf(
      "\n%s N=%d vs sequential: %.2fx episodes/s at %.1f%% reward delta\n",
      headline->mode.c_str(), headline->num_envs, speedup_of(*headline),
      reward_delta_pct(*headline));

  const auto write_cells = [&](std::FILE* f) {
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"num_envs\": %d, \"episodes\": "
                   "%d, \"updates\": %zu, \"wall_s\": %.3f, "
                   "\"episodes_per_s\": %.2f, \"updates_per_s\": %.2f, "
                   "\"speedup\": %.3f, \"final_mean_reward\": %.6f, "
                   "\"reward_delta_pct\": %.2f}%s\n",
                   c.mode.c_str(), c.num_envs, c.episodes, c.updates,
                   c.wall_s, c.episodes_per_s, c.updates_per_s, speedup_of(c),
                   c.final_mean_reward, reward_delta_pct(c),
                   i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  };
  const auto write_header = [&](std::FILE* f, const char* name) {
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n", name);
    std::fprintf(f,
                 "  \"trainer\": \"%s\",\n  \"app\": \"%s\",\n  \"tiles\": "
                 "%d,\n  \"hidden\": %d,\n  \"sigma\": %.3f,\n"
                 "  \"episodes_per_mode\": %d,\n  \"platform\": \"%s\",\n",
                 cfg.trainer.c_str(), cfg.app.c_str(), cfg.tiles,
                 cfg.agent.hidden, cfg.sigma, cfg.episodes,
                 platform.name().c_str());
  };

  const char* path = "BENCH_train_throughput.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    write_header(f, "train_throughput");
    write_cells(f);
    std::fprintf(f, "  \"speedup_n%d\": %.3f\n}\n", headline->num_envs,
                 speedup_of(*headline));
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  } else {
    std::perror(path);
    return 1;
  }
  const char* quality_path = "BENCH_train_quality.json";
  if (std::FILE* f = std::fopen(quality_path, "w")) {
    write_header(f, "train_quality");
    write_cells(f);
    std::fprintf(f,
                 "  \"headline_mode\": \"%s\",\n  \"headline_speedup\": "
                 "%.3f,\n  \"headline_reward_delta_pct\": %.2f\n}\n",
                 headline->mode.c_str(), speedup_of(*headline),
                 reward_delta_pct(*headline));
    std::fclose(f);
    std::printf("quality series written to %s\n", quality_path);
  } else {
    std::perror(quality_path);
    return 1;
  }
  run.finish(path);
  return 0;
}
