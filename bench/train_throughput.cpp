// Training-throughput baseline: episodes/sec and optimizer-steps/sec of
// the sequential trainer vs the vectorized (VecEnv + batched-forward)
// rollout engine at N = 1/4/8, on one small instance. On a single core
// the speedup comes from amortizing per-op autograd dispatch over the
// batch, not from threads — which is exactly the regime RL training
// lives in (many tiny forwards). Numbers land in
// BENCH_train_throughput.json so successive PRs can track them.
//
//   READYS_BENCH_EPISODES  episodes per mode (default 192)
//   READYS_BENCH_TILES     Cholesky tile count (default 4)
//   READYS_BENCH_SIGMA     duration noise level (default 0.3)
//   READYS_BENCH_TRAINER   a2c | ppo (default a2c)
//   READYS_HIDDEN          embedding width (default 32)
//
// The vec N=1 cell doubles as a live bit-exactness probe: its final
// mean reward must equal the sequential cell's.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace readys;

namespace {

struct Cell {
  std::string mode;  ///< "sequential" or "vec"
  int num_envs = 1;
  int episodes = 0;
  std::size_t updates = 0;
  double wall_s = 0.0;
  double episodes_per_s = 0.0;
  double updates_per_s = 0.0;
  double final_mean_reward = 0.0;  ///< fingerprint (seq == vec N=1)
};

Cell run_mode(const core::RunConfig& cfg, const dag::TaskGraph& graph,
              const sim::Platform& platform, const sim::CostModel& costs,
              const std::string& mode, int num_envs) {
  using clock = std::chrono::steady_clock;
  Cell cell;
  cell.mode = mode;
  cell.num_envs = num_envs;
  cell.episodes = cfg.episodes;

  // A fresh net per mode, identical init seed: every cell trains the
  // same model on the same episode seeds.
  rl::PolicyNet net(
      rl::StateEncoder::node_feature_width(graph.num_kernel_types()),
      rl::StateEncoder::kResourceFeatureWidth, cfg.agent);
  const rl::TrainOptions opts = cfg.train_options();
  rl::TrainReport report;
  const auto t0 = clock::now();
  if (mode == "sequential") {
    rl::SchedulingEnv env(graph, platform, costs, cfg.env_config());
    if (cfg.trainer == "ppo") {
      rl::PpoTrainer trainer(net, cfg.agent);
      report = trainer.train(env, opts);
    } else {
      rl::A2CTrainer trainer(net, cfg.agent);
      report = trainer.train(env, opts);
    }
  } else {
    rl::VecEnv envs(graph, platform, costs, cfg.env_config(),
                    static_cast<std::size_t>(num_envs));
    if (cfg.trainer == "ppo") {
      rl::PpoTrainer trainer(net, cfg.agent);
      report = trainer.train(envs, opts);
    } else {
      rl::A2CTrainer trainer(net, cfg.agent);
      report = trainer.train(envs, opts);
    }
  }
  cell.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  cell.updates = report.updates;
  cell.episodes_per_s =
      cell.wall_s > 0.0 ? static_cast<double>(cfg.episodes) / cell.wall_s : 0.0;
  cell.updates_per_s =
      cell.wall_s > 0.0 ? static_cast<double>(report.updates) / cell.wall_s
                        : 0.0;
  cell.final_mean_reward = report.final_mean_reward;
  return cell;
}

}  // namespace

int main() {
  core::RunConfig cfg;
  cfg.tiles = util::env_int("READYS_BENCH_TILES", 4);
  cfg.sigma = util::env_double("READYS_BENCH_SIGMA", 0.3);
  cfg.episodes = util::env_int("READYS_BENCH_EPISODES", 192);
  cfg.trainer = util::env_string("READYS_BENCH_TRAINER", "a2c");
  cfg.agent.hidden = util::env_int("READYS_HIDDEN", 32);
  cfg.validate();

  const auto graph = cfg.make_graph();
  const auto platform = cfg.make_platform();
  const auto costs = cfg.make_costs();

  bench::BenchRun run("train_throughput");
  run.manifest.set_raw("run_config", cfg.to_json());
  run.manifest.set("platform", platform.name());
  run.manifest.set("graph", graph.name());

  std::printf(
      "=== Training throughput (%s / %s / %s, %d episodes/mode, "
      "sigma=%.2f) ===\n\n",
      cfg.trainer.c_str(), graph.name().c_str(), platform.name().c_str(),
      cfg.episodes, cfg.sigma);

  struct ModeSpec {
    const char* mode;
    int num_envs;
  };
  const std::vector<ModeSpec> modes{
      {"sequential", 1}, {"vec", 1}, {"vec", 4}, {"vec", 8}};
  std::vector<Cell> cells;
  for (const auto& m : modes) {
    cells.push_back(
        run_mode(cfg, graph, platform, costs, m.mode, m.num_envs));
    std::fflush(stdout);
  }

  util::Table table({"mode", "envs", "episodes", "updates", "wall (s)",
                     "episodes/s", "updates/s", "final reward"});
  for (const Cell& c : cells) {
    table.add_row({c.mode, std::to_string(c.num_envs),
                   std::to_string(c.episodes), std::to_string(c.updates),
                   util::Table::num(c.wall_s, 2),
                   util::Table::num(c.episodes_per_s, 2),
                   util::Table::num(c.updates_per_s, 2),
                   util::Table::num(c.final_mean_reward, 4)});
  }
  table.print();

  const Cell& seq = cells[0];
  const Cell& vec8 = cells.back();
  const double speedup =
      seq.episodes_per_s > 0.0 ? vec8.episodes_per_s / seq.episodes_per_s
                               : 0.0;
  std::printf("\nvec N=%d vs sequential: %.2fx episodes/s\n", vec8.num_envs,
              speedup);

  const char* path = "BENCH_train_throughput.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "{\n  \"benchmark\": \"train_throughput\",\n");
    std::fprintf(f,
                 "  \"trainer\": \"%s\",\n  \"app\": \"%s\",\n  \"tiles\": "
                 "%d,\n  \"hidden\": %d,\n  \"sigma\": %.3f,\n"
                 "  \"episodes_per_mode\": %d,\n  \"platform\": \"%s\",\n",
                 cfg.trainer.c_str(), cfg.app.c_str(), cfg.tiles,
                 cfg.agent.hidden, cfg.sigma, cfg.episodes,
                 platform.name().c_str());
    std::fprintf(f, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(f,
                   "    {\"mode\": \"%s\", \"num_envs\": %d, \"episodes\": "
                   "%d, \"updates\": %zu, \"wall_s\": %.3f, "
                   "\"episodes_per_s\": %.2f, \"updates_per_s\": %.2f, "
                   "\"final_mean_reward\": %.6f}%s\n",
                   c.mode.c_str(), c.num_envs, c.episodes, c.updates,
                   c.wall_s, c.episodes_per_s, c.updates_per_s,
                   c.final_mean_reward, i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"speedup_n%d\": %.3f\n}\n", vec8.num_envs, speedup);
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  } else {
    std::perror(path);
    return 1;
  }
  run.finish(path);
  return 0;
}
