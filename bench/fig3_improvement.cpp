// Figure 3: makespan improvement of READYS over HEFT and MCT on a
// 2 CPU + 2 GPU node, for each application (Cholesky / LU / QR), tile
// count T and noise level sigma. Reported values are ratios
// makespan(baseline) / makespan(READYS) averaged over evaluation seeds
// (> 1 means READYS wins).
//
// One agent is trained per (application, T, sigma) cell, as in the
// paper; training keeps the best of READYS_TRAIN_SEEDS independent
// seeds. READYS_CURRICULUM=1 instead warm-starts each size from the
// previous one within a (application, sigma) pair (§V-F style).

#include <algorithm>

#include "bench_common.hpp"

using namespace bench;

int main() {
  const Budget budget = Budget::from_env();
  const auto sigmas = util::env_double_list("READYS_SIGMAS", {0.0, 0.5});
  auto tiles = util::env_int_list("READYS_TILES", {2, 4, 8});
  std::sort(tiles.begin(), tiles.end());  // curriculum: small -> large
  const bool curriculum = util::env_int("READYS_CURRICULUM", 0) != 0;
  const auto platform = sim::Platform::hybrid(2, 2);
  util::ThreadPool pool;
  BenchRun run("fig3_improvement", budget);
  run.manifest.set("platform", platform.name());
  run.manifest.set("curriculum", curriculum);

  std::printf("=== Figure 3: improvement over HEFT / MCT on %s ===\n",
              platform.name().c_str());
  std::printf("budget: %d base episodes, %d eval seeds, curriculum=%s\n\n",
              budget.base_episodes, budget.eval_seeds,
              curriculum ? "on" : "off");

  util::CsvWriter csv("fig3.csv", {"app", "tiles", "sigma", "readys_ms",
                                   "heft_ms", "mct_ms", "over_heft",
                                   "over_mct"});

  for (auto app : {core::App::kCholesky, core::App::kLu, core::App::kQr}) {
    const auto costs = core::make_costs(app);
    for (double sigma : sigmas) {
      std::printf("--- %s, sigma=%.2f ---\n", core::app_name(app).c_str(),
                  sigma);
      util::Table table({"T", "tasks", "READYS(ms)", "HEFT(ms)", "MCT(ms)",
                         "vs HEFT", "vs MCT"});
      std::unique_ptr<rl::ReadysAgent> agent;
      for (int t : tiles) {
        const auto graph = core::make_graph(app, t);
        if (!agent || !curriculum) {
          agent = std::make_unique<rl::ReadysAgent>(
              graph.num_kernel_types(), default_agent_config(budget));
        }
        rl::TrainOptions opts;
        opts.episodes = budget.episodes_for(graph.num_tasks());
        opts.sigma = sigma;
        agent->train(graph, platform, costs, opts);

        const auto p = evaluate_point(graph, platform, costs, *agent, sigma,
                                      budget.eval_seeds, &pool);
        table.add_row({std::to_string(t), std::to_string(graph.num_tasks()),
                       fmt(p.readys, 1), fmt(p.heft, 1), fmt(p.mct, 1),
                       fmt(p.over_heft()), fmt(p.over_mct())});
        csv.row({core::app_name(app), std::to_string(t), fmt(sigma, 3),
                 fmt(p.readys, 3), fmt(p.heft, 3), fmt(p.mct, 3),
                 fmt(p.over_heft(), 4), fmt(p.over_mct(), 4)});
      }
      table.print();
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  run.finish("fig3.csv");
  std::printf("series written to fig3.csv\n");
  std::printf("expected shape (paper): vs HEFT ~1 at sigma=0, rising with "
              "sigma; vs MCT > 1 for trained sizes.\n");
  return 0;
}
