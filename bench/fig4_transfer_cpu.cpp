// Figure 4: transfer learning on a homogeneous 4-CPU platform.

#include "transfer_common.hpp"

int main() {
  return bench::run_transfer_figure("fig4",
                                    bench::sim::Platform::cpus(4));
}
