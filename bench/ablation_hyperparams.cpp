// Ablation over the two architecture hyper-parameters the paper searches
// (§V-D): the observation window w in [0, 2] and the GCN depth g in
// [1, 3], on Cholesky T=4 with the hybrid platform. Also sweeps the
// entropy ratio, reporting final evaluation makespans relative to HEFT.

#include "bench_common.hpp"

using namespace bench;

namespace {

double train_and_eval(int window, int gcn_layers, double entropy_beta,
                      const Budget& budget, util::ThreadPool& pool) {
  const auto graph = core::make_graph(core::App::kCholesky, 4);
  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);
  const double sigma = util::env_double("READYS_TRAIN_SIGMA", 0.2);

  rl::AgentConfig cfg = default_agent_config(budget);
  cfg.window = window;
  cfg.gcn_layers = gcn_layers;
  cfg.entropy_beta = entropy_beta;
  rl::ReadysAgent agent(graph.num_kernel_types(), cfg);
  rl::TrainOptions opts;
  opts.episodes = budget.episodes_for(graph.num_tasks());
  opts.sigma = sigma;
  agent.train(graph, platform, costs, opts);

  const auto p = evaluate_point(graph, platform, costs, agent, sigma,
                                budget.eval_seeds, &pool);
  return p.over_heft();
}

}  // namespace

int main() {
  const Budget budget = Budget::from_env();
  util::ThreadPool pool;
  BenchRun run("ablation_hyperparams", budget);

  std::printf("=== Ablation: window w x GCN depth g (Cholesky T=4, "
              "2CPU+2GPU) ===\n");
  std::printf("cells show improvement over HEFT (>1 beats HEFT)\n\n");
  util::CsvWriter csv("ablation.csv",
                      {"window", "gcn_layers", "entropy", "over_heft"});

  util::Table grid({"w \\ g", "g=1", "g=2", "g=3"});
  for (int w : {0, 1, 2}) {
    std::vector<std::string> row{"w=" + std::to_string(w)};
    for (int g : {1, 2, 3}) {
      const double r = train_and_eval(w, g, 5e-3, budget, pool);
      row.push_back(fmt(r));
      csv.row({std::to_string(w), std::to_string(g), "5e-3", fmt(r, 4)});
    }
    grid.add_row(row);
  }
  grid.print();

  std::printf("\n=== Ablation: entropy regularization (w=1, g=2) ===\n\n");
  util::Table ent({"entropy beta", "vs HEFT"});
  for (double beta : {1e-3, 5e-3, 1e-2}) {
    const double r = train_and_eval(1, 2, beta, budget, pool);
    ent.add_row({fmt(beta, 4), fmt(r)});
    csv.row({"1", "2", fmt(beta, 4), fmt(r, 4)});
  }
  ent.print();
  run.finish("ablation.csv");
  std::printf("\nseries written to ablation.csv\n");
  return 0;
}
