// Policy-latency baseline for the inference fast path (src/rl): times
// every READYS decision — window encoding + policy forward + action
// selection — across the 2x2 {backend} x {encoder} grid,
//
//   f64ref  + full         the historical path (autograd forward over a
//                          from-scratch StateEncoder::encode)
//   f64ref  + incremental  bit-identical encoder reuse
//   f32simd + full         float32 SIMD forward, from-scratch encoding
//   f32simd + incremental  the fast path serve/cluster default to
//
// and reports mean/p50/p95 microseconds per decision plus the headline
// speedup (f32simd+incremental vs f64ref+full) into
// BENCH_policy_latency.json (+ sibling manifest). A second phase times
// InferenceBackend::forward_batched against one-at-a-time forward() over
// harvested observations, the serve batching tradeoff.
//
// Decisions are timed in situ: a wrapper scheduler brackets decide()
// under a live Simulator run, so incremental encoding sees the real
// event stream (completions, ∅-declines) it is designed to exploit. The
// policy is an untrained seeded PolicyNet — latency does not depend on
// policy quality. Knobs:
//   READYS_TILES        Cholesky tile count (default 10)
//   READYS_EVAL_SEEDS   timed episodes per variant (default 5)
//   READYS_WINDOW       sub-DAG hop window (default 2)
//   READYS_HIDDEN       embedding width (default 32)
//   READYS_SEED         net + episode seed base (default 1)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tensor/f32.hpp"

using namespace readys;

namespace {

using clock_type = std::chrono::steady_clock;

double us_since(clock_type::time_point t0) {
  return std::chrono::duration<double, std::micro>(clock_type::now() - t0)
      .count();
}

/// Brackets the inner scheduler's decide() with a steady_clock pair.
/// Ready-empty instants (pure clock advances, identical across variants)
/// are delegated untimed so they cannot dilute the per-decision samples.
class TimedScheduler final : public sim::Scheduler {
 public:
  TimedScheduler(const rl::PolicyNet& net, int window, rl::ReadysOptions opts,
                 std::vector<double>* samples)
      : inner_(net, window, opts), samples_(samples) {}

  void reset(const sim::EngineView& view) override { inner_.reset(view); }

  std::vector<sim::Assignment> decide(const sim::EngineView& view) override {
    if (view.ready().empty()) return inner_.decide(view);
    const auto t0 = clock_type::now();
    std::vector<sim::Assignment> out = inner_.decide(view);
    if (samples_ != nullptr) samples_->push_back(us_since(t0));
    return out;
  }

  std::string name() const override { return "timed:" + inner_.name(); }

 private:
  rl::ReadysScheduler inner_;
  std::vector<double>* samples_;  ///< null during warmup
};

struct Variant {
  std::string name;
  rl::InferenceBackendKind backend;
  bool incremental = false;
  std::vector<double> us;      ///< per-decision latencies
  double mean_makespan = 0.0;  ///< sanity: policy behavior, not speed
};

struct BatchedCell {
  std::string backend;
  std::size_t batch = 0;
  std::size_t decisions = 0;
  double mean_us = 0.0;
};

}  // namespace

int main() {
  bench::BenchRun run("policy_latency");
  const int tiles = util::env_int("READYS_TILES", 10);
  const int window = util::env_int("READYS_WINDOW", 2);
  const int episodes = util::env_int("READYS_EVAL_SEEDS", 5);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(util::env_int("READYS_SEED", 1));

  rl::AgentConfig agent;
  agent.hidden = util::env_int("READYS_HIDDEN", 32);
  agent.window = window;
  agent.seed = seed;
  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, agent);

  const auto graph = core::make_graph(core::App::kCholesky, tiles);
  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);
  const double sigma = 0.3;  // perturbed runtimes keep the event stream busy

  run.manifest.set("tiles", tiles);
  run.manifest.set("window", window);
  run.manifest.set("episodes", episodes);
  run.manifest.set("hidden", agent.hidden);
  run.manifest.set("isa", tensor::f32::isa_name(tensor::f32::active_isa()));

  std::printf("=== policy latency: %d-tile Cholesky (%zu tasks), w=%d, "
              "hidden=%d, isa=%s ===\n\n",
              tiles, graph.num_tasks(), window, agent.hidden,
              tensor::f32::isa_name(tensor::f32::active_isa()));

  std::vector<Variant> variants = {
      {"f64ref+full", rl::InferenceBackendKind::kF64Ref, false, {}, 0.0},
      {"f64ref+incremental", rl::InferenceBackendKind::kF64Ref, true, {}, 0.0},
      {"f32simd+full", rl::InferenceBackendKind::kF32Simd, false, {}, 0.0},
      {"f32simd+incremental", rl::InferenceBackendKind::kF32Simd, true, {},
       0.0},
  };

  for (Variant& v : variants) {
    rl::ReadysOptions opts;
    opts.backend = v.backend;
    opts.incremental = v.incremental;
    opts.seed = seed;
    {
      // Warmup episode: first-touch allocations (arena growth, encoder
      // buffers, weight snapshot) land outside the timed samples.
      TimedScheduler warm(net, window, opts, nullptr);
      (void)sim::simulate_makespan(graph, platform, costs, warm, sigma, seed);
    }
    TimedScheduler sched(net, window, opts, &v.us);
    double mk_sum = 0.0;
    for (int ep = 0; ep < episodes; ++ep) {
      mk_sum += sim::simulate_makespan(graph, platform, costs, sched, sigma,
                                       seed + static_cast<std::uint64_t>(ep));
    }
    v.mean_makespan = mk_sum / episodes;
    const auto s = util::summarize(v.us);
    std::printf("%-22s %6zu decisions | mean %8.1f us  p50 %8.1f  p95 %8.1f"
                " | makespan %.1f\n",
                v.name.c_str(), v.us.size(), s.mean,
                util::quantile(v.us, 0.50), util::quantile(v.us, 0.95),
                v.mean_makespan);
  }

  const double base_mean = util::summarize(variants[0].us).mean;
  const double fast_mean = util::summarize(variants[3].us).mean;
  const double speedup = fast_mean > 0.0 ? base_mean / fast_mean : 0.0;
  std::printf("\nspeedup f32simd+incremental vs f64ref+full: %.2fx "
              "(acceptance floor: 3x)\n\n", speedup);

  // Phase 2: batched-vs-single forwards over harvested observations,
  // the tradeoff DecisionService::run_round makes. Encoding is excluded
  // here on purpose — this isolates the InferenceBackend surface.
  std::vector<rl::Observation> states;
  {
    rl::SchedulingEnv env(graph, platform, costs, {sigma, window, seed});
    util::Rng rng(seed ^ 0xBA7C4ED0ULL);
    env.reset(seed + 99);
    bool done = env.done();
    while (!done) {
      const rl::Observation& obs = env.observation();
      states.push_back(obs);
      done = env.step(rng.uniform_index(obs.num_actions())).done;
    }
  }
  const std::size_t kBatch = 8;
  std::vector<BatchedCell> batched;
  for (const auto kind : {rl::InferenceBackendKind::kF64Ref,
                          rl::InferenceBackendKind::kF32Simd}) {
    auto backend = net.make_inference(kind);
    rl::InferenceOutput out;
    std::vector<rl::InferenceOutput> outs;
    {  // batch = 1: one forward() per decision
      const auto t0 = clock_type::now();
      for (const rl::Observation& obs : states) backend->forward(obs, out);
      batched.push_back({backend->name(), 1, states.size(),
                         us_since(t0) / static_cast<double>(states.size())});
    }
    {  // batch = kBatch: serve-style forward_batched rounds
      std::vector<const rl::Observation*> chunk;
      const auto t0 = clock_type::now();
      for (std::size_t i = 0; i < states.size(); i += kBatch) {
        chunk.clear();
        for (std::size_t j = i; j < std::min(i + kBatch, states.size()); ++j) {
          chunk.push_back(&states[j]);
        }
        backend->forward_batched(chunk, outs);
      }
      batched.push_back({backend->name(), kBatch, states.size(),
                         us_since(t0) / static_cast<double>(states.size())});
    }
  }
  for (const BatchedCell& c : batched) {
    std::printf("forward only  %-8s batch %zu: %7.1f us/decision "
                "(%zu decisions)\n",
                c.backend.c_str(), c.batch, c.mean_us, c.decisions);
  }

  const char* path = "BENCH_policy_latency.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::string vjson = "[";
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const Variant& v = variants[i];
      const auto s = util::summarize(v.us);
      obs::JsonObject j;
      j.field("variant", v.name)
          .field("backend", rl::inference_backend_name(v.backend))
          .field("incremental", v.incremental)
          .field("decisions", static_cast<std::uint64_t>(v.us.size()))
          .field("mean_us", s.mean)
          .field("p50_us", util::quantile(v.us, 0.50))
          .field("p95_us", util::quantile(v.us, 0.95))
          .field("ci99_us", s.ci99_half_width)
          .field("mean_makespan", v.mean_makespan);
      if (i > 0) vjson += ",";
      vjson += j.str();
    }
    vjson += "]";
    std::string bjson = "[";
    for (std::size_t i = 0; i < batched.size(); ++i) {
      obs::JsonObject j;
      j.field("backend", batched[i].backend)
          .field("batch", static_cast<std::uint64_t>(batched[i].batch))
          .field("decisions", static_cast<std::uint64_t>(batched[i].decisions))
          .field("mean_us", batched[i].mean_us);
      if (i > 0) bjson += ",";
      bjson += j.str();
    }
    bjson += "]";
    obs::JsonObject j;
    j.field("bench", "policy_latency")
        .field("app", "cholesky")
        .field("tiles", tiles)
        .field("tasks", static_cast<std::uint64_t>(graph.num_tasks()))
        .field("window", window)
        .field("hidden", agent.hidden)
        .field("episodes", episodes)
        .field("sigma", sigma)
        .field("seed", seed)
        .field("isa", tensor::f32::isa_name(tensor::f32::active_isa()))
        .field("speedup_fast_vs_baseline", speedup)
        .raw("variants", vjson)
        .raw("forward_only", bjson);
    std::fprintf(f, "%s\n", j.str().c_str());
    std::fclose(f);
    std::printf("\nbaseline written to %s\n", path);
  } else {
    std::perror(path);
    return 1;
  }
  run.manifest.set("speedup_fast_vs_baseline", speedup);
  run.finish(path);
  return 0;
}
