// Serve-latency baseline for the DecisionService (src/serve): seeded
// Poisson session arrivals over the mixed Cholesky/LU/QR catalog,
// reporting p50/p99 decide latency, sessions/s, and the robustness
// counters (shed / deadline timeouts / MCT fallbacks / retries) into
// BENCH_serve_latency.json (+ sibling manifest).
//
// Five offered-load levels per run:
//   underload  ~0.5x measured capacity, roomy queue — nothing sheds
//   overload   ~3x capacity against a small queue — admission control
//              must shed with bounded latency, not collapse
//   deadline   underload with a tight per-decision budget — decisions
//              degrade to one-shot MCT instead of stalling
//   reload     underload while a thread force-publishes new weight
//              snapshots the whole run — hot swap must not stall the
//              decision path (bar: p99 <= 2x the no-reload underload p99)
//   noisy      a rate-limited bursty "hog" tenant slams the queue while
//              a steady "victim" tenant runs at ~0.4x capacity — QoS
//              must make the hog absorb the sheds (bar: >= 80%)
//
// The policy is an untrained seeded PolicyNet: decision *latency* and
// the robustness machinery do not depend on policy quality, and an
// untrained net keeps the bench self-contained and fast. Knobs:
//   READYS_SERVE_SESSIONS   sessions offered per level (default 64)
//   READYS_SERVE_ACTIVE     batch width per decision round (default 8)
//   READYS_SERVE_WORKERS    worker threads (default 1; this host has 1 core)
//   READYS_SERVE_QUEUE      underload queue capacity (default 64)
//   READYS_HIDDEN           embedding width (default 32)
//   READYS_SEED             seed for net + arrivals (default 1)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

using namespace readys;

namespace {

struct Level {
  std::string name;
  serve::LoadGenConfig load;
  serve::ServiceConfig service;
  serve::LoadReport report;
  std::string extra;  ///< optional extra JSON object ("detail" key)
};

serve::ServiceConfig base_service(const core::RunConfig& cfg) {
  serve::ServiceConfig sc;
  sc.cpus = cfg.ncpu;
  sc.gpus = cfg.ngpu;
  sc.queue_capacity = static_cast<std::size_t>(cfg.serve_queue);
  sc.max_active = static_cast<std::size_t>(cfg.serve_active);
  sc.workers = std::max(1, cfg.serve_workers);
  sc.max_retries = cfg.serve_retries;
  sc.record_latencies = true;
  sc.watchdog_period_ms = 200.0;
  return sc;
}

/// Closed-loop capacity probe: saturate the service (every session
/// queued up front) and measure completed sessions/s. The Poisson
/// levels are set relative to this so the bench lands on the right side
/// of the shedding threshold on any host speed.
double calibrate_capacity(const rl::PolicyNet& net,
                          const rl::AgentConfig& agent,
                          const core::RunConfig& cfg) {
  using clock = std::chrono::steady_clock;
  serve::ServiceConfig sc = base_service(cfg);
  const int n = std::max(8, cfg.serve_sessions / 2);
  sc.queue_capacity = static_cast<std::size_t>(n);
  sc.record_latencies = false;
  serve::DecisionService svc(net, agent, sc);

  serve::LoadGenConfig lg;
  lg.seed = cfg.seed;
  util::Rng rng(lg.seed ^ 0xCA11B247E5ULL);
  const auto t0 = clock::now();
  for (int i = 0; i < n; ++i) {
    svc.submit(serve::draw_catalog_spec(lg, rng));
  }
  svc.wait_idle();
  const double secs = std::chrono::duration<double>(clock::now() - t0).count();
  svc.shutdown();
  const auto c = svc.counters();
  return secs > 0.0 ? static_cast<double>(c.completed) / secs : 1.0;
}

serve::LoadReport run_level(const rl::PolicyNet& net,
                            const rl::AgentConfig& agent, Level& level) {
  serve::DecisionService svc(net, agent, level.service);
  serve::LoadReport report = serve::run_poisson_load(svc, level.load);
  svc.shutdown();
  return report;
}

std::string level_json(const Level& lv) {
  const serve::LoadReport& r = lv.report;
  obs::JsonObject j;
  j.field("level", lv.name)
      .field("offered_rate_per_s", lv.load.rate)
      .field("offered_sessions", r.offered)
      .field("queue_capacity",
             static_cast<std::uint64_t>(lv.service.queue_capacity))
      .field("max_active",
             static_cast<std::uint64_t>(lv.service.max_active))
      .field("deadline_us", lv.service.deadline_us)
      .field("admitted", r.admitted)
      .field("shed", r.shed)
      .field("completed", r.completed)
      .field("quarantined", r.quarantined)
      .field("retries", r.retries)
      .field("decisions", r.decisions)
      .field("timeouts", r.timeouts)
      .field("fallbacks", r.fallbacks)
      .field("duration_s", r.duration_s)
      .field("sessions_per_s", r.sessions_per_s)
      .field("decisions_per_s", r.decisions_per_s)
      .field("p50_decide_us", r.p50_decide_us)
      .field("p99_decide_us", r.p99_decide_us)
      .field("mean_makespan", r.mean_makespan)
      .field("arrival", serve::arrival_mode_name(lv.load.arrival));
  if (!lv.extra.empty()) j.raw("detail", lv.extra);
  return j.str();
}

}  // namespace

int main() {
  bench::BenchRun run("serve_latency");
  core::RunConfig cfg = core::RunConfig::from_env();
  cfg.agent.hidden = util::env_int("READYS_HIDDEN", 32);
  cfg.agent.seed = cfg.seed;

  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg.agent);

  std::printf("calibrating service capacity (closed loop)...\n");
  const double capacity = calibrate_capacity(net, cfg.agent, cfg);
  std::printf("  capacity ~= %.1f sessions/s\n", capacity);

  std::vector<Level> levels;
  {
    Level lv;
    lv.name = "underload";
    lv.service = base_service(cfg);
    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(1.0, 0.5 * capacity);
    lv.load.seed = cfg.seed;
    levels.push_back(lv);
  }
  {
    // Past the shedding threshold: 3x capacity into a queue of 8. The
    // acceptance bar is bounded degradation — shed counts grow, decide
    // latency stays flat, completed sessions keep flowing.
    Level lv;
    lv.name = "overload";
    lv.service = base_service(cfg);
    lv.service.queue_capacity = 8;
    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(2.0, 3.0 * capacity);
    lv.load.seed = cfg.seed + 1;
    levels.push_back(lv);
  }
  {
    // Tight per-decision budget: most batched forwards blow it, so
    // decisions degrade to one-shot MCT (timeout + fallback counters).
    Level lv;
    lv.name = "deadline";
    lv.service = base_service(cfg);
    lv.service.deadline_us = 50.0;
    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(1.0, 0.5 * capacity);
    lv.load.seed = cfg.seed + 2;
    levels.push_back(lv);
  }

  for (Level& lv : levels) {
    std::printf("level %-10s rate %.1f/s, queue %zu, deadline %.0f us...\n",
                lv.name.c_str(), lv.load.rate, lv.service.queue_capacity,
                lv.service.deadline_us);
    lv.report = run_level(net, cfg.agent, lv);
    std::printf(
        "  admitted %llu shed %llu completed %llu | %.1f sessions/s | "
        "p50 %.0f us p99 %.0f us | timeouts %llu fallbacks %llu\n",
        static_cast<unsigned long long>(lv.report.admitted),
        static_cast<unsigned long long>(lv.report.shed),
        static_cast<unsigned long long>(lv.report.completed),
        lv.report.sessions_per_s, lv.report.p50_decide_us,
        lv.report.p99_decide_us,
        static_cast<unsigned long long>(lv.report.timeouts),
        static_cast<unsigned long long>(lv.report.fallbacks));
  }
  const double underload_p99 = levels[0].report.p99_decide_us;

  // Level 4, "reload": the underload stream with a thread force-
  // publishing fresh weight snapshots the whole time. Workers adopt at
  // round boundaries, so the swap must not show up as a latency cliff.
  double reload_ratio = 0.0;
  {
    Level lv;
    lv.name = "reload";
    lv.service = base_service(cfg);
    // The storm republishes the same untrained net; an untrained policy
    // can trip the gate's MCT-sanity probe, and the gate's correctness
    // has its own suite (ctest -L reload). This level measures the swap
    // cost, so skip validation and publish every time.
    lv.service.reload.validate = false;
    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(1.0, 0.5 * capacity);
    lv.load.seed = cfg.seed + 3;
    std::printf("level %-10s rate %.1f/s + reload storm (force, 20 ms)...\n",
                lv.name.c_str(), lv.load.rate);
    serve::DecisionService svc(net, cfg.agent, lv.service);
    std::atomic<bool> stop{false};
    std::uint64_t published = 0;
    std::thread reloader([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const serve::ReloadResult r = svc.reload(net, /*force=*/true);
        if (r.status == serve::ReloadStatus::kPublished) ++published;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    lv.report = serve::run_poisson_load(svc, lv.load);
    stop.store(true, std::memory_order_relaxed);
    reloader.join();
    const std::uint64_t final_version = svc.active_weight_version();
    svc.shutdown();
    reload_ratio = underload_p99 > 0.0
                       ? lv.report.p99_decide_us / underload_p99
                       : 0.0;
    obs::JsonObject d;
    d.field("reloads_published", published)
        .field("final_weight_version", final_version)
        .field("p99_vs_underload", reload_ratio)
        .field("swap_bound_2x_ok", reload_ratio <= 2.0);
    lv.extra = d.str();
    std::printf(
        "  published %llu snapshots (final v%llu) | p99 %.0f us = %.2fx "
        "no-reload p99 (%s 2x bound)\n",
        static_cast<unsigned long long>(published),
        static_cast<unsigned long long>(final_version),
        lv.report.p99_decide_us, reload_ratio,
        reload_ratio <= 2.0 ? "within" : "OVER");
    levels.push_back(lv);
  }

  // Level 5, "noisy": a bursty token-bucketed hog tenant and a steady
  // victim tenant share the service; the QoS layer (bucket at submit,
  // DRR dequeue, hog-first eviction) must aim the sheds at the hog.
  double hog_shed_share = 0.0;
  {
    Level lv;
    lv.name = "noisy";
    lv.service = base_service(cfg);
    lv.service.queue_capacity = 16;
    serve::TenantPolicy hog_policy;
    hog_policy.rate_per_s = std::max(1.0, 0.25 * capacity);
    hog_policy.burst = 4.0;
    lv.service.tenants["hog"] = hog_policy;

    serve::LoadGenConfig hog;
    hog.sessions = cfg.serve_sessions;
    hog.rate = std::max(2.0, 2.0 * capacity);
    hog.seed = cfg.seed + 4;
    hog.tenant = "hog";
    hog.arrival = serve::ArrivalMode::kBursty;
    hog.wait_idle = false;  // the victim generator waits for idle once

    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(1.0, 0.4 * capacity);
    lv.load.seed = cfg.seed + 5;
    lv.load.tenant = "victim";

    std::printf(
        "level %-10s victim %.1f/s (poisson) vs hog %.1f/s (bursty, "
        "bucket %.1f/s)...\n",
        lv.name.c_str(), lv.load.rate, hog.rate, hog_policy.rate_per_s);
    serve::DecisionService svc(net, cfg.agent, lv.service);
    std::thread hog_thread([&] { (void)serve::run_poisson_load(svc, hog); });
    // The hog offers 5x faster, so it finishes submitting first and the
    // victim's wait_idle covers both tenants' tails.
    lv.report = serve::run_poisson_load(svc, lv.load);
    hog_thread.join();
    svc.wait_idle();
    const auto tenants = svc.tenant_counters();
    svc.shutdown();
    lv.report.offered = hog.sessions + lv.load.sessions;
    const auto vc = tenants.count("victim") ? tenants.at("victim")
                                            : serve::DecisionService::TenantCounters{};
    const auto hc = tenants.count("hog") ? tenants.at("hog")
                                         : serve::DecisionService::TenantCounters{};
    const std::uint64_t total_shed = vc.shed + hc.shed;
    hog_shed_share = total_shed > 0
                         ? static_cast<double>(hc.shed) /
                               static_cast<double>(total_shed)
                         : 1.0;
    obs::JsonObject d;
    d.field("victim_arrival", "poisson")
        .field("hog_arrival", serve::arrival_mode_name(hog.arrival))
        .field("hog_rate_limit_per_s", hog_policy.rate_per_s)
        .field("victim_admitted", vc.admitted)
        .field("victim_shed", vc.shed)
        .field("victim_completed", vc.completed)
        .field("hog_admitted", hc.admitted)
        .field("hog_shed", hc.shed)
        .field("hog_completed", hc.completed)
        .field("hog_shed_share", hog_shed_share)
        .field("hog_absorbs_80pct_ok", hog_shed_share >= 0.8);
    lv.extra = d.str();
    std::printf(
        "  victim admitted %llu shed %llu | hog admitted %llu shed %llu | "
        "hog absorbs %.0f%% of sheds (%s 80%% bar)\n",
        static_cast<unsigned long long>(vc.admitted),
        static_cast<unsigned long long>(vc.shed),
        static_cast<unsigned long long>(hc.admitted),
        static_cast<unsigned long long>(hc.shed), 100.0 * hog_shed_share,
        hog_shed_share >= 0.8 ? "meets" : "MISSES");
    levels.push_back(lv);
  }

  const char* path = "BENCH_serve_latency.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::string levels_json = "[";
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (i > 0) levels_json += ",";
      levels_json += level_json(levels[i]);
    }
    levels_json += "]";
    obs::JsonObject j;
    j.field("bench", "serve_latency")
        .field("capacity_sessions_per_s", capacity)
        .field("sessions_per_level", cfg.serve_sessions)
        .field("max_active", cfg.serve_active)
        .field("workers", std::max(1, cfg.serve_workers))
        .field("hidden", cfg.agent.hidden)
        .field("seed", cfg.seed)
        .field("catalog", "cholesky/lu/qr, tiles 3-5, sigma 0.1")
        .raw("levels", levels_json);
    std::fprintf(f, "%s\n", j.str().c_str());
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  } else {
    std::perror(path);
    return 1;
  }
  run.manifest.set("capacity_sessions_per_s", capacity);
  run.manifest.set("arrival_modes", "poisson; noisy hog uses bursty (MMPP)");
  run.manifest.set("reload_p99_vs_underload", reload_ratio);
  run.manifest.set("noisy_hog_shed_share", hog_shed_share);
  run.finish(path);
  return 0;
}
