// Serve-latency baseline for the DecisionService (src/serve): seeded
// Poisson session arrivals over the mixed Cholesky/LU/QR catalog,
// reporting p50/p99 decide latency, sessions/s, and the robustness
// counters (shed / deadline timeouts / MCT fallbacks / retries) into
// BENCH_serve_latency.json (+ sibling manifest).
//
// Three offered-load levels per run:
//   underload  ~0.5x measured capacity, roomy queue — nothing sheds
//   overload   ~3x capacity against a small queue — admission control
//              must shed with bounded latency, not collapse
//   deadline   underload with a tight per-decision budget — decisions
//              degrade to one-shot MCT instead of stalling
//
// The policy is an untrained seeded PolicyNet: decision *latency* and
// the robustness machinery do not depend on policy quality, and an
// untrained net keeps the bench self-contained and fast. Knobs:
//   READYS_SERVE_SESSIONS   sessions offered per level (default 64)
//   READYS_SERVE_ACTIVE     batch width per decision round (default 8)
//   READYS_SERVE_WORKERS    worker threads (default 1; this host has 1 core)
//   READYS_SERVE_QUEUE      underload queue capacity (default 64)
//   READYS_HIDDEN           embedding width (default 32)
//   READYS_SEED             seed for net + arrivals (default 1)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace readys;

namespace {

struct Level {
  std::string name;
  serve::LoadGenConfig load;
  serve::ServiceConfig service;
  serve::LoadReport report;
};

serve::ServiceConfig base_service(const core::RunConfig& cfg) {
  serve::ServiceConfig sc;
  sc.cpus = cfg.ncpu;
  sc.gpus = cfg.ngpu;
  sc.queue_capacity = static_cast<std::size_t>(cfg.serve_queue);
  sc.max_active = static_cast<std::size_t>(cfg.serve_active);
  sc.workers = std::max(1, cfg.serve_workers);
  sc.max_retries = cfg.serve_retries;
  sc.record_latencies = true;
  sc.watchdog_period_ms = 200.0;
  return sc;
}

/// Closed-loop capacity probe: saturate the service (every session
/// queued up front) and measure completed sessions/s. The Poisson
/// levels are set relative to this so the bench lands on the right side
/// of the shedding threshold on any host speed.
double calibrate_capacity(const rl::PolicyNet& net,
                          const rl::AgentConfig& agent,
                          const core::RunConfig& cfg) {
  using clock = std::chrono::steady_clock;
  serve::ServiceConfig sc = base_service(cfg);
  const int n = std::max(8, cfg.serve_sessions / 2);
  sc.queue_capacity = static_cast<std::size_t>(n);
  sc.record_latencies = false;
  serve::DecisionService svc(net, agent, sc);

  serve::LoadGenConfig lg;
  lg.seed = cfg.seed;
  util::Rng rng(lg.seed ^ 0xCA11B247E5ULL);
  const auto t0 = clock::now();
  for (int i = 0; i < n; ++i) {
    svc.submit(serve::draw_catalog_spec(lg, rng));
  }
  svc.wait_idle();
  const double secs = std::chrono::duration<double>(clock::now() - t0).count();
  svc.shutdown();
  const auto c = svc.counters();
  return secs > 0.0 ? static_cast<double>(c.completed) / secs : 1.0;
}

serve::LoadReport run_level(const rl::PolicyNet& net,
                            const rl::AgentConfig& agent, Level& level) {
  serve::DecisionService svc(net, agent, level.service);
  serve::LoadReport report = serve::run_poisson_load(svc, level.load);
  svc.shutdown();
  return report;
}

std::string level_json(const Level& lv) {
  const serve::LoadReport& r = lv.report;
  obs::JsonObject j;
  j.field("level", lv.name)
      .field("offered_rate_per_s", lv.load.rate)
      .field("offered_sessions", r.offered)
      .field("queue_capacity",
             static_cast<std::uint64_t>(lv.service.queue_capacity))
      .field("max_active",
             static_cast<std::uint64_t>(lv.service.max_active))
      .field("deadline_us", lv.service.deadline_us)
      .field("admitted", r.admitted)
      .field("shed", r.shed)
      .field("completed", r.completed)
      .field("quarantined", r.quarantined)
      .field("retries", r.retries)
      .field("decisions", r.decisions)
      .field("timeouts", r.timeouts)
      .field("fallbacks", r.fallbacks)
      .field("duration_s", r.duration_s)
      .field("sessions_per_s", r.sessions_per_s)
      .field("decisions_per_s", r.decisions_per_s)
      .field("p50_decide_us", r.p50_decide_us)
      .field("p99_decide_us", r.p99_decide_us)
      .field("mean_makespan", r.mean_makespan);
  return j.str();
}

}  // namespace

int main() {
  bench::BenchRun run("serve_latency");
  core::RunConfig cfg = core::RunConfig::from_env();
  cfg.agent.hidden = util::env_int("READYS_HIDDEN", 32);
  cfg.agent.seed = cfg.seed;

  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg.agent);

  std::printf("calibrating service capacity (closed loop)...\n");
  const double capacity = calibrate_capacity(net, cfg.agent, cfg);
  std::printf("  capacity ~= %.1f sessions/s\n", capacity);

  std::vector<Level> levels;
  {
    Level lv;
    lv.name = "underload";
    lv.service = base_service(cfg);
    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(1.0, 0.5 * capacity);
    lv.load.seed = cfg.seed;
    levels.push_back(lv);
  }
  {
    // Past the shedding threshold: 3x capacity into a queue of 8. The
    // acceptance bar is bounded degradation — shed counts grow, decide
    // latency stays flat, completed sessions keep flowing.
    Level lv;
    lv.name = "overload";
    lv.service = base_service(cfg);
    lv.service.queue_capacity = 8;
    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(2.0, 3.0 * capacity);
    lv.load.seed = cfg.seed + 1;
    levels.push_back(lv);
  }
  {
    // Tight per-decision budget: most batched forwards blow it, so
    // decisions degrade to one-shot MCT (timeout + fallback counters).
    Level lv;
    lv.name = "deadline";
    lv.service = base_service(cfg);
    lv.service.deadline_us = 50.0;
    lv.load.sessions = cfg.serve_sessions;
    lv.load.rate = std::max(1.0, 0.5 * capacity);
    lv.load.seed = cfg.seed + 2;
    levels.push_back(lv);
  }

  for (Level& lv : levels) {
    std::printf("level %-10s rate %.1f/s, queue %zu, deadline %.0f us...\n",
                lv.name.c_str(), lv.load.rate, lv.service.queue_capacity,
                lv.service.deadline_us);
    lv.report = run_level(net, cfg.agent, lv);
    std::printf(
        "  admitted %llu shed %llu completed %llu | %.1f sessions/s | "
        "p50 %.0f us p99 %.0f us | timeouts %llu fallbacks %llu\n",
        static_cast<unsigned long long>(lv.report.admitted),
        static_cast<unsigned long long>(lv.report.shed),
        static_cast<unsigned long long>(lv.report.completed),
        lv.report.sessions_per_s, lv.report.p50_decide_us,
        lv.report.p99_decide_us,
        static_cast<unsigned long long>(lv.report.timeouts),
        static_cast<unsigned long long>(lv.report.fallbacks));
  }

  const char* path = "BENCH_serve_latency.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::string levels_json = "[";
    for (std::size_t i = 0; i < levels.size(); ++i) {
      if (i > 0) levels_json += ",";
      levels_json += level_json(levels[i]);
    }
    levels_json += "]";
    obs::JsonObject j;
    j.field("bench", "serve_latency")
        .field("capacity_sessions_per_s", capacity)
        .field("sessions_per_level", cfg.serve_sessions)
        .field("max_active", cfg.serve_active)
        .field("workers", std::max(1, cfg.serve_workers))
        .field("hidden", cfg.agent.hidden)
        .field("seed", cfg.seed)
        .field("catalog", "cholesky/lu/qr, tiles 3-5, sigma 0.1")
        .raw("levels", levels_json);
    std::fprintf(f, "%s\n", j.str().c_str());
    std::fclose(f);
    std::printf("baseline written to %s\n", path);
  } else {
    std::perror(path);
    return 1;
  }
  run.manifest.set("capacity_sessions_per_s", capacity);
  run.finish(path);
  return 0;
}
