#pragma once

// Shared driver for the transfer-learning figures (4, 5, 6): train
// READYS agents on small Cholesky instances (T in {4, 6, 8}) and apply
// them unchanged to larger ones (T in {10, 12}), reporting the
// improvement over HEFT and MCT per noise level. The three figures only
// differ in the platform.

#include "bench_common.hpp"

namespace bench {

inline int run_transfer_figure(const char* figure_name,
                               const sim::Platform& platform) {
  const Budget budget = Budget::from_env();
  const auto sigmas =
      util::env_double_list("READYS_SIGMAS", {0.0, 0.2, 0.4, 0.8});
  const auto train_tiles = util::env_int_list("READYS_TILES", {4, 6, 8});
  const auto test_tiles = util::env_int_list("READYS_TEST_TILES", {10, 12});
  const double train_sigma = util::env_double("READYS_TRAIN_SIGMA", 0.2);
  const auto costs = core::make_costs(core::App::kCholesky);
  util::ThreadPool pool;
  BenchRun run(figure_name, budget);
  run.manifest.set("platform", platform.name());
  run.manifest.set("train_sigma", train_sigma);

  std::printf("=== %s: Cholesky transfer on %s ===\n", figure_name,
              platform.name().c_str());
  std::printf("budget: %d base episodes, %d eval seeds, train sigma %.2f\n\n",
              budget.base_episodes, budget.eval_seeds, train_sigma);

  const std::string csv_name = std::string(figure_name) + ".csv";
  util::CsvWriter csv(csv_name,
                      {"platform", "train_T", "test_T", "sigma", "readys_ms",
                       "heft_ms", "mct_ms", "over_heft", "over_mct"});

  // Train one agent per training size.
  std::vector<std::pair<int, std::unique_ptr<rl::ReadysAgent>>> agents;
  for (int t : train_tiles) {
    const auto graph = core::make_graph(core::App::kCholesky, t);
    std::printf("training on T=%d (%zu tasks)...\n", t, graph.num_tasks());
    std::fflush(stdout);
    agents.emplace_back(t, train_agent(graph, platform, costs, train_sigma,
                                       budget, /*seed=*/1, &pool));
  }
  std::printf("\n");

  for (int test_t : test_tiles) {
    const auto graph = core::make_graph(core::App::kCholesky, test_t);
    std::printf("--- test DAG: Cholesky T=%d (%zu tasks) ---\n", test_t,
                graph.num_tasks());
    util::Table table({"train T", "sigma", "READYS(ms)", "HEFT(ms)",
                       "MCT(ms)", "vs HEFT", "vs MCT"});
    for (const auto& [train_t, agent] : agents) {
      for (double sigma : sigmas) {
        const auto p = evaluate_point(graph, platform, costs, *agent, sigma,
                                      budget.eval_seeds, &pool);
        table.add_row({std::to_string(train_t), fmt(sigma, 2),
                       fmt(p.readys, 1), fmt(p.heft, 1), fmt(p.mct, 1),
                       fmt(p.over_heft()), fmt(p.over_mct())});
        csv.row({platform.name(), std::to_string(train_t),
                 std::to_string(test_t), fmt(sigma, 3), fmt(p.readys, 3),
                 fmt(p.heft, 3), fmt(p.mct, 3), fmt(p.over_heft(), 4),
                 fmt(p.over_mct(), 4)});
      }
    }
    table.print();
    std::printf("\n");
    std::fflush(stdout);
  }
  run.finish(csv_name);
  std::printf("series written to %s\n", csv_name.c_str());
  std::printf("expected shape (paper): T=6/8 agents near HEFT at sigma=0 "
              "and ahead for sigma>0.2; T=4 weaker; vs MCT > 1 "
              "everywhere.\n");
  return 0;
}

}  // namespace bench
