// Figure 6: transfer learning on a homogeneous 4-GPU platform.

#include "transfer_common.hpp"

int main() {
  return bench::run_transfer_figure("fig6",
                                    bench::sim::Platform::gpus(4));
}
