// Fault-tolerance sweep: makespan degradation of READYS vs MCT vs HEFT
// as the resource-outage rate grows. Not a paper figure — the paper's
// §VI names execution faults as future work; this harness quantifies how
// the dynamic strategies (READYS, MCT) absorb outages that a static HEFT
// schedule cannot, using the simulator's fail-stop + recovery fault
// model (src/sim/fault_model.hpp).
//
// The agent is trained fault-free (the deployment-realistic setting:
// faults are surprises, not part of the curriculum) and evaluated under
// injection. Every scheduler sees the same fault seeds, so the
// comparison is paired. Degradation is mean makespan over the fault-free
// mean of the same scheduler.
//
// Extra knobs on top of the shared READYS_* budget variables:
//   READYS_FAULT_RATES      comma list of outage rates per resource per
//                           ms (default 0,0.0002,0.0005,0.001,0.002)
//   READYS_FAULT_DOWNTIME   mean outage duration in ms (default 200)
//   READYS_FAULT_TASK_FAIL  per-execution failure probability (default 0)

#include "bench_common.hpp"

using namespace bench;

int main() {
  const auto budget = Budget::from_env();
  const double sigma = util::env_double("READYS_TRAIN_SIGMA", 0.2);
  const auto rates = util::env_double_list(
      "READYS_FAULT_RATES", {0.0, 0.0002, 0.0005, 0.001, 0.002});
  const double downtime = util::env_double("READYS_FAULT_DOWNTIME", 200.0);
  const double task_fail = util::env_double("READYS_FAULT_TASK_FAIL", 0.0);
  const auto graph = core::make_graph(core::App::kCholesky, 8);
  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);
  util::ThreadPool pool;
  BenchRun run("fault_sweep", budget);
  run.manifest.set("sigma", sigma);
  run.manifest.set("downtime_ms", downtime);
  run.manifest.set("task_failure_prob", task_fail);

  std::printf("=== Fault sweep (Cholesky T=8, %s, sigma=%.2f, mean "
              "downtime %.0f ms) ===\n\n",
              platform.name().c_str(), sigma, downtime);
  auto agent =
      train_agent(graph, platform, costs, sigma, budget, /*seed=*/1, &pool);

  util::CsvWriter csv("fault_sweep.csv",
                      {"scheduler", "outage_rate", "mean_ms", "ci95",
                       "degradation"});
  util::Table table({"rate (/res/ms)", "scheduler", "mean (ms)", "ci95",
                     "degradation"});

  struct Series {
    const char* name;
    core::SchedulerFactory factory;
    double baseline = 0.0;  ///< fault-free mean, denominator of degradation
  };
  Series series[] = {{"READYS", agent_factory(*agent)},
                     {"MCT", core::mct_factory()},
                     {"HEFT", core::heft_factory()}};

  for (const double rate : rates) {
    sim::Simulator::Options options;
    options.sigma = sigma;
    options.seed = 10'000;
    if (rate > 0.0) {
      sim::FaultModel faults;
      faults.outage_rate = rate;
      faults.mean_downtime = downtime;
      faults.task_failure_prob = task_fail;
      options.faults = faults;
    }
    for (Series& s : series) {
      const auto mks = core::evaluate_makespans(
          graph, platform, costs, s.factory, options, budget.eval_seeds,
          &pool);
      const auto sum = util::summarize(mks);
      if (s.baseline == 0.0) s.baseline = sum.mean;
      const double degradation = sum.mean / s.baseline;
      table.add_row({fmt(rate, 4), s.name, fmt(sum.mean, 0),
                     fmt(sum.ci95_half_width, 0), fmt(degradation)});
      csv.row({s.name, fmt(rate, 6), fmt(sum.mean, 2),
               fmt(sum.ci95_half_width, 2), fmt(degradation, 4)});
    }
  }
  table.print();
  run.finish("fault_sweep.csv");
  std::printf("\nseries written to fault_sweep.csv\n");
  std::printf("(degradation = mean makespan / same scheduler's fault-free "
              "mean; rate 0 row is the baseline)\n");
  return 0;
}
