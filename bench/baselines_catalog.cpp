// Scheduler catalog: every heuristic in the library across the paper's
// factorizations and the synthetic topologies, on the three platforms.
// Not a paper figure — this is the baseline-sanity sweep that backs the
// Fig. 3 comparisons (HEFT and MCT must actually be the strongest
// non-learned contenders, otherwise "beats HEFT" means little).

#include "bench_common.hpp"
#include "dag/synthetic.hpp"

using namespace bench;

int main() {
  const int runs = util::env_int("READYS_EVAL_SEEDS", 5);
  const double sigma = util::env_double("READYS_TRAIN_SIGMA", 0.25);
  util::ThreadPool pool;
  BenchRun run("baselines_catalog");
  run.manifest.set("runs", runs);
  run.manifest.set("sigma", sigma);

  // Every scheduler the registry knows, under its registry name — the
  // catalog can never silently drift from what the library ships.
  std::vector<std::pair<std::string, core::SchedulerFactory>> scheds;
  for (const std::string& name : sched::registry().names()) {
    scheds.emplace_back(name, core::registry_factory(name));
  }
  run.set_schedulers(sched::registry().names());

  struct Workload {
    std::string name;
    dag::TaskGraph graph;
    sim::CostModel costs;
  };
  std::vector<Workload> workloads;
  for (auto app : {core::App::kCholesky, core::App::kLu, core::App::kQr}) {
    workloads.push_back({core::app_name(app) + "_T8",
                         core::make_graph(app, 8), core::make_costs(app)});
  }
  workloads.push_back({"forkjoin", dag::fork_join_graph(4, 6, 2),
                       sim::CostModel::cholesky()});
  workloads.push_back({"stencil", dag::stencil_1d_graph(8, 8),
                       sim::CostModel::cholesky()});
  workloads.push_back({"independent", dag::independent_tasks_graph(64),
                       sim::CostModel::cholesky()});

  std::printf("=== Scheduler catalog, sigma=%.2f, %d runs/cell ===\n\n",
              sigma, runs);
  util::CsvWriter csv("baselines.csv",
                      {"workload", "platform", "scheduler", "mean_ms"});
  for (const auto& platform :
       {sim::Platform::cpus(4), sim::Platform::hybrid(2, 2),
        sim::Platform::gpus(4)}) {
    std::printf("--- platform %s ---\n", platform.name().c_str());
    std::vector<std::string> header{"workload"};
    for (const auto& [name, f] : scheds) header.push_back(name);
    util::Table table(header);
    for (const auto& w : workloads) {
      std::vector<std::string> row{w.name};
      for (const auto& [name, factory] : scheds) {
        const double mean = util::mean(core::evaluate_makespans(
            w.graph, platform, w.costs, factory, sigma, runs, 33, &pool));
        row.push_back(fmt(mean, 0));
        csv.row({w.name, platform.name(), name, fmt(mean, 2)});
      }
      table.add_row(row);
    }
    table.print();
    std::printf("\n");
    std::fflush(stdout);
  }
  run.finish("baselines.csv");
  std::printf("series written to baselines.csv (mean makespans, ms)\n");
  return 0;
}
