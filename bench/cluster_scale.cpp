// Cluster-scale scheduling baseline: wall-clock decisions/sec of the
// centralized MCT scheduler vs the decentralized shard(KxMCT) family as
// the platform grows to P=1024 resources, on width-heavy random layered
// DAGs (~2P tasks per layer, so every decision round carries a batch of
// newly-ready tasks proportional to P).
//
// Two axes are recorded per (P, K) cell: wall-clock decisions/s and
// mean makespan. In a monolithic simulator the centralized scheduler
// pays no communication cost, so decentralization is pure overhead in
// wall clock — each inner MCT scans only its own P/K resources, but
// the coordinator's scoped-view refresh and failure detection
// re-introduce O(P) passes per round with higher constants than the
// engine-backed scan they replace. The decentralized win shows up on
// the *quality* axis instead: locality-driven ownership plus work
// stealing beat the centralized MCT's makespan at high P. The
// committed BENCH_cluster_scale.json series tracks both; EXPERIMENTS.md
// documents the measured crossover and the overhead decomposition.
//
//   READYS_BENCH_RESOURCES  comma list of platform sizes (16,64,256,1024)
//   READYS_BENCH_SHARDS     comma list of shard counts   (1,4,16,64)
//   READYS_BENCH_SECONDS    min wall time per cell (0.3)
//   READYS_BENCH_EPISODES   fixed episode count per cell (0 = time-target)
//   READYS_BENCH_SIGMA      duration noise level (0.1)
//
// K=1 runs plain MCT under a single-shard ClusterSimulator — the
// bit-exactness suite guarantees that is the centralized baseline.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace readys;

namespace {

struct Cell {
  int resources = 0;
  int shards = 0;
  std::size_t tasks = 0;
  int episodes = 0;
  double wall_s = 0.0;
  double decisions_per_s = 0.0;
  double mean_makespan = 0.0;
  std::size_t steals = 0;
  std::size_t hb_transitions = 0;
};

/// One width-heavy instance per platform size: ~2P tasks per layer with
/// mean in-degree ~4, so ready batches scale with P while the edge count
/// stays linear in the task count.
dag::TaskGraph make_wide_graph(int resources) {
  dag::RandomDagConfig cfg;
  cfg.layers = 6;
  cfg.width = 2 * resources;
  cfg.edge_density = std::min(0.4, 4.0 / static_cast<double>(cfg.width));
  cfg.kernel_types = 4;
  cfg.connect_layers = true;
  util::Rng rng(0x5ca1eull + static_cast<std::uint64_t>(resources));
  return dag::random_layered_dag(cfg, rng);
}

Cell run_cell(const dag::TaskGraph& graph, const sim::Platform& platform,
              const sim::CostModel& costs, int shards, double sigma,
              double min_seconds, int fixed_episodes) {
  using clock = std::chrono::steady_clock;
  Cell cell;
  cell.resources = platform.size();
  cell.shards = shards;
  cell.tasks = graph.num_tasks();

  const std::string spec =
      shards > 1 ? "shard(shards=" + std::to_string(shards) + "):mct" : "mct";
  const auto make = [&](std::uint64_t seed) {
    sched::SchedulerConfig sc;
    sc.seed = seed;
    return sched::make_scheduler(spec, sc);
  };

  {  // Warm-up: touches cold memory, builds the partition and monitors.
    auto sched = make(1);
    cluster::ClusterSimulator::Options opt;
    opt.sigma = sigma;
    opt.seed = 1;
    opt.shards = shards;
    cluster::ClusterSimulator sim(graph, platform, costs, opt);
    sim.run(*sched);
  }

  double makespan_acc = 0.0;
  const auto t0 = clock::now();
  double elapsed = 0.0;
  while (fixed_episodes > 0 ? cell.episodes < fixed_episodes
                            : elapsed < min_seconds) {
    const std::uint64_t seed = static_cast<std::uint64_t>(cell.episodes) + 1;
    auto sched = make(seed);
    cluster::ClusterSimulator::Options opt;
    opt.sigma = sigma;
    opt.seed = seed;
    opt.shards = shards;
    cluster::ClusterSimulator sim(graph, platform, costs, opt);
    makespan_acc += sim.run(*sched).makespan;
    if (const auto* ss =
            dynamic_cast<const cluster::ShardScheduler*>(sched.get())) {
      cell.steals += ss->steals();
      cell.hb_transitions += ss->heartbeat().total_transitions();
    }
    ++cell.episodes;
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
  }
  cell.wall_s = elapsed;
  cell.decisions_per_s = static_cast<double>(cell.tasks) *
                         static_cast<double>(cell.episodes) / elapsed;
  cell.mean_makespan = makespan_acc / static_cast<double>(cell.episodes);
  return cell;
}

}  // namespace

int main() {
  cluster::register_cluster_scheduler();
  const auto resources =
      util::env_int_list("READYS_BENCH_RESOURCES", {16, 64, 256, 1024});
  const auto shard_counts =
      util::env_int_list("READYS_BENCH_SHARDS", {1, 4, 16, 64});
  const double min_seconds = util::env_double("READYS_BENCH_SECONDS", 0.3);
  const int fixed_episodes = util::env_int("READYS_BENCH_EPISODES", 0);
  const double sigma = util::env_double("READYS_BENCH_SIGMA", 0.1);
  const auto costs = sim::CostModel::cholesky();

  bench::BenchRun run("cluster_scale");
  run.manifest.set("sigma", sigma);
  run.manifest.set("min_seconds", min_seconds);
  run.manifest.set("fixed_episodes", fixed_episodes);
  run.set_schedulers({"mct", "shard:mct"});

  std::printf("=== Cluster scaling: centralized MCT vs shard(KxMCT), "
              "sigma=%.2f ===\n\n",
              sigma);
  util::Table table({"P", "K", "tasks", "episodes", "decisions/s",
                     "vs K=1", "mean mk (ms)", "steals"});
  std::vector<Cell> cells;
  for (const int p : resources) {
    const auto graph = make_wide_graph(p);
    const auto platform = sim::Platform::hybrid(p / 2, p - p / 2);
    double centralized = 0.0;
    for (const int k : shard_counts) {
      if (k > p) continue;
      const auto cell = run_cell(graph, platform, costs, k, sigma,
                                 min_seconds, fixed_episodes);
      if (k == 1) centralized = cell.decisions_per_s;
      const double speedup =
          centralized > 0.0 ? cell.decisions_per_s / centralized : 0.0;
      table.add_row({std::to_string(cell.resources),
                     std::to_string(cell.shards),
                     std::to_string(cell.tasks),
                     std::to_string(cell.episodes),
                     util::Table::num(cell.decisions_per_s, 0),
                     util::Table::num(speedup, 2) + "x",
                     util::Table::num(cell.mean_makespan, 1),
                     std::to_string(cell.steals)});
      cells.push_back(cell);
    }
  }
  table.print();

  const char* path = "BENCH_cluster_scale.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror(path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"cluster_scale\",\n");
  std::fprintf(f, "  \"sigma\": %.3f,\n  \"cells\": [\n", sigma);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"resources\": %d, \"shards\": %d, \"tasks\": %zu, "
                 "\"episodes\": %d, \"wall_s\": %.3f, "
                 "\"decisions_per_s\": %.1f, \"mean_makespan_ms\": %.3f, "
                 "\"steals\": %zu, \"hb_transitions\": %zu}%s\n",
                 c.resources, c.shards, c.tasks, c.episodes, c.wall_s,
                 c.decisions_per_s, c.mean_makespan, c.steals,
                 c.hb_transitions, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nscaling series written to %s\n", path);
  run.finish(path);
  return 0;
}
