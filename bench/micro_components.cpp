// google-benchmark microbenchmarks of the library's building blocks:
// tensor ops, GCN forward/backward, DAG generation, window extraction,
// HEFT computation, and full simulator executions of the baselines.

#include <benchmark/benchmark.h>

#include "core/readys.hpp"

using namespace readys;

namespace {

void BM_TensorMatmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  const auto a = tensor::Tensor::randn(n, n, rng);
  const auto b = tensor::Tensor::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_value(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_TensorMatmul)->Arg(16)->Arg(64)->Arg(128);

void BM_AutogradBackward(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  tensor::Var w(tensor::Tensor::randn(n, n, rng), true);
  tensor::Var x(tensor::Tensor::randn(n, n, rng));
  for (auto _ : state) {
    w.zero_grad();
    auto loss = tensor::mean_all(
        tensor::square(tensor::relu(tensor::matmul(x, w))));
    loss.backward();
    benchmark::DoNotOptimize(w.grad());
  }
}
BENCHMARK(BM_AutogradBackward)->Arg(16)->Arg(64);

void BM_GcnForward(benchmark::State& state) {
  const std::size_t nodes = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  nn::GCNLayer layer(14, 64, rng);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i + 1 < nodes; ++i) edges.emplace_back(i, i + 1);
  const tensor::Var ahat(nn::normalized_adjacency(nodes, edges));
  const tensor::Var h(tensor::Tensor::randn(nodes, 14, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(ahat, h));
  }
}
BENCHMARK(BM_GcnForward)->Arg(16)->Arg(45)->Arg(128);

void BM_DagGeneration(benchmark::State& state) {
  const int tiles = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::cholesky_graph(tiles));
  }
}
BENCHMARK(BM_DagGeneration)->Arg(8)->Arg(16)->Arg(32);

void BM_StaticFeatures(benchmark::State& state) {
  const auto g = dag::cholesky_graph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::StaticFeatures(g));
  }
}
BENCHMARK(BM_StaticFeatures)->Arg(8)->Arg(16);

void BM_WindowExtraction(benchmark::State& state) {
  const auto g = dag::cholesky_graph(12);
  const auto seeds = g.sources();
  const int w = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::extract_window(g, seeds, w));
  }
}
BENCHMARK(BM_WindowExtraction)->Arg(1)->Arg(2)->Arg(3);

void BM_HeftCompute(benchmark::State& state) {
  const auto g = dag::cholesky_graph(static_cast<int>(state.range(0)));
  const auto p = sim::Platform::hybrid(2, 2);
  const auto c = sim::CostModel::cholesky();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::compute_heft(g, p, c));
  }
}
BENCHMARK(BM_HeftCompute)->Arg(8)->Arg(12)->Arg(16);

void BM_SimulateMct(benchmark::State& state) {
  const auto g = dag::cholesky_graph(static_cast<int>(state.range(0)));
  const auto p = sim::Platform::hybrid(2, 2);
  const auto c = sim::CostModel::cholesky();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sched::MctScheduler sched;
    sim::Simulator sim(g, p, c, {0.3, ++seed});
    benchmark::DoNotOptimize(sim.run(sched).makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_tasks()));
}
BENCHMARK(BM_SimulateMct)->Arg(8)->Arg(12);

void BM_SimulateHeft(benchmark::State& state) {
  const auto g = dag::cholesky_graph(static_cast<int>(state.range(0)));
  const auto p = sim::Platform::hybrid(2, 2);
  const auto c = sim::CostModel::cholesky();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sched::HeftScheduler sched;
    sim::Simulator sim(g, p, c, {0.3, ++seed});
    benchmark::DoNotOptimize(sim.run(sched).makespan);
  }
}
BENCHMARK(BM_SimulateHeft)->Arg(8)->Arg(12);

void BM_PolicyForward(benchmark::State& state) {
  const auto g = dag::cholesky_graph(static_cast<int>(state.range(0)));
  const auto p = sim::Platform::hybrid(2, 2);
  const auto c = sim::CostModel::cholesky();
  rl::AgentConfig cfg;
  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg);
  sim::SimEngine engine(g, p, c, 0.0, 1);
  rl::StateEncoder enc(g, c, cfg.window);
  const auto obs = enc.encode(engine, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(obs));
  }
}
BENCHMARK(BM_PolicyForward)->Arg(6)->Arg(10);

void BM_EnvEpisodeRandomPolicy(benchmark::State& state) {
  const auto g = dag::cholesky_graph(static_cast<int>(state.range(0)));
  const auto p = sim::Platform::hybrid(2, 2);
  const auto c = sim::CostModel::cholesky();
  rl::SchedulingEnv env(g, p, c, {0.2, 1, 1});
  util::Rng rng(5);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    env.reset(++seed);
    bool done = env.done();
    while (!done) {
      done = env.step(rng.uniform_index(env.observation().num_actions()))
                 .done;
    }
    benchmark::DoNotOptimize(env.makespan());
  }
}
BENCHMARK(BM_EnvEpisodeRandomPolicy)->Arg(6)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
