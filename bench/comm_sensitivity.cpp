// Sensitivity of the zero-communication assumption (§III-A): sweep the
// per-transfer cost from free to drastic and measure how the baselines
// degrade on the hybrid platform. Not a paper figure — it quantifies
// when the paper's modeling assumption stops holding and shows the
// comm-aware MCT refinement recovering most of the loss.

#include "bench_common.hpp"

using namespace bench;

int main() {
  const int runs = util::env_int("READYS_EVAL_SEEDS", 5);
  const double sigma = util::env_double("READYS_TRAIN_SIGMA", 0.2);
  const auto graph = core::make_graph(core::App::kCholesky, 8);
  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);
  util::ThreadPool pool;
  BenchRun run("comm_sensitivity");
  run.manifest.set("runs", runs);
  run.manifest.set("sigma", sigma);

  std::printf("=== Communication sensitivity (Cholesky T=8, %s, "
              "sigma=%.2f) ===\n\n",
              platform.name().c_str(), sigma);
  util::CsvWriter csv("comm_sensitivity.csv",
                      {"transfer_ms", "heft", "mct", "mct_comm"});
  util::Table table({"ms/transfer", "HEFT", "MCT", "MCT-COMM",
                     "MCT-COMM gain"});

  for (double transfer_ms : {0.0, 0.5, 2.0, 5.0, 10.0, 20.0}) {
    const sim::CommModel comm =
        transfer_ms == 0.0 ? sim::CommModel::free()
                           : sim::CommModel(transfer_ms, 1.0, 0.0);
    auto eval = [&](const core::SchedulerFactory& factory) {
      std::vector<double> out(static_cast<std::size_t>(runs));
      pool.parallel_for(out.size(), [&](std::size_t i) {
        auto sched = factory(i);
        sim::Simulator s(graph, platform, costs,
                         {sigma, 100 + i, comm});
        out[i] = s.run(*sched).makespan;
      });
      return util::mean(out);
    };
    const double heft = eval(core::heft_factory());
    const double mct = eval(core::mct_factory());
    const double mct_comm = eval(core::registry_factory("mct-comm"));
    table.add_row({fmt(transfer_ms, 1), fmt(heft, 0), fmt(mct, 0),
                   fmt(mct_comm, 0), fmt(mct / mct_comm)});
    csv.row({fmt(transfer_ms, 2), fmt(heft, 2), fmt(mct, 2),
             fmt(mct_comm, 2)});
  }
  table.print();
  run.finish("comm_sensitivity.csv");
  std::printf("\nseries written to comm_sensitivity.csv\n");
  std::printf("(transfer cost applies per cross-domain input tile; 0 = the "
              "paper's assumption)\n");
  return 0;
}
