// Figure 5: transfer learning on the hybrid 2 CPU + 2 GPU platform.

#include "transfer_common.hpp"

int main() {
  return bench::run_transfer_figure("fig5",
                                    bench::sim::Platform::hybrid(2, 2));
}
