// Figure 7: mean per-decision inference time of the READYS network as a
// function of the number of tasks in the observation window, with 99%
// confidence intervals. States are harvested from rollouts on Cholesky
// DAGs of growing size (the paper reports an average window of ~45 tasks
// and millisecond-scale inference on one CPU core).

#include <chrono>
#include <map>

#include "bench_common.hpp"

using namespace bench;

int main() {
  const Budget budget = Budget::from_env();
  const auto tiles = util::env_int_list("READYS_TILES", {4, 6, 8, 10, 12});
  const int window = util::env_int("READYS_WINDOW", 2);

  rl::AgentConfig cfg = default_agent_config(budget);
  cfg.window = window;
  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg);

  std::printf("=== Figure 7: inference time vs window size (w=%d, hidden=%d,"
              " %d GCN layers) ===\n\n",
              window, cfg.hidden, cfg.gcn_layers);

  // (window size bucket) -> per-decision forward times in microseconds.
  std::map<std::size_t, std::vector<double>> samples;
  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);

  for (int t : tiles) {
    const auto graph = core::make_graph(core::App::kCholesky, t);
    rl::SchedulingEnv env(graph, platform, costs, {0.3, window, 7});
    util::Rng rng(11);
    for (int episode = 0; episode < 3; ++episode) {
      env.reset(static_cast<std::uint64_t>(episode) + 50);
      bool done = env.done();
      while (!done) {
        const auto& obs = env.observation();
        const auto start = std::chrono::steady_clock::now();
        const auto out = net.forward(obs);
        const auto stop = std::chrono::steady_clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(stop - start).count();
        const std::size_t bucket = (obs.window.size() / 10) * 10;
        samples[bucket].push_back(us);
        // Follow the policy so visited states are representative.
        std::size_t a = 0;
        const auto& p = out.probs.value();
        const double u = rng.uniform();
        double acc = 0.0;
        for (std::size_t i = 0; i < p.size(); ++i) {
          acc += p[i];
          if (u < acc) {
            a = i;
            break;
          }
        }
        done = env.step(a).done;
      }
    }
  }

  util::Table table({"window tasks", "decisions", "mean (us)", "ci99 (us)",
                     "p95 (us)"});
  util::CsvWriter csv("fig7.csv",
                      {"window_bucket", "n", "mean_us", "ci99_us", "p95_us"});
  for (const auto& [bucket, xs] : samples) {
    const auto s = util::summarize(xs);
    const double p95 = util::quantile(xs, 0.95);
    const std::string label =
        std::to_string(bucket) + "-" + std::to_string(bucket + 9);
    table.add_row({label, std::to_string(s.count), fmt(s.mean, 1),
                   fmt(s.ci99_half_width, 1), fmt(p95, 1)});
    csv.row({label, std::to_string(s.count), fmt(s.mean, 2),
             fmt(s.ci99_half_width, 2), fmt(p95, 2)});
  }
  table.print();
  std::printf("\nseries written to fig7.csv\n");
  std::printf("expected shape (paper): grows with window size, stays at "
              "millisecond scale or below.\n");
  return 0;
}
