// Figure 7: mean per-decision inference time of the READYS network as a
// function of the number of tasks in the observation window, with 99%
// confidence intervals. States are harvested from rollouts on Cholesky
// DAGs of growing size (the paper reports an average window of ~45 tasks
// and millisecond-scale inference on one CPU core).
//
// Harvesting and timing are split into two phases: rollouts (the slow,
// embarrassingly-parallel part) run on a ThreadPool and only collect
// observations; the forward passes are then timed serially on a single
// quiet thread so pool contention never pollutes the measurement.

#include <chrono>
#include <map>

#include "bench_common.hpp"

using namespace bench;

namespace {

/// One rollout worth of harvested observations.
struct HarvestCell {
  int tiles = 0;
  int episode = 0;
  const dag::TaskGraph* graph = nullptr;
  std::vector<rl::Observation> states;
};

}  // namespace

int main() {
  const Budget budget = Budget::from_env();
  const auto tiles = util::env_int_list("READYS_TILES", {4, 6, 8, 10, 12});
  const int window = util::env_int("READYS_WINDOW", 2);
  const int episodes_per_size = util::env_int("READYS_EVAL_SEEDS", 3);

  BenchRun run("fig7_inference", budget);
  run.manifest.set("window", window);
  run.manifest.set("episodes_per_size", episodes_per_size);

  rl::AgentConfig cfg = default_agent_config(budget);
  cfg.window = window;
  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg);

  std::printf("=== Figure 7: inference time vs window size (w=%d, hidden=%d,"
              " %d GCN layers) ===\n\n",
              window, cfg.hidden, cfg.gcn_layers);

  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);

  // Phase 1: harvest observations from independent rollouts in parallel.
  // Actions are drawn uniformly from the legal set instead of from the
  // net: the net is untrained here, so its stochastic policy is
  // near-uniform anyway, and a forward-free harvest keeps every forward
  // pass inside the timed phase below.
  std::vector<dag::TaskGraph> graphs;
  graphs.reserve(tiles.size());
  for (int t : tiles) graphs.push_back(core::make_graph(core::App::kCholesky, t));

  std::vector<HarvestCell> cells;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    for (int ep = 0; ep < episodes_per_size; ++ep) {
      cells.push_back({tiles[gi], ep, &graphs[gi], {}});
    }
  }
  util::ThreadPool pool;
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    HarvestCell& c = cells[i];
    rl::SchedulingEnv env(*c.graph, platform, costs, {0.3, window, 7});
    util::Rng rng(11 + 7919 * static_cast<std::uint64_t>(i));
    env.reset(static_cast<std::uint64_t>(c.episode) + 50);
    bool done = env.done();
    while (!done) {
      const rl::Observation& obs = env.observation();
      c.states.push_back(obs);
      done = env.step(rng.uniform_index(obs.num_actions())).done;
    }
  });

  // Phase 2: time one forward pass per harvested state, serially.
  // (window size bucket) -> per-decision forward times in microseconds.
  std::map<std::size_t, std::vector<double>> samples;
  for (const HarvestCell& c : cells) {
    for (const rl::Observation& obs : c.states) {
      const auto start = std::chrono::steady_clock::now();
      const auto out = net.forward(obs);
      const auto stop = std::chrono::steady_clock::now();
      (void)out;
      const double us =
          std::chrono::duration<double, std::micro>(stop - start).count();
      const std::size_t bucket = (obs.window.size() / 10) * 10;
      samples[bucket].push_back(us);
    }
  }

  util::Table table({"window tasks", "decisions", "mean (us)", "ci99 (us)",
                     "p95 (us)"});
  util::CsvWriter csv("fig7.csv",
                      {"window_bucket", "n", "mean_us", "ci99_us", "p95_us"});
  for (const auto& [bucket, xs] : samples) {
    const auto s = util::summarize(xs);
    const double p95 = util::quantile(xs, 0.95);
    const std::string label =
        std::to_string(bucket) + "-" + std::to_string(bucket + 9);
    table.add_row({label, std::to_string(s.count), fmt(s.mean, 1),
                   fmt(s.ci99_half_width, 1), fmt(p95, 1)});
    csv.row({label, std::to_string(s.count), fmt(s.mean, 2),
             fmt(s.ci99_half_width, 2), fmt(p95, 2)});
  }
  table.print();
  run.finish("fig7.csv");
  std::printf("\nseries written to fig7.csv\n");
  std::printf("expected shape (paper): grows with window size, stays at "
              "millisecond scale or below.\n");
  return 0;
}
