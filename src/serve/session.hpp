#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/apps.hpp"
#include "rl/env.hpp"
#include "sched/mct.hpp"
#include "sim/fault_model.hpp"
#include "sim/platform.hpp"
#include "util/rng.hpp"

namespace readys::serve {

/// Scheduling priority of a session. Deadline-class sessions dequeue
/// strictly before normal ones, normal before batch; within one class
/// tenants share the service by deficit-weighted round robin (see
/// QosQueue). Numeric order IS priority order — eviction under overload
/// never displaces a higher class for a lower one.
enum class QosClass : int { kDeadline = 0, kNormal = 1, kBatch = 2 };

const char* qos_class_name(QosClass c);

/// What a client submits to the DecisionService: which DAG to schedule
/// and under what conditions. Specs are plain data and survive retries
/// unchanged — only the derived env seed varies per attempt.
struct SessionSpec {
  core::App app = core::App::kCholesky;
  int tiles = 4;
  double sigma = 0.0;           ///< task-duration noise
  std::uint64_t seed = 1;       ///< env + action-sampling stream base
  /// Admission identity for QoS: rate limits, fair dequeue and overload
  /// eviction are all per tenant. Empty is normalized to "default".
  std::string tenant = "default";
  QosClass qos = QosClass::kNormal;
  /// Per-decision deadline budget in microseconds. 0 inherits the
  /// service default; negative disables the deadline for this session
  /// (deterministic tests need timing-independent decisions).
  double deadline_us = 0.0;
  /// Fault injection for this session's engine (none() keeps the
  /// session bit-exact with a fault-free run).
  sim::FaultModel faults = sim::FaultModel::none();
  /// Chaos hook: poison this session's policy probabilities to NaN from
  /// the given decision ordinal on (-1 = never). Models a policy going
  /// non-finite mid-stream; the service must quarantine the session.
  int chaos_nan_after = -1;
};

/// Terminal disposition of a session.
enum class SessionState {
  kCompleted,    ///< DAG finished; makespan is valid
  kQuarantined,  ///< isolated after a permanent fault (reason in error)
  kAborted,      ///< retired by abort_shutdown with a partial trace
  kShed,         ///< never admitted (reason in error)
};

const char* session_state_name(SessionState s);

/// What the service hands back for one retired session.
struct SessionResult {
  std::uint64_t id = 0;
  SessionState state = SessionState::kShed;
  std::string tenant;  ///< admission identity (normalized spec.tenant)
  std::string error;  ///< shed/quarantine/abort reason ("" for completed)
  double makespan = 0.0;
  double heft_reference = 0.0;
  std::size_t decisions = 0;
  std::size_t timeouts = 0;   ///< decisions that blew the deadline budget
  std::size_t fallbacks = 0;  ///< decisions answered by one-shot MCT
  int attempts = 1;           ///< 1 + transient-fault retries
  /// Decision trace (action indices), recorded when
  /// ServiceConfig::record_actions is set — the chaos isolation test
  /// compares these bit-for-bit.
  std::vector<std::uint32_t> actions;
  /// Per-decision latency in µs, recorded when record_latencies is set.
  std::vector<double> decide_us;
  /// PolicyStore snapshot version each decision executed against,
  /// recorded when record_actions is set. The reload chaos suite pins
  /// that this is monotone per session and that every entry names a
  /// published version — i.e. no decision ever saw a torn swap.
  std::vector<std::uint64_t> weight_versions;
};

/// One live DAG session inside the service: the env, the graph it
/// observes (owned here — SimEngine and StateEncoder keep raw pointers
/// into it, so the address must be stable for the session's lifetime),
/// an MCT scratch scheduler for deadline degrades, and the per-session
/// action stream. Non-movable for the same pointer-stability reason;
/// the service holds sessions by unique_ptr.
class Session {
 public:
  /// `attempt` counts retries (0 = first run): the env seed is derived
  /// from (spec.seed, attempt) so a transient-fault resubmission replays
  /// under a fresh fault/noise stream while staying deterministic.
  /// `incremental_encoding` selects the IncrementalEncoder for this
  /// session's env (bit-identical observations; the long-lived serving
  /// path wants the amortized encode).
  Session(std::uint64_t id, SessionSpec spec, const sim::Platform& platform,
          std::shared_ptr<const dag::TaskGraph> graph, int window,
          int attempt = 0, bool incremental_encoding = false);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::uint64_t id() const noexcept { return id_; }
  const SessionSpec& spec() const noexcept { return spec_; }
  int attempt() const noexcept { return attempt_; }
  std::shared_ptr<const dag::TaskGraph> graph() const noexcept {
    return graph_;
  }

  rl::SchedulingEnv& env() noexcept { return env_; }
  const rl::Observation& observation() const noexcept {
    return env_.observation();
  }
  bool done() const noexcept { return env_.done(); }

  /// Per-session action-sampling stream (independent of every other
  /// session, so batch composition cannot perturb this session's draws).
  util::Rng& action_rng() noexcept { return action_rng_; }

  /// True when this session's policy output must be poisoned at the
  /// given decision ordinal (chaos_nan_after hook).
  bool poison_at(std::size_t decision) const noexcept {
    return spec_.chaos_nan_after >= 0 &&
           decision >= static_cast<std::size_t>(spec_.chaos_nan_after);
  }

  /// One-shot MCT degrade: answers the current decision instant from
  /// sched::one_shot_mct over the live engine state, mapped into the
  /// observation's action space. Falls back to ∅ (when legal) or the
  /// cheapest ready task on the offered resource when MCT binds nothing
  /// to the current processor.
  std::size_t mct_action();

  /// Accumulating result record; the service fills state/error on
  /// retirement.
  SessionResult& result() noexcept { return result_; }

 private:
  std::uint64_t id_;
  SessionSpec spec_;
  int attempt_;
  std::shared_ptr<const dag::TaskGraph> graph_;
  rl::SchedulingEnv env_;
  sched::MctScheduler mct_scratch_;
  util::Rng action_rng_;
  SessionResult result_;
};

}  // namespace readys::serve
