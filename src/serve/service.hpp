#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rl/config.hpp"
#include "rl/inference.hpp"
#include "rl/policy_net.hpp"
#include "serve/policy_store.hpp"
#include "serve/qos_queue.hpp"
#include "serve/session.hpp"
#include "serve/supervisor.hpp"
#include "sim/platform.hpp"

namespace readys::serve {

/// Service-wide knobs. Defaults serve a deterministic, single-worker
/// configuration; the bench and tests override what they exercise.
struct ServiceConfig {
  /// Platform every session runs on.
  int cpus = 2;
  int gpus = 2;
  /// Admission queue capacity. A full queue sheds — the most-backlogged
  /// tenant's newest entry when a noisy neighbor is hogging the queue,
  /// otherwise the incoming submission (see QosQueue::evict_for).
  std::size_t queue_capacity = 64;
  /// Sessions a worker multiplexes per decision round — the width of
  /// the block-diagonal forward_batched pass.
  std::size_t max_active = 8;
  /// Inference worker threads. 0 switches to manual pump mode: no
  /// threads start and the caller drives rounds via pump() — the
  /// deterministic harness the chaos tests build on.
  int workers = 1;
  /// Default per-decision deadline budget in microseconds for sessions
  /// that inherit it (spec.deadline_us == 0). Negative disables the
  /// deadline; 0 is a literal zero budget — every decision degrades to
  /// a one-shot MCT answer, deterministically, without consulting the
  /// clock; positive budgets degrade only decisions whose batched
  /// forward blew them (counted in serve.deadline_timeouts +
  /// serve.fallback_decisions).
  double deadline_us = -1.0;
  /// Transient-fault retries per session (exponential backoff). Faults
  /// classified transient: the env throwing (platform unrecoverable /
  /// stalled). Policy faults (thrown forward, non-finite probabilities)
  /// are permanent — a policy that went NaN will not come back.
  int max_retries = 0;
  /// Base backoff before the first retry, doubling per attempt.
  double retry_backoff_ms = 1.0;
  /// Runaway guard: a session exceeding this many decisions is
  /// quarantined (a cycle-free DAG decides O(tasks) times; anything
  /// wildly beyond that is a livelocked env).
  std::size_t max_session_decisions = 1u << 20;
  /// Watchdog sampling period (ms); 0 disables stall detection (the
  /// supervisor thread still runs whenever workers do — it also owns
  /// worker restarts).
  double watchdog_period_ms = 0.0;
  /// A busy worker whose heartbeat has not advanced for this long is
  /// flagged stalled (logged + stalled() latches true).
  double watchdog_stall_ms = 5000.0;
  /// Record per-session action traces / per-decision latencies /
  /// per-decision weight versions into the SessionResult (tests and the
  /// bench want them; high-rate serving would not).
  bool record_actions = false;
  bool record_latencies = false;
  /// Greedy argmax decisions (serving default). False samples from the
  /// policy with the per-session stream.
  bool greedy = true;
  /// Inference arithmetic for every worker's backend: kF64Ref reproduces
  /// PolicyNet::forward bit-for-bit; kF32Simd runs the float32 SIMD fast
  /// path over the published snapshot — shared by every worker, frozen
  /// per version (argmax agreement pinned by tests, not bit-exact).
  rl::InferenceBackendKind inference_backend =
      rl::InferenceBackendKind::kF64Ref;
  /// Maintain session observations incrementally between decisions
  /// (bit-identical by contract; on by default — long-lived sessions are
  /// exactly the case the amortized encode pays for).
  bool incremental_encoding = true;
  /// QoS policy for tenants without an explicit entry in `tenants`.
  TenantPolicy default_tenant{};
  /// Per-tenant QoS overrides, keyed by SessionSpec::tenant.
  std::map<std::string, TenantPolicy> tenants;
  /// Hot-reload validation gate (probe platform inherits cpus/gpus when
  /// left at 0).
  PolicyStoreConfig reload{};
  /// Worker restart/escalation policy.
  SupervisorConfig supervise{};
  /// Chaos hook, testing only: invoked at the top of every worker round
  /// (slot, per-slot round ordinal); throwing simulates a SIGKILL-style
  /// worker death mid-service — the batch is retired, the worker thread
  /// exits, and the supervisor takes over. Never called in pump mode.
  std::function<void(std::size_t, std::uint64_t)> chaos_round_hook;
};

/// A long-lived, multi-tenant decision service: admits SessionSpecs into
/// a bounded QoS queue (priority classes, per-tenant token buckets,
/// deficit-weighted fair dequeue), multiplexes up to max_active sessions
/// per worker through one block-diagonal forward_batched pass per
/// decision round, and survives sessions, tenants, weights and workers
/// misbehaving.
///
/// Robustness contract:
///  - Admission is bounded and fair: a full queue sheds the abusive
///    tenant first; a rate-limited tenant sheds at submit ("rate
///    limited") without touching anyone else's lane; deadline-class
///    sessions dequeue before normal before batch.
///  - A session whose policy throws or emits non-finite probabilities is
///    quarantined; because forward_batched matches per-observation
///    forward bit-for-bit, the surviving sessions' decision streams are
///    unchanged by the removal (pinned by tests/chaos).
///  - A session whose *environment* faults (platform unrecoverable) is
///    retried with exponential backoff up to max_retries, then
///    quarantined.
///  - A decision that blows its deadline budget degrades to a one-shot
///    MCT answer (sched::one_shot_mct) instead of stalling the batch.
///  - Weights hot-reload through a validated, versioned PolicyStore;
///    workers adopt a snapshot at round boundaries, so every decision
///    executes against exactly one published version and a rejected
///    candidate rolls back to last-good with zero shed sessions.
///  - A worker that dies mid-round retires only its own batch; the
///    supervisor restarts it with exponential backoff and escalates to
///    service-wide degraded mode (one-shot MCT every round) past the
///    restart budget — the service keeps answering.
///  - drain()/shutdown() complete in-flight sessions; abort_shutdown()
///    retires them deterministically at a round boundary with their
///    partial traces recorded.
class DecisionService {
 public:
  /// Outcome of submit(): either an id to look up later, or a shed
  /// reason ("queue full", "draining", "stopped", "rate limited").
  struct Admission {
    bool admitted = false;
    std::uint64_t id = 0;
    std::string reason;
  };

  /// Monotone service-wide counters (mirrored into the serve.* metrics
  /// when telemetry is installed; kept here so tests and the bench do
  /// not depend on the obs layer being live).
  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t aborted = 0;
    std::uint64_t retries = 0;
    std::uint64_t decisions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t reloads = 0;          ///< weight versions published
    std::uint64_t reload_rejects = 0;   ///< candidates rolled back
    std::uint64_t worker_restarts = 0;  ///< supervisor restarts executed
    std::uint64_t tenant_shed = 0;      ///< rate-limit + eviction sheds
  };

  /// Per-tenant slice of the admission/retirement accounting, keyed by
  /// the normalized tenant name (the noisy-neighbor bench reads this).
  struct TenantCounters {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;  ///< rate-limited, evicted, or queue-full
    std::uint64_t completed = 0;
  };

  /// The service serves `net`'s weights via a versioned PolicyStore
  /// snapshot (architecture rebuilt from `agent`), so the caller's net
  /// is never touched after construction and workers never share mutable
  /// tensors. `agent.window` also sizes every session's encoder.
  DecisionService(const rl::PolicyNet& net, const rl::AgentConfig& agent,
                  ServiceConfig cfg);

  /// Aborts any in-flight work (abort_shutdown) and joins the threads.
  ~DecisionService();

  DecisionService(const DecisionService&) = delete;
  DecisionService& operator=(const DecisionService&) = delete;

  /// Non-blocking admission. Shedding is a normal outcome, not an
  /// exception: the caller reads `reason` and backs off.
  Admission submit(const SessionSpec& spec);

  /// Manual pump mode (workers == 0): runs one decision round on the
  /// calling thread and returns the number of sessions stepped (0 when
  /// nothing is runnable). Throws std::logic_error when worker threads
  /// are running — exactly one driver may step sessions.
  std::size_t pump();

  /// Validates + publishes new weights for subsequent decision rounds
  /// (workers adopt at their next round boundary). Rejected while
  /// draining — a service on its way down must not change what it
  /// serves. `force` republishes bit-identical weights as a new version
  /// (reload-storm chaos) instead of reporting kNoOp.
  ReloadResult reload(const rl::PolicyNet& candidate, bool force = false);
  /// Same gate, candidate read from a readys-ckpt/2 file (CRC-checked;
  /// v1 rejected). This is what --reload-watch and SIGHUP drive.
  ReloadResult reload_from_file(const std::string& path, bool force = false);

  /// Stops admission (further submits shed with "draining"); queued and
  /// active sessions still run to completion.
  void drain();

  /// drain() + blocks until every admitted session retired, then stops
  /// the workers. In pump mode the caller must keep pump()ing until
  /// idle() before shutdown() returns meaningfully (it will not pump on
  /// the caller's behalf).
  void shutdown();

  /// Deterministic checkpoint-and-abort: stops the workers at the next
  /// decision-round boundary and retires every queued and active session
  /// as kAborted with its partial action trace recorded.
  void abort_shutdown();

  /// Blocks until no admitted session remains queued or active. Only
  /// meaningful with worker threads (pump mode would deadlock; use
  /// idle() in the pump loop instead).
  void wait_idle();

  bool idle() const;
  std::size_t queue_depth() const;
  std::size_t active_count() const;
  bool draining() const;
  /// Latched true when the watchdog saw a busy worker make no progress
  /// for watchdog_stall_ms.
  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }
  /// Latched true once the supervisor escalated past the restart budget:
  /// every round degrades to one-shot MCT until the service restarts.
  bool degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  Counters counters() const;
  std::map<std::string, TenantCounters> tenant_counters() const;

  /// Snapshot of every retired session so far, ascending id.
  std::vector<SessionResult> results() const;

  const ServiceConfig& config() const noexcept { return cfg_; }
  const sim::Platform& platform() const noexcept { return platform_; }
  PolicyStore& policy_store() noexcept { return *store_; }
  std::uint64_t active_weight_version() const {
    return store_->active_version();
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// One worker's view of the policy: the snapshot it adopted at the
  /// last round boundary plus the backend built over it. For kF64Ref the
  /// slot keeps a private replica (PolicyNet forwards are not
  /// thread-safe to share); for kF32Simd the backend shares the
  /// snapshot's frozen f32 weights — one snapshot per version, fleet
  /// wide. Slot 0 doubles as the pump-mode slot.
  struct WorkerPolicy {
    std::uint64_t version = 0;
    std::shared_ptr<const PolicyStore::Snapshot> snap;
    std::unique_ptr<rl::PolicyNet> replica;
    std::unique_ptr<rl::InferenceBackend> backend;
  };

  /// Builds a session for (spec, attempt), reusing the graph cache.
  std::unique_ptr<Session> build_session(std::uint64_t id,
                                         const SessionSpec& spec,
                                         int attempt);

  /// Re-syncs a slot with the store's current snapshot (no-op when the
  /// version is unchanged — the common case costs one mutexed pointer
  /// read per round).
  void adopt_policy(WorkerPolicy& wp);

  /// One decision round over `batch` using `wp`'s backend (one per
  /// worker, never shared): top-up happens in the caller. Retired
  /// sessions leave `batch`; the return value is the number of sessions
  /// stepped.
  std::size_t run_round(std::vector<std::unique_ptr<Session>>& batch,
                        WorkerPolicy& wp);

  /// Pulls due queue entries into `batch` up to max_active. Returns the
  /// earliest not_before among entries left behind (Clock::time_point::max()
  /// when none are waiting on backoff).
  Clock::time_point top_up(std::vector<std::unique_ptr<Session>>& batch);

  /// `was_active` distinguishes sessions retired out of a worker batch
  /// (decrement active_) from queued-only ones (evictions, abort sweep).
  void retire(std::unique_ptr<Session> session, SessionState state,
              std::string error, bool was_active = true);
  /// Transient-fault path: re-enqueue with backoff or quarantine when
  /// retries are exhausted / the queue is full.
  void retry_or_quarantine(std::unique_ptr<Session> session,
                           const std::string& why);

  const TenantPolicy& policy_for(const std::string& tenant) const;

  void worker_loop(std::size_t slot);
  void spawn_worker(std::size_t slot);  ///< caller holds mutex_
  void supervisor_loop();
  void update_gauges() const;

  ServiceConfig cfg_;
  rl::AgentConfig agent_;
  sim::Platform platform_;
  /// Graph cache: sessions on the same (app, tiles) share one immutable
  /// TaskGraph (SimEngine/StateEncoder hold pointers into it).
  std::map<std::pair<int, int>, std::shared_ptr<const dag::TaskGraph>>
      graphs_;
  std::mutex graphs_mutex_;

  /// Versioned weight snapshots; reload() publishes here, workers adopt
  /// per round.
  std::unique_ptr<PolicyStore> store_;
  /// Per-slot adopted policy (size max(1, workers); slot 0 serves pump
  /// mode). Each slot is touched only by its own worker thread / the
  /// pump caller — never shared.
  std::vector<WorkerPolicy> slots_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for runnable work
  std::condition_variable idle_cv_;   ///< wait_idle / shutdown wait here
  // The supervisor gets its own cv: if it shared work_cv_, a notify_one
  // meant for a worker could wake the supervisor instead and be
  // swallowed by its timed re-wait — a lost wakeup that strands queued
  // sessions.
  std::condition_variable watchdog_cv_;
  QosQueue queue_;
  /// Token buckets, keyed by normalized tenant (only tenants with a
  /// rate limit get one).
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point last{};
    bool primed = false;
  };
  std::map<std::string, Bucket> buckets_;
  std::map<std::string, TenantCounters> tenant_counters_;
  std::vector<SessionResult> retired_;
  std::uint64_t next_id_ = 1;
  std::size_t in_flight_ = 0;  ///< queued + active (in some worker batch)
  std::size_t active_ = 0;     ///< sessions currently in worker batches
  bool draining_ = false;
  bool stop_ = false;  ///< abort: workers retire their batches and exit

  std::atomic<bool> stalled_{false};
  std::atomic<bool> degraded_{false};
  Counters counters_;

  std::vector<std::thread> workers_;
  std::thread supervisor_;
  WorkerSupervisor sup_;
  /// Per-slot death flag + scheduled restart time (mutex_-guarded).
  std::vector<char> dead_;
  std::vector<Clock::time_point> restart_at_;
  /// Per-worker progress heartbeat + busy flag for the watchdog.
  struct WorkerBeat {
    std::atomic<std::uint64_t> beat{0};
    std::atomic<bool> busy{false};
  };
  std::vector<std::unique_ptr<WorkerBeat>> beats_;
};

}  // namespace readys::serve
