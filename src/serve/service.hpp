#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rl/config.hpp"
#include "rl/inference.hpp"
#include "rl/policy_net.hpp"
#include "serve/session.hpp"
#include "sim/platform.hpp"

namespace readys::serve {

/// Service-wide knobs. Defaults serve a deterministic, single-worker
/// configuration; the bench and tests override what they exercise.
struct ServiceConfig {
  /// Platform every session runs on.
  int cpus = 2;
  int gpus = 2;
  /// Admission queue capacity; a full queue sheds (never grows).
  std::size_t queue_capacity = 64;
  /// Sessions a worker multiplexes per decision round — the width of
  /// the block-diagonal forward_batched pass.
  std::size_t max_active = 8;
  /// Inference worker threads. 0 switches to manual pump mode: no
  /// threads start and the caller drives rounds via pump() — the
  /// deterministic harness the chaos tests build on.
  int workers = 1;
  /// Default per-decision deadline budget in microseconds; 0 disables.
  /// A decision whose batched forward blew the budget degrades to a
  /// one-shot MCT answer instead of stalling the round (counted in
  /// serve.deadline_timeouts + serve.fallback_decisions).
  double deadline_us = 0.0;
  /// Transient-fault retries per session (exponential backoff). Faults
  /// classified transient: the env throwing (platform unrecoverable /
  /// stalled). Policy faults (thrown forward, non-finite probabilities)
  /// are permanent — a policy that went NaN will not come back.
  int max_retries = 0;
  /// Base backoff before the first retry, doubling per attempt.
  double retry_backoff_ms = 1.0;
  /// Runaway guard: a session exceeding this many decisions is
  /// quarantined (a cycle-free DAG decides O(tasks) times; anything
  /// wildly beyond that is a livelocked env).
  std::size_t max_session_decisions = 1u << 20;
  /// Watchdog sampling period (ms); 0 disables the watchdog thread.
  double watchdog_period_ms = 0.0;
  /// A busy worker whose heartbeat has not advanced for this long is
  /// flagged stalled (logged + stalled() latches true).
  double watchdog_stall_ms = 5000.0;
  /// Record per-session action traces / per-decision latencies into the
  /// SessionResult (tests and the bench want them; high-rate serving
  /// would not).
  bool record_actions = false;
  bool record_latencies = false;
  /// Greedy argmax decisions (serving default). False samples from the
  /// policy with the per-session stream.
  bool greedy = true;
  /// Inference arithmetic for every worker's backend: kF64Ref reproduces
  /// PolicyNet::forward bit-for-bit; kF32Simd runs the float32 SIMD fast
  /// path over a frozen weight snapshot (argmax agreement pinned by
  /// tests, not bit-exact).
  rl::InferenceBackendKind inference_backend =
      rl::InferenceBackendKind::kF64Ref;
  /// Maintain session observations incrementally between decisions
  /// (bit-identical by contract; on by default — long-lived sessions are
  /// exactly the case the amortized encode pays for).
  bool incremental_encoding = true;
};

/// A long-lived, multi-tenant decision service: admits SessionSpecs into
/// a bounded queue, multiplexes up to max_active sessions per worker
/// through one block-diagonal forward_batched pass per decision round,
/// and survives individual sessions misbehaving.
///
/// Robustness contract:
///  - Admission is bounded: a full queue (or a draining service) sheds
///    the submission with an explicit reason; nothing grows unbounded.
///  - A session whose policy throws or emits non-finite probabilities is
///    quarantined; because forward_batched matches per-observation
///    forward bit-for-bit, the surviving sessions' decision streams are
///    unchanged by the removal (pinned by tests/chaos).
///  - A session whose *environment* faults (platform unrecoverable) is
///    retried with exponential backoff up to max_retries, then
///    quarantined.
///  - A decision that blows its deadline budget degrades to a one-shot
///    MCT answer (sched::one_shot_mct) instead of stalling the batch.
///  - drain()/shutdown() complete in-flight sessions; abort_shutdown()
///    retires them deterministically at a round boundary with their
///    partial traces recorded.
class DecisionService {
 public:
  /// Outcome of submit(): either an id to look up later, or a shed
  /// reason ("queue full", "draining", "stopped").
  struct Admission {
    bool admitted = false;
    std::uint64_t id = 0;
    std::string reason;
  };

  /// Monotone service-wide counters (mirrored into the serve.* metrics
  /// when telemetry is installed; kept here so tests and the bench do
  /// not depend on the obs layer being live).
  struct Counters {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t aborted = 0;
    std::uint64_t retries = 0;
    std::uint64_t decisions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fallbacks = 0;
  };

  /// The service forwards through per-worker replicas of `net` (copied
  /// weights, architecture rebuilt from `agent`), so the caller's net is
  /// never touched after construction and workers never share mutable
  /// tensors. `agent.window` also sizes every session's encoder.
  DecisionService(const rl::PolicyNet& net, const rl::AgentConfig& agent,
                  ServiceConfig cfg);

  /// Aborts any in-flight work (abort_shutdown) and joins the threads.
  ~DecisionService();

  DecisionService(const DecisionService&) = delete;
  DecisionService& operator=(const DecisionService&) = delete;

  /// Non-blocking admission. Shedding is a normal outcome, not an
  /// exception: the caller reads `reason` and backs off.
  Admission submit(const SessionSpec& spec);

  /// Manual pump mode (workers == 0): runs one decision round on the
  /// calling thread and returns the number of sessions stepped (0 when
  /// nothing is runnable). Throws std::logic_error when worker threads
  /// are running — exactly one driver may step sessions.
  std::size_t pump();

  /// Stops admission (further submits shed with "draining"); queued and
  /// active sessions still run to completion.
  void drain();

  /// drain() + blocks until every admitted session retired, then stops
  /// the workers. In pump mode the caller must keep pump()ing until
  /// idle() before shutdown() returns meaningfully (it will not pump on
  /// the caller's behalf).
  void shutdown();

  /// Deterministic checkpoint-and-abort: stops the workers at the next
  /// decision-round boundary and retires every queued and active session
  /// as kAborted with its partial action trace recorded.
  void abort_shutdown();

  /// Blocks until no admitted session remains queued or active. Only
  /// meaningful with worker threads (pump mode would deadlock; use
  /// idle() in the pump loop instead).
  void wait_idle();

  bool idle() const;
  std::size_t queue_depth() const;
  std::size_t active_count() const;
  bool draining() const;
  /// Latched true when the watchdog saw a busy worker make no progress
  /// for watchdog_stall_ms.
  bool stalled() const noexcept {
    return stalled_.load(std::memory_order_relaxed);
  }

  Counters counters() const;

  /// Snapshot of every retired session so far, ascending id.
  std::vector<SessionResult> results() const;

  const ServiceConfig& config() const noexcept { return cfg_; }
  const sim::Platform& platform() const noexcept { return platform_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued session: either fresh from submit() or a backoff retry
  /// (not_before in the future).
  struct Pending {
    std::unique_ptr<Session> session;
    Clock::time_point not_before{};
  };

  /// Builds a session for (spec, attempt), reusing the graph cache.
  std::unique_ptr<Session> build_session(std::uint64_t id,
                                         const SessionSpec& spec,
                                         int attempt);

  /// One decision round over `batch` using `backend` (one per worker,
  /// never shared): top-up happens in the caller. Retired sessions leave
  /// `batch`; the return value is the number of sessions stepped.
  std::size_t run_round(std::vector<std::unique_ptr<Session>>& batch,
                        rl::InferenceBackend& backend);

  /// Pulls due queue entries into `batch` up to max_active. Returns the
  /// earliest not_before among entries left behind (Clock::time_point::max()
  /// when none are waiting on backoff).
  Clock::time_point top_up(std::vector<std::unique_ptr<Session>>& batch);

  void retire(std::unique_ptr<Session> session, SessionState state,
              std::string error);
  /// Transient-fault path: re-enqueue with backoff or quarantine when
  /// retries are exhausted / the queue is full.
  void retry_or_quarantine(std::unique_ptr<Session> session,
                           const std::string& why);

  void worker_loop(std::size_t slot);
  void watchdog_loop();
  void update_gauges() const;

  ServiceConfig cfg_;
  rl::AgentConfig agent_;
  sim::Platform platform_;
  /// Graph cache: sessions on the same (app, tiles) share one immutable
  /// TaskGraph (SimEngine/StateEncoder hold pointers into it).
  std::map<std::pair<int, int>, std::shared_ptr<const dag::TaskGraph>>
      graphs_;
  std::mutex graphs_mutex_;

  /// Per-worker policy replicas (slot 0 doubles as the pump-mode net).
  /// Kept alive for the backends below: a kF64Ref backend reads its
  /// replica's weights live.
  std::vector<std::unique_ptr<rl::PolicyNet>> replicas_;
  /// Per-worker inference backends over the replicas (same slots; not
  /// thread-safe, each used by exactly one worker / the pump caller).
  std::vector<std::unique_ptr<rl::InferenceBackend>> backends_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for runnable work
  std::condition_variable idle_cv_;   ///< wait_idle / shutdown wait here
  // The watchdog gets its own cv: if it shared work_cv_, a notify_one
  // meant for a worker could wake the watchdog instead and be swallowed
  // by its timed re-wait — a lost wakeup that strands queued sessions.
  std::condition_variable watchdog_cv_;
  std::deque<Pending> queue_;
  std::vector<SessionResult> retired_;
  std::uint64_t next_id_ = 1;
  std::size_t in_flight_ = 0;  ///< queued + active (in some worker batch)
  std::size_t active_ = 0;     ///< sessions currently in worker batches
  bool draining_ = false;
  bool stop_ = false;  ///< abort: workers retire their batches and exit

  std::atomic<bool> stalled_{false};
  Counters counters_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  /// Per-worker progress heartbeat + busy flag for the watchdog.
  struct WorkerBeat {
    std::atomic<std::uint64_t> beat{0};
    std::atomic<bool> busy{false};
  };
  std::vector<std::unique_ptr<WorkerBeat>> beats_;
};

}  // namespace readys::serve
