#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace readys::serve {

/// Worker-restart policy knobs.
struct SupervisorConfig {
  /// Worker deaths tolerated before the service escalates to degraded
  /// mode (one-shot MCT for every round). Restarts continue past the
  /// budget — degraded rounds cannot crash on the policy, so serving
  /// never stops, it just stops trusting the policy.
  int restart_budget = 3;
  /// Base delay before restarting a dead worker; doubles per death of
  /// that slot (exponential backoff), capped at max_backoff_ms.
  double backoff_ms = 5.0;
  double max_backoff_ms = 1000.0;
};

/// Pure decision logic for worker supervision: given "slot S died at T",
/// answers when to restart it and whether the service should degrade.
/// Deliberately free of threads and locks so the policy is unit-testable
/// without a live service; DecisionService drives it from the
/// supervisor thread under its own mutex.
class WorkerSupervisor {
 public:
  using Clock = std::chrono::steady_clock;

  WorkerSupervisor(SupervisorConfig cfg, std::size_t slots)
      : cfg_(cfg), deaths_(slots, 0) {}

  /// Records a death of `slot` and returns the time to restart it:
  /// now + backoff_ms * 2^(prior deaths of the slot), capped.
  Clock::time_point on_death(std::size_t slot, Clock::time_point now) {
    const std::uint64_t prior = deaths_[slot]++;
    ++total_deaths_;
    double delay = cfg_.backoff_ms;
    for (std::uint64_t i = 0; i < prior && delay < cfg_.max_backoff_ms; ++i) {
      delay *= 2.0;
    }
    delay = std::min(delay, cfg_.max_backoff_ms);
    return now + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(delay));
  }

  /// True once deaths exceed the budget: the policy (or something it
  /// touches) is systematically killing workers.
  bool should_degrade() const noexcept {
    return total_deaths_ > static_cast<std::uint64_t>(
                               std::max(0, cfg_.restart_budget));
  }

  void on_restart() noexcept { ++restarts_; }

  std::uint64_t deaths(std::size_t slot) const { return deaths_[slot]; }
  std::uint64_t total_deaths() const noexcept { return total_deaths_; }
  std::uint64_t restarts() const noexcept { return restarts_; }

 private:
  SupervisorConfig cfg_;
  std::vector<std::uint64_t> deaths_;
  std::uint64_t total_deaths_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace readys::serve
