#include "serve/session.hpp"

#include <limits>

#include "sched/guarded.hpp"

namespace readys::serve {

namespace {

rl::SchedulingEnv::Config env_config(const SessionSpec& spec, int window,
                                     int attempt, bool incremental) {
  rl::SchedulingEnv::Config cfg;
  cfg.sigma = spec.sigma;
  cfg.window = window;
  // A retry replays the same DAG under a perturbed seed: the fault and
  // noise streams that killed attempt N are re-drawn, which is exactly
  // the "resubmit the job" semantics of a transient cluster fault. The
  // odd multiplier keeps the perturbation bijective over u64.
  cfg.seed = spec.seed + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(
                                                     attempt);
  cfg.faults = spec.faults;
  cfg.incremental_encoding = incremental;
  return cfg;
}

}  // namespace

const char* qos_class_name(QosClass c) {
  switch (c) {
    case QosClass::kDeadline:
      return "deadline";
    case QosClass::kNormal:
      return "normal";
    case QosClass::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* session_state_name(SessionState s) {
  switch (s) {
    case SessionState::kCompleted:
      return "completed";
    case SessionState::kQuarantined:
      return "quarantined";
    case SessionState::kAborted:
      return "aborted";
    case SessionState::kShed:
      return "shed";
  }
  return "unknown";
}

Session::Session(std::uint64_t id, SessionSpec spec,
                 const sim::Platform& platform,
                 std::shared_ptr<const dag::TaskGraph> graph, int window,
                 int attempt, bool incremental_encoding)
    : id_(id),
      spec_(spec),
      attempt_(attempt),
      graph_(std::move(graph)),
      env_(*graph_, platform, core::make_costs(spec.app),
           env_config(spec, window, attempt, incremental_encoding)),
      // The action stream derives from the spec seed, not the attempt:
      // sampling-mode decisions replay identically when the env state
      // does, and stay independent of every other session either way.
      action_rng_(spec.seed ^ 0x5E27E5E55104A7ULL) {
  env_.reset();
  result_.id = id_;
  result_.tenant = spec_.tenant;
  result_.heft_reference = env_.heft_reference();
  result_.attempts = attempt_ + 1;
}

std::size_t Session::mct_action() {
  const rl::Observation& obs = env_.observation();
  const auto batch = sched::one_shot_mct(mct_scratch_, env_.engine());
  for (const sim::Assignment& a : batch) {
    if (a.resource != obs.current_resource) continue;
    for (std::size_t i = 0; i < obs.ready_tasks.size(); ++i) {
      if (obs.ready_tasks[i] == a.task) return i;
    }
  }
  // MCT bound nothing to the offered processor (it preferred others):
  // decline if that is legal, otherwise take the cheapest ready task
  // here — the engine requires some action for the current resource.
  if (obs.allow_idle) return obs.idle_action();
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < obs.ready_tasks.size(); ++i) {
    const double d =
        env_.engine().expected_duration(obs.ready_tasks[i],
                                        obs.current_resource);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace readys::serve
