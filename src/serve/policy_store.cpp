#include "serve/policy_store.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "rl/checkpoint.hpp"
#include "rl/env.hpp"
#include "sched/mct.hpp"
#include "sim/simulator.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"

namespace readys::serve {

namespace {

constexpr const char* kV1Magic = "readys-checkpoint v1";

std::size_t argmax(const std::vector<double>& p) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (p[i] > p[best]) best = i;
  }
  return best;
}

}  // namespace

const char* reload_status_name(ReloadStatus s) {
  switch (s) {
    case ReloadStatus::kPublished:
      return "published";
    case ReloadStatus::kNoOp:
      return "no-op";
    case ReloadStatus::kRejected:
      return "rejected";
  }
  return "unknown";
}

PolicyStore::PolicyStore(const rl::PolicyNet& initial, rl::AgentConfig agent,
                         PolicyStoreConfig cfg)
    : agent_(std::move(agent)),
      cfg_(cfg),
      node_features_(initial.node_features()),
      resource_features_(initial.resource_features()),
      probe_platform_(sim::Platform::hybrid(
          std::max(1, cfg.probe_cpus > 0 ? cfg.probe_cpus : 2),
          std::max(0, cfg.probe_cpus > 0 ? cfg.probe_gpus : 2))) {
  cfg_.probe_tiles = std::max(1, cfg_.probe_tiles);
  probe_graph_ = std::make_shared<const dag::TaskGraph>(
      core::make_graph(cfg_.probe_app, cfg_.probe_tiles));
  // Golden sanity bound: the deterministic one-shot-MCT makespan on the
  // probe instance. Any candidate whose greedy makespan lands beyond
  // max_makespan_factor of this is worse than the zero-learning
  // heuristic by an order of magnitude — not a policy to swap in live.
  sched::MctScheduler mct;
  golden_mct_makespan_ = sim::simulate_makespan(
      *probe_graph_, probe_platform_, core::make_costs(cfg_.probe_app), mct,
      /*sigma=*/0.0, cfg_.probe_seed);

  // Version 1: the construction weights, published unvalidated (they are
  // the only weights there are — rejecting them would leave nothing).
  std::unique_ptr<rl::PolicyNet> net = clone_arch();
  net->copy_parameters_from(initial);
  auto snap = std::make_shared<Snapshot>();
  snap->version = 1;
  snap->params_crc = util::crc32(nn::serialize_parameters(*net));
  snap->f32 = std::make_shared<const rl::InferenceWeights>(
      rl::InferenceWeights::snapshot(*net));
  snap->net = std::shared_ptr<const rl::PolicyNet>(std::move(net));
  current_ = std::move(snap);
  if (obs::Telemetry* t = obs::telemetry()) {
    t->serve_active_weight_version.set(1.0);
  }
}

std::unique_ptr<rl::PolicyNet> PolicyStore::clone_arch() const {
  return std::make_unique<rl::PolicyNet>(node_features_, resource_features_,
                                         agent_);
}

std::shared_ptr<const PolicyStore::Snapshot> PolicyStore::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t PolicyStore::active_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_->version;
}

std::string PolicyStore::validate_candidate(
    const rl::PolicyNet& candidate) const {
  // Shadow evaluation on the pinned probe: a greedy episode, every
  // decision vetted for finiteness, bounded in length, and the final
  // makespan held against the golden MCT bound. Deterministic — same
  // candidate, same verdict.
  try {
    rl::SchedulingEnv::Config ec;
    ec.sigma = 0.0;
    ec.window = agent_.window;
    ec.seed = cfg_.probe_seed;
    rl::SchedulingEnv env(*probe_graph_, probe_platform_,
                          core::make_costs(cfg_.probe_app), ec);
    env.reset();
    std::unique_ptr<rl::InferenceBackend> backend =
        candidate.make_inference(rl::InferenceBackendKind::kF64Ref);
    rl::InferenceOutput out;
    const std::size_t cap = 16 * probe_graph_->num_tasks() + 64;
    std::size_t decisions = 0;
    bool done = false;
    while (!done) {
      if (++decisions > cap) {
        return "probe episode exceeded " + std::to_string(cap) +
               " decisions (policy livelocks the probe DAG)";
      }
      const rl::Observation& obs = env.observation();
      backend->forward(obs, out);
      if (!std::isfinite(out.value)) {
        return "non-finite value estimate on probe decision " +
               std::to_string(decisions);
      }
      for (std::size_t i = 0; i < obs.num_actions(); ++i) {
        if (!std::isfinite(out.probs[i]) || !std::isfinite(out.log_probs[i])) {
          return "non-finite policy probability on probe decision " +
                 std::to_string(decisions);
        }
      }
      done = env.step(argmax(out.probs)).done;
    }
    const double makespan = env.makespan();
    const double bound = cfg_.max_makespan_factor * golden_mct_makespan_;
    if (!std::isfinite(makespan) || makespan > bound) {
      std::ostringstream os;
      os << "probe makespan " << makespan << " exceeds MCT-sanity bound "
         << bound << " (" << cfg_.max_makespan_factor << " x golden MCT "
         << golden_mct_makespan_ << ")";
      return os.str();
    }
  } catch (const std::exception& e) {
    return std::string("probe evaluation threw: ") + e.what();
  }
  return "";
}

ReloadResult PolicyStore::reject(const std::string& reason) {
  ReloadResult r;
  r.status = ReloadStatus::kRejected;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.rejected;
    last_reject_ = reason;
    r.version = current_->version;
  }
  r.reason = reason;
  if (obs::Telemetry* t = obs::telemetry()) t->serve_reload_rejects.add();
  util::log_warn() << "PolicyStore: reload rejected, keeping version "
                   << r.version << ": " << reason;
  return r;
}

ReloadResult PolicyStore::publish_or_reject(
    std::unique_ptr<rl::PolicyNet> candidate, bool force, const char* origin) {
  const std::uint32_t crc =
      util::crc32(nn::serialize_parameters(*candidate));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!force && crc == current_->params_crc) {
      ++counters_.noops;
      ReloadResult r;
      r.status = ReloadStatus::kNoOp;
      r.version = current_->version;
      r.reason = "weights identical to active version " +
                 std::to_string(current_->version);
      return r;
    }
  }
  if (cfg_.validate) {
    const std::string why = validate_candidate(*candidate);
    if (!why.empty()) return reject(why);
  }
  auto snap = std::make_shared<Snapshot>();
  snap->params_crc = crc;
  snap->f32 = std::make_shared<const rl::InferenceWeights>(
      rl::InferenceWeights::snapshot(*candidate));
  snap->net = std::shared_ptr<const rl::PolicyNet>(std::move(candidate));
  ReloadResult r;
  r.status = ReloadStatus::kPublished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap->version = current_->version + 1;
    current_ = snap;
    ++counters_.published;
    r.version = snap->version;
  }
  if (obs::Telemetry* t = obs::telemetry()) {
    t->serve_reloads.add();
    t->serve_active_weight_version.set(static_cast<double>(r.version));
  }
  util::log_info() << "PolicyStore: published weight version " << r.version
                   << " (" << origin << ")";
  return r;
}

ReloadResult PolicyStore::reload_from_net(const rl::PolicyNet& candidate,
                                          bool force) {
  std::unique_ptr<rl::PolicyNet> copy = clone_arch();
  try {
    copy->copy_parameters_from(candidate);
  } catch (const std::exception& e) {
    return reject(std::string("candidate architecture mismatch: ") + e.what());
  }
  return publish_or_reject(std::move(copy), force, "reload_from_net");
}

ReloadResult PolicyStore::reload_from_file(const std::string& path,
                                           bool force) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return reject("cannot read checkpoint file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string blob = buf.str();
  if (blob.compare(0, std::char_traits<char>::length(kV1Magic), kV1Magic) ==
      0) {
    return reject("legacy v1 checkpoint (" + path +
                  "): no integrity footer, not reloadable live — retrain or "
                  "re-save as readys-ckpt/2");
  }
  std::unique_ptr<rl::PolicyNet> copy = clone_arch();
  rl::CheckpointData data;
  try {
    // Fully validated (header, CRC footer, weights payload) before the
    // scratch net is touched; any corruption — truncation, bit flips,
    // shape mismatches — throws and the active snapshot stays.
    rl::deserialize_checkpoint(*copy, data, blob);
  } catch (const std::exception& e) {
    return reject("checkpoint " + path + " failed to parse: " + e.what());
  }
  return publish_or_reject(std::move(copy), force, path.c_str());
}

PolicyStore::Counters PolicyStore::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::string PolicyStore::last_reject_reason() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_reject_;
}

}  // namespace readys::serve
