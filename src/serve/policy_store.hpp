#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/apps.hpp"
#include "dag/task_graph.hpp"
#include "rl/config.hpp"
#include "rl/inference.hpp"
#include "rl/policy_net.hpp"
#include "sim/platform.hpp"

namespace readys::serve {

/// Outcome class of a reload attempt.
enum class ReloadStatus {
  kPublished,  ///< candidate validated and is now the active version
  kNoOp,       ///< candidate is bit-identical to the active weights
  kRejected,   ///< candidate failed validation; last-good stays active
};

const char* reload_status_name(ReloadStatus s);

struct ReloadResult {
  ReloadStatus status = ReloadStatus::kRejected;
  /// Active version AFTER the call — the new version on kPublished, the
  /// unchanged last-good version otherwise (rollback is implicit: the
  /// active snapshot is never replaced until a candidate passes).
  std::uint64_t version = 0;
  std::string reason;  ///< typed reject reason / no-op detail ("" on publish)
};

/// Validation-gate knobs. The gate shadow-evaluates every candidate on a
/// pinned probe instance before it can serve traffic: a greedy episode
/// over the probe DAG must produce finite policy outputs at every
/// decision, terminate within a bounded decision count, and land within
/// max_makespan_factor of the golden one-shot-MCT makespan computed at
/// store construction. NaN weights, truncated checkpoints and policies
/// that saturated into nonsense all fail here — the fleet keeps serving
/// last-good.
struct PolicyStoreConfig {
  core::App probe_app = core::App::kCholesky;
  int probe_tiles = 4;
  std::uint64_t probe_seed = 7;
  /// Probe platform; <= 0 cpus means "inherit the service platform"
  /// (DecisionService fills these from its own ServiceConfig).
  int probe_cpus = 0;
  int probe_gpus = 0;
  /// Sanity bound: probe makespan <= factor * golden MCT makespan.
  /// Generous by design — an untrained policy must pass, a NaN or
  /// saturated one must not.
  double max_makespan_factor = 10.0;
  bool validate = true;  ///< false skips the gate (bench storm plumbing)
};

/// Process-wide store of versioned, atomically-swappable policy
/// snapshots — the hot-reload backbone of the DecisionService. One
/// snapshot owns an immutable PolicyNet (weights never touched after
/// publication) plus one frozen f32 InferenceWeights shared by every
/// worker backend, closing the "one snapshot across workers" follow-up
/// from the inference-backend PR.
///
/// Concurrency contract: current() hands out a shared_ptr under a
/// mutex; workers adopt a snapshot at round boundaries and run the whole
/// round against it, so every decision executes against exactly one
/// published version (no torn reads — pinned by the reload chaos suite
/// under tsan). Reloads serialize on the same mutex; a failed candidate
/// never replaces the active snapshot, which IS the rollback semantics.
class PolicyStore {
 public:
  struct Snapshot {
    std::uint64_t version = 0;
    std::shared_ptr<const rl::PolicyNet> net;
    std::shared_ptr<const rl::InferenceWeights> f32;
    /// CRC-32 over the serialized parameters: cheap bit-identity probe
    /// for no-op reload detection.
    std::uint32_t params_crc = 0;
  };

  struct Counters {
    std::uint64_t published = 0;  ///< successful reloads (excl. initial)
    std::uint64_t rejected = 0;
    std::uint64_t noops = 0;
  };

  /// Publishes `initial` as version 1 without validation (the weights
  /// the service was constructed with are trusted — there is no
  /// last-good to fall back to yet). `agent` must describe the net's
  /// architecture; candidates are rebuilt from it.
  PolicyStore(const rl::PolicyNet& initial, rl::AgentConfig agent,
              PolicyStoreConfig cfg);

  /// The active snapshot. Never null.
  std::shared_ptr<const Snapshot> current() const;
  std::uint64_t active_version() const;

  /// Validates and publishes a candidate's weights. `force` publishes a
  /// bit-identical candidate as a new version instead of reporting
  /// kNoOp (the reload-storm chaos path: swap machinery exercised, the
  /// served function unchanged).
  ReloadResult reload_from_net(const rl::PolicyNet& candidate,
                               bool force = false);

  /// Loads candidate weights from a `readys-ckpt/2` file. The whole
  /// document is CRC-checked and parsed before anything is adopted;
  /// legacy v1 checkpoints are rejected with a typed reason (their
  /// weights carry no integrity footer — not trustworthy for a live
  /// swap). File errors, truncation, architecture mismatches and
  /// validation failures all reject with last-good still active.
  ReloadResult reload_from_file(const std::string& path, bool force = false);

  Counters counters() const;
  std::string last_reject_reason() const;

 private:
  std::unique_ptr<rl::PolicyNet> clone_arch() const;
  /// "" when the candidate passes; otherwise the typed failure reason.
  std::string validate_candidate(const rl::PolicyNet& candidate) const;
  ReloadResult publish_or_reject(std::unique_ptr<rl::PolicyNet> candidate,
                                 bool force, const char* origin);
  ReloadResult reject(const std::string& reason);

  rl::AgentConfig agent_;
  PolicyStoreConfig cfg_;
  int node_features_ = 0;
  int resource_features_ = 0;
  sim::Platform probe_platform_;
  std::shared_ptr<const dag::TaskGraph> probe_graph_;
  double golden_mct_makespan_ = 0.0;

  mutable std::mutex mutex_;
  std::shared_ptr<const Snapshot> current_;
  Counters counters_;
  std::string last_reject_;
};

}  // namespace readys::serve
