#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/session.hpp"

namespace readys::serve {

/// Per-tenant admission policy: the DRR share inside a priority class
/// and an optional token-bucket rate limit checked at submit time.
struct TenantPolicy {
  double weight = 1.0;      ///< deficit-round-robin share (>= 0; 0 starves)
  double rate_per_s = 0.0;  ///< token refill rate; 0 = unlimited
  double burst = 8.0;       ///< bucket capacity (max stored tokens)
};

/// The DecisionService admission queue: per-(tenant, class) FIFO lanes
/// with strict priority between classes and deficit-weighted round robin
/// across tenants inside a class. Not thread-safe — the service guards
/// it with its own mutex. With a single tenant in a single class the
/// dequeue order reduces exactly to the old FIFO queue (backoff entries
/// stay put, later due entries may overtake them), so every pre-QoS
/// determinism pin still holds.
class QosQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// A queued session: fresh from submit() or a backoff retry
  /// (not_before in the future).
  struct Entry {
    std::unique_ptr<Session> session;
    Clock::time_point not_before{};
  };

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Registers (or updates) a tenant's DRR weight; called by the service
  /// at first admission so the queue never consults the config map.
  void set_weight(const std::string& tenant, double weight);

  void push_back(Entry e);
  /// Re-queues a round survivor at the head of its (tenant, class) lane
  /// — pump mode's "continue the same round next pump" contract.
  void push_front(Entry e);

  /// Pops up to `max` due entries into `out`, highest class first, DRR
  /// across tenants within a class. Returns the earliest not_before among
  /// entries left waiting on backoff (time_point::max() when none).
  Clock::time_point pop_due(Clock::time_point now, std::size_t max,
                            std::vector<std::unique_ptr<Session>>& out);

  /// Overload eviction: picks a victim to shed so an incoming session of
  /// (tenant, cls) can be admitted to a full queue. The victim is the
  /// newest entry in the lowest-priority non-empty class (never a class
  /// above `cls`) of the most-backlogged tenant. Returns nullptr when
  /// the incoming session should shed instead — because the submitter
  /// itself is the most-backlogged tenant (no noisy neighbor to blame)
  /// or every queued entry outranks `cls`.
  std::unique_ptr<Session> evict_for(const std::string& tenant, QosClass cls);

  /// Removes and returns every queued entry (abort sweep). Order is
  /// tenant-lexicographic, class-major — deterministic, not admission
  /// order.
  std::deque<Entry> drain();

  std::size_t queued_for(const std::string& tenant) const;

 private:
  static constexpr std::size_t kClasses = 3;

  struct Tenant {
    double weight = 1.0;
    std::array<std::deque<Entry>, kClasses> lanes;
    std::array<double, kClasses> deficit{};
    std::size_t total = 0;
  };

  Tenant& tenant(const std::string& name);

  std::map<std::string, Tenant> tenants_;
  /// First-admission tenant order: the DRR cursor walks this, so the
  /// schedule is deterministic in pump mode.
  std::vector<std::string> order_;
  std::array<std::size_t, kClasses> cursor_{};
  std::size_t size_ = 0;
};

}  // namespace readys::serve
