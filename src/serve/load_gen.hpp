#pragma once

#include <cstdint>
#include <vector>

#include "serve/service.hpp"
#include "serve/session.hpp"
#include "util/rng.hpp"

namespace readys::serve {

/// Open-loop Poisson workload for a DecisionService: seeded exponential
/// inter-arrival times over a mixed Cholesky/LU/QR catalog. Offered load
/// is `rate` sessions/s regardless of how the service keeps up — that is
/// what exercises admission control and shedding.
struct LoadGenConfig {
  int sessions = 64;        ///< total sessions to offer
  double rate = 50.0;       ///< offered arrivals per second
  std::uint64_t seed = 1;   ///< arrival times + catalog draws
  int tiles_min = 3;        ///< catalog DAG sizes (inclusive range)
  int tiles_max = 5;
  double sigma = 0.1;       ///< task-duration noise per session
  double deadline_us = 0.0; ///< per-spec deadline (0 = service default)
};

/// What one load run measured, aggregated from the service's results
/// and counters after every offered session retired.
struct LoadReport {
  int offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retries = 0;
  std::uint64_t decisions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fallbacks = 0;
  double duration_s = 0.0;       ///< first submit -> all retired
  double sessions_per_s = 0.0;   ///< completed / duration
  double decisions_per_s = 0.0;
  double p50_decide_us = 0.0;    ///< over every recorded decision
  double p99_decide_us = 0.0;
  double mean_makespan = 0.0;    ///< over completed sessions
};

/// Draws one catalog spec (app uniform over {cholesky, lu, qr}, tiles
/// uniform in [tiles_min, tiles_max], per-session seed from `rng`).
SessionSpec draw_catalog_spec(const LoadGenConfig& cfg, util::Rng& rng);

/// Nearest-rank percentile (p in [0, 100]) of `xs`; 0 when empty.
/// Sorts a copy.
double percentile(std::vector<double> xs, double p);

/// Runs the full open-loop load against `svc` (which must have worker
/// threads), waits until every offered session retired, and aggregates.
/// The service should be constructed with record_latencies so the
/// percentiles have data.
LoadReport run_poisson_load(DecisionService& svc, const LoadGenConfig& cfg);

}  // namespace readys::serve
