#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "serve/session.hpp"
#include "util/rng.hpp"

namespace readys::serve {

/// Shape of the offered arrival process.
enum class ArrivalMode : int {
  kPoisson = 0,  ///< exponential inter-arrivals at `rate`
  /// Markov-modulated on/off Poisson: ON dwell runs at rate *
  /// burst_factor, OFF dwell at rate / burst_factor, exponential dwell
  /// times with mean burst_dwell_s — bursty traffic that slams the queue
  /// then goes quiet.
  kBursty = 1,
  /// Bounded-Pareto inter-arrivals (tail index pareto_alpha, bounded at
  /// pareto_cap times the minimum gap), rescaled so the long-run offered
  /// rate stays `rate` — heavy-tailed gaps: clumps of near-simultaneous
  /// arrivals separated by long silences.
  kPareto = 2,
};

const char* arrival_mode_name(ArrivalMode m);

/// Open-loop workload for a DecisionService: seeded inter-arrival times
/// (Poisson / bursty / heavy-tailed) over a mixed Cholesky/LU/QR
/// catalog. Offered load is `rate` sessions/s in the long run regardless
/// of how the service keeps up — that is what exercises admission
/// control and shedding.
struct LoadGenConfig {
  int sessions = 64;        ///< total sessions to offer
  double rate = 50.0;       ///< offered arrivals per second (long-run)
  std::uint64_t seed = 1;   ///< arrival times + catalog draws
  int tiles_min = 3;        ///< catalog DAG sizes (inclusive range)
  int tiles_max = 5;
  double sigma = 0.1;       ///< task-duration noise per session
  /// Per-spec deadline: 0 inherits the service default, negative opts
  /// the session out, positive is a per-decision budget in microseconds.
  double deadline_us = 0.0;
  ArrivalMode arrival = ArrivalMode::kPoisson;
  double burst_factor = 4.0;   ///< bursty: ON multiplies rate, OFF divides
  double burst_dwell_s = 0.05; ///< bursty: mean dwell per state (seconds)
  double pareto_alpha = 1.5;   ///< pareto: tail index (>1 = finite mean)
  double pareto_cap = 50.0;    ///< pareto: gap bound, multiples of min gap
  std::string tenant;          ///< stamped on every spec ("" = "default")
  QosClass qos = QosClass::kNormal;  ///< priority class for every spec
  /// False returns right after the last submit instead of waiting for
  /// the service to go idle — for multi-generator runs (noisy-neighbor
  /// bench) where the caller waits once after joining every generator.
  bool wait_idle = true;
};

/// What one load run measured, aggregated from the service's results
/// and counters after every offered session retired.
struct LoadReport {
  int offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t aborted = 0;
  std::uint64_t retries = 0;
  std::uint64_t decisions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fallbacks = 0;
  double duration_s = 0.0;       ///< first submit -> all retired
  double sessions_per_s = 0.0;   ///< completed / duration
  double decisions_per_s = 0.0;
  double p50_decide_us = 0.0;    ///< over every recorded decision
  double p99_decide_us = 0.0;
  double mean_makespan = 0.0;    ///< over completed sessions
};

/// Draws one catalog spec (app uniform over {cholesky, lu, qr}, tiles
/// uniform in [tiles_min, tiles_max], per-session seed from `rng`).
SessionSpec draw_catalog_spec(const LoadGenConfig& cfg, util::Rng& rng);

/// Nearest-rank percentile (p in [0, 100]) of `xs`; 0 when empty.
/// Sorts a copy.
double percentile(std::vector<double> xs, double p);

/// Runs the full open-loop load against `svc` (which must have worker
/// threads), waits until every offered session retired, and aggregates.
/// The service should be constructed with record_latencies so the
/// percentiles have data.
LoadReport run_poisson_load(DecisionService& svc, const LoadGenConfig& cfg);

}  // namespace readys::serve
