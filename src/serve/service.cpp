#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace readys::serve {

namespace {

/// Greedy argmax over a probability row (ties to the lowest index, the
/// same rule as ReadysScheduler's greedy mode).
std::size_t argmax(const std::vector<double>& p) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (p[i] > p[best]) best = i;
  }
  return best;
}

/// Cumulative-scan categorical draw with the numerical-slack fallback of
/// rl::sample_categorical, over a plain row.
std::size_t sample(const std::vector<double>& p, util::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    if (u < acc) return i;
  }
  return p.empty() ? 0 : p.size() - 1;
}

}  // namespace

DecisionService::DecisionService(const rl::PolicyNet& net,
                                 const rl::AgentConfig& agent,
                                 ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      agent_(agent),
      platform_(sim::Platform::hybrid(std::max(1, cfg_.cpus),
                                      std::max(0, cfg_.gpus))),
      sup_(cfg_.supervise,
           std::max<std::size_t>(1, static_cast<std::size_t>(
                                        std::max(0, cfg_.workers)))) {
  cfg_.queue_capacity = std::max<std::size_t>(1, cfg_.queue_capacity);
  cfg_.max_active = std::max<std::size_t>(1, cfg_.max_active);
  cfg_.workers = std::max(0, cfg_.workers);
  cfg_.max_retries = std::max(0, cfg_.max_retries);
  if (cfg_.reload.probe_cpus <= 0) {
    cfg_.reload.probe_cpus = std::max(1, cfg_.cpus);
    cfg_.reload.probe_gpus = std::max(0, cfg_.gpus);
  }

  // Version 1 of the policy: the construction weights, published into
  // the store every worker adopts snapshots from.
  store_ = std::make_unique<PolicyStore>(net, agent_, cfg_.reload);

  // Per-slot adopted policy (slot 0 doubles as the pump-mode slot).
  // Adopted eagerly so the first round never pays the build inside a
  // latency-sensitive path.
  const std::size_t n_slots =
      std::max<std::size_t>(1, static_cast<std::size_t>(cfg_.workers));
  slots_.resize(n_slots);
  for (auto& wp : slots_) adopt_policy(wp);

  dead_.assign(n_slots, 0);
  restart_at_.assign(n_slots, Clock::time_point{});
  for (std::size_t w = 0; w < n_slots; ++w) {
    beats_.push_back(std::make_unique<WorkerBeat>());
  }
  workers_.resize(static_cast<std::size_t>(cfg_.workers));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int w = 0; w < cfg_.workers; ++w) {
      spawn_worker(static_cast<std::size_t>(w));
    }
  }
  // The supervisor owns worker restarts, so it runs whenever workers do;
  // stall detection inside it stays gated on watchdog_period_ms.
  if (cfg_.workers > 0) {
    supervisor_ = std::thread([this] { supervisor_loop(); });
  }
}

DecisionService::~DecisionService() { abort_shutdown(); }

void DecisionService::adopt_policy(WorkerPolicy& wp) {
  std::shared_ptr<const PolicyStore::Snapshot> cur = store_->current();
  if (wp.backend != nullptr && wp.version == cur->version) return;
  wp.snap = cur;
  wp.version = cur->version;
  if (cfg_.inference_backend == rl::InferenceBackendKind::kF32Simd) {
    // Every worker shares the published frozen f32 snapshot — one
    // snapshot build per version, fleet-wide (the PR 9 follow-up).
    wp.replica.reset();
    wp.backend = std::make_unique<rl::F32SimdBackend>(cur->f32);
  } else {
    // kF64Ref reads weights live and PolicyNet forwards are not
    // thread-safe to share, so each slot keeps a private replica of the
    // snapshot (rebuilt only on version change).
    wp.replica = std::make_unique<rl::PolicyNet>(
        cur->net->node_features(), cur->net->resource_features(), agent_);
    wp.replica->copy_parameters_from(*cur->net);
    wp.backend = std::make_unique<rl::F64RefBackend>(*wp.replica);
  }
}

std::unique_ptr<Session> DecisionService::build_session(
    std::uint64_t id, const SessionSpec& spec, int attempt) {
  std::shared_ptr<const dag::TaskGraph> graph;
  {
    const std::pair<int, int> key{static_cast<int>(spec.app), spec.tiles};
    std::lock_guard<std::mutex> lock(graphs_mutex_);
    auto it = graphs_.find(key);
    if (it == graphs_.end()) {
      it = graphs_
               .emplace(key, std::make_shared<const dag::TaskGraph>(
                                 core::make_graph(spec.app, spec.tiles)))
               .first;
    }
    graph = it->second;
  }
  return std::make_unique<Session>(id, spec, platform_, std::move(graph),
                                   agent_.window, attempt,
                                   cfg_.incremental_encoding);
}

const TenantPolicy& DecisionService::policy_for(
    const std::string& tenant) const {
  const auto it = cfg_.tenants.find(tenant);
  return it == cfg_.tenants.end() ? cfg_.default_tenant : it->second;
}

DecisionService::Admission DecisionService::submit(const SessionSpec& spec_in) {
  SessionSpec spec = spec_in;
  if (spec.tenant.empty()) spec.tenant = "default";
  Admission out;
  std::unique_ptr<Session> victim;
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const char* reject = nullptr;
    bool qos_shed = false;
    if (stop_) {
      reject = "stopped";
    } else if (draining_) {
      reject = "draining";
    }
    if (reject == nullptr) {
      // Token bucket: a rate-limited tenant sheds at the door without
      // touching anyone else's lane.
      const TenantPolicy& pol = policy_for(spec.tenant);
      if (pol.rate_per_s > 0.0) {
        Bucket& b = buckets_[spec.tenant];
        const auto now = Clock::now();
        const double cap = std::max(1.0, pol.burst);
        if (!b.primed) {
          b.tokens = cap;
          b.primed = true;
        } else {
          const double dt =
              std::chrono::duration<double>(now - b.last).count();
          b.tokens = std::min(cap, b.tokens + dt * pol.rate_per_s);
        }
        b.last = now;
        if (b.tokens < 1.0) {
          reject = "rate limited";
          qos_shed = true;
        } else {
          b.tokens -= 1.0;
        }
      }
    }
    if (reject == nullptr && queue_.size() >= cfg_.queue_capacity) {
      // Overload: shed the most-backlogged tenant's newest entry to make
      // room. evict_for returns null when the submitter itself is the
      // hog (single-tenant case: exactly the old "queue full" shed).
      victim = queue_.evict_for(spec.tenant, spec.qos);
      if (victim == nullptr) {
        reject = "queue full";
      } else {
        evicted = true;
      }
    }
    if (reject != nullptr) {
      out.reason = reject;
      ++counters_.shed;
      ++tenant_counters_[spec.tenant].shed;
      if (qos_shed) ++counters_.tenant_shed;
      if (obs::Telemetry* t = obs::telemetry()) {
        t->serve_shed.add();
        if (qos_shed) t->serve_tenant_shed.add();
      }
      return out;
    }
    out.admitted = true;
    out.id = next_id_++;
    ++counters_.admitted;
    ++tenant_counters_[spec.tenant].admitted;
    ++in_flight_;
    if (evicted) ++counters_.tenant_shed;
    queue_.set_weight(spec.tenant, policy_for(spec.tenant).weight);
  }
  if (obs::Telemetry* t = obs::telemetry()) {
    t->serve_admitted.add();
    if (evicted) t->serve_tenant_shed.add();
  }
  if (victim != nullptr) {
    retire(std::move(victim), SessionState::kShed,
           "evicted under overload (tenant over fair share)",
           /*was_active=*/false);
  }
  // Building the session (graph lookup, HEFT reference, first encode)
  // happens outside the service lock; the slot was already reserved so
  // capacity stays bounded.
  std::unique_ptr<Session> session = build_session(out.id, spec, 0);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(QosQueue::Entry{std::move(session), Clock::time_point{}});
    update_gauges();
  }
  work_cv_.notify_one();
  return out;
}

DecisionService::Clock::time_point DecisionService::top_up(
    std::vector<std::unique_ptr<Session>>& batch) {
  // Caller holds mutex_. Pulls due entries (class priority + DRR across
  // tenants); backoff entries that are not due yet stay put and report
  // the earliest due time so the worker can sleep exactly that long.
  const auto now = Clock::now();
  const std::size_t before = batch.size();
  const std::size_t room =
      before < cfg_.max_active ? cfg_.max_active - before : 0;
  const Clock::time_point earliest = queue_.pop_due(now, room, batch);
  active_ += batch.size() - before;
  update_gauges();
  return earliest;
}

void DecisionService::retire(std::unique_ptr<Session> session,
                             SessionState state, std::string error,
                             bool was_active) {
  SessionResult result = std::move(session->result());
  result.state = state;
  result.error = std::move(error);
  session.reset();  // release env/graph before taking the lock
  {
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state) {
      case SessionState::kCompleted:
        ++counters_.completed;
        ++tenant_counters_[result.tenant].completed;
        break;
      case SessionState::kQuarantined:
        ++counters_.quarantined;
        break;
      case SessionState::kAborted:
        ++counters_.aborted;
        break;
      case SessionState::kShed:
        ++counters_.shed;
        ++tenant_counters_[result.tenant].shed;
        break;
    }
    retired_.push_back(std::move(result));
    if (in_flight_ > 0) --in_flight_;
    if (was_active && active_ > 0) --active_;
    update_gauges();
  }
  if (obs::Telemetry* t = obs::telemetry()) {
    if (state == SessionState::kCompleted) t->serve_completed.add();
    if (state == SessionState::kQuarantined) t->serve_quarantined.add();
  }
  idle_cv_.notify_all();
  work_cv_.notify_all();  // a draining worker may now be done
}

void DecisionService::retry_or_quarantine(std::unique_ptr<Session> session,
                                          const std::string& why) {
  const int attempt = session->attempt();
  if (attempt >= cfg_.max_retries) {
    retire(std::move(session), SessionState::kQuarantined,
           cfg_.max_retries > 0
               ? why + " (" + std::to_string(cfg_.max_retries) +
                     " retries exhausted)"
               : why);
    return;
  }
  // Transient fault: resubmit the same spec under a perturbed env seed
  // with exponential backoff. The fresh Session replaces the dead one
  // in the queue; in_flight_ is unchanged (same admission slot).
  std::unique_ptr<Session> fresh;
  try {
    fresh = build_session(session->id(), session->spec(), attempt + 1);
  } catch (const std::exception& e) {
    retire(std::move(session), SessionState::kQuarantined,
           why + "; retry construction failed: " + e.what());
    return;
  }
  // Carry the accumulated accounting across attempts.
  SessionResult& r = fresh->result();
  const SessionResult& old = session->result();
  r.timeouts = old.timeouts;
  r.fallbacks = old.fallbacks;
  r.decisions = old.decisions;
  session.reset();
  const double backoff_ms =
      cfg_.retry_backoff_ms * std::pow(2.0, static_cast<double>(attempt));
  const auto not_before =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             std::max(0.0, backoff_ms)));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.retries;
    queue_.push_back(QosQueue::Entry{std::move(fresh), not_before});
    if (active_ > 0) --active_;
    update_gauges();
  }
  if (obs::Telemetry* t = obs::telemetry()) t->serve_retries.add();
  util::log_warn() << "DecisionService: session retry (attempt "
                   << (attempt + 1) << "): " << why;
  work_cv_.notify_one();
}

std::size_t DecisionService::run_round(
    std::vector<std::unique_ptr<Session>>& batch, WorkerPolicy& wp) {
  if (batch.empty()) return 0;

  // Service-wide degraded mode (supervisor escalation): every decision
  // is answered by one-shot MCT — no policy forward at all, so a policy
  // that keeps killing workers cannot stop the service from serving.
  const bool degraded = degraded_.load(std::memory_order_relaxed);

  std::vector<const rl::Observation*> obs;
  obs.reserve(batch.size());
  for (const auto& s : batch) obs.push_back(&s->observation());

  // One batched pass for the whole round, against exactly one adopted
  // snapshot version (wp is re-synced only at round boundaries). Every
  // backend evaluates the batch per-observation-equivalent (kF64Ref's
  // block-diagonal pass matches per-observation forward bit-for-bit;
  // kF32Simd runs each observation independently by construction), which
  // is the keystone of session isolation: what else shares the batch
  // cannot change this session's probabilities.
  const auto t0 = Clock::now();
  std::vector<rl::InferenceOutput> outs;
  std::vector<char> have(batch.size(), 0);
  std::vector<std::string> forward_error(batch.size());
  if (!degraded) {
    try {
      wp.backend->forward_batched(obs, outs);
      std::fill(have.begin(), have.end(), 1);
    } catch (const std::exception& batched_err) {
      // The batched pass failed somewhere inside. Fall back to
      // per-session forwards so only the faulty session pays: each one
      // re-runs alone, and whoever throws is quarantined below.
      outs.resize(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        try {
          wp.backend->forward(*obs[i], outs[i]);
          have[i] = 1;
        } catch (const std::exception& e) {
          forward_error[i] =
              std::string("policy forward threw: ") + e.what() +
              " (batched pass failed: " + batched_err.what() + ")";
        }
      }
    }
  }
  const double elapsed_us = std::chrono::duration<double, std::micro>(
                                Clock::now() - t0)
                                .count();

  std::uint64_t n_decisions = 0;
  std::uint64_t n_timeouts = 0;
  std::uint64_t n_fallbacks = 0;
  obs::Telemetry* tel = obs::telemetry();

  std::size_t stepped = 0;
  std::vector<std::unique_ptr<Session>> keep;
  keep.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::unique_ptr<Session> s = std::move(batch[i]);
    SessionResult& r = s->result();

    std::size_t action = 0;
    bool fellback = false;
    bool timed_out = false;
    if (degraded) {
      action = s->mct_action();
      fellback = true;
    } else {
      if (!have[i]) {
        retire(std::move(s), SessionState::kQuarantined, forward_error[i]);
        continue;
      }

      // The service's view of the policy output: a plain row it can vet
      // before anything touches the env.
      const std::vector<double>& pt = outs[i].probs;
      const std::size_t n = obs[i]->num_actions();
      std::vector<double> p(n);
      bool finite = true;
      const bool poisoned = s->poison_at(r.decisions);
      for (std::size_t j = 0; j < n; ++j) {
        p[j] = poisoned ? std::numeric_limits<double>::quiet_NaN() : pt[j];
        if (!std::isfinite(p[j])) finite = false;
      }
      if (!finite) {
        retire(std::move(s), SessionState::kQuarantined,
               "non-finite policy probability");
        continue;
      }

      // Budget resolution: spec < 0 opts out; spec > 0 overrides; spec
      // == 0 inherits the service default, which itself may be negative
      // (no deadline), zero (a literal zero budget — every decision
      // degrades deterministically, no clock consulted) or positive.
      const double spec_deadline = s->spec().deadline_us;
      const double budget = spec_deadline < 0.0   ? -1.0
                            : spec_deadline > 0.0 ? spec_deadline
                                                  : cfg_.deadline_us;
      if (budget == 0.0 || (budget > 0.0 && elapsed_us > budget)) {
        // Deadline blown (or was never there to begin with): degrade
        // this decision to a one-shot MCT answer instead of stalling the
        // round behind a slow policy.
        action = s->mct_action();
        timed_out = true;
        fellback = true;
      } else {
        action = cfg_.greedy ? argmax(p) : sample(p, s->action_rng());
      }
    }

    if (timed_out) {
      ++r.timeouts;
      ++n_timeouts;
    }
    if (fellback) {
      ++r.fallbacks;
      ++n_fallbacks;
    }
    ++r.decisions;
    ++n_decisions;
    if (cfg_.record_actions) {
      r.actions.push_back(static_cast<std::uint32_t>(action));
      r.weight_versions.push_back(wp.version);
    }
    if (cfg_.record_latencies) r.decide_us.push_back(elapsed_us);
    if (tel != nullptr) tel->serve_decide_us.observe(elapsed_us);

    try {
      const rl::SchedulingEnv::StepResult sr = s->env().step(action);
      ++stepped;
      if (sr.done) {
        r.makespan = s->env().makespan();
        retire(std::move(s), SessionState::kCompleted, "");
      } else if (r.decisions >= cfg_.max_session_decisions) {
        retire(std::move(s), SessionState::kQuarantined,
               "decision budget exhausted (" +
                   std::to_string(r.decisions) + " decisions)");
      } else {
        keep.push_back(std::move(s));
      }
    } catch (const std::logic_error& e) {
      // Environment faults (platform unrecoverable, stalled) are
      // transient: the cluster may recover on resubmission.
      retry_or_quarantine(std::move(s),
                          std::string("env fault: ") + e.what());
    } catch (const std::exception& e) {
      retire(std::move(s), SessionState::kQuarantined,
             std::string("env step threw: ") + e.what());
    }
  }
  batch = std::move(keep);

  if (tel != nullptr) {
    if (n_decisions > 0) tel->serve_decisions.add(n_decisions);
    if (n_timeouts > 0) tel->serve_timeouts.add(n_timeouts);
    if (n_fallbacks > 0) tel->serve_fallbacks.add(n_fallbacks);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.decisions += n_decisions;
    counters_.timeouts += n_timeouts;
    counters_.fallbacks += n_fallbacks;
  }
  return stepped;
}

void DecisionService::worker_loop(std::size_t slot) {
  std::vector<std::unique_ptr<Session>> batch;
  WorkerBeat& beat = *beats_[slot];
  WorkerPolicy& wp = slots_[slot];
  std::uint64_t round = 0;
  for (;;) {
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (;;) {
        if (stop_) break;
        const Clock::time_point due = top_up(batch);
        if (!batch.empty()) break;
        if (draining_ && in_flight_ == 0) break;
        beat.busy.store(false, std::memory_order_relaxed);
        if (due == Clock::time_point::max()) {
          work_cv_.wait(lock);
        } else {
          work_cv_.wait_until(lock, due);
        }
      }
      stopping = stop_;  // snapshot under the lock: plain bool, no relock
    }
    if (stopping) break;
    if (batch.empty()) return;  // drained dry: exit cleanly
    beat.busy.store(true, std::memory_order_relaxed);
    try {
      if (cfg_.chaos_round_hook) cfg_.chaos_round_hook(slot, round);
      // Round boundary: adopt the latest published snapshot. The whole
      // round below runs against this one version — no torn reads.
      adopt_policy(wp);
      run_round(batch, wp);
    } catch (const std::exception& e) {
      // Crash containment: a fatal round error retires only this batch;
      // the thread exits and the supervisor restarts the slot.
      const std::string why = std::string("worker crashed: ") + e.what();
      for (auto& s : batch) {
        if (s != nullptr) {
          retire(std::move(s), SessionState::kQuarantined, why);
        }
      }
      batch.clear();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        dead_[slot] = 1;
      }
      beat.busy.store(false, std::memory_order_relaxed);
      watchdog_cv_.notify_all();
      util::log_error() << "DecisionService: worker " << slot
                        << " died: " << e.what();
      return;
    }
    ++round;
    beat.beat.fetch_add(1, std::memory_order_relaxed);
  }
  // Abort: retire the in-flight batch deterministically at this round
  // boundary — partial traces recorded, nothing half-stepped.
  for (auto& s : batch) {
    retire(std::move(s), SessionState::kAborted, "service aborted");
  }
}

void DecisionService::spawn_worker(std::size_t slot) {
  // Caller holds mutex_ (construction or supervisor restart).
  beats_[slot]->busy.store(false, std::memory_order_relaxed);
  workers_[slot] = std::thread([this, slot] { worker_loop(slot); });
}

std::size_t DecisionService::pump() {
  if (!workers_.empty()) {
    throw std::logic_error(
        "DecisionService::pump: worker threads are running");
  }
  std::vector<std::unique_ptr<Session>> batch;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) return 0;
    top_up(batch);
  }
  if (batch.empty()) return 0;
  adopt_policy(slots_[0]);
  const std::size_t stepped = run_round(batch, slots_[0]);
  // Survivors go back to the queue front (in order) so the next pump
  // continues the same round-robin without re-admission accounting.
  if (!batch.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      queue_.push_front(QosQueue::Entry{std::move(*it), Clock::time_point{}});
      if (active_ > 0) --active_;
    }
    update_gauges();
  }
  return stepped;
}

ReloadResult DecisionService::reload(const rl::PolicyNet& candidate,
                                     bool force) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stop_) {
      ++counters_.reload_rejects;
      ReloadResult r;
      r.status = ReloadStatus::kRejected;
      r.version = store_->active_version();
      r.reason = "service draining: weights are frozen until shutdown";
      if (obs::Telemetry* t = obs::telemetry()) t->serve_reload_rejects.add();
      return r;
    }
  }
  const ReloadResult r = store_->reload_from_net(candidate, force);
  std::lock_guard<std::mutex> lock(mutex_);
  if (r.status == ReloadStatus::kPublished) ++counters_.reloads;
  if (r.status == ReloadStatus::kRejected) ++counters_.reload_rejects;
  return r;
}

ReloadResult DecisionService::reload_from_file(const std::string& path,
                                               bool force) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_ || stop_) {
      ++counters_.reload_rejects;
      ReloadResult r;
      r.status = ReloadStatus::kRejected;
      r.version = store_->active_version();
      r.reason = "service draining: weights are frozen until shutdown";
      if (obs::Telemetry* t = obs::telemetry()) t->serve_reload_rejects.add();
      return r;
    }
  }
  const ReloadResult r = store_->reload_from_file(path, force);
  std::lock_guard<std::mutex> lock(mutex_);
  if (r.status == ReloadStatus::kPublished) ++counters_.reloads;
  if (r.status == ReloadStatus::kRejected) ++counters_.reload_rejects;
  return r;
}

void DecisionService::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  work_cv_.notify_all();
}

void DecisionService::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0 || stop_; });
}

void DecisionService::shutdown() {
  drain();
  if (!workers_.empty()) wait_idle();
  abort_shutdown();  // no-op on sessions when everything already retired
}

void DecisionService::abort_shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    if (stop_) return;  // already aborted/joined
    stop_ = true;
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  // Supervisor first: it is the only other joiner/spawner of worker
  // threads, so once it is gone the slots below are stable.
  if (supervisor_.joinable()) supervisor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Sweep whatever never reached a worker (queued sessions, and in pump
  // mode there is no worker to do it).
  std::deque<QosQueue::Entry> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover = queue_.drain();
  }
  while (!leftover.empty()) {
    retire(std::move(leftover.front().session), SessionState::kAborted,
           "service aborted", /*was_active=*/false);
    leftover.pop_front();
  }
  idle_cv_.notify_all();
}

bool DecisionService::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_ == 0;
}

std::size_t DecisionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t DecisionService::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

bool DecisionService::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

DecisionService::Counters DecisionService::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::map<std::string, DecisionService::TenantCounters>
DecisionService::tenant_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenant_counters_;
}

std::vector<SessionResult> DecisionService::results() const {
  std::vector<SessionResult> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = retired_;
  }
  std::sort(out.begin(), out.end(),
            [](const SessionResult& a, const SessionResult& b) {
              return a.id < b.id;
            });
  return out;
}

void DecisionService::update_gauges() const {
  // Caller holds mutex_.
  if (obs::Telemetry* t = obs::telemetry()) {
    t->serve_queue_depth.set(static_cast<double>(queue_.size()));
    t->serve_active.set(static_cast<double>(active_));
  }
}

void DecisionService::supervisor_loop() {
  const bool watch = cfg_.watchdog_period_ms > 0.0;
  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          watch ? cfg_.watchdog_period_ms : 5.0));
  std::vector<std::uint64_t> last(beats_.size(), 0);
  std::vector<Clock::time_point> since(beats_.size(), Clock::now());
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (watchdog_cv_.wait_for(lock, period, [this] { return stop_; })) {
        return;
      }
      const auto now = Clock::now();
      // Schedule restarts for freshly-dead slots (exponential backoff),
      // escalating to degraded mode past the budget.
      for (std::size_t slot = 0; slot < dead_.size(); ++slot) {
        if (!dead_[slot] || restart_at_[slot] != Clock::time_point{}) continue;
        restart_at_[slot] = sup_.on_death(slot, now);
        if (sup_.should_degrade() &&
            !degraded_.load(std::memory_order_relaxed)) {
          degraded_.store(true, std::memory_order_relaxed);
          util::log_error()
              << "DecisionService: worker restart budget exhausted ("
              << sup_.total_deaths()
              << " deaths) — degrading to one-shot MCT for all rounds";
        }
      }
      // Execute due restarts. The old thread must be joined outside the
      // lock (its exit path takes mutex_ in retire()).
      for (std::size_t slot = 0; slot < dead_.size(); ++slot) {
        if (!dead_[slot] || restart_at_[slot] == Clock::time_point{} ||
            restart_at_[slot] > now) {
          continue;
        }
        std::thread old = std::move(workers_[slot]);
        lock.unlock();
        if (old.joinable()) old.join();
        lock.lock();
        if (stop_) return;
        dead_[slot] = 0;
        restart_at_[slot] = Clock::time_point{};
        last[slot] = beats_[slot]->beat.load(std::memory_order_relaxed);
        since[slot] = Clock::now();
        spawn_worker(slot);
        ++counters_.worker_restarts;
        sup_.on_restart();
        if (obs::Telemetry* t = obs::telemetry()) {
          t->serve_worker_restarts.add();
        }
        util::log_warn() << "DecisionService: restarted worker " << slot
                         << " (death " << sup_.deaths(slot) << ")";
      }
    }
    work_cv_.notify_all();  // restarted capacity should pick up work
    if (!watch) continue;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < beats_.size(); ++i) {
      const std::uint64_t cur =
          beats_[i]->beat.load(std::memory_order_relaxed);
      const bool busy = beats_[i]->busy.load(std::memory_order_relaxed);
      if (!busy || cur != last[i]) {
        last[i] = cur;
        since[i] = now;
        continue;
      }
      const double stalled_ms =
          std::chrono::duration<double, std::milli>(now - since[i]).count();
      if (stalled_ms > cfg_.watchdog_stall_ms) {
        stalled_.store(true, std::memory_order_relaxed);
        util::log_error()
            << "DecisionService: worker " << i << " busy with no progress"
            << " for " << stalled_ms << " ms (watchdog)";
        since[i] = now;  // log once per stall window, not every period
      }
    }
  }
}

}  // namespace readys::serve
