#include "serve/qos_queue.hpp"

#include <algorithm>

namespace readys::serve {

namespace {

std::size_t class_index(QosClass c) {
  const int i = static_cast<int>(c);
  return static_cast<std::size_t>(std::clamp(i, 0, 2));
}

}  // namespace

QosQueue::Tenant& QosQueue::tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant{}).first;
    order_.push_back(name);
  }
  return it->second;
}

void QosQueue::set_weight(const std::string& name, double weight) {
  tenant(name).weight = std::max(0.0, weight);
}

void QosQueue::push_back(Entry e) {
  Tenant& t = tenant(e.session->spec().tenant);
  t.lanes[class_index(e.session->spec().qos)].push_back(std::move(e));
  ++t.total;
  ++size_;
}

void QosQueue::push_front(Entry e) {
  Tenant& t = tenant(e.session->spec().tenant);
  t.lanes[class_index(e.session->spec().qos)].push_front(std::move(e));
  ++t.total;
  ++size_;
}

QosQueue::Clock::time_point QosQueue::pop_due(
    Clock::time_point now, std::size_t max,
    std::vector<std::unique_ptr<Session>>& out) {
  Clock::time_point earliest = Clock::time_point::max();
  if (order_.empty()) return earliest;
  for (std::size_t cls = 0; cls < kClasses && max > 0; ++cls) {
    // DRR: sweep tenants from the class cursor, crediting one weight
    // quantum per visit; a visit pops due entries while credit lasts.
    // Sweeps repeat until a full pass makes no progress (all lanes empty
    // or waiting on backoff) so small quanta cannot under-fill a round.
    bool progress = true;
    while (progress && max > 0) {
      progress = false;
      for (std::size_t k = 0; k < order_.size() && max > 0; ++k) {
        const std::size_t idx = (cursor_[cls] + k) % order_.size();
        Tenant& t = tenants_[order_[idx]];
        std::deque<Entry>& lane = t.lanes[cls];
        if (lane.empty()) {
          t.deficit[cls] = 0.0;  // an empty lane forfeits stored credit
          continue;
        }
        t.deficit[cls] =
            std::min(t.deficit[cls] + t.weight, t.weight + 1.0);
        for (auto it = lane.begin();
             it != lane.end() && max > 0 && t.deficit[cls] >= 1.0;) {
          if (it->not_before > now) {
            // Backoff entry not due yet: it keeps its lane position but
            // does not block later due entries (the pre-QoS FIFO popped
            // past backoffs the same way).
            earliest = std::min(earliest, it->not_before);
            ++it;
            continue;
          }
          out.push_back(std::move(it->session));
          it = lane.erase(it);
          t.deficit[cls] -= 1.0;
          --t.total;
          --size_;
          --max;
          progress = true;
        }
      }
    }
    // Rotate the start tenant so a small max_active does not pin the
    // first tenant to the front of every round.
    cursor_[cls] = (cursor_[cls] + 1) % order_.size();
  }
  return earliest;
}

std::unique_ptr<Session> QosQueue::evict_for(const std::string& name,
                                             QosClass cls) {
  const std::size_t floor = class_index(cls);
  // Victim tenant: most backlogged among those holding an entry of class
  // >= floor (ties resolve to first-admitted — deterministic).
  const std::string* victim = nullptr;
  std::size_t victim_total = 0;
  for (const std::string& cand : order_) {
    const Tenant& t = tenants_[cand];
    std::size_t evictable = 0;
    for (std::size_t c = floor; c < kClasses; ++c) evictable += t.lanes[c].size();
    if (evictable == 0) continue;
    if (victim == nullptr || t.total > victim_total) {
      victim = &cand;
      victim_total = t.total;
    }
  }
  if (victim == nullptr || *victim == name) return nullptr;
  Tenant& t = tenants_[*victim];
  for (std::size_t c = kClasses; c-- > floor;) {
    if (t.lanes[c].empty()) continue;
    std::unique_ptr<Session> s = std::move(t.lanes[c].back().session);
    t.lanes[c].pop_back();
    --t.total;
    --size_;
    return s;
  }
  return nullptr;  // unreachable: evictable > 0 guaranteed a lane
}

std::deque<QosQueue::Entry> QosQueue::drain() {
  std::deque<Entry> out;
  for (auto& [name, t] : tenants_) {
    for (auto& lane : t.lanes) {
      while (!lane.empty()) {
        out.push_back(std::move(lane.front()));
        lane.pop_front();
      }
    }
    t.total = 0;
    t.deficit.fill(0.0);
  }
  size_ = 0;
  return out;
}

std::size_t QosQueue::queued_for(const std::string& name) const {
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? 0 : it->second.total;
}

}  // namespace readys::serve
