#include "serve/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace readys::serve {

SessionSpec draw_catalog_spec(const LoadGenConfig& cfg, util::Rng& rng) {
  static constexpr core::App kCatalog[] = {core::App::kCholesky,
                                           core::App::kLu, core::App::kQr};
  SessionSpec spec;
  spec.app = kCatalog[rng.uniform_index(3)];
  const int lo = std::min(cfg.tiles_min, cfg.tiles_max);
  const int hi = std::max(cfg.tiles_min, cfg.tiles_max);
  spec.tiles = lo + static_cast<int>(
                        rng.uniform_index(static_cast<std::size_t>(hi - lo) +
                                          1));
  spec.sigma = cfg.sigma;
  spec.seed = rng();
  spec.deadline_us = cfg.deadline_us;
  return spec;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: ceil(p/100 * N), 1-indexed.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

LoadReport run_poisson_load(DecisionService& svc, const LoadGenConfig& cfg) {
  using clock = std::chrono::steady_clock;
  util::Rng rng(cfg.seed);

  LoadReport report;
  report.offered = std::max(0, cfg.sessions);
  const double rate = std::max(1e-9, cfg.rate);

  const auto start = clock::now();
  double arrival_s = 0.0;
  for (int i = 0; i < report.offered; ++i) {
    // Exponential inter-arrival: -ln(1-u)/rate, seeded — the offered
    // trace is identical across runs with the same config.
    arrival_s += -std::log1p(-rng.uniform()) / rate;
    const auto due =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(arrival_s));
    std::this_thread::sleep_until(due);
    svc.submit(draw_catalog_spec(cfg, rng));
  }
  // Open loop ends here; wait for the service to finish what it admitted.
  svc.wait_idle();
  report.duration_s =
      std::chrono::duration<double>(clock::now() - start).count();

  const DecisionService::Counters c = svc.counters();
  report.admitted = c.admitted;
  report.shed = c.shed;
  report.completed = c.completed;
  report.quarantined = c.quarantined;
  report.aborted = c.aborted;
  report.retries = c.retries;
  report.decisions = c.decisions;
  report.timeouts = c.timeouts;
  report.fallbacks = c.fallbacks;
  if (report.duration_s > 0.0) {
    report.sessions_per_s =
        static_cast<double>(report.completed) / report.duration_s;
    report.decisions_per_s =
        static_cast<double>(report.decisions) / report.duration_s;
  }

  std::vector<double> latencies;
  double makespan_sum = 0.0;
  std::size_t makespans = 0;
  for (const SessionResult& r : svc.results()) {
    latencies.insert(latencies.end(), r.decide_us.begin(), r.decide_us.end());
    if (r.state == SessionState::kCompleted) {
      makespan_sum += r.makespan;
      ++makespans;
    }
  }
  report.p50_decide_us = percentile(latencies, 50.0);
  report.p99_decide_us = percentile(latencies, 99.0);
  if (makespans > 0) {
    report.mean_makespan = makespan_sum / static_cast<double>(makespans);
  }
  return report;
}

}  // namespace readys::serve
