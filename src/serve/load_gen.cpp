#include "serve/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace readys::serve {

namespace {

/// Seeded inter-arrival gap generator for the three ArrivalModes. All
/// state lives here so the offered trace is a pure function of the
/// config seed.
class ArrivalClock {
 public:
  ArrivalClock(const LoadGenConfig& cfg, util::Rng& rng)
      : cfg_(cfg),
        rng_(rng),
        rate_(std::max(1e-9, cfg.rate)),
        on_(rng.uniform() < 0.5),
        dwell_left_(exp_draw(1.0 / std::max(1e-6, cfg.burst_dwell_s))) {
    if (cfg_.arrival == ArrivalMode::kPareto) {
      // Bounded Pareto on [1, H], tail alpha: analytic mean, so gaps can
      // be rescaled to hit the configured long-run rate exactly.
      const double a = std::max(1.01, cfg_.pareto_alpha);
      const double h = std::max(2.0, cfg_.pareto_cap);
      pareto_alpha_ = a;
      pareto_cap_ = h;
      pareto_mean_ = (a / (a - 1.0)) * (1.0 - std::pow(h, 1.0 - a)) /
                     (1.0 - std::pow(h, -a));
    }
  }

  /// Seconds until the next arrival.
  double next_gap_s() {
    switch (cfg_.arrival) {
      case ArrivalMode::kPoisson:
        return exp_draw(rate_);
      case ArrivalMode::kBursty: {
        // Two-state MMPP. Exponential holding times are memoryless, so
        // when a candidate gap outlives the dwell we spend the dwell,
        // flip state and redraw — exact, not an approximation.
        const double factor = std::max(1.0, cfg_.burst_factor);
        const double dwell_rate = 1.0 / std::max(1e-6, cfg_.burst_dwell_s);
        double gap = 0.0;
        for (;;) {
          const double r = on_ ? rate_ * factor : rate_ / factor;
          const double g = exp_draw(r);
          if (g <= dwell_left_) {
            dwell_left_ -= g;
            return gap + g;
          }
          gap += dwell_left_;
          on_ = !on_;
          dwell_left_ = exp_draw(dwell_rate);
        }
      }
      case ArrivalMode::kPareto: {
        // Inverse-CDF bounded Pareto draw on [1, H], rescaled so the
        // mean gap is 1/rate.
        const double u = rng_.uniform();
        const double a = pareto_alpha_;
        const double lh = std::pow(1.0 / pareto_cap_, a);
        const double x = std::pow(1.0 - u * (1.0 - lh), -1.0 / a);
        return x / (pareto_mean_ * rate_);
      }
    }
    return exp_draw(rate_);
  }

 private:
  double exp_draw(double rate) {
    return -std::log1p(-rng_.uniform()) / std::max(1e-12, rate);
  }

  const LoadGenConfig& cfg_;
  util::Rng& rng_;
  double rate_;
  bool on_;              // bursty: current MMPP state
  double dwell_left_;    // bursty: time left in the current state
  double pareto_alpha_ = 1.5;
  double pareto_cap_ = 50.0;
  double pareto_mean_ = 1.0;
};

}  // namespace

const char* arrival_mode_name(ArrivalMode m) {
  switch (m) {
    case ArrivalMode::kPoisson:
      return "poisson";
    case ArrivalMode::kBursty:
      return "bursty";
    case ArrivalMode::kPareto:
      return "pareto";
  }
  return "unknown";
}

SessionSpec draw_catalog_spec(const LoadGenConfig& cfg, util::Rng& rng) {
  static constexpr core::App kCatalog[] = {core::App::kCholesky,
                                           core::App::kLu, core::App::kQr};
  SessionSpec spec;
  spec.app = kCatalog[rng.uniform_index(3)];
  const int lo = std::min(cfg.tiles_min, cfg.tiles_max);
  const int hi = std::max(cfg.tiles_min, cfg.tiles_max);
  spec.tiles = lo + static_cast<int>(
                        rng.uniform_index(static_cast<std::size_t>(hi - lo) +
                                          1));
  spec.sigma = cfg.sigma;
  spec.seed = rng();
  spec.deadline_us = cfg.deadline_us;
  spec.tenant = cfg.tenant;
  spec.qos = cfg.qos;
  return spec;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: ceil(p/100 * N), 1-indexed.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(xs.size())));
  return xs[rank == 0 ? 0 : rank - 1];
}

LoadReport run_poisson_load(DecisionService& svc, const LoadGenConfig& cfg) {
  using clock = std::chrono::steady_clock;
  util::Rng rng(cfg.seed);

  LoadReport report;
  report.offered = std::max(0, cfg.sessions);

  const auto start = clock::now();
  ArrivalClock arrivals(cfg, rng);
  double arrival_s = 0.0;
  for (int i = 0; i < report.offered; ++i) {
    // Seeded inter-arrival draw (exponential / MMPP / bounded Pareto) —
    // the offered trace is identical across runs with the same config.
    arrival_s += arrivals.next_gap_s();
    const auto due =
        start + std::chrono::duration_cast<clock::duration>(
                    std::chrono::duration<double>(arrival_s));
    std::this_thread::sleep_until(due);
    svc.submit(draw_catalog_spec(cfg, rng));
  }
  // Open loop ends here; wait for the service to finish what it admitted
  // (unless a multi-generator caller waits once for all of them).
  if (cfg.wait_idle) svc.wait_idle();
  report.duration_s =
      std::chrono::duration<double>(clock::now() - start).count();

  const DecisionService::Counters c = svc.counters();
  report.admitted = c.admitted;
  report.shed = c.shed;
  report.completed = c.completed;
  report.quarantined = c.quarantined;
  report.aborted = c.aborted;
  report.retries = c.retries;
  report.decisions = c.decisions;
  report.timeouts = c.timeouts;
  report.fallbacks = c.fallbacks;
  if (report.duration_s > 0.0) {
    report.sessions_per_s =
        static_cast<double>(report.completed) / report.duration_s;
    report.decisions_per_s =
        static_cast<double>(report.decisions) / report.duration_s;
  }

  std::vector<double> latencies;
  double makespan_sum = 0.0;
  std::size_t makespans = 0;
  for (const SessionResult& r : svc.results()) {
    latencies.insert(latencies.end(), r.decide_us.begin(), r.decide_us.end());
    if (r.state == SessionState::kCompleted) {
      makespan_sum += r.makespan;
      ++makespans;
    }
  }
  report.p50_decide_us = percentile(latencies, 50.0);
  report.p99_decide_us = percentile(latencies, 99.0);
  if (makespans > 0) {
    report.mean_makespan = makespan_sum / static_cast<double>(makespans);
  }
  return report;
}

}  // namespace readys::serve
