#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace readys::obs {

/// Reproducibility record written next to every artifact a run produces:
/// the full configuration that generated it, the seeds, the (simulated)
/// platform spec, the build flags, and wall-clock start/end times.
/// Schema documented in docs/observability.md ("readys-manifest/1").
///
/// Construction stamps the start time; write() stamps the end time, so
/// one manifest object should live for the duration of the run.
class RunManifest {
 public:
  explicit RunManifest(std::string tool);

  /// Adds one config entry (last set for a key wins at write time is NOT
  /// implemented — keys are emitted in insertion order, so set each key
  /// once).
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, int value);
  void set(const std::string& key, bool value);
  /// Adds a pre-rendered JSON value (array/object) under `key`.
  void set_raw(const std::string& key, const std::string& raw_json);

  /// Records an artifact path this run produced.
  void add_output(const std::string& path);

  /// Renders the manifest (with the end time = now) as one JSON object.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws std::runtime_error on failure.
  void write(const std::string& path) const;

  /// Conventional manifest location for an artifact:
  /// "results.csv" -> "results.csv.manifest.json".
  static std::string sibling_path(const std::string& artifact_path);

 private:
  std::string tool_;
  std::chrono::system_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> config_;  // key -> raw JSON
  std::vector<std::string> outputs_;
};

}  // namespace readys::obs
