#include "obs/manifest.hpp"

#include <cmath>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/sink.hpp"

#ifndef READYS_BUILD_TYPE
#define READYS_BUILD_TYPE "unknown"
#endif
#ifndef READYS_SANITIZE_FLAGS
#define READYS_SANITIZE_FLAGS ""
#endif

namespace readys::obs {

namespace {

std::string iso8601_utc(std::chrono::system_clock::time_point tp) {
  const std::time_t t = std::chrono::system_clock::to_time_t(tp);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

RunManifest::RunManifest(std::string tool)
    : tool_(std::move(tool)), start_(std::chrono::system_clock::now()) {}

void RunManifest::set(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void RunManifest::set(const std::string& key, const char* value) {
  set(key, std::string(value));
}

void RunManifest::set(const std::string& key, double value) {
  if (std::isfinite(value)) {
    std::ostringstream os;
    os.precision(15);
    os << value;
    config_.emplace_back(key, os.str());
  } else {
    config_.emplace_back(key, "null");
  }
}

void RunManifest::set(const std::string& key, std::int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunManifest::set(const std::string& key, int value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunManifest::set(const std::string& key, bool value) {
  config_.emplace_back(key, value ? "true" : "false");
}

void RunManifest::set_raw(const std::string& key, const std::string& raw_json) {
  config_.emplace_back(key, raw_json);
}

void RunManifest::add_output(const std::string& path) {
  outputs_.push_back(path);
}

std::string RunManifest::to_json() const {
  JsonObject build;
  build.field("compiler", compiler_id())
      .field("cxx_standard", static_cast<std::int64_t>(__cplusplus))
      .field("build_type", READYS_BUILD_TYPE)
      .field("sanitizers", READYS_SANITIZE_FLAGS);

  JsonObject host;
  host.field("hardware_threads",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  std::ostringstream config;
  config << "{";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i) config << ",";
    config << "\"" << json_escape(config_[i].first)
           << "\":" << config_[i].second;
  }
  config << "}";

  std::ostringstream outputs;
  outputs << "[";
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (i) outputs << ",";
    outputs << "\"" << json_escape(outputs_[i]) << "\"";
  }
  outputs << "]";

  JsonObject root;
  root.field("schema", "readys-manifest/1")
      .field("tool", tool_)
      .field("start_time", iso8601_utc(start_))
      .field("end_time", iso8601_utc(std::chrono::system_clock::now()))
      .raw("build", build.str())
      .raw("host", host.str())
      .raw("config", config.str())
      .raw("outputs", outputs.str());
  return root.str();
}

void RunManifest::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("RunManifest::write: cannot open " + path);
  }
  out << to_json() << '\n';
  out.flush();
  if (!out) {
    throw std::runtime_error("RunManifest::write: write failed for " + path);
  }
}

std::string RunManifest::sibling_path(const std::string& artifact_path) {
  return artifact_path + ".manifest.json";
}

}  // namespace readys::obs
