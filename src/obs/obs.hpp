#pragma once

/// \file obs.hpp
/// Umbrella header for the telemetry subsystem: a process-wide metrics
/// registry (counters / gauges / fixed-bucket histograms, striped over
/// per-thread shards), RAII wall-clock spans rendered as Chrome trace
/// events, a JSONL metrics sink, and run manifests.
///
/// Lifecycle:
/// \code
///   obs::TelemetryConfig cfg;
///   cfg.metrics_path = "train.metrics.jsonl";
///   cfg.trace_path = "train.trace.json";
///   obs::install(cfg);          // or obs::install_from_env()
///   ...                         // instrumented code runs
///   obs::shutdown();            // flush sink, write merged trace
/// \endcode
///
/// Instrumentation pattern (≈zero-cost when disabled — one atomic load
/// and a branch):
/// \code
///   if (obs::Telemetry* t = obs::telemetry()) t->env_steps.add();
///   obs::Span span("rl/policy_forward");   // no-op unless tracing
/// \endcode

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
