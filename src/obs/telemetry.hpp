#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"

namespace readys::obs {

/// What to collect and where to put it. Everything is off until a
/// Telemetry built from this config is install()ed.
struct TelemetryConfig {
  /// JSONL sink for per-episode training rows and the final metrics
  /// snapshot; empty keeps metrics in memory only (snapshot on demand).
  std::string metrics_path;
  /// Chrome trace JSON written at shutdown(); empty disables span
  /// collection entirely (Span construction stays a no-op).
  std::string trace_path;
  /// Upper bound on stored spans; later spans count as dropped.
  std::size_t max_trace_events = 1u << 20;
  /// Sink rows between forced flushes.
  int flush_every = 32;
};

/// Process-wide telemetry: one metrics registry, one span collector, one
/// optional JSONL sink. Instrumentation sites reach it through the
/// global telemetry() pointer — a single relaxed-ish atomic load — so
/// the whole subsystem costs one predictable branch when disabled.
///
/// The well-known counters/histograms below are resolved once at
/// construction; hot paths use them directly instead of paying a
/// name lookup per increment.
class Telemetry {
  // Data members first: the public instrument references below are bound
  // by calling into registry_, so the registry must be constructed
  // before them (members initialize in declaration order).
  TelemetryConfig config_;
  MetricsRegistry registry_;
  TraceCollector tracer_;
  std::unique_ptr<JsonlSink> sink_;
  bool tracing_ = false;
  bool finalized_ = false;
  std::vector<std::string> extra_fragments_;

 public:
  explicit Telemetry(TelemetryConfig config);

  MetricsRegistry& registry() noexcept { return registry_; }
  TraceCollector& tracer() noexcept { return tracer_; }
  /// Null when no metrics_path was configured.
  JsonlSink* sink() noexcept { return sink_.get(); }
  bool tracing() const noexcept { return tracing_; }
  const TelemetryConfig& config() const noexcept { return config_; }

  /// Extra Chrome-trace event fragments (e.g. the simulated schedule
  /// from sim::chrome_trace_events) merged into the trace file ahead of
  /// the wall-clock spans.
  void add_trace_fragment(std::string fragment);

  /// Flushes the sink (appending one final metrics-snapshot row) and, if
  /// a trace_path is configured, writes the merged Chrome trace file.
  /// Called by obs::shutdown(); safe to call repeatedly.
  void finalize();

  // --- well-known instruments (names in docs/observability.md) --------
  Counter& sim_tasks_started;   ///< sim.tasks_started
  Counter& sim_events;          ///< sim.events (engine advance() calls)
  Counter& sim_episodes;        ///< sim.episodes (engine resets)
  Counter& env_steps;           ///< rl.env_steps
  Counter& env_resets;          ///< rl.env_resets
  Counter& vec_steps;           ///< rl.vec_steps (batched VecEnv::step calls)
  Counter& policy_forwards;     ///< rl.policy_forwards
  Counter& encoder_delta_events;///< rl.encoder_delta_events (incremental
                                ///< re-encodes that reused the window)
  Counter& optim_updates;       ///< rl.optimizer_updates
  Counter& optim_skipped;       ///< rl.skipped_updates
  Counter& checkpoint_writes;   ///< rl.checkpoint_writes
  Counter& ckpt_fallbacks;      ///< ckpt.fallbacks (corrupt files skipped)
  Counter& sched_decisions;     ///< sched.decisions (assignments bound)
  Counter& sched_fallbacks;     ///< sched.fallback_decisions (guard trips)
  Counter& pool_tasks;          ///< util.pool_tasks
  Counter& eval_runs;           ///< core.eval_runs
  Counter& serve_admitted;      ///< serve.admitted (sessions accepted)
  Counter& serve_shed;          ///< serve.shed (admissions rejected)
  Counter& serve_completed;     ///< serve.completed (sessions finished clean)
  Counter& serve_quarantined;   ///< serve.quarantined (sessions isolated)
  Counter& serve_retries;       ///< serve.retries (transient-fault resubmits)
  Counter& serve_decisions;     ///< serve.decisions (actions issued)
  Counter& serve_timeouts;      ///< serve.deadline_timeouts (budget blown)
  Counter& serve_fallbacks;     ///< serve.fallback_decisions (MCT degrades)
  Counter& serve_reloads;       ///< serve.reloads (weight versions published)
  Counter& serve_reload_rejects;  ///< serve.reload_rejects (validation fails)
  Counter& serve_worker_restarts; ///< serve.worker_restarts (supervisor)
  Counter& serve_tenant_shed;   ///< serve.tenant_shed (QoS rate-limit/evict)
  Counter& sink_errors;         ///< obs.sink_errors (dropped sink rows)
  Counter& cluster_steals;      ///< cluster.steals (steal attempts landed)
  Counter& cluster_stolen;      ///< cluster.stolen_tasks (tasks migrated)
  Counter& cluster_hb_transitions;  ///< cluster.heartbeat_transitions
  Counter& cluster_rescues;     ///< cluster.rescue_fallbacks (full-view MCT)
  Counter& cluster_dropped;     ///< cluster.dropped_assignments (stale inner)
  Gauge& pool_queue_depth;      ///< util.pool_queue_depth
  Gauge& train_envs;            ///< train.envs (width of the vector env)
  Gauge& serve_queue_depth;     ///< serve.queue_depth (admission queue)
  Gauge& serve_active;          ///< serve.active_sessions
  Gauge& serve_active_weight_version;  ///< serve.active_weight_version
  Histogram& env_step_us;       ///< rl.env_step_us
  Histogram& vec_step_us;       ///< rl.vec_step_us (whole-batch latency)
  Histogram& policy_forward_us; ///< rl.policy_forward_us
  Histogram& infer_us;          ///< rl.infer_us (InferenceBackend latency)
  Histogram& update_us;         ///< rl.update_us
  Histogram& serve_decide_us;   ///< serve.decide_us (per-session latency)
  Histogram& cluster_stale_age; ///< cluster.stale_view_age_ms (sim time)
};

namespace detail {
extern std::atomic<Telemetry*> g_telemetry;
}

/// The installed telemetry, or nullptr when disabled. This is THE
/// hot-path gate: every instrumentation site loads it once and branches.
inline Telemetry* telemetry() noexcept {
  return detail::g_telemetry.load(std::memory_order_acquire);
}

inline bool enabled() noexcept { return telemetry() != nullptr; }

/// Creates and installs the process-wide telemetry. Returns false (and
/// does nothing) if one is already installed. Throws if an output path
/// cannot be opened.
bool install(TelemetryConfig config);

/// Finalizes (flush + trace write) and destroys the installed telemetry.
/// No-op when none is installed.
void shutdown();

/// install() driven by READYS_METRICS_OUT / READYS_TRACE_OUT; returns
/// true when either variable was set and telemetry is now installed.
bool install_from_env();

}  // namespace readys::obs
