#include "obs/telemetry.hpp"

#include <cstdlib>
#include <mutex>

#include "util/logging.hpp"

namespace readys::obs {

namespace detail {
std::atomic<Telemetry*> g_telemetry{nullptr};
}

namespace {

// Guards install/shutdown transitions (not the hot path).
std::mutex g_lifecycle_mutex;
std::unique_ptr<Telemetry> g_owned;

}  // namespace

Telemetry::Telemetry(TelemetryConfig config)
    : config_(std::move(config)),
      tracer_(config_.max_trace_events),
      sim_tasks_started(registry_.counter("sim.tasks_started")),
      sim_events(registry_.counter("sim.events")),
      sim_episodes(registry_.counter("sim.episodes")),
      env_steps(registry_.counter("rl.env_steps")),
      env_resets(registry_.counter("rl.env_resets")),
      vec_steps(registry_.counter("rl.vec_steps")),
      policy_forwards(registry_.counter("rl.policy_forwards")),
      encoder_delta_events(registry_.counter("rl.encoder_delta_events")),
      optim_updates(registry_.counter("rl.optimizer_updates")),
      optim_skipped(registry_.counter("rl.skipped_updates")),
      checkpoint_writes(registry_.counter("rl.checkpoint_writes")),
      ckpt_fallbacks(registry_.counter("ckpt.fallbacks")),
      sched_decisions(registry_.counter("sched.decisions")),
      sched_fallbacks(registry_.counter("sched.fallback_decisions")),
      pool_tasks(registry_.counter("util.pool_tasks")),
      eval_runs(registry_.counter("core.eval_runs")),
      serve_admitted(registry_.counter("serve.admitted")),
      serve_shed(registry_.counter("serve.shed")),
      serve_completed(registry_.counter("serve.completed")),
      serve_quarantined(registry_.counter("serve.quarantined")),
      serve_retries(registry_.counter("serve.retries")),
      serve_decisions(registry_.counter("serve.decisions")),
      serve_timeouts(registry_.counter("serve.deadline_timeouts")),
      serve_fallbacks(registry_.counter("serve.fallback_decisions")),
      serve_reloads(registry_.counter("serve.reloads")),
      serve_reload_rejects(registry_.counter("serve.reload_rejects")),
      serve_worker_restarts(registry_.counter("serve.worker_restarts")),
      serve_tenant_shed(registry_.counter("serve.tenant_shed")),
      sink_errors(registry_.counter("obs.sink_errors")),
      cluster_steals(registry_.counter("cluster.steals")),
      cluster_stolen(registry_.counter("cluster.stolen_tasks")),
      cluster_hb_transitions(registry_.counter("cluster.heartbeat_transitions")),
      cluster_rescues(registry_.counter("cluster.rescue_fallbacks")),
      cluster_dropped(registry_.counter("cluster.dropped_assignments")),
      pool_queue_depth(registry_.gauge("util.pool_queue_depth")),
      train_envs(registry_.gauge("train.envs")),
      serve_queue_depth(registry_.gauge("serve.queue_depth")),
      serve_active(registry_.gauge("serve.active_sessions")),
      serve_active_weight_version(
          registry_.gauge("serve.active_weight_version")),
      env_step_us(registry_.histogram("rl.env_step_us")),
      vec_step_us(registry_.histogram("rl.vec_step_us")),
      policy_forward_us(registry_.histogram("rl.policy_forward_us")),
      infer_us(registry_.histogram("rl.infer_us")),
      update_us(registry_.histogram("rl.update_us")),
      serve_decide_us(registry_.histogram("serve.decide_us")),
      cluster_stale_age(registry_.histogram(
          "cluster.stale_view_age_ms",
          {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 1000.0})) {
  if (!config_.metrics_path.empty()) {
    sink_ = std::make_unique<JsonlSink>(config_.metrics_path,
                                        config_.flush_every);
  }
  tracing_ = !config_.trace_path.empty();
}

void Telemetry::add_trace_fragment(std::string fragment) {
  extra_fragments_.push_back(std::move(fragment));
}

void Telemetry::finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (sink_) {
    JsonObject row;
    row.field("row", "metrics_snapshot")
        .raw("metrics", registry_.snapshot().to_json())
        .field("trace_events", static_cast<std::uint64_t>(tracer_.size()))
        .field("trace_events_dropped", tracer_.dropped());
    // finalize() runs on shutdown paths (including destructors such as
    // bench::BenchRun's); a full disk must not escalate to terminate().
    // The drop is still counted in obs.sink_errors and logged.
    try {
      sink_->write(row.str());
      sink_->flush();
    } catch (const std::exception& e) {
      util::log_error() << "telemetry finalize: " << e.what();
    }
  }
  if (!config_.trace_path.empty()) {
    std::vector<std::string> fragments = extra_fragments_;
    fragments.push_back(tracer_.events_json());
    write_chrome_trace_file(config_.trace_path, fragments);
  }
}

bool install(TelemetryConfig config) {
  std::lock_guard lock(g_lifecycle_mutex);
  if (g_owned) return false;
  g_owned = std::make_unique<Telemetry>(std::move(config));
  detail::g_telemetry.store(g_owned.get(), std::memory_order_release);
  return true;
}

void shutdown() {
  std::lock_guard lock(g_lifecycle_mutex);
  if (!g_owned) return;
  // Unpublish first so instrumentation on other threads stops observing
  // before the instance is finalized and destroyed. (Racing threads must
  // not hold a Telemetry* across shutdown — in practice install/shutdown
  // bracket the whole run.)
  detail::g_telemetry.store(nullptr, std::memory_order_release);
  g_owned->finalize();
  g_owned.reset();
}

bool install_from_env() {
  const char* metrics = std::getenv("READYS_METRICS_OUT");
  const char* trace = std::getenv("READYS_TRACE_OUT");
  if ((metrics == nullptr || *metrics == '\0') &&
      (trace == nullptr || *trace == '\0')) {
    return false;
  }
  TelemetryConfig cfg;
  if (metrics != nullptr) cfg.metrics_path = metrics;
  if (trace != nullptr) cfg.trace_path = trace;
  return install(std::move(cfg));
}

}  // namespace readys::obs
