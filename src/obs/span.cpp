#include "obs/span.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace readys::obs {

TraceCollector::TraceCollector(std::size_t max_events)
    : start_(std::chrono::steady_clock::now()), max_events_(max_events) {}

double TraceCollector::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void TraceCollector::record(const char* name, const char* cat, double ts_us,
                            double dur_us) {
  std::lock_guard lock(mutex_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(TraceEvent{
      name, cat, ts_us, dur_us,
      static_cast<std::uint32_t>(detail::thread_index())});
}

std::size_t TraceCollector::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::string TraceCollector::events_json() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard lock(mutex_);
    events = events_;
  }
  if (events.empty()) return {};
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  std::set<std::uint32_t> tids;
  for (const auto& e : events) tids.insert(e.tid);

  std::ostringstream os;
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,"
        "\"args\":{\"name\":\"training (wall clock)\"}}";
  for (std::uint32_t tid : tids) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":" << tid
       << ",\"args\":{\"name\":\"thread " << tid << "\"}}";
  }
  for (const auto& e : events) {
    os << ",{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
       << "\",\"ph\":\"X\",\"pid\":2,\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << "}";
  }
  return os.str();
}

Span::Span(const char* name, const char* cat, Histogram* latency) noexcept {
  Telemetry* t = telemetry();
  if (t == nullptr) return;
  if (t->tracing()) collector_ = &t->tracer();
  latency_ = latency;
  if (collector_ == nullptr && latency_ == nullptr) return;
  name_ = name;
  cat_ = cat;
  t0_ = std::chrono::steady_clock::now();
  if (collector_ != nullptr) start_us_ = collector_->now_us();
}

Span::~Span() {
  if (collector_ == nullptr && latency_ == nullptr) return;
  const double dur_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0_)
                            .count();
  if (latency_ != nullptr) latency_->observe(dur_us);
  if (collector_ != nullptr) {
    collector_->record(name_, cat_, start_us_, dur_us);
  }
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<std::string>& fragments) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
  }
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& f : fragments) {
    if (f.empty()) continue;
    if (!first) out << ",";
    first = false;
    out << f;
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  out.flush();
  if (!out) {
    throw std::runtime_error("write_chrome_trace_file: write failed for " +
                             path);
  }
}

}  // namespace readys::obs
