#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

namespace readys::obs {

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

/// Minimal builder for one flat JSON object. Doubles render as `null`
/// when non-finite (bare NaN/Inf is invalid JSON).
class JsonObject {
 public:
  JsonObject() { os_.precision(15); }

  JsonObject& field(const std::string& key, const std::string& v);
  JsonObject& field(const std::string& key, const char* v);
  JsonObject& field(const std::string& key, double v);
  JsonObject& field(const std::string& key, std::int64_t v);
  JsonObject& field(const std::string& key, std::uint64_t v);
  JsonObject& field(const std::string& key, int v);
  JsonObject& field(const std::string& key, bool v);
  /// Splices `raw_json` in verbatim (for nested objects/arrays).
  JsonObject& raw(const std::string& key, const std::string& raw_json);

  std::string str() const;  ///< "{...}"

 private:
  std::ostringstream& key(const std::string& k);

  std::ostringstream os_;
  bool first_ = true;
};

/// Line-oriented JSON sink: one object per line, buffered, flushed to
/// disk every `flush_every` rows and on destruction. write() is
/// thread-safe; rows from concurrent writers interleave whole-line.
///
/// Durability contract (matching rl/checkpoint.cpp): a short or failed
/// write is never swallowed. Because the stream buffers, the OS error
/// (`EIO`, `ENOSPC`, ...) surfaces at the flush boundary — every
/// `flush_every` rows, on an explicit flush(), and at destruction —
/// as a std::runtime_error naming the sink path and the errno text.
/// Each failed write/flush also counts into write_errors() and the
/// `obs.sink_errors` metric (when telemetry is installed), so dropped
/// telemetry rows are visible even where the throw is caught. The
/// destructor flushes best-effort and only counts, never throws.
class JsonlSink {
 public:
  /// Throws std::runtime_error if `path` cannot be opened.
  explicit JsonlSink(std::string path, int flush_every = 32);
  ~JsonlSink();

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Appends one line; `json_object` must be a complete JSON value.
  /// Throws std::runtime_error when the row (or the buffered rows it
  /// forced out) could not be written.
  void write(const std::string& json_object);
  /// Forces buffered rows to disk; throws std::runtime_error on failure.
  void flush();

  const std::string& path() const noexcept { return path_; }
  std::uint64_t rows() const noexcept;
  /// Failed write/flush attempts observed so far (rows dropped).
  std::uint64_t write_errors() const noexcept;

 private:
  /// Records one failed attempt (counter + obs.sink_errors) and, when
  /// `may_throw`, raises std::runtime_error with the path and errno.
  void record_failure(const char* what, bool may_throw);

  std::string path_;
  int flush_every_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  int since_flush_ = 0;
  std::uint64_t rows_ = 0;
  std::uint64_t write_errors_ = 0;
};

}  // namespace readys::obs
