#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

namespace readys::obs {

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

/// Minimal builder for one flat JSON object. Doubles render as `null`
/// when non-finite (bare NaN/Inf is invalid JSON).
class JsonObject {
 public:
  JsonObject() { os_.precision(15); }

  JsonObject& field(const std::string& key, const std::string& v);
  JsonObject& field(const std::string& key, const char* v);
  JsonObject& field(const std::string& key, double v);
  JsonObject& field(const std::string& key, std::int64_t v);
  JsonObject& field(const std::string& key, std::uint64_t v);
  JsonObject& field(const std::string& key, int v);
  JsonObject& field(const std::string& key, bool v);
  /// Splices `raw_json` in verbatim (for nested objects/arrays).
  JsonObject& raw(const std::string& key, const std::string& raw_json);

  std::string str() const;  ///< "{...}"

 private:
  std::ostringstream& key(const std::string& k);

  std::ostringstream os_;
  bool first_ = true;
};

/// Line-oriented JSON sink: one object per line, buffered, flushed to
/// disk every `flush_every` rows and on destruction. write() is
/// thread-safe; rows from concurrent writers interleave whole-line.
class JsonlSink {
 public:
  /// Throws std::runtime_error if `path` cannot be opened.
  explicit JsonlSink(std::string path, int flush_every = 32);
  ~JsonlSink();

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  /// Appends one line; `json_object` must be a complete JSON value.
  void write(const std::string& json_object);
  void flush();

  const std::string& path() const noexcept { return path_; }
  std::uint64_t rows() const noexcept;

 private:
  std::string path_;
  int flush_every_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  int since_flush_ = 0;
  std::uint64_t rows_ = 0;
};

}  // namespace readys::obs
