#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace readys::obs {

namespace detail {

/// Small dense id for the calling thread, assigned on first use and
/// stable for the thread's lifetime. Shared by the metric shards (modulo
/// kShards) and the trace collector (Chrome `tid`).
std::size_t thread_index() noexcept;

}  // namespace detail

/// Number of independent slots a hot-path instrument is striped over.
/// Threads map onto slots by thread_index() % kShards, so increments
/// from different threads (almost) never touch the same cache line;
/// snapshot() sums the stripes. Power of two.
inline constexpr std::size_t kShards = 16;

/// Monotonically increasing event count. add() is wait-free (one relaxed
/// fetch_add on the caller's stripe); total() is a snapshot-time sum and
/// may miss increments that race with it, which is fine for telemetry.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_index() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins instantaneous value (queue depth, learning rate, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double get() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges of the
/// finite buckets; one overflow bucket is always appended, so counts()
/// has bounds.size() + 1 entries. observe() touches only the caller's
/// stripe (relaxed atomics); merging happens in snapshot accessors.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Merged per-bucket counts (last entry = overflow bucket).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const noexcept;
  double sum() const noexcept;

  /// Default edges for microsecond latency histograms.
  static std::vector<double> latency_us_bounds();

 private:
  struct alignas(64) Shard {
    // Flat [bucket] atomics, sized at construction; sum accumulated via
    // CAS (atomic<double>::fetch_add is not guaranteed lock-free
    // everywhere).
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };

  std::vector<double> bounds_;
  std::array<Shard, kShards> shards_;
};

/// One merged, point-in-time view of a registry, in deterministic
/// (name-sorted) order. Two snapshots taken with no writes in between
/// render to identical JSON.
struct MetricsSnapshot {
  struct HistogramView {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramView> histograms;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
};

/// Thread-safe name -> instrument registry. Instruments are created on
/// first lookup and never destroyed before the registry, so call sites
/// may cache the returned references. Lookups take a mutex — resolve
/// handles once, outside hot loops.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is honored on the creating call only; empty uses
  /// Histogram::latency_us_bounds().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // std::map: sorted iteration gives deterministic snapshots, node-based
  // storage gives stable addresses for the unique_ptr payloads.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace readys::obs
