#include "obs/sink.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace readys::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::ostringstream& JsonObject::key(const std::string& k) {
  if (!first_) os_ << ",";
  first_ = false;
  os_ << "\"" << json_escape(k) << "\":";
  return os_;
}

JsonObject& JsonObject::field(const std::string& k, const std::string& v) {
  key(k) << "\"" << json_escape(v) << "\"";
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, const char* v) {
  return field(k, std::string(v));
}

JsonObject& JsonObject::field(const std::string& k, double v) {
  if (std::isfinite(v)) {
    key(k) << v;
  } else {
    key(k) << "null";
  }
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, std::int64_t v) {
  key(k) << v;
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, std::uint64_t v) {
  key(k) << v;
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, int v) {
  key(k) << v;
  return *this;
}

JsonObject& JsonObject::field(const std::string& k, bool v) {
  key(k) << (v ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::raw(const std::string& k, const std::string& raw_json) {
  key(k) << raw_json;
  return *this;
}

std::string JsonObject::str() const { return "{" + os_.str() + "}"; }

JsonlSink::JsonlSink(std::string path, int flush_every)
    : path_(std::move(path)),
      flush_every_(flush_every < 1 ? 1 : flush_every),
      out_(path_, std::ios::trunc) {
  if (!out_) {
    throw std::runtime_error("JsonlSink: cannot open " + path_);
  }
}

JsonlSink::~JsonlSink() {
  std::lock_guard lock(mutex_);
  errno = 0;
  out_.flush();
  if (!out_) record_failure("final flush", /*may_throw=*/false);
}

void JsonlSink::write(const std::string& json_object) {
  std::lock_guard lock(mutex_);
  errno = 0;
  out_ << json_object << '\n';
  ++rows_;
  if (++since_flush_ >= flush_every_) {
    out_.flush();
    since_flush_ = 0;
  }
  if (!out_) record_failure("write", /*may_throw=*/true);
}

void JsonlSink::flush() {
  std::lock_guard lock(mutex_);
  errno = 0;
  out_.flush();
  since_flush_ = 0;
  if (!out_) record_failure("flush", /*may_throw=*/true);
}

std::uint64_t JsonlSink::rows() const noexcept {
  std::lock_guard lock(mutex_);
  return rows_;
}

std::uint64_t JsonlSink::write_errors() const noexcept {
  std::lock_guard lock(mutex_);
  return write_errors_;
}

void JsonlSink::record_failure(const char* what, bool may_throw) {
  ++write_errors_;
  // The telemetry sink and this sink can be the same object; the counter
  // is lock-free so re-entry is safe, and counting drops even for our own
  // metrics file is exactly the point of obs.sink_errors.
  if (Telemetry* t = telemetry()) t->sink_errors.add(1);
  const int err = errno;
  // Clear the stream fault so later rows can still try: one full disk
  // should not permanently wedge an otherwise recoverable sink.
  out_.clear();
  if (!may_throw) return;
  std::string msg = "JsonlSink: " + std::string(what) + " failed for " +
                    path_ + ": " +
                    (err != 0 ? std::strerror(err) : "short write");
  throw std::runtime_error(msg);
}

}  // namespace readys::obs
