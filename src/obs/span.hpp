#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace readys::obs {

/// One completed ("X") Chrome trace event on the wall-clock timeline.
struct TraceEvent {
  const char* name = "";  ///< static string (span call sites use literals)
  const char* cat = "";
  double ts_us = 0.0;   ///< microseconds since collector construction
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

/// Collects wall-clock spans from the training/inference stack and
/// renders them as a Chrome trace-event fragment under pid 2, so a
/// single Perfetto load shows them above the simulated schedule (pid 1,
/// sim::to_chrome_trace). Bounded: beyond `max_events` new spans are
/// counted as dropped instead of stored.
class TraceCollector {
 public:
  explicit TraceCollector(std::size_t max_events = 1u << 20);

  /// Microseconds of steady-clock time since construction.
  double now_us() const noexcept;

  void record(const char* name, const char* cat, double ts_us,
              double dur_us);

  std::size_t size() const;
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Comma-joined event fragment (no enclosing array): process/thread
  /// metadata first, then the spans sorted by start time. Empty string
  /// when nothing was recorded.
  std::string events_json() const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::size_t max_events_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII wall-clock span: emits one trace event into the installed
/// telemetry's collector (when tracing is on) and/or one observation
/// into `latency` (when non-null). When telemetry is disabled the
/// constructor is a single atomic load and a branch.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "train",
                Histogram* latency = nullptr) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceCollector* collector_ = nullptr;  ///< null: no event to emit
  Histogram* latency_ = nullptr;
  const char* name_ = "";
  const char* cat_ = "";
  double start_us_ = 0.0;
  std::chrono::steady_clock::time_point t0_;
};

/// Writes a Chrome trace JSON file composed of the given event
/// fragments (each a comma-joined event list, empty fragments skipped).
/// Throws std::runtime_error on I/O failure.
void write_chrome_trace_file(const std::string& path,
                             const std::vector<std::string>& fragments);

}  // namespace readys::obs
