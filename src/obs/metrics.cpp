#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace readys::obs {

namespace detail {

std::size_t thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = latency_us_bounds();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
  const std::size_t n = bounds_.size() + 1;  // + overflow
  for (auto& s : shards_) {
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t b = 0; b < n; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<double> Histogram::latency_us_bounds() {
  return {1,    2,    5,    10,    20,    50,    100,    200,    500,
          1000, 2000, 5000, 10000, 20000, 50000, 100000, 200000, 500000};
}

void Histogram::observe(double v) noexcept {
  // lower_bound: first edge >= v, so an observation equal to an edge
  // lands in that edge's bucket (inclusive upper edges).
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[detail::thread_index() % kShards];
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  double old = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(old, old + v,
                                      std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < out.size(); ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) {
    sum += s.count.load(std::memory_order_relaxed);
  }
  return sum;
}

double Histogram::sum() const noexcept {
  double sum = 0.0;
  for (const auto& s : shards_) sum += s.sum.load(std::memory_order_relaxed);
  return sum;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->total());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->get());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramView view;
    view.name = name;
    view.bounds = h->bounds();
    view.counts = h->counts();
    view.count = h->count();
    view.sum = h->sum();
    snap.histograms.push_back(std::move(view));
  }
  return snap;
}

namespace {

void append_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // bare NaN/Inf is invalid JSON
  } else {
    os << v;
  }
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) os << ",";
    os << "\"" << counters[i].first << "\":" << counters[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i) os << ",";
    os << "\"" << gauges[i].first << "\":";
    append_number(os, gauges[i].second);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    if (i) os << ",";
    os << "\"" << h.name << "\":{\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b) os << ",";
      append_number(os, h.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b) os << ",";
      os << h.counts[b];
    }
    os << "],\"count\":" << h.count << ",\"sum\":";
    append_number(os, h.sum);
    os << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace readys::obs
