#pragma once

#include <optional>
#include <vector>

#include "dag/task_graph.hpp"
#include "sim/comm_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/noise.hpp"
#include "sim/platform.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace readys::sim {

/// A task currently being executed.
struct RunningInfo {
  dag::TaskId task = dag::kInvalidTask;
  ResourceId resource = -1;
  double start = 0.0;
  double actual_finish = 0.0;    ///< hidden from schedulers
  double expected_finish = 0.0;  ///< start + E(task, resource): observable
};

/// Discrete-event core shared by the callback Simulator and the RL
/// environment.
///
/// The engine owns the dynamic state of one execution: the simulation
/// clock, the ready set, the running tasks (with their noisy actual
/// durations, hidden from schedulers), and the trace. Schedulers observe
/// *expected* completion times only — the stochastic setting of the paper.
class SimEngine {
 public:
  SimEngine(const dag::TaskGraph& graph, const Platform& platform,
            const CostModel& costs, double sigma, std::uint64_t seed);

  /// Engine with a communication model: starting a task first ships its
  /// inputs from the resources that produced them (serialized, then
  /// compute). With CommModel::free() this is identical to the 5-arg
  /// constructor — the paper's zero-communication assumption.
  SimEngine(const dag::TaskGraph& graph, const Platform& platform,
            const CostModel& costs, const CommModel& comm, double sigma,
            std::uint64_t seed);

  /// Restores the initial state (sources ready, clock at 0) with a fresh
  /// noise stream derived from `seed`.
  void reset(std::uint64_t seed);

  double now() const noexcept { return now_; }
  bool finished() const noexcept {
    return completed_ == graph_->num_tasks();
  }
  std::size_t num_completed() const noexcept { return completed_; }

  /// Tasks whose predecessors all completed and that are not yet started,
  /// in ascending id order.
  const std::vector<dag::TaskId>& ready() const noexcept { return ready_; }

  /// Resources with nothing running, in ascending id order.
  std::vector<ResourceId> idle_resources() const;

  bool is_ready(dag::TaskId t) const;
  bool is_idle(ResourceId r) const {
    return resource_task_[static_cast<std::size_t>(r)] == dag::kInvalidTask;
  }
  bool is_done(dag::TaskId t) const {
    return done_[t];
  }
  /// Task running on r, or kInvalidTask.
  dag::TaskId running_on(ResourceId r) const {
    return resource_task_[static_cast<std::size_t>(r)];
  }

  /// Currently-running tasks.
  const std::vector<RunningInfo>& running() const noexcept { return running_; }
  bool any_running() const noexcept { return !running_.empty(); }

  /// Expected duration of `t` on resource `r` per the cost model
  /// (compute only, no communication).
  double expected_duration(dag::TaskId t, ResourceId r) const;

  /// Input-shipping delay `t` would pay before computing on `r` given
  /// where its predecessors ran; 0 without a communication model.
  /// Only meaningful when `t` is ready (its predecessors completed).
  double expected_input_delay(dag::TaskId t, ResourceId r) const;

  bool has_comm_model() const noexcept { return comm_.has_value(); }

  /// Observable availability estimate of resource r: now if idle, else
  /// the expected finish of its running task clamped to now.
  double expected_available_at(ResourceId r) const;

  /// Starts `t` on idle resource `r` at the current time; draws the
  /// actual (noisy) duration. Throws std::logic_error on protocol
  /// violations (task not ready / resource busy).
  void start(dag::TaskId t, ResourceId r);

  /// Advances the clock to the next task completion and retires every
  /// task finishing at that instant. Returns false when nothing was
  /// running (the clock cannot advance).
  bool advance();

  const dag::TaskGraph& graph() const noexcept { return *graph_; }
  const Platform& platform() const noexcept { return platform_; }
  const CostModel& costs() const noexcept { return costs_; }
  const NoiseModel& noise() const noexcept { return noise_; }
  const Trace& trace() const noexcept { return trace_; }

  /// Makespan so far (= final makespan once finished()).
  double makespan() const noexcept { return trace_.makespan(); }

  /// Number of start() calls since the last reset.
  std::size_t num_started() const noexcept { return started_; }

 private:
  void complete(std::size_t running_index);

  // The graph is held by reference (it can be large and is shared across
  // many engines); platform and cost model are tiny and copied so that
  // inline temporaries like Platform::hybrid(2, 2) are safe.
  const dag::TaskGraph* graph_;
  Platform platform_;
  CostModel costs_;
  std::optional<CommModel> comm_;
  NoiseModel noise_;
  util::Rng rng_;

  double now_ = 0.0;
  std::vector<std::size_t> missing_preds_;  // per task
  std::vector<bool> done_;
  std::vector<dag::TaskId> ready_;
  std::vector<RunningInfo> running_;
  std::vector<dag::TaskId> resource_task_;  // per resource
  std::vector<ResourceId> producer_of_;     // resource that ran each task
  Trace trace_;
  std::size_t completed_ = 0;
  std::size_t started_ = 0;
};

}  // namespace readys::sim
