#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dag/task_graph.hpp"
#include "sim/comm_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/fault_model.hpp"
#include "sim/noise.hpp"
#include "sim/platform.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace readys::sim {

/// A task currently being executed.
struct RunningInfo {
  dag::TaskId task = dag::kInvalidTask;
  ResourceId resource = -1;
  double start = 0.0;
  double actual_finish = 0.0;    ///< hidden from schedulers
  double expected_finish = 0.0;  ///< start + E(task, resource): observable
  std::uint64_t seq = 0;         ///< event sequence of this execution
};

/// Discrete-event core shared by the callback Simulator and the RL
/// environment.
///
/// The engine owns the dynamic state of one execution: the simulation
/// clock, the ready set, the running tasks (with their noisy actual
/// durations, hidden from schedulers), and the trace. Schedulers observe
/// *expected* completion times only — the stochastic setting of the paper.
///
/// With a FaultModel the engine additionally injects resource outages,
/// recoveries, transient slowdowns and task failures as events in the
/// same heap that drives completions. A resource that dies mid-task
/// discards the in-flight work and the task re-enters the ready set (and
/// is appended to ready_log() a second time — schedulers must treat the
/// log as append-only but not append-once). FaultModel::none() keeps
/// every fault branch dead and is bit-exact with the fault-free
/// constructors.
///
/// Hot-path complexity (R = ready-set width, P = platform size):
///  - is_ready          O(1)   membership bitmap
///  - start             O(log R + move) ordered erase from the ready set
///  - advance/complete  O(log P) per event via the event min-heap;
///                      newly-ready successors insert in O(log R + move)
///  - expected_duration O(1)   precomputed (kernel x resource) table
///  - expected_available_at O(1) per-resource expected-finish table
/// The ready set stays an ascending-id contiguous vector so ready() can
/// hand out a reference without materializing anything.
class SimEngine {
 public:
  SimEngine(const dag::TaskGraph& graph, const Platform& platform,
            const CostModel& costs, double sigma, std::uint64_t seed);

  /// Engine with a communication model: starting a task first ships its
  /// inputs from the resources that produced them (serialized, then
  /// compute). With CommModel::free() this is identical to the 5-arg
  /// constructor — the paper's zero-communication assumption.
  SimEngine(const dag::TaskGraph& graph, const Platform& platform,
            const CostModel& costs, const CommModel& comm, double sigma,
            std::uint64_t seed);

  /// Engine with fault injection. FaultModel::none() is bit-exact with
  /// the 5-arg constructor (pinned by tests/test_fault_model.cpp).
  /// Throws std::invalid_argument if the model fails validate().
  SimEngine(const dag::TaskGraph& graph, const Platform& platform,
            const CostModel& costs, const FaultModel& faults, double sigma,
            std::uint64_t seed);

  /// Communication model + fault injection.
  SimEngine(const dag::TaskGraph& graph, const Platform& platform,
            const CostModel& costs, const CommModel& comm,
            const FaultModel& faults, double sigma, std::uint64_t seed);

  /// Restores the initial state (sources ready, clock at 0, every
  /// resource up at full speed) with fresh noise and fault streams
  /// derived from `seed`.
  void reset(std::uint64_t seed);

  double now() const noexcept { return now_; }
  bool finished() const noexcept {
    return completed_ == graph_->num_tasks();
  }
  std::size_t num_completed() const noexcept { return completed_; }

  /// Tasks whose predecessors all completed and that are not yet started,
  /// in ascending id order.
  const std::vector<dag::TaskId>& ready() const noexcept { return ready_; }

  /// Append-only log of every task in the order it became ready this
  /// episode (sources first, then successors as completions release
  /// them). Entries are never removed when tasks start, so a scheduler
  /// can keep a cursor into this log and discover newly-ready work in
  /// O(new) instead of rescanning the whole ready set each decision.
  /// Under fault injection a task whose execution was lost re-enters the
  /// ready set and is appended *again* — the same id can appear multiple
  /// times, once per time it became ready.
  const std::vector<dag::TaskId>& ready_log() const noexcept {
    return ready_log_;
  }

  /// Resources that are up with nothing running, in ascending id order.
  std::vector<ResourceId> idle_resources() const;

  bool is_ready(dag::TaskId t) const noexcept {
    return t < in_ready_.size() && in_ready_[t] != 0;
  }
  /// Up and with nothing running. Down resources are never idle.
  bool is_idle(ResourceId r) const {
    return resource_up_[static_cast<std::size_t>(r)] != 0 &&
           resource_task_[static_cast<std::size_t>(r)] == dag::kInvalidTask;
  }
  bool is_done(dag::TaskId t) const {
    return done_[t];
  }
  /// Task running on r, or kInvalidTask.
  dag::TaskId running_on(ResourceId r) const {
    return resource_task_[static_cast<std::size_t>(r)];
  }

  /// Currently-running tasks, in start order.
  const std::vector<RunningInfo>& running() const noexcept { return running_; }
  bool any_running() const noexcept { return !running_.empty(); }

  /// Expected duration of `t` on resource `r` per the cost model
  /// (compute only, no communication). Table lookup; under fault
  /// injection the value is scaled by the resource's current slowdown
  /// factor, which is what a runtime's cost model would report for a
  /// degraded node.
  double expected_duration(dag::TaskId t, ResourceId r) const {
    const double d =
        duration_table_[static_cast<std::size_t>(graph_->kernel(t)) *
                            static_cast<std::size_t>(platform_.size()) +
                        static_cast<std::size_t>(r)];
    return fault_enabled_ ? d * speed_factor_[static_cast<std::size_t>(r)]
                          : d;
  }

  /// Input-shipping delay `t` would pay before computing on `r` given
  /// where its predecessors ran; 0 without a communication model.
  /// Only meaningful when `t` is ready (its predecessors completed).
  double expected_input_delay(dag::TaskId t, ResourceId r) const;

  bool has_comm_model() const noexcept { return comm_.has_value(); }

  // --- fault observability -------------------------------------------

  bool fault_enabled() const noexcept { return fault_enabled_; }
  const FaultModel& faults() const noexcept { return fault_; }
  /// False while r is in a fail-stop outage.
  bool is_up(ResourceId r) const {
    return resource_up_[static_cast<std::size_t>(r)] != 0;
  }
  /// Current duration multiplier of r (1.0 when healthy).
  double speed_factor(ResourceId r) const {
    return speed_factor_[static_cast<std::size_t>(r)];
  }
  /// Number of resources currently up.
  int num_up() const noexcept;
  std::size_t num_outages() const noexcept { return outages_; }
  std::size_t num_recoveries() const noexcept { return recoveries_; }
  /// Executions whose work was discarded (outage kills + task failures);
  /// each one re-entered the ready set for re-execution.
  std::size_t num_lost_executions() const noexcept {
    return lost_executions_;
  }

  /// Observable availability estimate of resource r: now if idle, else
  /// the expected finish of its running task clamped to now; +infinity
  /// while r is down (no completion can be promised — schedulers must
  /// not bind work there). Throws std::logic_error if the busy /
  /// expected-finish tables disagree (state corruption).
  double expected_available_at(ResourceId r) const;

  /// Starts `t` on idle resource `r` at the current time; draws the
  /// actual (noisy) duration. Throws std::logic_error on protocol
  /// violations (task not ready / resource busy or down).
  void start(dag::TaskId t, ResourceId r);

  /// Advances the clock to the next observable event — a task completing
  /// (all tasks finishing at that instant retire together), a task
  /// failing, or the platform changing (outage / recovery / slowdown
  /// edge). Returns false when no event is pending: nothing is running
  /// and no fault is scheduled, so the clock cannot advance.
  bool advance();

  const dag::TaskGraph& graph() const noexcept { return *graph_; }
  const Platform& platform() const noexcept { return platform_; }
  const CostModel& costs() const noexcept { return costs_; }
  const NoiseModel& noise() const noexcept { return noise_; }
  const Trace& trace() const noexcept { return trace_; }

  /// Resource that produced each completed task's output (-1 while the
  /// task has not completed). Drives communication-delay estimates and
  /// shard-locality placement.
  const std::vector<ResourceId>& producer_of() const noexcept {
    return producer_of_;
  }
  /// Flattened (kernel x resource) expected-duration table, row-major.
  const std::vector<double>& duration_table() const noexcept {
    return duration_table_;
  }
  /// The engine's communication model, or nullptr without one.
  const CommModel* comm_model() const noexcept {
    return comm_ ? &*comm_ : nullptr;
  }

  /// Makespan so far (= final makespan once finished()).
  double makespan() const noexcept { return trace_.makespan(); }

  /// Number of start() calls since the last reset.
  std::size_t num_started() const noexcept { return started_; }

 private:
  enum class EventKind : std::uint8_t {
    kFinish,         ///< task completes normally
    kFail,           ///< task occupied the resource, then its result is lost
    kOutage,         ///< resource dies (fail-stop)
    kRecovery,       ///< resource comes back up
    kSlowdownBegin,  ///< resource enters a degraded window
    kSlowdownEnd,    ///< degraded window ends
  };

  /// One pending event in the heap. Ties on time break by insertion
  /// sequence; in fault-free runs every event is a completion inserted
  /// at start(), which reproduces the retirement order of the historical
  /// linear-scan implementation exactly.
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    dag::TaskId task = dag::kInvalidTask;  ///< kFinish/kFail only
    ResourceId resource = -1;              ///< fault events only
    EventKind kind = EventKind::kFinish;
  };

  void insert_ready(dag::TaskId t);
  /// Pushes an event at absolute time `time`, assigning the next seq.
  std::uint64_t push_event(double time, dag::TaskId task, ResourceId r,
                           EventKind kind);
  /// Handles one popped event; sets `observable` when engine state a
  /// scheduler can see changed (completion, loss, topology or speed).
  void dispatch(const Event& ev, bool& observable);
  void complete(const RunningInfo& info);
  /// Discards the in-flight execution on `r` and re-readies its task.
  void kill_running(ResourceId r);
  /// True if taking `r` down would violate the survivor guard.
  bool outage_would_strand(ResourceId r) const;

  // The graph is held by reference (it can be large and is shared across
  // many engines); platform and cost model are tiny and copied so that
  // inline temporaries like Platform::hybrid(2, 2) are safe.
  const dag::TaskGraph* graph_;
  Platform platform_;
  CostModel costs_;
  std::optional<CommModel> comm_;
  NoiseModel noise_;
  util::Rng rng_;

  FaultModel fault_;        ///< none() unless a fault constructor was used
  bool fault_enabled_ = false;
  util::Rng fault_rng_;     ///< dedicated stream: never perturbs rng_

  double now_ = 0.0;
  std::vector<std::size_t> missing_preds_;  // per task
  std::vector<bool> done_;
  std::vector<dag::TaskId> ready_;          // ascending id order
  std::vector<std::uint8_t> in_ready_;      // per task: O(1) membership
  std::vector<dag::TaskId> ready_log_;      // became-ready order, append-only
  std::vector<RunningInfo> running_;        // start order, <= platform size
  std::vector<Event> events_;               // min-heap on (time, seq)
  std::uint64_t event_seq_ = 0;             // insertion order tie-break
  std::vector<dag::TaskId> resource_task_;  // per resource
  std::vector<double> resource_expected_finish_;  // per resource; NaN idle
  std::vector<std::uint8_t> resource_up_;   // per resource: outage mask
  std::vector<double> speed_factor_;        // per resource: slowdown state
  std::vector<ResourceId> producer_of_;     // resource that ran each task
  std::vector<double> duration_table_;      // kernel x resource, row-major
  Trace trace_;
  std::size_t completed_ = 0;
  std::size_t started_ = 0;
  std::size_t outages_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t lost_executions_ = 0;
};

}  // namespace readys::sim
