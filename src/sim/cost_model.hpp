#pragma once

#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "sim/platform.hpp"

namespace readys::sim {

/// Expected kernel durations per resource type (milliseconds).
///
/// The tables are shaped on the StarPU measurements published for
/// tile-size ~960 dense kernels (Agullo et al., refs [3], [4], [6] of the
/// paper): trailing-update kernels (GEMM/SYRK/TSMQR) accelerate 20-30x on
/// a GPU while panel kernels (POTRF/GETRF/GEQRT/TSQRT) gain 2x or less —
/// the "unrelated machines" regime the paper targets.
class CostModel {
 public:
  /// durations[kernel][resource_type], both indices dense.
  CostModel(std::string name, std::vector<std::vector<double>> durations);

  /// Expected duration of kernel type `kernel` on resource type `type`.
  double expected(int kernel, ResourceType type) const;

  /// Expected duration of task `t` of `graph` on resource `r`.
  double expected(const dag::TaskGraph& graph, dag::TaskId t,
                  const Platform& platform, ResourceId r) const;

  /// Mean duration of `kernel` across the resource *instances* of a
  /// platform (HEFT's averaged cost).
  double mean_over_platform(int kernel, const Platform& platform) const;

  int num_kernels() const noexcept {
    return static_cast<int>(durations_.size());
  }
  const std::string& name() const noexcept { return name_; }

  /// Tables matching the factorization generators (kernel order matches
  /// the generator enums).
  static CostModel cholesky();
  static CostModel lu();
  static CostModel qr();

  /// Every kernel costs `cpu` on a CPU and `gpu` on a GPU (homogeneous
  /// relative speed) — useful in unit tests.
  static CostModel uniform(int kernels, double cpu, double gpu);

  /// Looks up the factorization table from a graph name prefix
  /// ("cholesky_T8" -> cholesky()). Throws for unknown applications.
  static CostModel for_graph(const dag::TaskGraph& graph);

 private:
  std::string name_;
  std::vector<std::vector<double>> durations_;
};

}  // namespace readys::sim
