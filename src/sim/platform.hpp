#pragma once

#include <string>
#include <vector>

namespace readys::sim {

/// Kind of a computing resource. The paper's platforms mix CPU cores and
/// GPUs within one node; communication is overlapped and therefore free.
enum class ResourceType : int { kCpu = 0, kGpu = 1 };

constexpr int kNumResourceTypes = 2;

/// Index of a resource within a Platform.
using ResourceId = int;

/// A heterogeneous computing node: an ordered list of resources.
class Platform {
 public:
  explicit Platform(std::vector<ResourceType> resources);

  /// n CPU cores.
  static Platform cpus(int n);
  /// n GPUs.
  static Platform gpus(int n);
  /// n CPU cores + m GPUs (CPUs first).
  static Platform hybrid(int n_cpus, int n_gpus);

  int size() const noexcept { return static_cast<int>(resources_.size()); }
  ResourceType type(ResourceId r) const { return resources_[static_cast<std::size_t>(r)]; }
  const std::vector<ResourceType>& resources() const noexcept {
    return resources_;
  }

  int num_cpus() const noexcept { return n_cpus_; }
  int num_gpus() const noexcept { return n_gpus_; }

  /// Identity id list 0, 1, ..., size()-1 (ascending). Exists so full
  /// engine views and scoped shard views can hand out one "visible
  /// resources" representation without materializing per call.
  const std::vector<ResourceId>& ids() const noexcept { return ids_; }

  /// Human-readable name like "2CPU+2GPU".
  std::string name() const;

 private:
  std::vector<ResourceType> resources_;
  std::vector<ResourceId> ids_;
  int n_cpus_ = 0;
  int n_gpus_ = 0;
};

}  // namespace readys::sim
