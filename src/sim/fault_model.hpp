#pragma once

#include <cstdint>

#include "sim/platform.hpp"
#include "util/rng.hpp"

namespace readys::sim {

/// Stochastic fault-injection specification for one simulated platform.
///
/// Three disturbance channels, all per-resource and all driven by a
/// dedicated RNG stream (never the duration-noise stream, so enabling
/// faults does not perturb the noise draws of a fault-free run):
///
///  - **Fail-stop outages**: resource r dies at an exponentially
///    distributed arrival time. Any task in flight on r is lost — its
///    partial work is discarded and the task re-enters the ready set for
///    re-execution. With `mean_downtime > 0` the resource recovers after
///    an exponentially distributed downtime and outages keep arriving;
///    otherwise the outage is permanent.
///  - **Transient slowdowns**: r is degraded by `slowdown_factor` for an
///    exponentially distributed window. The factor applies to tasks
///    *started* while degraded (discrete-event simplification: a task's
///    duration is fixed at start).
///  - **Task failures**: each execution independently fails with
///    probability `task_failure_prob` — the task occupies the resource
///    for its full duration, then the result is lost and the task
///    re-enters the ready set (the resource survives).
///
/// Liveness guard: an outage that would leave fewer than
/// `min_survivors_per_type` live resources of the victim's type is
/// suppressed (the arrival is re-sampled). With the default of 1, every
/// DAG eventually completes even under permanent outages, because at
/// least one resource of each capability survives. Set to 0 to allow
/// total loss (the simulator then fails loudly when it deadlocks).
///
/// `FaultModel::none()` (the default) injects nothing and is bit-exact
/// with a fault-free engine: no fault events are scheduled, no extra RNG
/// draws happen, and every fault branch in the engine is dead.
struct FaultModel {
  /// Fail-stop arrivals per resource per millisecond (0 disables).
  double outage_rate = 0.0;
  /// Mean outage duration in ms; <= 0 makes outages permanent.
  double mean_downtime = 0.0;
  /// Slowdown-window arrivals per resource per millisecond (0 disables).
  double slowdown_rate = 0.0;
  /// Mean slowdown-window duration in ms.
  double mean_slowdown = 0.0;
  /// Duration multiplier while degraded (> 1 means slower).
  double slowdown_factor = 1.0;
  /// Probability that one task execution fails at completion.
  double task_failure_prob = 0.0;
  /// Outages never reduce a resource type below this many live units.
  int min_survivors_per_type = 1;

  /// The no-fault default; engines built with it are bit-exact with the
  /// fault-free constructors (pinned by tests/test_fault_model.cpp).
  static FaultModel none() noexcept { return FaultModel{}; }

  /// True when any channel can fire.
  bool enabled() const noexcept {
    return outage_rate > 0.0 || slowdown_rate > 0.0 ||
           task_failure_prob > 0.0;
  }

  /// Validates rates/probabilities; throws std::invalid_argument on
  /// nonsense (negative rates, probability outside [0, 1], slowdown
  /// factor < 1).
  void validate() const;

  /// Exponential inter-arrival gap with the given rate (> 0).
  static double sample_gap(double rate, util::Rng& rng);
  /// Exponential duration with the given mean (> 0).
  static double sample_duration(double mean, util::Rng& rng);
};

}  // namespace readys::sim
