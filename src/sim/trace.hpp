#pragma once

#include <string>
#include <vector>

#include "dag/task_graph.hpp"
#include "sim/platform.hpp"

namespace readys::sim {

/// One executed task in a schedule trace.
struct TraceEntry {
  dag::TaskId task = dag::kInvalidTask;
  ResourceId resource = -1;
  double start = 0.0;
  double finish = 0.0;
};

/// Full record of an execution, sufficient to validate the schedule and
/// to compute utilization statistics.
class Trace {
 public:
  void add(const TraceEntry& entry) { entries_.push_back(entry); }
  void clear() noexcept { entries_.clear(); }

  const std::vector<TraceEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Completion time of the last task (0 for an empty trace).
  double makespan() const noexcept;

  /// Fraction of [0, makespan] each resource spent busy.
  std::vector<double> utilization(const Platform& platform) const;

  /// Checks that the trace is a valid schedule of `graph`: every task
  /// appears exactly once, dependencies are respected, and no resource
  /// runs two tasks at once. Returns an empty string when valid, else a
  /// description of the first violation found.
  std::string validate(const dag::TaskGraph& graph,
                       const Platform& platform) const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace readys::sim
