#include "sim/simulator.hpp"

#include <stdexcept>

#include "obs/span.hpp"

namespace readys::sim {

Simulator::Simulator(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, Options options)
    : graph_(&graph),
      platform_(platform),
      costs_(costs),
      options_(options) {}

SimResult Simulator::run(Scheduler& scheduler) {
  obs::Span span("sim/episode", "sim");
  const CommModel comm =
      options_.comm.has_value() ? *options_.comm : CommModel::free();
  const FaultModel faults =
      options_.faults.has_value() ? *options_.faults : FaultModel::none();
  SimEngine engine(*graph_, platform_, costs_, comm, faults, options_.sigma,
                   options_.seed);
  scheduler.reset(engine);

  SimResult result;
  while (!engine.finished()) {
    ++result.decision_instants;
    // Let the scheduler fill idle resources; it is re-invoked until it
    // declines so single-assignment schedulers compose naturally.
    for (;;) {
      const auto assignments = scheduler.decide(engine);
      if (assignments.empty()) break;
      for (const auto& a : assignments) {
        engine.start(a.task, a.resource);
      }
    }
    if (engine.finished()) break;
    if (engine.fault_enabled() && !engine.any_running() &&
        engine.num_up() == 0 && engine.faults().mean_downtime <= 0.0) {
      // Fault events may keep firing (slowdown edges), but no resource
      // can ever come back: fail loudly instead of spinning.
      throw std::logic_error(
          "Simulator: platform unrecoverable (every resource permanently "
          "down, tasks remain)");
    }
    if (!engine.advance()) {
      throw std::logic_error("Simulator: scheduler stalled (no task running, "
                             "none assigned, tasks remain)");
    }
  }
  result.makespan = engine.makespan();
  result.trace = engine.trace();
  return result;
}

double simulate_makespan(const dag::TaskGraph& graph, const Platform& platform,
                         const CostModel& costs, Scheduler& scheduler,
                         double sigma, std::uint64_t seed) {
  Simulator::Options options;
  options.sigma = sigma;
  options.seed = seed;
  Simulator sim(graph, platform, costs, options);
  return sim.run(scheduler).makespan;
}

}  // namespace readys::sim
