#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace readys::sim {

// Heap comparator: a sorts after b when it finishes later, ties broken
// by start sequence. std::push_heap/pop_heap build max-heaps, so this
// ordering makes the *earliest* event sit at events_.front().
static bool event_after(double fa, std::uint64_t sa, double fb,
                        std::uint64_t sb) noexcept {
  if (fa != fb) return fa > fb;
  return sa > sb;
}

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, double sigma, std::uint64_t seed)
    : graph_(&graph),
      platform_(platform),
      costs_(costs),
      noise_(sigma),
      rng_(seed) {
  if (costs.num_kernels() < graph.num_kernel_types()) {
    throw std::invalid_argument(
        "SimEngine: cost model does not cover every kernel type");
  }
  // Flatten the cost model into a (kernel x resource) lookup so the
  // scheduler inner loops pay one multiply-add per query. Graph,
  // platform and costs are fixed for the engine's lifetime, so this
  // survives reset().
  const auto n_res = static_cast<std::size_t>(platform_.size());
  duration_table_.resize(static_cast<std::size_t>(costs_.num_kernels()) *
                         n_res);
  for (int k = 0; k < costs_.num_kernels(); ++k) {
    for (ResourceId r = 0; r < platform_.size(); ++r) {
      duration_table_[static_cast<std::size_t>(k) * n_res +
                      static_cast<std::size_t>(r)] =
          costs_.expected(k, platform_.type(r));
    }
  }
  reset(seed);
}

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, const CommModel& comm,
                     double sigma, std::uint64_t seed)
    : SimEngine(graph, platform, costs, sigma, seed) {
  if (!comm.is_free()) comm_ = comm;
}

void SimEngine::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  now_ = 0.0;
  completed_ = 0;
  started_ = 0;
  const std::size_t n = graph_->num_tasks();
  missing_preds_.assign(n, 0);
  done_.assign(n, false);
  ready_.clear();
  in_ready_.assign(n, 0);
  ready_log_.clear();
  ready_log_.reserve(n);
  running_.clear();
  events_.clear();
  resource_task_.assign(static_cast<std::size_t>(platform_.size()),
                        dag::kInvalidTask);
  resource_expected_finish_.assign(
      static_cast<std::size_t>(platform_.size()),
      std::numeric_limits<double>::quiet_NaN());
  producer_of_.assign(n, -1);
  trace_.clear();
  for (dag::TaskId t = 0; t < n; ++t) {
    missing_preds_[t] = graph_->in_degree(t);
    if (missing_preds_[t] == 0) {
      ready_.push_back(t);  // ascending: t is appended in id order
      in_ready_[t] = 1;
      ready_log_.push_back(t);
    }
  }
}

std::vector<ResourceId> SimEngine::idle_resources() const {
  std::vector<ResourceId> out;
  for (ResourceId r = 0; r < platform_.size(); ++r) {
    if (is_idle(r)) out.push_back(r);
  }
  return out;
}

double SimEngine::expected_input_delay(dag::TaskId t, ResourceId r) const {
  if (!comm_) return 0.0;
  return comm_->input_delay(*graph_, t, platform_, producer_of_, r);
}

double SimEngine::expected_available_at(ResourceId r) const {
  const dag::TaskId t = running_on(r);
  const double ef = resource_expected_finish_[static_cast<std::size_t>(r)];
  if (t == dag::kInvalidTask) {
    if (!std::isnan(ef)) {
      throw std::logic_error(
          "SimEngine::expected_available_at: idle resource has a pending "
          "expected finish (state corruption)");
    }
    return now_;
  }
  if (std::isnan(ef)) {
    throw std::logic_error(
        "SimEngine::expected_available_at: busy resource has no expected "
        "finish (state corruption)");
  }
  return std::max(now_, ef);
}

void SimEngine::insert_ready(dag::TaskId t) {
  ready_.insert(std::lower_bound(ready_.begin(), ready_.end(), t), t);
  in_ready_[t] = 1;
  ready_log_.push_back(t);
}

void SimEngine::start(dag::TaskId t, ResourceId r) {
  if (r < 0 || r >= platform_.size()) {
    throw std::logic_error("SimEngine::start: invalid resource");
  }
  if (!is_idle(r)) {
    throw std::logic_error("SimEngine::start: resource is busy");
  }
  if (!is_ready(t)) {
    throw std::logic_error("SimEngine::start: task is not ready");
  }
  ready_.erase(std::lower_bound(ready_.begin(), ready_.end(), t));
  in_ready_[t] = 0;

  const double expected = expected_duration(t, r);
  const double actual = noise_.sample(expected, rng_);
  // Input shipping (if modeled) happens before compute; the transfer
  // itself is deterministic.
  const double shipping = expected_input_delay(t, r);
  RunningInfo info;
  info.task = t;
  info.resource = r;
  info.start = now_;
  info.actual_finish = now_ + shipping + actual;
  info.expected_finish = now_ + shipping + expected;
  running_.push_back(info);
  resource_task_[static_cast<std::size_t>(r)] = t;
  resource_expected_finish_[static_cast<std::size_t>(r)] =
      info.expected_finish;
  events_.push_back({info.actual_finish, started_, t});
  std::push_heap(events_.begin(), events_.end(),
                 [](const Event& a, const Event& b) {
                   return event_after(a.finish, a.seq, b.finish, b.seq);
                 });
  ++started_;
}

void SimEngine::complete(dag::TaskId task) {
  // running_ holds at most one entry per resource, so this scan is O(P).
  auto it = std::find_if(
      running_.begin(), running_.end(),
      [task](const RunningInfo& info) { return info.task == task; });
  if (it == running_.end()) {
    throw std::logic_error(
        "SimEngine::complete: event for a task that is not running "
        "(state corruption)");
  }
  const RunningInfo info = *it;
  running_.erase(it);  // preserves start order for running()
  resource_task_[static_cast<std::size_t>(info.resource)] = dag::kInvalidTask;
  resource_expected_finish_[static_cast<std::size_t>(info.resource)] =
      std::numeric_limits<double>::quiet_NaN();
  producer_of_[info.task] = info.resource;
  done_[info.task] = true;
  ++completed_;
  trace_.add({info.task, info.resource, info.start, info.actual_finish});
  for (dag::TaskId s : graph_->successors(info.task)) {
    if (--missing_preds_[s] == 0) insert_ready(s);
  }
}

bool SimEngine::advance() {
  if (events_.empty()) return false;
  now_ = events_.front().finish;
  // Retire every task that finishes at this instant (ties are common when
  // sigma == 0); equal finishes pop in start order.
  const auto later = [](const Event& a, const Event& b) {
    return event_after(a.finish, a.seq, b.finish, b.seq);
  };
  while (!events_.empty() && events_.front().finish <= now_) {
    std::pop_heap(events_.begin(), events_.end(), later);
    const Event ev = events_.back();
    events_.pop_back();
    complete(ev.task);
  }
  return true;
}

}  // namespace readys::sim
