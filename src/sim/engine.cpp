#include "sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace readys::sim {

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, double sigma, std::uint64_t seed)
    : graph_(&graph),
      platform_(platform),
      costs_(costs),
      noise_(sigma),
      rng_(seed) {
  if (costs.num_kernels() < graph.num_kernel_types()) {
    throw std::invalid_argument(
        "SimEngine: cost model does not cover every kernel type");
  }
  reset(seed);
}

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, const CommModel& comm,
                     double sigma, std::uint64_t seed)
    : SimEngine(graph, platform, costs, sigma, seed) {
  if (!comm.is_free()) comm_ = comm;
}

void SimEngine::reset(std::uint64_t seed) {
  rng_ = util::Rng(seed);
  now_ = 0.0;
  completed_ = 0;
  started_ = 0;
  const std::size_t n = graph_->num_tasks();
  missing_preds_.assign(n, 0);
  done_.assign(n, false);
  ready_.clear();
  running_.clear();
  resource_task_.assign(static_cast<std::size_t>(platform_.size()),
                        dag::kInvalidTask);
  producer_of_.assign(n, -1);
  trace_.clear();
  for (dag::TaskId t = 0; t < n; ++t) {
    missing_preds_[t] = graph_->in_degree(t);
    if (missing_preds_[t] == 0) ready_.push_back(t);
  }
}

std::vector<ResourceId> SimEngine::idle_resources() const {
  std::vector<ResourceId> out;
  for (ResourceId r = 0; r < platform_.size(); ++r) {
    if (is_idle(r)) out.push_back(r);
  }
  return out;
}

bool SimEngine::is_ready(dag::TaskId t) const {
  return std::find(ready_.begin(), ready_.end(), t) != ready_.end();
}

double SimEngine::expected_duration(dag::TaskId t, ResourceId r) const {
  return costs_.expected(*graph_, t, platform_, r);
}

double SimEngine::expected_input_delay(dag::TaskId t, ResourceId r) const {
  if (!comm_) return 0.0;
  return comm_->input_delay(*graph_, t, platform_, producer_of_, r);
}

double SimEngine::expected_available_at(ResourceId r) const {
  const dag::TaskId t = running_on(r);
  if (t == dag::kInvalidTask) return now_;
  for (const auto& info : running_) {
    if (info.resource == r) return std::max(now_, info.expected_finish);
  }
  return now_;
}

void SimEngine::start(dag::TaskId t, ResourceId r) {
  if (r < 0 || r >= platform_.size()) {
    throw std::logic_error("SimEngine::start: invalid resource");
  }
  if (!is_idle(r)) {
    throw std::logic_error("SimEngine::start: resource is busy");
  }
  auto it = std::find(ready_.begin(), ready_.end(), t);
  if (it == ready_.end()) {
    throw std::logic_error("SimEngine::start: task is not ready");
  }
  ready_.erase(it);

  const double expected = expected_duration(t, r);
  const double actual = noise_.sample(expected, rng_);
  // Input shipping (if modeled) happens before compute; the transfer
  // itself is deterministic.
  const double shipping = expected_input_delay(t, r);
  RunningInfo info;
  info.task = t;
  info.resource = r;
  info.start = now_;
  info.actual_finish = now_ + shipping + actual;
  info.expected_finish = now_ + shipping + expected;
  running_.push_back(info);
  resource_task_[static_cast<std::size_t>(r)] = t;
  ++started_;
}

void SimEngine::complete(std::size_t running_index) {
  const RunningInfo info = running_[running_index];
  running_.erase(running_.begin() +
                 static_cast<std::ptrdiff_t>(running_index));
  resource_task_[static_cast<std::size_t>(info.resource)] = dag::kInvalidTask;
  producer_of_[info.task] = info.resource;
  done_[info.task] = true;
  ++completed_;
  trace_.add({info.task, info.resource, info.start, info.actual_finish});
  for (dag::TaskId s : graph_->successors(info.task)) {
    if (--missing_preds_[s] == 0) ready_.push_back(s);
  }
  std::sort(ready_.begin(), ready_.end());
}

bool SimEngine::advance() {
  if (running_.empty()) return false;
  double next = std::numeric_limits<double>::infinity();
  for (const auto& info : running_) {
    next = std::min(next, info.actual_finish);
  }
  now_ = next;
  // Retire every task that finishes at this instant (ties are common when
  // sigma == 0).
  for (std::size_t i = 0; i < running_.size();) {
    if (running_[i].actual_finish <= now_) {
      complete(i);  // erases element i; do not advance
    } else {
      ++i;
    }
  }
  return true;
}

}  // namespace readys::sim
