#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace readys::sim {

namespace {

/// Salt for the fault stream so it is independent of the noise stream
/// seeded from the same value.
constexpr std::uint64_t kFaultSeedSalt = 0xFA171E5D00DAD5ULL;

// Heap comparator: a sorts after b when it fires later, ties broken by
// insertion sequence. std::push_heap/pop_heap build max-heaps, so this
// ordering makes the *earliest* event sit at events_.front().
bool event_after(double ta, std::uint64_t sa, double tb,
                 std::uint64_t sb) noexcept {
  if (ta != tb) return ta > tb;
  return sa > sb;
}

}  // namespace

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, double sigma, std::uint64_t seed)
    : graph_(&graph),
      platform_(platform),
      costs_(costs),
      noise_(sigma),
      rng_(seed) {
  if (costs.num_kernels() < graph.num_kernel_types()) {
    throw std::invalid_argument(
        "SimEngine: cost model does not cover every kernel type");
  }
  // Flatten the cost model into a (kernel x resource) lookup so the
  // scheduler inner loops pay one multiply-add per query. Graph,
  // platform and costs are fixed for the engine's lifetime, so this
  // survives reset().
  const auto n_res = static_cast<std::size_t>(platform_.size());
  duration_table_.resize(static_cast<std::size_t>(costs_.num_kernels()) *
                         n_res);
  for (int k = 0; k < costs_.num_kernels(); ++k) {
    for (ResourceId r = 0; r < platform_.size(); ++r) {
      duration_table_[static_cast<std::size_t>(k) * n_res +
                      static_cast<std::size_t>(r)] =
          costs_.expected(k, platform_.type(r));
    }
  }
  reset(seed);
}

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, const CommModel& comm,
                     double sigma, std::uint64_t seed)
    : SimEngine(graph, platform, costs, sigma, seed) {
  if (!comm.is_free()) comm_ = comm;
}

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, const FaultModel& faults,
                     double sigma, std::uint64_t seed)
    : SimEngine(graph, platform, costs, sigma, seed) {
  faults.validate();
  fault_ = faults;
  fault_enabled_ = faults.enabled();
  // The delegated constructor reset() ran without the fault schedule;
  // redo it so the initial outage/slowdown arrivals are in the heap.
  if (fault_enabled_) reset(seed);
}

SimEngine::SimEngine(const dag::TaskGraph& graph, const Platform& platform,
                     const CostModel& costs, const CommModel& comm,
                     const FaultModel& faults, double sigma,
                     std::uint64_t seed)
    : SimEngine(graph, platform, costs, faults, sigma, seed) {
  if (!comm.is_free()) comm_ = comm;
}

void SimEngine::reset(std::uint64_t seed) {
  if (obs::Telemetry* t_obs = obs::telemetry()) t_obs->sim_episodes.add();
  rng_ = util::Rng(seed);
  now_ = 0.0;
  completed_ = 0;
  started_ = 0;
  outages_ = 0;
  recoveries_ = 0;
  lost_executions_ = 0;
  event_seq_ = 0;
  const std::size_t n = graph_->num_tasks();
  const auto n_res = static_cast<std::size_t>(platform_.size());
  missing_preds_.assign(n, 0);
  done_.assign(n, false);
  ready_.clear();
  in_ready_.assign(n, 0);
  ready_log_.clear();
  ready_log_.reserve(n);
  running_.clear();
  events_.clear();
  resource_task_.assign(n_res, dag::kInvalidTask);
  resource_expected_finish_.assign(
      n_res, std::numeric_limits<double>::quiet_NaN());
  resource_up_.assign(n_res, 1);
  speed_factor_.assign(n_res, 1.0);
  producer_of_.assign(n, -1);
  trace_.clear();
  for (dag::TaskId t = 0; t < n; ++t) {
    missing_preds_[t] = graph_->in_degree(t);
    if (missing_preds_[t] == 0) {
      ready_.push_back(t);  // ascending: t is appended in id order
      in_ready_[t] = 1;
      ready_log_.push_back(t);
    }
  }
  if (fault_enabled_) {
    fault_rng_ = util::Rng(seed ^ kFaultSeedSalt);
    for (ResourceId r = 0; r < platform_.size(); ++r) {
      if (fault_.outage_rate > 0.0) {
        push_event(FaultModel::sample_gap(fault_.outage_rate, fault_rng_),
                   dag::kInvalidTask, r, EventKind::kOutage);
      }
      if (fault_.slowdown_rate > 0.0) {
        push_event(FaultModel::sample_gap(fault_.slowdown_rate, fault_rng_),
                   dag::kInvalidTask, r, EventKind::kSlowdownBegin);
      }
    }
  }
}

std::vector<ResourceId> SimEngine::idle_resources() const {
  std::vector<ResourceId> out;
  for (ResourceId r = 0; r < platform_.size(); ++r) {
    if (is_idle(r)) out.push_back(r);
  }
  return out;
}

int SimEngine::num_up() const noexcept {
  int up = 0;
  for (const std::uint8_t u : resource_up_) up += u != 0;
  return up;
}

double SimEngine::expected_input_delay(dag::TaskId t, ResourceId r) const {
  if (!comm_) return 0.0;
  return comm_->input_delay(*graph_, t, platform_, producer_of_, r);
}

double SimEngine::expected_available_at(ResourceId r) const {
  if (fault_enabled_ && !is_up(r)) {
    return std::numeric_limits<double>::infinity();
  }
  const dag::TaskId t = running_on(r);
  const double ef = resource_expected_finish_[static_cast<std::size_t>(r)];
  if (t == dag::kInvalidTask) {
    if (!std::isnan(ef)) {
      throw std::logic_error(
          "SimEngine::expected_available_at: idle resource has a pending "
          "expected finish (state corruption)");
    }
    return now_;
  }
  if (std::isnan(ef)) {
    throw std::logic_error(
        "SimEngine::expected_available_at: busy resource has no expected "
        "finish (state corruption)");
  }
  return std::max(now_, ef);
}

void SimEngine::insert_ready(dag::TaskId t) {
  ready_.insert(std::lower_bound(ready_.begin(), ready_.end(), t), t);
  in_ready_[t] = 1;
  ready_log_.push_back(t);
}

std::uint64_t SimEngine::push_event(double time, dag::TaskId task,
                                    ResourceId r, EventKind kind) {
  const std::uint64_t seq = event_seq_++;
  events_.push_back({time, seq, task, r, kind});
  std::push_heap(events_.begin(), events_.end(),
                 [](const Event& a, const Event& b) {
                   return event_after(a.time, a.seq, b.time, b.seq);
                 });
  return seq;
}

void SimEngine::start(dag::TaskId t, ResourceId r) {
  if (r < 0 || r >= platform_.size()) {
    throw std::logic_error("SimEngine::start: invalid resource");
  }
  if (fault_enabled_ && !is_up(r)) {
    throw std::logic_error("SimEngine::start: resource is down");
  }
  if (!is_idle(r)) {
    throw std::logic_error("SimEngine::start: resource is busy");
  }
  if (!is_ready(t)) {
    throw std::logic_error("SimEngine::start: task is not ready");
  }
  ready_.erase(std::lower_bound(ready_.begin(), ready_.end(), t));
  in_ready_[t] = 0;

  const double expected = expected_duration(t, r);
  const double actual = noise_.sample(expected, rng_);
  // Input shipping (if modeled) happens before compute; the transfer
  // itself is deterministic.
  const double shipping = expected_input_delay(t, r);
  // Independent task-failure channel: the execution occupies the
  // resource for its full duration, then the result is lost.
  const bool fails = fault_enabled_ && fault_.task_failure_prob > 0.0 &&
                     fault_rng_.uniform() < fault_.task_failure_prob;
  RunningInfo info;
  info.task = t;
  info.resource = r;
  info.start = now_;
  info.actual_finish = now_ + shipping + actual;
  info.expected_finish = now_ + shipping + expected;
  info.seq = push_event(info.actual_finish, t, r,
                        fails ? EventKind::kFail : EventKind::kFinish);
  running_.push_back(info);
  resource_task_[static_cast<std::size_t>(r)] = t;
  resource_expected_finish_[static_cast<std::size_t>(r)] =
      info.expected_finish;
  ++started_;
  if (obs::Telemetry* t_obs = obs::telemetry()) t_obs->sim_tasks_started.add();
}

void SimEngine::complete(const RunningInfo& info) {
  resource_task_[static_cast<std::size_t>(info.resource)] = dag::kInvalidTask;
  resource_expected_finish_[static_cast<std::size_t>(info.resource)] =
      std::numeric_limits<double>::quiet_NaN();
  producer_of_[info.task] = info.resource;
  done_[info.task] = true;
  ++completed_;
  trace_.add({info.task, info.resource, info.start, info.actual_finish});
  for (dag::TaskId s : graph_->successors(info.task)) {
    if (--missing_preds_[s] == 0) insert_ready(s);
  }
}

void SimEngine::kill_running(ResourceId r) {
  auto it = std::find_if(
      running_.begin(), running_.end(),
      [r](const RunningInfo& info) { return info.resource == r; });
  if (it == running_.end()) return;
  const dag::TaskId task = it->task;
  running_.erase(it);  // preserves start order for running()
  resource_task_[static_cast<std::size_t>(r)] = dag::kInvalidTask;
  resource_expected_finish_[static_cast<std::size_t>(r)] =
      std::numeric_limits<double>::quiet_NaN();
  // The in-flight work is lost; the task becomes ready again. Its stale
  // completion event stays in the heap and is dropped on pop (the seq no
  // longer matches any running entry).
  insert_ready(task);
  ++lost_executions_;
}

bool SimEngine::outage_would_strand(ResourceId r) const {
  if (fault_.min_survivors_per_type <= 0) return false;
  const ResourceType type = platform_.type(r);
  int up_of_type = 0;
  for (ResourceId o = 0; o < platform_.size(); ++o) {
    if (platform_.type(o) == type && is_up(o)) ++up_of_type;
  }
  return up_of_type <= fault_.min_survivors_per_type;
}

void SimEngine::dispatch(const Event& ev, bool& observable) {
  switch (ev.kind) {
    case EventKind::kFinish:
    case EventKind::kFail: {
      // running_ holds at most one entry per resource, so this scan is
      // O(P). Matching on (task, seq) drops events whose execution was
      // killed by an outage after the event was scheduled.
      auto it = std::find_if(running_.begin(), running_.end(),
                             [&ev](const RunningInfo& info) {
                               return info.task == ev.task &&
                                      info.seq == ev.seq;
                             });
      if (it == running_.end()) {
        if (!fault_enabled_) {
          throw std::logic_error(
              "SimEngine::complete: event for a task that is not running "
              "(state corruption)");
        }
        return;  // stale: the execution was killed mid-flight
      }
      const RunningInfo info = *it;
      running_.erase(it);  // preserves start order for running()
      if (ev.kind == EventKind::kFinish) {
        complete(info);
      } else {
        // The execution ran to its end, then failed: free the resource,
        // discard the result, re-ready the task.
        resource_task_[static_cast<std::size_t>(info.resource)] =
            dag::kInvalidTask;
        resource_expected_finish_[static_cast<std::size_t>(info.resource)] =
            std::numeric_limits<double>::quiet_NaN();
        insert_ready(info.task);
        ++lost_executions_;
      }
      observable = true;
      return;
    }
    case EventKind::kOutage: {
      if (!is_up(ev.resource)) return;  // defensive: already down
      if (outage_would_strand(ev.resource)) {
        // Survivor guard: suppress this outage and re-sample the arrival
        // so liveness is preserved (>= min survivors per type stay up).
        push_event(now_ + FaultModel::sample_gap(fault_.outage_rate,
                                                 fault_rng_),
                   dag::kInvalidTask, ev.resource, EventKind::kOutage);
        return;
      }
      resource_up_[static_cast<std::size_t>(ev.resource)] = 0;
      ++outages_;
      kill_running(ev.resource);
      if (fault_.mean_downtime > 0.0) {
        push_event(now_ + FaultModel::sample_duration(fault_.mean_downtime,
                                                      fault_rng_),
                   dag::kInvalidTask, ev.resource, EventKind::kRecovery);
      }
      observable = true;
      return;
    }
    case EventKind::kRecovery: {
      resource_up_[static_cast<std::size_t>(ev.resource)] = 1;
      ++recoveries_;
      push_event(
          now_ + FaultModel::sample_gap(fault_.outage_rate, fault_rng_),
          dag::kInvalidTask, ev.resource, EventKind::kOutage);
      observable = true;
      return;
    }
    case EventKind::kSlowdownBegin: {
      speed_factor_[static_cast<std::size_t>(ev.resource)] =
          fault_.slowdown_factor;
      push_event(now_ + FaultModel::sample_duration(fault_.mean_slowdown,
                                                    fault_rng_),
                 dag::kInvalidTask, ev.resource, EventKind::kSlowdownEnd);
      observable = true;
      return;
    }
    case EventKind::kSlowdownEnd: {
      speed_factor_[static_cast<std::size_t>(ev.resource)] = 1.0;
      push_event(
          now_ + FaultModel::sample_gap(fault_.slowdown_rate, fault_rng_),
          dag::kInvalidTask, ev.resource, EventKind::kSlowdownBegin);
      observable = true;
      return;
    }
  }
}

bool SimEngine::advance() {
  if (obs::Telemetry* t_obs = obs::telemetry()) t_obs->sim_events.add();
  const auto later = [](const Event& a, const Event& b) {
    return event_after(a.time, a.seq, b.time, b.seq);
  };
  while (!events_.empty()) {
    now_ = events_.front().time;
    // Process every event firing at this instant (ties are common when
    // sigma == 0); equal times pop in insertion order. A stale
    // completion (its execution was killed) changes nothing observable,
    // in which case the clock keeps advancing to the next instant.
    bool observable = false;
    while (!events_.empty() && events_.front().time <= now_) {
      std::pop_heap(events_.begin(), events_.end(), later);
      const Event ev = events_.back();
      events_.pop_back();
      dispatch(ev, observable);
    }
    if (observable) return true;
  }
  return false;
}

}  // namespace readys::sim
