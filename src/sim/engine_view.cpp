#include "sim/engine_view.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace readys::sim {

std::vector<ResourceId> EngineView::idle_resources() const {
  if (engine_) return engine_->idle_resources();
  std::vector<ResourceId> out;
  for (const ResourceId r : *state_->resources) {
    if (is_idle(r)) out.push_back(r);
  }
  return out;
}

double EngineView::expected_available_at(ResourceId r) const {
  if (engine_) return engine_->expected_available_at(r);
  if (state_->avail) return (*state_->avail)[static_cast<std::size_t>(r)];
  if (!state_->expected_finish) return state_->base->expected_available_at(r);
  if (state_->fault_enabled && !is_up(r)) {
    return std::numeric_limits<double>::infinity();
  }
  const dag::TaskId t = running_on(r);
  const double ef =
      (*state_->expected_finish)[static_cast<std::size_t>(r)];
  if (t == dag::kInvalidTask) {
    if (!std::isnan(ef)) {
      throw std::logic_error(
          "EngineView::expected_available_at: idle resource has a pending "
          "expected finish (state corruption)");
    }
    return state_->now;
  }
  if (std::isnan(ef)) {
    throw std::logic_error(
        "EngineView::expected_available_at: busy resource has no expected "
        "finish (state corruption)");
  }
  return std::max(state_->now, ef);
}

double EngineView::expected_input_delay(dag::TaskId t, ResourceId r) const {
  if (engine_) return engine_->expected_input_delay(t, r);
  if (!state_->comm) return 0.0;
  if (state_->producer_of) {
    return state_->comm->input_delay(*state_->graph, t, *state_->platform,
                                     *state_->producer_of, r);
  }
  return state_->base->expected_input_delay(t, r);
}

}  // namespace readys::sim
