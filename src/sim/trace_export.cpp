#include "sim/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace readys::sim {

namespace {

std::string resource_label(const Platform& platform, ResourceId r) {
  const bool gpu = platform.type(r) == ResourceType::kGpu;
  return std::string(gpu ? "GPU" : "CPU") + " " + std::to_string(r);
}

}  // namespace

std::string chrome_trace_events(const Trace& trace,
                                const dag::TaskGraph& graph,
                                const Platform& platform) {
  std::ostringstream os;
  bool first = true;
  for (ResourceId r = 0; r < platform.size(); ++r) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << r
       << ",\"args\":{\"name\":\"" << resource_label(platform, r)
       << "\"}}";
  }
  for (const auto& e : trace.entries()) {
    os << ",{\"name\":\"" << graph.kernel_name(graph.kernel(e.task))
       << " #" << e.task << "\",\"cat\":\"task\",\"ph\":\"X\",\"pid\":1,"
       << "\"tid\":" << e.resource << ",\"ts\":" << e.start
       << ",\"dur\":" << (e.finish - e.start) << "}";
  }
  return os.str();
}

std::string to_chrome_trace(const Trace& trace, const dag::TaskGraph& graph,
                            const Platform& platform) {
  return "{\"traceEvents\":[" + chrome_trace_events(trace, graph, platform) +
         "],\"displayTimeUnit\":\"ms\"}";
}

void write_chrome_trace(const Trace& trace, const dag::TaskGraph& graph,
                        const Platform& platform, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  out << to_chrome_trace(trace, graph, platform);
}

std::string to_ascii_gantt(const Trace& trace, const dag::TaskGraph& graph,
                           const Platform& platform, std::size_t columns) {
  const double makespan = trace.makespan();
  std::ostringstream os;
  if (makespan <= 0.0 || columns == 0) {
    os << "(empty trace)\n";
    return os.str();
  }
  const double per_cell = makespan / static_cast<double>(columns);
  std::vector<std::string> rows(static_cast<std::size_t>(platform.size()),
                                std::string(columns, '.'));
  for (const auto& e : trace.entries()) {
    const char initial = graph.kernel_name(graph.kernel(e.task))[0];
    std::size_t c0 = static_cast<std::size_t>(e.start / per_cell);
    std::size_t c1 = static_cast<std::size_t>(e.finish / per_cell);
    c0 = std::min(c0, columns - 1);
    c1 = std::min(std::max(c1, c0 + 1), columns);
    for (std::size_t c = c0; c < c1; ++c) {
      rows[static_cast<std::size_t>(e.resource)][c] = initial;
    }
  }
  for (ResourceId r = 0; r < platform.size(); ++r) {
    os << resource_label(platform, r) << " |"
       << rows[static_cast<std::size_t>(r)] << "|\n";
  }
  os << "makespan: " << makespan << " ms, " << per_cell
     << " ms/column (letters = kernel initials, '.' = idle)\n";
  return os.str();
}

}  // namespace readys::sim
