#include "sim/cost_model.hpp"

#include <stdexcept>

namespace readys::sim {

CostModel::CostModel(std::string name,
                     std::vector<std::vector<double>> durations)
    : name_(std::move(name)), durations_(std::move(durations)) {
  if (durations_.empty()) {
    throw std::invalid_argument("CostModel: empty table");
  }
  for (const auto& row : durations_) {
    if (row.size() != kNumResourceTypes) {
      throw std::invalid_argument(
          "CostModel: each kernel needs one duration per resource type");
    }
    for (double d : row) {
      if (d <= 0.0) {
        throw std::invalid_argument("CostModel: durations must be positive");
      }
    }
  }
}

double CostModel::expected(int kernel, ResourceType type) const {
  if (kernel < 0 || kernel >= num_kernels()) {
    throw std::out_of_range("CostModel::expected: bad kernel");
  }
  return durations_[static_cast<std::size_t>(kernel)]
                   [static_cast<std::size_t>(type)];
}

double CostModel::expected(const dag::TaskGraph& graph, dag::TaskId t,
                           const Platform& platform, ResourceId r) const {
  return expected(graph.kernel(t), platform.type(r));
}

double CostModel::mean_over_platform(int kernel,
                                     const Platform& platform) const {
  double acc = 0.0;
  for (ResourceId r = 0; r < platform.size(); ++r) {
    acc += expected(kernel, platform.type(r));
  }
  return acc / static_cast<double>(platform.size());
}

// Milliseconds for ~960x960 double-precision tiles; shaped on the StarPU
// measurements in the paper's refs [3], [4], [6]. See DESIGN.md.
CostModel CostModel::cholesky() {
  return CostModel("cholesky", {
                                   {30.0, 15.0},   // POTRF: ~2x
                                   {80.0, 6.0},    // TRSM: ~13x
                                   {90.0, 4.0},    // SYRK: ~22x
                                   {170.0, 6.0},   // GEMM: ~28x
                               });
}

CostModel CostModel::lu() {
  return CostModel("lu", {
                             {60.0, 30.0},   // GETRF: ~2x
                             {80.0, 6.0},    // TRSM_ROW
                             {80.0, 6.0},    // TRSM_COL
                             {170.0, 6.0},   // GEMM
                         });
}

CostModel CostModel::qr() {
  return CostModel("qr", {
                             {40.0, 25.0},   // GEQRT: ~1.6x
                             {85.0, 7.0},    // UNMQR: ~12x
                             {60.0, 30.0},   // TSQRT: ~2x
                             {170.0, 8.0},   // TSMQR: ~21x
                         });
}

CostModel CostModel::uniform(int kernels, double cpu, double gpu) {
  std::vector<std::vector<double>> rows(
      static_cast<std::size_t>(kernels), {cpu, gpu});
  return CostModel("uniform", std::move(rows));
}

CostModel CostModel::for_graph(const dag::TaskGraph& graph) {
  const std::string& n = graph.name();
  if (n.rfind("cholesky", 0) == 0) return cholesky();
  if (n.rfind("lu", 0) == 0) return lu();
  if (n.rfind("qr", 0) == 0) return qr();
  throw std::invalid_argument("CostModel::for_graph: unknown application '" +
                              n + "'");
}

}  // namespace readys::sim
