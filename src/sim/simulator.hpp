#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/engine_view.hpp"

namespace readys::sim {

/// One scheduling decision: start `task` on `resource` now.
struct Assignment {
  dag::TaskId task = dag::kInvalidTask;
  ResourceId resource = -1;
};

/// Interface every scheduling strategy implements to run under the
/// Simulator (HEFT replay, MCT, random, and the READYS agent itself).
///
/// Schedulers observe the simulation through an EngineView — either a
/// whole SimEngine (which converts implicitly, so `decide(engine)` call
/// sites read naturally) or a table-backed view the cluster layer builds
/// for sharded engines and per-shard partial observations.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once before an execution begins.
  virtual void reset(const EngineView& view) { (void)view; }

  /// Called at every decision instant (t = 0 and after each completion).
  /// The scheduler may start any subset of (ready task, idle resource)
  /// pairs; returning an empty vector lets the clock advance to the next
  /// completion. The simulator re-invokes decide() after applying the
  /// returned assignments, so returning one assignment at a time is fine.
  virtual std::vector<Assignment> decide(const EngineView& view) = 0;

  /// Human-readable name used in experiment tables.
  virtual std::string name() const = 0;
};

/// Result of one simulated execution.
struct SimResult {
  double makespan = 0.0;
  Trace trace;
  std::size_t decision_instants = 0;
};

/// Event-driven executor: alternates scheduler decisions and event
/// processing until every task of the graph has completed.
///
/// Throws std::logic_error if the scheduler stalls (assigns nothing while
/// nothing is running and tasks remain) — a deadlock under the paper's
/// MDP, where the ∅ action must be masked when no task is in flight —
/// or if fault injection rendered the platform unrecoverable (every
/// resource down with no recovery pending; impossible with the fault
/// model's default survivor guard).
class Simulator {
 public:
  struct Options {
    double sigma = 0.0;
    std::uint64_t seed = 1;
    /// Optional communication model (input shipping before compute);
    /// unset reproduces the paper's zero-communication assumption.
    std::optional<CommModel> comm;
    /// Optional fault injection (outages / slowdowns / task failures);
    /// unset — or FaultModel::none() — reproduces the fault-free engine
    /// bit-exactly.
    std::optional<FaultModel> faults;
  };

  Simulator(const dag::TaskGraph& graph, const Platform& platform,
            const CostModel& costs, Options options);

  SimResult run(Scheduler& scheduler);

 private:
  const dag::TaskGraph* graph_;  // must outlive the simulator
  Platform platform_;            // copied: inline temporaries are safe
  CostModel costs_;
  Options options_;
};

/// Convenience: build, run, and return the makespan in one call.
double simulate_makespan(const dag::TaskGraph& graph, const Platform& platform,
                         const CostModel& costs, Scheduler& scheduler,
                         double sigma, std::uint64_t seed);

}  // namespace readys::sim
