#include "sim/platform.hpp"

#include <stdexcept>

namespace readys::sim {

Platform::Platform(std::vector<ResourceType> resources)
    : resources_(std::move(resources)) {
  if (resources_.empty()) {
    throw std::invalid_argument("Platform: need at least one resource");
  }
  for (ResourceType t : resources_) {
    if (t == ResourceType::kCpu) {
      ++n_cpus_;
    } else {
      ++n_gpus_;
    }
  }
  ids_.resize(resources_.size());
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    ids_[i] = static_cast<ResourceId>(i);
  }
}

Platform Platform::cpus(int n) {
  return Platform(std::vector<ResourceType>(static_cast<std::size_t>(n),
                                            ResourceType::kCpu));
}

Platform Platform::gpus(int n) {
  return Platform(std::vector<ResourceType>(static_cast<std::size_t>(n),
                                            ResourceType::kGpu));
}

Platform Platform::hybrid(int n_cpus, int n_gpus) {
  std::vector<ResourceType> r;
  r.insert(r.end(), static_cast<std::size_t>(n_cpus), ResourceType::kCpu);
  r.insert(r.end(), static_cast<std::size_t>(n_gpus), ResourceType::kGpu);
  return Platform(std::move(r));
}

std::string Platform::name() const {
  std::string out;
  if (n_cpus_ > 0) out += std::to_string(n_cpus_) + "CPU";
  if (n_gpus_ > 0) {
    if (!out.empty()) out += "+";
    out += std::to_string(n_gpus_) + "GPU";
  }
  return out;
}

}  // namespace readys::sim
