#include "sim/comm_model.hpp"

#include <stdexcept>

namespace readys::sim {

CommModel::CommModel(double tile_bytes, double bandwidth, double latency_ms)
    : tile_bytes_(tile_bytes), bandwidth_(bandwidth), latency_ms_(latency_ms) {
  if (tile_bytes < 0.0 || latency_ms < 0.0) {
    throw std::invalid_argument("CommModel: negative cost");
  }
  if (tile_bytes > 0.0 && bandwidth <= 0.0) {
    throw std::invalid_argument(
        "CommModel: positive payload needs positive bandwidth");
  }
}

CommModel CommModel::free() { return CommModel(0.0, 1.0, 0.0); }

CommModel CommModel::pcie_like() {
  // 960 x 960 doubles = 7.37e6 bytes; 12 GB/s = 1.2e7 bytes/ms; 0.01 ms.
  return CommModel(7.37e6, 1.2e7, 0.01);
}

bool CommModel::is_free() const noexcept {
  return tile_bytes_ == 0.0 && latency_ms_ == 0.0;
}

double CommModel::transfer_time(const Platform& platform, ResourceId from,
                                ResourceId to) const {
  if (from == to || is_free()) return 0.0;
  const bool from_cpu = platform.type(from) == ResourceType::kCpu;
  const bool to_cpu = platform.type(to) == ResourceType::kCpu;
  // All CPU cores share one coherent domain.
  if (from_cpu && to_cpu) return 0.0;
  return latency_ms_ + tile_bytes_ / bandwidth_;
}

double CommModel::input_delay(const dag::TaskGraph& graph, dag::TaskId task,
                              const Platform& platform,
                              const std::vector<ResourceId>& producer_of,
                              ResourceId to) const {
  if (is_free()) return 0.0;
  double total = 0.0;
  for (dag::TaskId p : graph.predecessors(task)) {
    const ResourceId from = producer_of[p];
    if (from >= 0) total += transfer_time(platform, from, to);
  }
  return total;
}

}  // namespace readys::sim
