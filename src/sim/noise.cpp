#include "sim/noise.hpp"

#include <algorithm>
#include <stdexcept>

namespace readys::sim {

NoiseModel::NoiseModel(double sigma) : sigma_(sigma) {
  if (sigma < 0.0) {
    throw std::invalid_argument("NoiseModel: sigma must be >= 0");
  }
}

double NoiseModel::sample(double expected, util::Rng& rng) const noexcept {
  if (sigma_ == 0.0) return expected;
  return std::max(0.0, rng.normal(expected, sigma_ * expected));
}

}  // namespace readys::sim
