#pragma once

#include "util/rng.hpp"

namespace readys::sim {

/// The paper's duration model: the actual duration of a task with
/// expected duration E is d = max(0, N(E, sigma * E)). sigma = 0 is the
/// deterministic regime.
class NoiseModel {
 public:
  explicit NoiseModel(double sigma);

  double sigma() const noexcept { return sigma_; }
  bool deterministic() const noexcept { return sigma_ == 0.0; }

  /// Samples an actual duration for a task with expectation `expected`.
  double sample(double expected, util::Rng& rng) const noexcept;

 private:
  double sigma_;
};

}  // namespace readys::sim
