#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace readys::sim {

double Trace::makespan() const noexcept {
  double m = 0.0;
  for (const auto& e : entries_) m = std::max(m, e.finish);
  return m;
}

std::vector<double> Trace::utilization(const Platform& platform) const {
  std::vector<double> busy(static_cast<std::size_t>(platform.size()), 0.0);
  for (const auto& e : entries_) {
    busy[static_cast<std::size_t>(e.resource)] += e.finish - e.start;
  }
  const double total = makespan();
  if (total > 0.0) {
    for (auto& b : busy) b /= total;
  }
  return busy;
}

std::string Trace::validate(const dag::TaskGraph& graph,
                            const Platform& platform) const {
  std::ostringstream err;
  // Small tolerance: completion times are sums of doubles.
  constexpr double kEps = 1e-9;

  if (entries_.size() != graph.num_tasks()) {
    err << "trace has " << entries_.size() << " entries for "
        << graph.num_tasks() << " tasks";
    return err.str();
  }
  std::vector<const TraceEntry*> by_task(graph.num_tasks(), nullptr);
  for (const auto& e : entries_) {
    if (e.task >= graph.num_tasks()) {
      err << "entry references unknown task " << e.task;
      return err.str();
    }
    if (e.resource < 0 || e.resource >= platform.size()) {
      err << "task " << e.task << " ran on unknown resource " << e.resource;
      return err.str();
    }
    if (e.finish + kEps < e.start) {
      err << "task " << e.task << " finishes before it starts";
      return err.str();
    }
    if (by_task[e.task] != nullptr) {
      err << "task " << e.task << " executed twice";
      return err.str();
    }
    by_task[e.task] = &e;
  }
  // Dependencies.
  for (dag::TaskId t = 0; t < graph.num_tasks(); ++t) {
    for (dag::TaskId p : graph.predecessors(t)) {
      if (by_task[t]->start + kEps < by_task[p]->finish) {
        err << "task " << t << " starts at " << by_task[t]->start
            << " before predecessor " << p << " finishes at "
            << by_task[p]->finish;
        return err.str();
      }
    }
  }
  // Resource exclusivity: sort each resource's entries by start time.
  std::vector<std::vector<const TraceEntry*>> per_resource(
      static_cast<std::size_t>(platform.size()));
  for (const auto& e : entries_) {
    per_resource[static_cast<std::size_t>(e.resource)].push_back(&e);
  }
  for (auto& list : per_resource) {
    std::sort(list.begin(), list.end(),
              [](const TraceEntry* a, const TraceEntry* b) {
                return a->start < b->start;
              });
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i]->start + kEps < list[i - 1]->finish) {
        err << "resource " << list[i]->resource << " overlaps tasks "
            << list[i - 1]->task << " and " << list[i]->task;
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace readys::sim
