#pragma once

#include <string>

#include "sim/trace.hpp"

namespace readys::sim {

/// Renders the trace in Chrome's trace-event JSON format
/// (chrome://tracing, Perfetto): one timeline row per resource, one
/// complete ("X") event per task. Durations are microseconds in the
/// viewer; we map 1 simulated ms -> 1 viewer us.
std::string to_chrome_trace(const Trace& trace, const dag::TaskGraph& graph,
                            const Platform& platform);

/// The comma-joined event list inside to_chrome_trace's "traceEvents"
/// array, without the enclosing JSON wrapper. This is the fragment the
/// telemetry layer (obs::write_chrome_trace_file) merges with wall-clock
/// training spans so one Perfetto load shows both timelines.
/// to_chrome_trace is exactly this fragment wrapped in
/// {"traceEvents":[...],"displayTimeUnit":"ms"} — byte-stable.
std::string chrome_trace_events(const Trace& trace,
                                const dag::TaskGraph& graph,
                                const Platform& platform);

/// Writes to_chrome_trace to `path`; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const Trace& trace, const dag::TaskGraph& graph,
                        const Platform& platform, const std::string& path);

/// Renders a fixed-width ASCII Gantt chart: one row per resource, kernel
/// initials in busy cells, '.' when idle. `columns` controls the
/// horizontal resolution.
std::string to_ascii_gantt(const Trace& trace, const dag::TaskGraph& graph,
                           const Platform& platform, std::size_t columns = 80);

}  // namespace readys::sim
