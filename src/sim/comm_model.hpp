#pragma once

#include "dag/task_graph.hpp"
#include "sim/platform.hpp"

namespace readys::sim {

/// Communication cost model — the dimension the paper deliberately
/// neglects (§III-A assumes transfers fully overlap with computation).
///
/// This extension lets the same simulator quantify when that assumption
/// breaks: each dependency edge carries a data volume (one tile), and
/// starting a task on a resource requires its inputs to be shipped from
/// wherever the producers ran. Transfers between resources of the same
/// locality domain are free (shared memory); cross-domain transfers cost
/// latency + volume / bandwidth and are serialized before the task's
/// compute (a pessimistic, contention-free model).
class CommModel {
 public:
  /// `tile_bytes`: payload of one dependency edge (a tile). `bandwidth`:
  /// bytes per millisecond across domains. `latency_ms`: per-transfer
  /// setup cost.
  CommModel(double tile_bytes, double bandwidth, double latency_ms = 0.0);

  /// A zero-cost model (the paper's assumption) — useful as the neutral
  /// element in sweeps.
  static CommModel free();

  /// Typical PCIe-like numbers for ~960x960 double tiles: 7.4 MB tiles,
  /// 12 GB/s, 10 us latency.
  static CommModel pcie_like();

  /// Transfer duration (ms) of one tile between two resources. CPU cores
  /// share one domain; every GPU is its own domain (so GPU0 -> GPU1 pays
  /// like GPU -> CPU).
  double transfer_time(const Platform& platform, ResourceId from,
                       ResourceId to) const;

  /// Total input-shipping delay for starting `task` on `to`, given the
  /// resource each predecessor ran on: transfers are pessimistically
  /// serialized.
  double input_delay(const dag::TaskGraph& graph, dag::TaskId task,
                     const Platform& platform,
                     const std::vector<ResourceId>& producer_of,
                     ResourceId to) const;

  /// True when every transfer costs exactly zero.
  bool is_free() const noexcept;
  double tile_bytes() const noexcept { return tile_bytes_; }
  double bandwidth() const noexcept { return bandwidth_; }
  double latency_ms() const noexcept { return latency_ms_; }

 private:
  double tile_bytes_;
  double bandwidth_;
  double latency_ms_;
};

}  // namespace readys::sim
