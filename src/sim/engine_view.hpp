#pragma once

#include <vector>

#include "sim/engine.hpp"

namespace readys::sim {

class EngineView;

/// Raw observable-state tables backing an EngineView when the state does
/// not come from a live SimEngine — the cluster layer's ShardedEngine
/// publishes one of these over its own members, and shard-scoped views
/// override a subset of the tables (local ready set, masked resource
/// availability) while delegating the rest to the full view via `base`.
///
/// Pointer fields marked *required* must be set on every state; fields
/// marked *optional* may stay null, in which case the corresponding
/// accessor forwards to `base` (which must then be non-null and valid).
/// All pointers are non-owning and must outlive the views built on top.
struct EngineState {
  // Static context — required.
  const dag::TaskGraph* graph = nullptr;
  const Platform* platform = nullptr;
  const CostModel* costs = nullptr;
  const CommModel* comm = nullptr;  ///< null = no communication model

  // Scalars, refreshed by the owner before handing out views.
  double now = 0.0;
  bool fault_enabled = false;
  /// Global "anything in flight" flag. Deliberately global even for
  /// shard-scoped views: the simulator's stall rule (the empty action is
  /// illegal when nothing runs anywhere) is a whole-platform property.
  bool any_running = false;

  // Required collections.
  const std::vector<ResourceId>* resources = nullptr;  ///< visible, ascending
  const std::vector<dag::TaskId>* ready = nullptr;     ///< ascending ids
  const std::vector<dag::TaskId>* ready_log = nullptr; ///< append-only
  const std::vector<RunningInfo>* running = nullptr;   ///< start order
  const std::vector<std::uint8_t>* up = nullptr;       ///< per resource

  // Optional tables (null -> delegate to base).
  /// Readiness is a DAG fact, not an ownership fact: a shard-scoped view
  /// leaves this null so is_ready() answers globally even for tasks the
  /// shard does not own (its ready() list stays scoped). Full table-backed
  /// states must set it.
  const std::vector<std::uint8_t>* in_ready = nullptr;    ///< per task
  const std::vector<std::uint8_t>* done = nullptr;        ///< per task
  const std::vector<ResourceId>* producer_of = nullptr;   ///< per task
  const std::vector<dag::TaskId>* resource_task = nullptr;///< per resource
  /// Resolved availability: max(now, expected finish), +inf down. Scoped
  /// views precompute this; set either `avail` or `expected_finish`.
  const std::vector<double>* avail = nullptr;
  /// Engine-internal promised-finish table (NaN = idle); the view applies
  /// the up/now clamping and corruption checks itself.
  const std::vector<double>* expected_finish = nullptr;
  const std::vector<double>* speed = nullptr;           ///< per resource
  const std::vector<double>* duration_table = nullptr;  ///< kernel x P

  /// Delegation target for null optional fields. At most one level deep:
  /// a scoped view's base is always a full (engine- or table-backed) view.
  const EngineView* base = nullptr;
};

/// Read-only window onto simulation state — the surface schedulers see.
///
/// Non-virtual by design: the decide() hot path runs millions of times
/// per second and every accessor is one predictable branch between the
/// two backends. Engine-backed views convert implicitly from SimEngine
/// so call sites (`scheduler.decide(engine)`) stay source-compatible;
/// table-backed views let the cluster layer present sharded or partial
/// state through the same interface without SimEngine inheriting
/// anything.
///
/// Views are cheap value types (two pointers); they do not own state and
/// must not outlive the engine or EngineState they wrap.
class EngineView {
 public:
  /*implicit*/ EngineView(const SimEngine& engine) : engine_(&engine) {}
  explicit EngineView(const EngineState& state) : state_(&state) {}

  double now() const noexcept {
    return engine_ ? engine_->now() : state_->now;
  }
  const dag::TaskGraph& graph() const noexcept {
    return engine_ ? engine_->graph() : *state_->graph;
  }
  const Platform& platform() const noexcept {
    return engine_ ? engine_->platform() : *state_->platform;
  }
  const CostModel& costs() const noexcept {
    return engine_ ? engine_->costs() : *state_->costs;
  }

  /// Visible resource ids, ascending. The full view of a P-resource
  /// platform sees 0..P-1; a shard-scoped view sees only its own
  /// resources — which is what makes per-shard decide scans O(P/K).
  const std::vector<ResourceId>& resources() const noexcept {
    return engine_ ? engine_->platform().ids() : *state_->resources;
  }

  const std::vector<dag::TaskId>& ready() const noexcept {
    return engine_ ? engine_->ready() : *state_->ready;
  }
  const std::vector<dag::TaskId>& ready_log() const noexcept {
    return engine_ ? engine_->ready_log() : *state_->ready_log;
  }
  const std::vector<RunningInfo>& running() const noexcept {
    return engine_ ? engine_->running() : *state_->running;
  }
  bool any_running() const noexcept {
    return engine_ ? engine_->any_running() : state_->any_running;
  }

  bool is_ready(dag::TaskId t) const noexcept {
    if (engine_) return engine_->is_ready(t);
    if (!state_->in_ready) return state_->base->is_ready(t);
    return t < state_->in_ready->size() && (*state_->in_ready)[t] != 0;
  }
  bool is_up(ResourceId r) const {
    if (engine_) return engine_->is_up(r);
    return (*state_->up)[static_cast<std::size_t>(r)] != 0;
  }
  bool is_idle(ResourceId r) const {
    if (engine_) return engine_->is_idle(r);
    return (*state_->up)[static_cast<std::size_t>(r)] != 0 &&
           running_on(r) == dag::kInvalidTask;
  }
  bool is_done(dag::TaskId t) const {
    if (engine_) return engine_->is_done(t);
    if (state_->done) return (*state_->done)[t] != 0;
    return state_->base->is_done(t);
  }
  dag::TaskId running_on(ResourceId r) const {
    if (engine_) return engine_->running_on(r);
    if (state_->resource_task) {
      return (*state_->resource_task)[static_cast<std::size_t>(r)];
    }
    return state_->base->running_on(r);
  }
  /// Resource that produced t's output, or -1 while t is incomplete.
  ResourceId producer_of(dag::TaskId t) const {
    if (engine_) return engine_->producer_of()[t];
    if (state_->producer_of) return (*state_->producer_of)[t];
    return state_->base->producer_of(t);
  }

  bool fault_enabled() const noexcept {
    return engine_ ? engine_->fault_enabled() : state_->fault_enabled;
  }
  bool has_comm_model() const noexcept {
    return engine_ ? engine_->has_comm_model() : state_->comm != nullptr;
  }
  /// The communication model behind this view, or nullptr. Lets a
  /// derived (shard-scoped) EngineState re-reference the same model.
  const CommModel* comm_model() const noexcept {
    return engine_ ? engine_->comm_model() : state_->comm;
  }

  double expected_duration(dag::TaskId t, ResourceId r) const {
    if (engine_) return engine_->expected_duration(t, r);
    if (state_->duration_table) {
      const double d =
          (*state_->duration_table)
              [static_cast<std::size_t>(state_->graph->kernel(t)) *
                   static_cast<std::size_t>(state_->platform->size()) +
               static_cast<std::size_t>(r)];
      return state_->fault_enabled
                 ? d * (*state_->speed)[static_cast<std::size_t>(r)]
                 : d;
    }
    return state_->base->expected_duration(t, r);
  }

  /// Visible idle resources, ascending (scoped views report only their
  /// own shard's). Materializes a vector like SimEngine::idle_resources.
  std::vector<ResourceId> idle_resources() const;

  /// See SimEngine::expected_available_at — same semantics, including
  /// the state-corruption checks when backed by a promised-finish table.
  double expected_available_at(ResourceId r) const;

  /// See SimEngine::expected_input_delay; 0 without a comm model.
  double expected_input_delay(dag::TaskId t, ResourceId r) const;

 private:
  const SimEngine* engine_ = nullptr;
  const EngineState* state_ = nullptr;
};

}  // namespace readys::sim
