#include "sim/fault_model.hpp"

#include <cmath>
#include <stdexcept>

namespace readys::sim {

void FaultModel::validate() const {
  if (outage_rate < 0.0 || slowdown_rate < 0.0) {
    throw std::invalid_argument("FaultModel: rates must be >= 0");
  }
  if (task_failure_prob < 0.0 || task_failure_prob > 1.0) {
    throw std::invalid_argument(
        "FaultModel: task_failure_prob must be in [0, 1]");
  }
  if (slowdown_rate > 0.0 && mean_slowdown <= 0.0) {
    throw std::invalid_argument(
        "FaultModel: slowdowns need a positive mean_slowdown");
  }
  if (slowdown_factor < 1.0) {
    throw std::invalid_argument(
        "FaultModel: slowdown_factor must be >= 1 (a factor below 1 would "
        "be a speedup)");
  }
  if (min_survivors_per_type < 0) {
    throw std::invalid_argument(
        "FaultModel: min_survivors_per_type must be >= 0");
  }
}

double FaultModel::sample_gap(double rate, util::Rng& rng) {
  if (rate <= 0.0) {
    throw std::invalid_argument("FaultModel::sample_gap: rate must be > 0");
  }
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - rng.uniform()) / rate;
}

double FaultModel::sample_duration(double mean, util::Rng& rng) {
  if (mean <= 0.0) {
    throw std::invalid_argument(
        "FaultModel::sample_duration: mean must be > 0");
  }
  return -std::log(1.0 - rng.uniform()) * mean;
}

}  // namespace readys::sim
