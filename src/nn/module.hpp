#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/autograd.hpp"

namespace readys::nn {

using tensor::Tensor;
using tensor::Var;

/// Base class for neural-network building blocks.
///
/// A Module owns trainable parameters (Vars with requires_grad) and may
/// contain child modules; parameters() / named_parameters() flatten the
/// tree, which is what the optimizers and the (de)serializer consume.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first (children after own params).
  std::vector<Var> parameters() const;

  /// Parameters with dotted path names ("actor.fc1.weight").
  std::vector<std::pair<std::string, Var>> named_parameters() const;

  /// Total number of scalar weights.
  std::size_t parameter_count() const;

  /// Zeroes every parameter gradient.
  void zero_grad() const;

  /// Copies parameter values from another module with an identical
  /// architecture (matched by name and shape). Throws on mismatch.
  void copy_parameters_from(const Module& other);

  /// Monotone counter identifying the current weight values. Starts at 1
  /// and is bumped by every mutation that rewrites parameter values as a
  /// unit — optimizer step, deserialize_parameters, copy_parameters_from.
  /// Consumers that cache derived weight snapshots (the f32 inference
  /// backend, serve's PolicyStore) compare versions instead of tensors.
  std::uint64_t weight_version() const { return weight_version_; }

  /// Marks the parameters as mutated. Public because the mutators live
  /// outside the class (optimizers hold raw Vars, the serializer is a
  /// free function); bumping without changing weights is harmless.
  void bump_weight_version() { ++weight_version_; }

 protected:
  /// Registers a trainable leaf; returns the handle to use in forward().
  Var register_parameter(const std::string& name, Tensor init);

  /// Registers a child whose parameters become part of this module's tree.
  /// The child must outlive this module (typical usage: data member).
  void register_module(const std::string& name, Module& child);

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Var>>& out) const;

  std::vector<std::pair<std::string, Var>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  std::uint64_t weight_version_ = 1;
};

/// Glorot/Xavier-uniform initialization for a (fan_in x fan_out) matrix.
Tensor glorot_uniform(std::size_t fan_in, std::size_t fan_out,
                      util::Rng& rng);

}  // namespace readys::nn
