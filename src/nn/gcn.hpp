#pragma once

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace readys::nn {

/// One Kipf–Welling graph-convolution layer:
///   H' = Ahat * H * W + b
/// where Ahat = D^-1/2 (A + I) D^-1/2 is the renormalized adjacency.
/// The activation is applied by the caller (READYS uses ReLU between
/// layers, none after the last).
class GCNLayer : public Module {
 public:
  GCNLayer(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  /// `ahat` is the (N x N) normalized adjacency as a constant Var; `h` is
  /// the (N x in) node feature matrix.
  Var forward(const Var& ahat, const Var& h) const;

  /// Batched forward over several graphs at once: `blocks` holds the
  /// per-graph Ahat matrices and `h` their row-concatenated features
  /// (the implied adjacency is block-diagonal). Each graph's rows come
  /// out bit-identical to forward(Var{blocks[g]}, h_g) on that graph
  /// alone — see tensor::block_diag_matmul.
  Var forward_packed(
      const std::shared_ptr<const std::vector<Tensor>>& blocks,
      const Var& h) const;

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Var weight_;
  Var bias_;
};

/// Builds the renormalized adjacency Ahat = D^-1/2 (A + I) D^-1/2 from a
/// directed edge list over N nodes. Edges are treated as undirected for
/// message passing (information must flow both up and down the DAG so the
/// embedding of a ready task can see its descendants).
Tensor normalized_adjacency(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges);

/// Compressed-sparse-row view of a normalized adjacency: row i's nonzero
/// columns are col[row_ptr[i] .. row_ptr[i+1]), ascending, with matching
/// values in val. Ahat has n + 2|edges| nonzeros out of n^2 entries, so
/// the f32 inference fast path consumes this instead of the dense matrix
/// (tensor::f32::spmm_bias) — O(nnz) per decision instead of O(n^2).
struct SparseAdj {
  std::vector<std::size_t> row_ptr;  ///< n + 1 entries
  std::vector<std::size_t> col;      ///< nnz column indices
  std::vector<double> val;           ///< nnz values, aligned with col

  std::size_t rows() const noexcept {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  bool empty() const noexcept { return row_ptr.empty(); }
  void clear() noexcept {
    row_ptr.clear();
    col.clear();
    val.clear();
  }
};

/// Fills `out` with the CSR form of normalized_adjacency(n, edges).
/// Every stored value is bit-identical to the corresponding dense entry
/// (both are the product dinv_sqrt[i] * dinv_sqrt[j] of exactly the same
/// doubles), and columns are ascending within each row, so a product
/// accumulated over the CSR nonzeros reproduces a dense product that
/// skips zeros term for term. Buffers are reused across calls.
void normalized_adjacency_csr(
    std::size_t n, const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    SparseAdj& out);

}  // namespace readys::nn
