#include "nn/module.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace readys::nn {

std::vector<Var> Module::parameters() const {
  std::vector<Var> out;
  for (const auto& [name, var] : named_parameters()) out.push_back(var);
  return out;
}

std::vector<std::pair<std::string, Var>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Var>> out;
  collect("", out);
  return out;
}

std::size_t Module::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : parameters()) n += p.value().size();
  return n;
}

void Module::zero_grad() const {
  for (auto& p : parameters()) p.zero_grad();
}

void Module::copy_parameters_from(const Module& other) {
  std::unordered_map<std::string, Var> theirs;
  for (const auto& [name, var] : other.named_parameters()) {
    theirs.emplace(name, var);
  }
  for (auto& [name, var] : named_parameters()) {
    auto it = theirs.find(name);
    if (it == theirs.end()) {
      throw std::invalid_argument("copy_parameters_from: missing " + name);
    }
    if (!var.value().same_shape(it->second.value())) {
      throw std::invalid_argument("copy_parameters_from: shape mismatch at " +
                                  name);
    }
    var.mutable_value() = it->second.value();
  }
  bump_weight_version();
}

Var Module::register_parameter(const std::string& name, Tensor init) {
  Var v(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(name, v);
  return v;
}

void Module::register_module(const std::string& name, Module& child) {
  children_.emplace_back(name, &child);
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, Var>>& out) const {
  for (const auto& [name, var] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, var);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

Tensor glorot_uniform(std::size_t fan_in, std::size_t fan_out,
                      util::Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return Tensor::rand_uniform(fan_in, fan_out, rng, -limit, limit);
}

}  // namespace readys::nn
