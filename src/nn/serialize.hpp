#pragma once

#include <string>

#include "nn/module.hpp"

namespace readys::nn {

/// Saves every named parameter of `module` to a human-readable text file:
///   readys-weights v1
///   <name> <rows> <cols>
///   v v v ...
///   end <num-parameters>
/// The `end` trailer (and the required final newline) makes truncation
/// at ANY byte offset detectable: a prefix of a valid file either ends
/// mid-line, lacks the trailer, or carries the wrong parameter count.
/// Used by the transfer-learning experiments (train on T, reuse on T')
/// and by training checkpoints. Crash-safe: the payload is written to
/// `<path>.tmp` and atomically renamed over `<path>`, so a crash
/// mid-write never leaves a truncated weights file — at worst a stale
/// .tmp beside the previous complete one. Throws std::runtime_error on
/// I/O failure.
void save_parameters(const Module& module, const std::string& path);

/// Loads parameters saved by save_parameters into `module`. Every
/// parameter of `module` must be present in the file with a matching
/// shape; extra entries in the file are an error too. Errors carry the
/// offending parameter name, the expected vs. found shape, and the line
/// number for parse failures; the module is only mutated after the whole
/// file validates (no half-overwritten state on throw).
void load_parameters(Module& module, const std::string& path);

/// In-memory round trip (used by tests and by cloning across threads).
std::string serialize_parameters(const Module& module);
void deserialize_parameters(Module& module, const std::string& blob);

}  // namespace readys::nn
