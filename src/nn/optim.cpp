#include "nn/optim.hpp"

#include <cmath>

namespace readys::nn {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

bool Optimizer::grads_finite() const {
  for (const auto& p : params_) {
    const Tensor& g = p.grad();
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!std::isfinite(g[i])) return false;
    }
  }
  return true;
}

double Optimizer::clip_grad_norm(double max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    const Tensor& g = p.grad();
    for (std::size_t i = 0; i < g.size(); ++i) total += g[i] * g[i];
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const double factor = max_norm / norm;
    for (auto& p : params_) {
      // grad() returns const; go through the node to scale in place.
      Tensor& g = p.node()->ensure_grad();
      g.scale_(factor);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Var> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Tensor::zeros(p.rows(), p.cols()));
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = params_[k].mutable_value();
    const Tensor& g = params_[k].grad();
    Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < w.size(); ++i) {
      vel[i] = momentum_ * vel[i] + g[i];
      w[i] -= lr_ * vel[i];
    }
  }
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.rows(), p.cols()));
    v_.push_back(Tensor::zeros(p.rows(), p.cols()));
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = params_[k].mutable_value();
    const Tensor& g = params_[k].grad();
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g[i] * g[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace readys::nn
