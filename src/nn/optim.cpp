#include "nn/optim.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace readys::nn {

namespace {

[[noreturn]] void state_fail(const std::string& what) {
  throw std::runtime_error("Optimizer::load_state_rows: " + what);
}

std::string tensor_row(const char* tag, std::size_t k, const Tensor& t) {
  std::ostringstream os;
  os << std::setprecision(17) << tag << ' ' << k << ' ' << t.rows() << ' '
     << t.cols();
  for (std::size_t i = 0; i < t.size(); ++i) os << ' ' << t[i];
  return os.str();
}

/// Parses "<tag> <k> <rows> <cols> <values...>" into `out`, which must
/// already have the expected shape (checked against the row header).
void parse_tensor_row(const std::string& row, const char* tag,
                      std::size_t expect_k, Tensor& out) {
  std::istringstream is(row);
  std::string got_tag;
  std::size_t k = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(is >> got_tag >> k >> rows >> cols)) {
    state_fail("malformed row '" + row + "'");
  }
  if (got_tag != tag || k != expect_k) {
    state_fail("expected row '" + std::string(tag) + " " +
               std::to_string(expect_k) + " ...', found '" + row + "'");
  }
  if (rows != out.rows() || cols != out.cols()) {
    state_fail("shape mismatch for " + std::string(tag) + "[" +
               std::to_string(k) + "]: optimizer expects " +
               std::to_string(out.rows()) + "x" + std::to_string(out.cols()) +
               ", row has " + std::to_string(rows) + "x" +
               std::to_string(cols));
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!(is >> out[i])) {
      state_fail("truncated values in row '" + std::string(tag) + " " +
                 std::to_string(k) + "': expected " +
                 std::to_string(out.size()) + ", found " + std::to_string(i));
    }
  }
  double extra = 0.0;
  if (is >> extra) {
    state_fail("trailing values in row '" + std::string(tag) + " " +
               std::to_string(k) + "'");
  }
}

}  // namespace

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

bool Optimizer::grads_finite() const {
  for (const auto& p : params_) {
    const Tensor& g = p.grad();
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!std::isfinite(g[i])) return false;
    }
  }
  return true;
}

void Optimizer::load_state_rows(const std::vector<std::string>& rows) {
  if (!rows.empty()) {
    state_fail("this optimizer is stateless but " +
               std::to_string(rows.size()) + " state rows were provided");
  }
}

double Optimizer::clip_grad_norm(double max_norm) {
  double total = 0.0;
  for (auto& p : params_) {
    const Tensor& g = p.grad();
    for (std::size_t i = 0; i < g.size(); ++i) total += g[i] * g[i];
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const double factor = max_norm / norm;
    for (auto& p : params_) {
      // grad() returns const; go through the node to scale in place.
      Tensor& g = p.node()->ensure_grad();
      g.scale_(factor);
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Var> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Tensor::zeros(p.rows(), p.cols()));
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = params_[k].mutable_value();
    const Tensor& g = params_[k].grad();
    Tensor& vel = velocity_[k];
    for (std::size_t i = 0; i < w.size(); ++i) {
      vel[i] = momentum_ * vel[i] + g[i];
      w[i] -= lr_ * vel[i];
    }
  }
}

std::vector<std::string> Sgd::state_rows() const {
  std::vector<std::string> rows;
  rows.reserve(1 + velocity_.size());
  rows.push_back("sgd " + std::to_string(velocity_.size()));
  for (std::size_t k = 0; k < velocity_.size(); ++k) {
    rows.push_back(tensor_row("vel", k, velocity_[k]));
  }
  return rows;
}

void Sgd::load_state_rows(const std::vector<std::string>& rows) {
  if (rows.size() != 1 + velocity_.size() ||
      rows[0] != "sgd " + std::to_string(velocity_.size())) {
    state_fail("expected header 'sgd " + std::to_string(velocity_.size()) +
               "' and one vel row per parameter, got " +
               std::to_string(rows.size()) + " rows");
  }
  std::vector<Tensor> vel = velocity_;  // validate into a copy, then swap
  for (std::size_t k = 0; k < vel.size(); ++k) {
    parse_tensor_row(rows[1 + k], "vel", k, vel[k]);
  }
  velocity_ = std::move(vel);
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.rows(), p.cols()));
    v_.push_back(Tensor::zeros(p.rows(), p.cols()));
  }
}

std::vector<std::string> Adam::state_rows() const {
  std::vector<std::string> rows;
  rows.reserve(1 + 2 * m_.size());
  rows.push_back("adam " + std::to_string(t_) + " " +
                 std::to_string(m_.size()));
  for (std::size_t k = 0; k < m_.size(); ++k) {
    rows.push_back(tensor_row("m", k, m_[k]));
    rows.push_back(tensor_row("v", k, v_[k]));
  }
  return rows;
}

void Adam::load_state_rows(const std::vector<std::string>& rows) {
  if (rows.empty()) state_fail("adam state requires a header row");
  std::istringstream header(rows[0]);
  std::string tag;
  long t = 0;
  std::size_t n = 0;
  if (!(header >> tag >> t >> n) || tag != "adam" || t < 0) {
    state_fail("malformed adam header '" + rows[0] + "'");
  }
  if (n != m_.size() || rows.size() != 1 + 2 * n) {
    state_fail("adam state for " + std::to_string(n) + " parameters (" +
               std::to_string(rows.size()) + " rows), optimizer has " +
               std::to_string(m_.size()));
  }
  // Validate into copies, then apply: a bad row must not leave the
  // moments half-overwritten.
  std::vector<Tensor> m = m_;
  std::vector<Tensor> v = v_;
  for (std::size_t k = 0; k < n; ++k) {
    parse_tensor_row(rows[1 + 2 * k], "m", k, m[k]);
    parse_tensor_row(rows[2 + 2 * k], "v", k, v[k]);
  }
  t_ = t;
  m_ = std::move(m);
  v_ = std::move(v);
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = params_[k].mutable_value();
    const Tensor& g = params_[k].grad();
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (std::size_t i = 0; i < w.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0 - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0 - beta2_) * g[i] * g[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace readys::nn
