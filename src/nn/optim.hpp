#pragma once

#include <string>
#include <vector>

#include "tensor/autograd.hpp"

namespace readys::nn {

using tensor::Tensor;
using tensor::Var;

/// Base class for first-order optimizers over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;

  /// Zeroes every parameter gradient.
  void zero_grad();

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clipping norm, which is NaN/Inf whenever any
  /// gradient entry is — callers use it to detect poisoned backward
  /// passes before step() bakes them into the weights.
  double clip_grad_norm(double max_norm);

  /// True iff every accumulated gradient entry is finite. A NaN/Inf
  /// gradient stepped into the weights is unrecoverable (Adam moments
  /// keep the poison), so trainers check this (or the clip_grad_norm
  /// return) and skip the update instead.
  bool grads_finite() const;

  /// The optimizer's internal state (moment estimates, step count) as
  /// text rows, so checkpoints can capture it and a resumed run steps
  /// exactly like the uninterrupted one — resuming Adam without its
  /// moments silently diverges. Doubles carry 17 significant digits
  /// (exact round trip). The base implementation is stateless and
  /// returns no rows.
  virtual std::vector<std::string> state_rows() const { return {}; }

  /// Restores rows produced by state_rows() on an identically-shaped
  /// optimizer. Malformed rows, a parameter-count or shape mismatch all
  /// throw std::runtime_error and leave the optimizer untouched (the
  /// rows are fully validated before any state is applied).
  virtual void load_state_rows(const std::vector<std::string>& rows);

 protected:
  std::vector<Var> params_;
};

/// Vanilla SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, double lr, double momentum = 0.0);
  void step() override;
  std::vector<std::string> state_rows() const override;
  void load_state_rows(const std::vector<std::string>& rows) override;

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba). Defaults match PyTorch: beta1=0.9, beta2=0.999,
/// eps=1e-8 — the paper trains with Adam(lr=0.01) and PyTorch defaults.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void step() override;
  /// First/second moments plus the bias-correction step count t.
  std::vector<std::string> state_rows() const override;
  void load_state_rows(const std::vector<std::string>& rows) override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  long t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace readys::nn
