#include "nn/linear.hpp"

#include "tensor/ops.hpp"

namespace readys::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features,
               util::Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  weight_ =
      register_parameter("weight", glorot_uniform(in_features, out_features,
                                                  rng));
  if (has_bias_) {
    bias_ = register_parameter("bias", Tensor::zeros(1, out_features));
  }
}

Var Linear::forward(const Var& x) const {
  Var y = tensor::matmul(x, weight_);
  if (has_bias_) y = tensor::add(y, bias_);
  return y;
}

}  // namespace readys::nn
