#include "nn/gcn.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace readys::nn {

GCNLayer::GCNLayer(std::size_t in_features, std::size_t out_features,
                   util::Rng& rng)
    : in_(in_features), out_(out_features) {
  weight_ = register_parameter(
      "weight", glorot_uniform(in_features, out_features, rng));
  bias_ = register_parameter("bias", Tensor::zeros(1, out_features));
}

Var GCNLayer::forward(const Var& ahat, const Var& h) const {
  return tensor::add(tensor::matmul(ahat, tensor::matmul(h, weight_)),
                     bias_);
}

Var GCNLayer::forward_packed(
    const std::shared_ptr<const std::vector<Tensor>>& blocks,
    const Var& h) const {
  return tensor::add(
      tensor::block_diag_matmul(blocks, tensor::matmul(h, weight_)), bias_);
}

Tensor normalized_adjacency(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  Tensor a(n, n);
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) = 1.0;  // self loops
  for (const auto& [u, v] : edges) {
    a.at(u, v) = 1.0;
    a.at(v, u) = 1.0;  // symmetrize: messages flow along and against deps
  }
  std::vector<double> dinv_sqrt(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < n; ++j) deg += a.at(i, j);
    dinv_sqrt[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) *= dinv_sqrt[i] * dinv_sqrt[j];
    }
  }
  return a;
}

void normalized_adjacency_csr(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    SparseAdj& out) {
  // Row degrees count the self loop plus each (symmetrized) incident
  // edge; summing 1.0s and counting give the same exact double, so
  // dinv_sqrt matches the dense builder bit for bit.
  out.row_ptr.assign(n + 1, 0);
  for (const auto& [u, v] : edges) {
    ++out.row_ptr[u + 1];
    ++out.row_ptr[v + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.row_ptr[i + 1] += out.row_ptr[i] + 1;  // +1: the self loop
  }
  const std::size_t nnz = out.row_ptr[n];
  out.col.resize(nnz);
  out.val.resize(nnz);

  std::vector<std::size_t> fill(n);
  for (std::size_t i = 0; i < n; ++i) {
    fill[i] = out.row_ptr[i];
    out.col[fill[i]++] = i;  // self loop first, sorted below
  }
  for (const auto& [u, v] : edges) {
    out.col[fill[u]++] = v;
    out.col[fill[v]++] = u;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(out.col.begin() + static_cast<std::ptrdiff_t>(out.row_ptr[i]),
              out.col.begin() + static_cast<std::ptrdiff_t>(out.row_ptr[i + 1]));
  }

  std::vector<double> dinv_sqrt(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double deg =
        static_cast<double>(out.row_ptr[i + 1] - out.row_ptr[i]);
    dinv_sqrt[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = out.row_ptr[i]; p < out.row_ptr[i + 1]; ++p) {
      out.val[p] = dinv_sqrt[i] * dinv_sqrt[out.col[p]];
    }
  }
}

}  // namespace readys::nn
