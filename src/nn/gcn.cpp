#include "nn/gcn.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace readys::nn {

GCNLayer::GCNLayer(std::size_t in_features, std::size_t out_features,
                   util::Rng& rng)
    : in_(in_features), out_(out_features) {
  weight_ = register_parameter(
      "weight", glorot_uniform(in_features, out_features, rng));
  bias_ = register_parameter("bias", Tensor::zeros(1, out_features));
}

Var GCNLayer::forward(const Var& ahat, const Var& h) const {
  return tensor::add(tensor::matmul(ahat, tensor::matmul(h, weight_)),
                     bias_);
}

Var GCNLayer::forward_packed(
    const std::shared_ptr<const std::vector<Tensor>>& blocks,
    const Var& h) const {
  return tensor::add(
      tensor::block_diag_matmul(blocks, tensor::matmul(h, weight_)), bias_);
}

Tensor normalized_adjacency(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  Tensor a(n, n);
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) = 1.0;  // self loops
  for (const auto& [u, v] : edges) {
    a.at(u, v) = 1.0;
    a.at(v, u) = 1.0;  // symmetrize: messages flow along and against deps
  }
  std::vector<double> dinv_sqrt(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < n; ++j) deg += a.at(i, j);
    dinv_sqrt[i] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) *= dinv_sqrt[i] * dinv_sqrt[j];
    }
  }
  return a;
}

}  // namespace readys::nn
