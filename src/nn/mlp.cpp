#include "nn/mlp.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace readys::nn {

Mlp::Mlp(const std::vector<std::size_t>& sizes, util::Rng& rng) {
  if (sizes.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output sizes");
  }
  in_ = sizes.front();
  out_ = sizes.back();
  layers_.reserve(sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(sizes[i], sizes[i + 1], rng));
    register_module("fc" + std::to_string(i), *layers_.back());
  }
}

Var Mlp::forward(const Var& x) const {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(h);
    if (i + 1 < layers_.size()) h = tensor::relu(h);
  }
  return h;
}

}  // namespace readys::nn
