#pragma once

#include "nn/module.hpp"

namespace readys::nn {

/// Fully-connected layer: y = x W + b, with x of shape (batch x in).
class Linear : public Module {
 public:
  /// Glorot-uniform weight init, zero bias.
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
         bool bias = true);

  Var forward(const Var& x) const;

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Var weight_;
  Var bias_;
  bool has_bias_;
};

}  // namespace readys::nn
