#include "nn/serialize.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace readys::nn {

namespace {

constexpr const char* kMagic = "readys-weights v1";

std::string shape_str(std::size_t rows, std::size_t cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("deserialize_parameters: line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

std::string serialize_parameters(const Module& module) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << std::setprecision(17);
  std::size_t count = 0;
  for (const auto& [name, var] : module.named_parameters()) {
    const Tensor& t = var.value();
    os << name << ' ' << t.rows() << ' ' << t.cols() << '\n';
    for (std::size_t i = 0; i < t.size(); ++i) {
      os << t[i] << (i + 1 == t.size() ? '\n' : ' ');
    }
    if (t.size() == 0) os << '\n';
    ++count;
  }
  os << "end " << count << '\n';
  return os.str();
}

void deserialize_parameters(Module& module, const std::string& blob) {
  std::istringstream is(blob);
  std::string line;
  std::size_t line_no = 0;
  const auto next_line = [&](std::string& out) {
    if (!std::getline(is, out)) return false;
    ++line_no;
    return true;
  };

  // A blob not ending in '\n' is a torn tail: getline would happily
  // return the partial last line (e.g. "0.12" cut from "0.12345"), so
  // without this check some truncation offsets would parse "cleanly"
  // into wrong weights.
  if (blob.empty() || blob.back() != '\n') {
    fail(1, "missing final newline (truncated file?)");
  }
  if (!next_line(line) || line != kMagic) {
    fail(line_no == 0 ? 1 : line_no,
         "bad header '" + line + "' (expected '" + std::string(kMagic) + "')");
  }
  std::unordered_map<std::string, Tensor> entries;
  bool saw_end = false;
  while (next_line(line)) {
    if (line.empty()) continue;  // tolerate trailing blank lines
    if (line.rfind("end", 0) == 0 &&
        (line.size() == 3 || line[3] == ' ')) {
      std::istringstream trailer(line);
      std::string tag;
      std::size_t n = 0;
      std::string extra;
      if (!(trailer >> tag >> n) || (trailer >> extra)) {
        fail(line_no, "malformed 'end' trailer '" + line + "'");
      }
      if (n != entries.size()) {
        fail(line_no, "'end' trailer says " + std::to_string(n) +
                          " parameters, file carries " +
                          std::to_string(entries.size()) +
                          " (truncated file?)");
      }
      saw_end = true;
      while (next_line(line)) {
        if (!line.empty()) {
          fail(line_no, "content after 'end' trailer: '" + line + "'");
        }
      }
      break;
    }
    std::istringstream header(line);
    std::string name;
    std::size_t rows = 0;
    std::size_t cols = 0;
    if (!(header >> name >> rows >> cols)) {
      fail(line_no, "malformed parameter header '" + line +
                        "' (expected '<name> <rows> <cols>')");
    }
    if (entries.contains(name)) {
      fail(line_no, "duplicate parameter '" + name + "'");
    }
    Tensor t(rows, cols);
    const std::size_t header_line = line_no;
    if (t.size() > 0 && !next_line(line)) {
      fail(header_line, "missing data line for parameter '" + name + "' (" +
                            shape_str(rows, cols) + ")");
    }
    if (t.size() > 0) {
      std::istringstream data(line);
      for (std::size_t i = 0; i < t.size(); ++i) {
        if (!(data >> t[i])) {
          fail(line_no, "truncated data for parameter '" + name +
                            "': expected " + std::to_string(t.size()) +
                            " values (" + shape_str(rows, cols) + "), found " +
                            std::to_string(i));
        }
      }
    } else {
      next_line(line);  // consume the empty data line, if present
    }
    entries.emplace(name, std::move(t));
  }
  if (!saw_end) {
    fail(line_no, "missing 'end' trailer (truncated file?)");
  }

  auto named = module.named_parameters();
  std::unordered_set<std::string> known;
  for (auto& [pname, var] : named) {
    known.insert(pname);
    auto it = entries.find(pname);
    if (it == entries.end()) {
      throw std::runtime_error(
          "deserialize_parameters: missing parameter '" + pname +
          "' (module expects " + shape_str(var.rows(), var.cols()) + ")");
    }
    if (!var.value().same_shape(it->second)) {
      throw std::runtime_error(
          "deserialize_parameters: shape mismatch for parameter '" + pname +
          "': module expects " + shape_str(var.rows(), var.cols()) +
          ", file has " +
          shape_str(it->second.rows(), it->second.cols()));
    }
  }
  for (const auto& [ename, t] : entries) {
    if (!known.contains(ename)) {
      throw std::runtime_error(
          "deserialize_parameters: file contains unknown parameter '" +
          ename + "' (" + shape_str(t.rows(), t.cols()) + ")");
    }
  }
  // All checks passed: apply. Deferred until here so a bad file cannot
  // leave the module half-overwritten.
  for (auto& [pname, var] : named) {
    var.mutable_value() = std::move(entries.at(pname));
  }
  module.bump_weight_version();
}

void save_parameters(const Module& module, const std::string& path) {
  // Crash-safe: write the full payload to <path>.tmp, then atomically
  // rename over <path>. A crash mid-write leaves at worst a stale .tmp
  // next to the previous complete file — never a truncated <path>.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("save_parameters: cannot open " + tmp);
    }
    out << serialize_parameters(module);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("save_parameters: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_parameters: cannot rename " + tmp +
                             " to " + path);
  }
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_parameters: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  deserialize_parameters(module, buffer.str());
}

}  // namespace readys::nn
