#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace readys::nn {

namespace {
constexpr const char* kMagic = "readys-weights v1";
}

std::string serialize_parameters(const Module& module) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << std::setprecision(17);
  for (const auto& [name, var] : module.named_parameters()) {
    const Tensor& t = var.value();
    os << name << ' ' << t.rows() << ' ' << t.cols() << '\n';
    for (std::size_t i = 0; i < t.size(); ++i) {
      os << t[i] << (i + 1 == t.size() ? '\n' : ' ');
    }
    if (t.size() == 0) os << '\n';
  }
  return os.str();
}

void deserialize_parameters(Module& module, const std::string& blob) {
  std::istringstream is(blob);
  std::string magic;
  std::getline(is, magic);
  if (magic != kMagic) {
    throw std::runtime_error("deserialize_parameters: bad header '" + magic +
                             "'");
  }
  std::unordered_map<std::string, Tensor> entries;
  std::string name;
  while (is >> name) {
    std::size_t rows = 0;
    std::size_t cols = 0;
    if (!(is >> rows >> cols)) {
      throw std::runtime_error("deserialize_parameters: truncated header");
    }
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!(is >> t[i])) {
        throw std::runtime_error("deserialize_parameters: truncated data for " +
                                 name);
      }
    }
    entries.emplace(name, std::move(t));
  }
  auto named = module.named_parameters();
  if (named.size() != entries.size()) {
    throw std::runtime_error(
        "deserialize_parameters: parameter count mismatch");
  }
  for (auto& [pname, var] : named) {
    auto it = entries.find(pname);
    if (it == entries.end()) {
      throw std::runtime_error("deserialize_parameters: missing " + pname);
    }
    if (!var.value().same_shape(it->second)) {
      throw std::runtime_error("deserialize_parameters: shape mismatch at " +
                               pname);
    }
    var.mutable_value() = it->second;
  }
}

void save_parameters(const Module& module, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_parameters: cannot open " + path);
  }
  out << serialize_parameters(module);
  if (!out) {
    throw std::runtime_error("save_parameters: write failed for " + path);
  }
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_parameters: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  deserialize_parameters(module, buffer.str());
}

}  // namespace readys::nn
