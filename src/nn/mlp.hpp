#pragma once

#include <memory>
#include <vector>

#include "nn/linear.hpp"

namespace readys::nn {

/// Multi-layer perceptron: Linear layers with ReLU in between (no
/// activation after the last layer).
class Mlp : public Module {
 public:
  /// `sizes` lists the layer widths, e.g. {128, 64, 1} builds
  /// Linear(128,64) -> ReLU -> Linear(64,1). Requires >= 2 entries.
  Mlp(const std::vector<std::size_t>& sizes, util::Rng& rng);

  Var forward(const Var& x) const;

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_ = 0;
  std::size_t out_ = 0;
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace readys::nn
