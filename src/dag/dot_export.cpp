#include "dag/dot_export.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace readys::dag {

std::string to_dot(const TaskGraph& graph) {
  static constexpr std::array<const char*, 8> kColors = {
      "lightblue", "orange", "palegreen", "plum",
      "khaki",     "salmon", "lightgray", "cyan"};
  std::ostringstream os;
  os << "digraph \"" << graph.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [style=filled];\n";
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    const int k = graph.kernel(t);
    os << "  n" << t << " [label=\"" << graph.kernel_name(k) << "\\n#" << t
       << "\", fillcolor=" << kColors[static_cast<std::size_t>(k) % kColors.size()]
       << "];\n";
  }
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    for (TaskId s : graph.successors(t)) {
      os << "  n" << t << " -> n" << s << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_dot(const TaskGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_dot: cannot open " + path);
  out << to_dot(graph);
}

}  // namespace readys::dag
