#pragma once

#include <unordered_map>
#include <vector>

#include "dag/task_graph.hpp"

namespace readys::dag {

/// The sliding-window sub-DAG the agent observes: running tasks, ready
/// tasks, and every descendant whose depth (shortest distance from a
/// running/ready task) is <= `window`.
struct Window {
  /// Sub-DAG nodes, as ids into the full graph. Seeds (running/ready)
  /// come first, then descendants in BFS order.
  std::vector<TaskId> nodes;
  /// Induced dependency edges as index pairs into `nodes`.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  /// BFS depth of each node (0 for seeds).
  std::vector<int> depth;
  /// task id -> position in `nodes`; filled by extract_window. Windows
  /// assembled by hand may leave it empty — position_of then falls back
  /// to a linear scan.
  std::unordered_map<TaskId, std::size_t> index;

  std::size_t size() const noexcept { return nodes.size(); }

  /// Position of a task inside `nodes`, or npos if absent. O(1) via the
  /// index map when present, O(n) scan otherwise.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t position_of(TaskId t) const noexcept;
};

/// Extracts the window sub-DAG. `seeds` are the running and ready tasks
/// (deduplicated by the caller); `window` is the paper's w parameter
/// (w = 0 keeps only the seeds).
Window extract_window(const TaskGraph& graph, const std::vector<TaskId>& seeds,
                      int window);

}  // namespace readys::dag
