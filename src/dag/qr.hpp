#pragma once

#include "dag/task_graph.hpp"

namespace readys::dag {

/// Kernel-type ids used by qr_graph.
enum QrKernel : int {
  kGeqrt = 0,  ///< QR of the diagonal tile
  kUnmqr = 1,  ///< apply Q^T of the diagonal tile to tile (k, j)
  kTsqrt = 2,  ///< triangular-on-top-of-square QR of tiles (k,k)+(i,k)
  kTsmqr = 3,  ///< apply a TSQRT reflector to tiles (k,j)+(i,j)
};

/// Tiled QR factorization DAG (flat-tree/TS kernels, the formulation of
/// Agullo et al. [4] used by the paper).
///
/// Task counts for T tiles: T geqrt, T(T-1)/2 unmqr, T(T-1)/2 tsqrt,
/// T(T-1)(2T-1)/6 tsmqr. The TSQRT chain of a panel is sequential, which
/// gives QR the longest critical path of the three factorizations.
TaskGraph qr_graph(int tiles);

}  // namespace readys::dag
