#pragma once

#include "dag/task_graph.hpp"
#include "util/rng.hpp"

namespace readys::dag {

/// Parameters for a random layered DAG (used for property tests and for
/// stressing schedulers on non-factorization topologies).
struct RandomDagConfig {
  int layers = 6;
  int width = 5;             ///< tasks per layer
  double edge_density = 0.4; ///< probability of an edge between adjacent layers
  int kernel_types = 4;
  bool connect_layers = true;  ///< guarantee every task has a predecessor in
                               ///< the previous layer (keeps depth == layers-1)
};

/// Generates a random layered DAG: edges only go from layer L to L+1.
TaskGraph random_layered_dag(const RandomDagConfig& config, util::Rng& rng);

}  // namespace readys::dag
