#pragma once

#include <string>

#include "dag/task_graph.hpp"

namespace readys::dag {

/// Renders the graph in Graphviz DOT format (kernel types become colors)
/// for debugging and documentation.
std::string to_dot(const TaskGraph& graph);

/// Writes to_dot(graph) to `path`; throws std::runtime_error on failure.
void write_dot(const TaskGraph& graph, const std::string& path);

}  // namespace readys::dag
