#include "dag/task_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace readys::dag {

TaskGraph::TaskGraph(std::string name, std::vector<std::string> kernel_names)
    : name_(std::move(name)), kernel_names_(std::move(kernel_names)) {
  if (kernel_names_.empty()) {
    throw std::invalid_argument("TaskGraph: need at least one kernel type");
  }
}

TaskId TaskGraph::add_task(int kernel_type) {
  if (kernel_type < 0 || kernel_type >= num_kernel_types()) {
    throw std::invalid_argument("TaskGraph::add_task: bad kernel type");
  }
  kernel_.push_back(kernel_type);
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<TaskId>(kernel_.size() - 1);
}

void TaskGraph::check_task(TaskId t, const char* what) const {
  if (t >= num_tasks()) {
    throw std::out_of_range(std::string("TaskGraph: invalid task in ") +
                            what);
  }
}

void TaskGraph::add_edge(TaskId u, TaskId v) {
  check_task(u, "add_edge");
  check_task(v, "add_edge");
  if (u == v) {
    throw std::invalid_argument("TaskGraph::add_edge: self loop");
  }
  if (u > v) {
    // Generators create tasks in a valid topological order; enforcing
    // u < v makes acyclicity structural.
    throw std::invalid_argument(
        "TaskGraph::add_edge: edges must point from older to newer tasks");
  }
  if (has_edge(u, v)) return;
  succ_[u].push_back(v);
  pred_[v].push_back(u);
  ++num_edges_;
}

bool TaskGraph::has_edge(TaskId u, TaskId v) const {
  check_task(u, "has_edge");
  check_task(v, "has_edge");
  return std::find(succ_[u].begin(), succ_[u].end(), v) != succ_[u].end();
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (pred_[t].empty()) out.push_back(t);
  }
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    if (succ_[t].empty()) out.push_back(t);
  }
  return out;
}

std::vector<std::size_t> TaskGraph::kernel_counts() const {
  std::vector<std::size_t> counts(kernel_names_.size(), 0);
  for (int k : kernel_) counts[static_cast<std::size_t>(k)]++;
  return counts;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> remaining(num_tasks());
  std::vector<TaskId> order;
  order.reserve(num_tasks());
  std::vector<TaskId> frontier;
  for (TaskId t = 0; t < num_tasks(); ++t) {
    remaining[t] = pred_[t].size();
    if (remaining[t] == 0) frontier.push_back(t);
  }
  while (!frontier.empty()) {
    const TaskId t = frontier.back();
    frontier.pop_back();
    order.push_back(t);
    for (TaskId s : succ_[t]) {
      if (--remaining[s] == 0) frontier.push_back(s);
    }
  }
  if (order.size() != num_tasks()) {
    throw std::logic_error("TaskGraph::topological_order: cycle detected");
  }
  return order;
}

std::size_t TaskGraph::depth() const {
  if (num_tasks() == 0) return 0;
  std::vector<std::size_t> dist(num_tasks(), 0);
  std::size_t best = 0;
  for (TaskId t : topological_order()) {
    for (TaskId s : succ_[t]) {
      dist[s] = std::max(dist[s], dist[t] + 1);
      best = std::max(best, dist[s]);
    }
  }
  return best;
}

}  // namespace readys::dag
