#include "dag/synthetic.hpp"

#include <stdexcept>
#include <vector>

namespace readys::dag {

namespace {

std::vector<std::string> kernel_vocab() {
  return {"PANEL", "SOLVE", "UPDATE", "REDUCE"};
}

constexpr int kPanel = 0;
constexpr int kSolve = 1;
constexpr int kUpdate = 2;
constexpr int kReduce = 3;

}  // namespace

TaskGraph fork_join_graph(int stages, int width, int depth) {
  if (stages < 1 || width < 1 || depth < 1) {
    throw std::invalid_argument("fork_join_graph: bad configuration");
  }
  TaskGraph g("forkjoin_s" + std::to_string(stages) + "_w" +
                  std::to_string(width),
              kernel_vocab());
  TaskId join = g.add_task(kPanel);  // initial source doubles as stage join
  for (int s = 0; s < stages; ++s) {
    std::vector<TaskId> tails;
    tails.reserve(static_cast<std::size_t>(width));
    for (int wdt = 0; wdt < width; ++wdt) {
      TaskId prev = join;
      for (int d = 0; d < depth; ++d) {
        const TaskId task = g.add_task(kUpdate);
        g.add_edge(prev, task);
        prev = task;
      }
      tails.push_back(prev);
    }
    const TaskId next_join = g.add_task(kReduce);
    for (TaskId t : tails) g.add_edge(t, next_join);
    join = next_join;
  }
  return g;
}

TaskGraph stencil_1d_graph(int steps, int cells) {
  if (steps < 1 || cells < 1) {
    throw std::invalid_argument("stencil_1d_graph: bad configuration");
  }
  TaskGraph g("stencil_s" + std::to_string(steps) + "_c" +
                  std::to_string(cells),
              kernel_vocab());
  std::vector<TaskId> prev(static_cast<std::size_t>(cells));
  std::vector<TaskId> cur(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    const bool boundary = (i == 0 || i == cells - 1);
    prev[static_cast<std::size_t>(i)] =
        g.add_task(boundary ? kPanel : kUpdate);
  }
  for (int s = 1; s < steps; ++s) {
    for (int i = 0; i < cells; ++i) {
      const bool boundary = (i == 0 || i == cells - 1);
      const TaskId task = g.add_task(boundary ? kPanel : kUpdate);
      for (int j = i - 1; j <= i + 1; ++j) {
        if (j >= 0 && j < cells) {
          g.add_edge(prev[static_cast<std::size_t>(j)], task);
        }
      }
      cur[static_cast<std::size_t>(i)] = task;
    }
    prev = cur;
  }
  return g;
}

TaskGraph reduction_tree_graph(int leaves) {
  if (leaves < 1 || (leaves & (leaves - 1)) != 0) {
    throw std::invalid_argument(
        "reduction_tree_graph: leaves must be a power of two >= 1");
  }
  TaskGraph g("reduction_l" + std::to_string(leaves), kernel_vocab());
  std::vector<TaskId> level;
  level.reserve(static_cast<std::size_t>(leaves));
  for (int i = 0; i < leaves; ++i) level.push_back(g.add_task(kUpdate));
  while (level.size() > 1) {
    std::vector<TaskId> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const TaskId parent = g.add_task(kReduce);
      g.add_edge(level[i], parent);
      g.add_edge(level[i + 1], parent);
      next.push_back(parent);
    }
    level = std::move(next);
  }
  return g;
}

TaskGraph independent_tasks_graph(int n) {
  if (n < 1) {
    throw std::invalid_argument("independent_tasks_graph: n must be >= 1");
  }
  TaskGraph g("independent_n" + std::to_string(n), kernel_vocab());
  for (int i = 0; i < n; ++i) g.add_task(i % 4);
  return g;
}

}  // namespace readys::dag
