#include "dag/random_dag.hpp"

#include <stdexcept>
#include <vector>

namespace readys::dag {

TaskGraph random_layered_dag(const RandomDagConfig& config, util::Rng& rng) {
  if (config.layers < 1 || config.width < 1 || config.kernel_types < 1) {
    throw std::invalid_argument("random_layered_dag: bad configuration");
  }
  std::vector<std::string> kernel_names;
  for (int k = 0; k < config.kernel_types; ++k) {
    kernel_names.push_back("K" + std::to_string(k));
  }
  TaskGraph g("random_dag", std::move(kernel_names));

  std::vector<std::vector<TaskId>> layers(
      static_cast<std::size_t>(config.layers));
  for (auto& layer : layers) {
    layer.reserve(static_cast<std::size_t>(config.width));
    for (int i = 0; i < config.width; ++i) {
      layer.push_back(
          g.add_task(static_cast<int>(rng.uniform_index(
              static_cast<std::size_t>(config.kernel_types)))));
    }
  }
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (TaskId v : layers[l + 1]) {
      bool has_pred = false;
      for (TaskId u : layers[l]) {
        if (rng.uniform() < config.edge_density) {
          g.add_edge(u, v);
          has_pred = true;
        }
      }
      if (config.connect_layers && !has_pred) {
        g.add_edge(layers[l][rng.uniform_index(layers[l].size())], v);
      }
    }
  }
  return g;
}

}  // namespace readys::dag
