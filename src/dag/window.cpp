#include "dag/window.hpp"

#include <unordered_map>

namespace readys::dag {

std::size_t Window::position_of(TaskId t) const noexcept {
  if (!index.empty()) {
    const auto it = index.find(t);
    return it != index.end() ? it->second : npos;
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == t) return i;
  }
  return npos;
}

Window extract_window(const TaskGraph& graph,
                      const std::vector<TaskId>& seeds, int window) {
  Window w;
  auto& index = w.index;
  index.reserve(seeds.size() * 4);

  auto add_node = [&](TaskId t, int d) -> bool {
    if (index.contains(t)) return false;
    index.emplace(t, w.nodes.size());
    w.nodes.push_back(t);
    w.depth.push_back(d);
    return true;
  };

  for (TaskId s : seeds) add_node(s, 0);
  // BFS over successors: nodes are appended in depth order, so a simple
  // scan with an advancing cursor implements the queue.
  for (std::size_t cursor = 0; cursor < w.nodes.size(); ++cursor) {
    const int d = w.depth[cursor];
    if (d >= window) continue;
    for (TaskId s : graph.successors(w.nodes[cursor])) {
      add_node(s, d + 1);
    }
  }
  // Induced edges among retained nodes.
  for (std::size_t i = 0; i < w.nodes.size(); ++i) {
    for (TaskId s : graph.successors(w.nodes[i])) {
      auto it = index.find(s);
      if (it != index.end()) w.edges.emplace_back(i, it->second);
    }
  }
  return w;
}

}  // namespace readys::dag
