#pragma once

#include "dag/task_graph.hpp"

namespace readys::dag {

/// Kernel-type ids used by lu_graph.
enum LuKernel : int {
  kGetrf = 0,     ///< panel factorization of the diagonal tile
  kTrsmRow = 1,   ///< solve against U: updates tile (k, j), j > k
  kTrsmCol = 2,   ///< solve against L: updates tile (i, k), i > k
  kLuGemm = 3,    ///< trailing update of tile (i, j), i, j > k
};

/// Tiled LU factorization DAG (right-looking, tile pivoting elided as in
/// the accelerator-oriented formulation of Agullo et al. [3]).
///
/// Task counts for T tiles: T getrf, T(T-1)/2 trsm-row, T(T-1)/2 trsm-col,
/// T(T-1)(2T-1)/6 gemm.
TaskGraph lu_graph(int tiles);

}  // namespace readys::dag
