#pragma once

#include "dag/task_graph.hpp"

namespace readys::dag {

/// Synthetic topologies beyond the paper's three factorizations, used to
/// probe how schedulers (and trained agents) generalize to unfamiliar
/// dependency shapes. All use the 4-kernel vocabulary {PANEL, SOLVE,
/// UPDATE, REDUCE} so the factorization cost models apply unchanged.

/// fork-join ladder: SOURCE -> width parallel chains of `depth` UPDATE
/// tasks -> JOIN, repeated `stages` times.
TaskGraph fork_join_graph(int stages, int width, int depth = 1);

/// 1-D stencil sweep: `steps` time steps over `cells` cells; cell (s, i)
/// depends on (s-1, i-1), (s-1, i), (s-1, i+1). Boundary cells have
/// fewer predecessors. Task type alternates PANEL (boundaries) / UPDATE.
TaskGraph stencil_1d_graph(int steps, int cells);

/// Reduction tree over `leaves` inputs (leaves are UPDATE tasks, inner
/// nodes REDUCE); leaves must be a power of two.
TaskGraph reduction_tree_graph(int leaves);

/// Embarrassingly parallel bag of `n` tasks cycling through the kernel
/// types; no edges at all (tests pure load balancing).
TaskGraph independent_tasks_graph(int n);

}  // namespace readys::dag
