#include "dag/qr.hpp"

#include <stdexcept>
#include <vector>

namespace readys::dag {

TaskGraph qr_graph(int tiles) {
  if (tiles < 1) {
    throw std::invalid_argument("qr_graph: tiles must be >= 1");
  }
  const std::size_t t = static_cast<std::size_t>(tiles);
  TaskGraph g("qr_T" + std::to_string(tiles),
              {"GEQRT", "UNMQR", "TSQRT", "TSMQR"});

  std::vector<std::vector<TaskId>> last(
      t, std::vector<TaskId>(t, kInvalidTask));
  auto depend_on_writer = [&](TaskId task, std::size_t i, std::size_t j) {
    if (last[i][j] != kInvalidTask) g.add_edge(last[i][j], task);
  };

  for (std::size_t k = 0; k < t; ++k) {
    const TaskId geqrt = g.add_task(kGeqrt);
    depend_on_writer(geqrt, k, k);
    last[k][k] = geqrt;

    // Row update of the panel factorization: tile (k, j) for j > k.
    // row_update[j] holds the task that last touched tile-pair (*, j) in
    // the reflector-application chain of this iteration.
    std::vector<TaskId> row_update(t, kInvalidTask);
    for (std::size_t j = k + 1; j < t; ++j) {
      const TaskId unmqr = g.add_task(kUnmqr);
      g.add_edge(geqrt, unmqr);
      depend_on_writer(unmqr, k, j);
      last[k][j] = unmqr;
      row_update[j] = unmqr;
    }

    // The TSQRT chain couples tile (k,k) with each (i,k) sequentially.
    TaskId chain = geqrt;
    for (std::size_t i = k + 1; i < t; ++i) {
      const TaskId tsqrt = g.add_task(kTsqrt);
      g.add_edge(chain, tsqrt);
      depend_on_writer(tsqrt, i, k);
      last[i][k] = tsqrt;
      chain = tsqrt;
      for (std::size_t j = k + 1; j < t; ++j) {
        const TaskId tsmqr = g.add_task(kTsmqr);
        g.add_edge(tsqrt, tsmqr);
        // Reflector application updates tiles (k, j) and (i, j); it must
        // follow the previous update in this column chain.
        g.add_edge(row_update[j], tsmqr);
        depend_on_writer(tsmqr, i, j);
        last[i][j] = tsmqr;
        row_update[j] = tsmqr;
      }
    }
  }
  return g;
}

}  // namespace readys::dag
