#include "dag/cholesky.hpp"

#include <stdexcept>
#include <vector>

namespace readys::dag {

TaskGraph cholesky_graph(int tiles) {
  if (tiles < 1) {
    throw std::invalid_argument("cholesky_graph: tiles must be >= 1");
  }
  const std::size_t t = static_cast<std::size_t>(tiles);
  TaskGraph g("cholesky_T" + std::to_string(tiles),
              {"POTRF", "TRSM", "SYRK", "GEMM"});

  // last[i][j]: the task that last wrote tile (i, j) (lower triangle).
  std::vector<std::vector<TaskId>> last(
      t, std::vector<TaskId>(t, kInvalidTask));
  auto depend_on_writer = [&](TaskId task, std::size_t i, std::size_t j) {
    if (last[i][j] != kInvalidTask) g.add_edge(last[i][j], task);
  };

  // Right-looking tiled Cholesky. trsm[i] caches the panel solve of
  // iteration k so the trailing updates can reference it.
  std::vector<TaskId> trsm(t, kInvalidTask);
  for (std::size_t k = 0; k < t; ++k) {
    const TaskId potrf = g.add_task(kPotrf);
    depend_on_writer(potrf, k, k);
    last[k][k] = potrf;
    for (std::size_t i = k + 1; i < t; ++i) {
      const TaskId task = g.add_task(kTrsm);
      g.add_edge(potrf, task);
      depend_on_writer(task, i, k);
      last[i][k] = task;
      trsm[i] = task;
    }
    for (std::size_t i = k + 1; i < t; ++i) {
      // SYRK updates the diagonal tile (i, i) with the panel column i.
      const TaskId syrk = g.add_task(kSyrk);
      g.add_edge(trsm[i], syrk);
      depend_on_writer(syrk, i, i);
      last[i][i] = syrk;
      // GEMM updates (i, j) for k < j < i with panel columns i and j.
      for (std::size_t j = k + 1; j < i; ++j) {
        const TaskId gemm = g.add_task(kGemm);
        g.add_edge(trsm[i], gemm);
        g.add_edge(trsm[j], gemm);
        depend_on_writer(gemm, i, j);
        last[i][j] = gemm;
      }
    }
  }
  return g;
}

}  // namespace readys::dag
