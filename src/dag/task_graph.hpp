#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace readys::dag {

/// Index of a task within a TaskGraph.
using TaskId = std::uint32_t;

constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

/// Directed acyclic graph of tasks.
///
/// Each task has a kernel-type id in [0, num_kernel_types()); the kernel
/// names give the mapping to application kernels (e.g. POTRF/TRSM/SYRK/
/// GEMM for tiled Cholesky). Edges u -> v mean "v consumes a result of u"
/// and therefore v cannot start before u completes.
class TaskGraph {
 public:
  TaskGraph(std::string name, std::vector<std::string> kernel_names);

  const std::string& name() const noexcept { return name_; }

  /// Appends a task of the given kernel type; returns its id.
  TaskId add_task(int kernel_type);

  /// Adds dependency u -> v (u must complete before v starts).
  /// Duplicate edges are ignored; self-loops and forward references throw.
  void add_edge(TaskId u, TaskId v);

  std::size_t num_tasks() const noexcept { return kernel_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }
  int num_kernel_types() const noexcept {
    return static_cast<int>(kernel_names_.size());
  }

  int kernel(TaskId t) const { return kernel_[t]; }
  const std::string& kernel_name(int type) const {
    return kernel_names_[static_cast<std::size_t>(type)];
  }

  const std::vector<TaskId>& successors(TaskId t) const { return succ_[t]; }
  const std::vector<TaskId>& predecessors(TaskId t) const { return pred_[t]; }

  std::size_t out_degree(TaskId t) const { return succ_[t].size(); }
  std::size_t in_degree(TaskId t) const { return pred_[t].size(); }

  bool has_edge(TaskId u, TaskId v) const;

  /// Tasks with no predecessors / no successors.
  std::vector<TaskId> sources() const;
  std::vector<TaskId> sinks() const;

  /// Number of tasks of each kernel type.
  std::vector<std::size_t> kernel_counts() const;

  /// Kahn topological order. Throws std::logic_error if a cycle is
  /// present (cannot happen via add_edge's forward-reference rule, but the
  /// check documents and enforces the invariant for graphs built by hand).
  std::vector<TaskId> topological_order() const;

  /// Longest path length (in edges) from any source to any sink.
  std::size_t depth() const;

 private:
  void check_task(TaskId t, const char* what) const;

  std::string name_;
  std::vector<std::string> kernel_names_;
  std::vector<int> kernel_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  std::size_t num_edges_ = 0;
};

}  // namespace readys::dag
