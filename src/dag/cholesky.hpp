#pragma once

#include "dag/task_graph.hpp"

namespace readys::dag {

/// Kernel-type ids used by cholesky_graph (order matters for the cost
/// model tables).
enum CholeskyKernel : int {
  kPotrf = 0,  ///< panel factorization of a diagonal tile
  kTrsm = 1,   ///< triangular solve of a sub-diagonal tile
  kSyrk = 2,   ///< symmetric rank-k update of a diagonal tile
  kGemm = 3,   ///< general update of an off-diagonal tile
};

/// Tiled Cholesky factorization DAG for a T x T tile matrix.
///
/// Task counts (anchors from the paper): T potrf, T(T-1)/2 trsm,
/// T(T-1)/2 syrk, T(T-1)(T-2)/6 gemm — e.g. T=4 -> 20 tasks, T=8 -> 120,
/// T=12 -> 364.
TaskGraph cholesky_graph(int tiles);

}  // namespace readys::dag
