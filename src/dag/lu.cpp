#include "dag/lu.hpp"

#include <stdexcept>
#include <vector>

namespace readys::dag {

TaskGraph lu_graph(int tiles) {
  if (tiles < 1) {
    throw std::invalid_argument("lu_graph: tiles must be >= 1");
  }
  const std::size_t t = static_cast<std::size_t>(tiles);
  TaskGraph g("lu_T" + std::to_string(tiles),
              {"GETRF", "TRSM_ROW", "TRSM_COL", "GEMM"});

  std::vector<std::vector<TaskId>> last(
      t, std::vector<TaskId>(t, kInvalidTask));
  auto depend_on_writer = [&](TaskId task, std::size_t i, std::size_t j) {
    if (last[i][j] != kInvalidTask) g.add_edge(last[i][j], task);
  };

  std::vector<TaskId> row_solve(t, kInvalidTask);  // tile (k, j) solve
  std::vector<TaskId> col_solve(t, kInvalidTask);  // tile (i, k) solve
  for (std::size_t k = 0; k < t; ++k) {
    const TaskId getrf = g.add_task(kGetrf);
    depend_on_writer(getrf, k, k);
    last[k][k] = getrf;
    for (std::size_t j = k + 1; j < t; ++j) {
      const TaskId task = g.add_task(kTrsmRow);
      g.add_edge(getrf, task);
      depend_on_writer(task, k, j);
      last[k][j] = task;
      row_solve[j] = task;
    }
    for (std::size_t i = k + 1; i < t; ++i) {
      const TaskId task = g.add_task(kTrsmCol);
      g.add_edge(getrf, task);
      depend_on_writer(task, i, k);
      last[i][k] = task;
      col_solve[i] = task;
    }
    for (std::size_t i = k + 1; i < t; ++i) {
      for (std::size_t j = k + 1; j < t; ++j) {
        const TaskId gemm = g.add_task(kLuGemm);
        g.add_edge(col_solve[i], gemm);
        g.add_edge(row_solve[j], gemm);
        depend_on_writer(gemm, i, j);
        last[i][j] = gemm;
      }
    }
  }
  return g;
}

}  // namespace readys::dag
