#include "dag/features.hpp"

#include <algorithm>

namespace readys::dag {

StaticFeatures::StaticFeatures(const TaskGraph& graph)
    : out_deg_(graph.num_tasks()),
      in_deg_(graph.num_tasks()),
      f_(graph.num_tasks(), static_cast<std::size_t>(
                                std::max(graph.num_kernel_types(), 1))),
      type_width_(std::max(graph.num_kernel_types(), 1)) {
  const std::size_t n = graph.num_tasks();
  double max_out = 1.0;
  double max_in = 1.0;
  for (TaskId t = 0; t < n; ++t) {
    max_out = std::max(max_out, static_cast<double>(graph.out_degree(t)));
    max_in = std::max(max_in, static_cast<double>(graph.in_degree(t)));
  }
  for (TaskId t = 0; t < n; ++t) {
    out_deg_[t] = static_cast<double>(graph.out_degree(t)) / max_out;
    in_deg_[t] = static_cast<double>(graph.in_degree(t)) / max_in;
  }

  // F̄(i) = onehot(type(i)) + sum over successors c of F̄(c) / |P(c)|,
  // evaluated in reverse topological order (successors first).
  const auto order = graph.topological_order();
  const std::size_t k = static_cast<std::size_t>(type_width_);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskId i = *it;
    f_.at(i, static_cast<std::size_t>(graph.kernel(i))) += 1.0;
    for (TaskId c : graph.successors(i)) {
      const double w = 1.0 / static_cast<double>(graph.in_degree(c));
      for (std::size_t type = 0; type < k; ++type) {
        f_.at(i, type) += f_.at(c, type) * w;
      }
    }
  }
  // The per-type mass summed over all sources equals the per-type task
  // count (each task's unit is split across its predecessors on the way
  // up). Normalize by those totals, matching the paper's F(i)=F̄(i)/F̄(0).
  const auto counts = graph.kernel_counts();
  for (TaskId t = 0; t < n; ++t) {
    for (std::size_t type = 0; type < k; ++type) {
      const double total =
          type < counts.size() ? static_cast<double>(counts[type]) : 0.0;
      f_.at(t, type) = total > 0.0 ? f_.at(t, type) / total : 0.0;
    }
  }
}

void StaticFeatures::write_static(TaskId t, const TaskGraph& graph,
                                  double* out) const {
  int pos = 0;
  out[pos++] = norm_out_degree(t);
  out[pos++] = norm_in_degree(t);
  for (int type = 0; type < type_width_; ++type) {
    out[pos++] = (graph.kernel(t) == type) ? 1.0 : 0.0;
  }
  for (int type = 0; type < type_width_; ++type) {
    out[pos++] = descendant_mass(t, type);
  }
}

}  // namespace readys::dag
