#pragma once

#include "dag/task_graph.hpp"
#include "tensor/tensor.hpp"

namespace readys::dag {

/// Static (schedule-independent) per-task features of a graph, following
/// the paper's representation
///   X̂_i = [|S(i)|, |P(i)|, type(i), ready(i), F(i)].
/// The dynamic `ready` bit (and any resource-dependent fields) is added by
/// the RL state encoder; everything here depends only on the topology.
class StaticFeatures {
 public:
  explicit StaticFeatures(const TaskGraph& graph);

  /// Out-degree normalized by the maximum out-degree of the graph.
  double norm_out_degree(TaskId t) const { return out_deg_[t]; }
  /// In-degree normalized by the maximum in-degree of the graph.
  double norm_in_degree(TaskId t) const { return in_deg_[t]; }

  /// One-hot kernel type padded to `type_width()` entries.
  int type_width() const noexcept { return type_width_; }

  /// F(i): per-kernel-type descendant mass of task i, normalized so that
  /// the entry for type c is in [0, 1] (1 = "everything of that type is
  /// still downstream of i"). Computed with the paper's recursion
  ///   F̄(i) = onehot(type(i)) + sum_{c in S(i)} F̄(c) / |P(c)|
  /// normalized by the total mass per type.
  const tensor::Tensor& descendant_profile() const noexcept { return f_; }
  double descendant_mass(TaskId t, int type) const {
    return f_.at(t, static_cast<std::size_t>(type));
  }

  /// Width of the static portion of X̂: 2 + type_width + type_width.
  int static_width() const noexcept { return 2 + 2 * type_width_; }

  /// Writes the static features of task t into out[0 .. static_width()).
  void write_static(TaskId t, const TaskGraph& graph, double* out) const;

 private:
  std::vector<double> out_deg_;
  std::vector<double> in_deg_;
  tensor::Tensor f_;  // n x type_width
  int type_width_;
};

}  // namespace readys::dag
