#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace readys::util {

/// Summary statistics for a sample of observations.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double ci95_half_width = 0.0;  ///< 1.96 * stddev / sqrt(n)
  double ci99_half_width = 0.0;  ///< 2.576 * stddev / sqrt(n)
};

/// Computes summary statistics; an empty sample yields all zeros.
Summary summarize(std::span<const double> xs) noexcept;

/// Arithmetic mean (0 for empty input).
double mean(std::span<const double> xs) noexcept;

/// p-quantile in [0,1] by linear interpolation on the sorted copy.
double quantile(std::vector<double> xs, double p) noexcept;

/// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  ///< sample variance, 0 when n < 2
  double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace readys::util
