#pragma once

#include <string>
#include <vector>

namespace readys::util {

/// Reads an environment variable, falling back to `fallback` when unset or
/// unparsable. Used by the benchmark harness so figure reproductions can be
/// scaled from smoke-test to paper-level budgets without recompiling.
int env_int(const char* name, int fallback);
double env_double(const char* name, double fallback);
std::string env_string(const char* name, const std::string& fallback);

/// Parses a comma-separated list ("0,0.2,0.5"); falls back when unset/empty.
std::vector<double> env_double_list(const char* name,
                                    const std::vector<double>& fallback);
std::vector<int> env_int_list(const char* name,
                              const std::vector<int>& fallback);

}  // namespace readys::util
