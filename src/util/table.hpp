#pragma once

#include <string>
#include <vector>

namespace readys::util {

/// Aligned console table used by the figure-reproduction benches to print
/// paper-shaped result grids.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> fields);

  /// Formats a double with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders the table with column alignment and a separator under the
  /// header.
  std::string to_string() const;

  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace readys::util
