#include "util/rng.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace readys::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("Rng::uniform_index: n must be positive");
  }
  // Rejection-free multiply-shift; bias is negligible for n << 2^64.
  return static_cast<std::size_t>(uniform() * static_cast<double>(n));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

Rng Rng::split() noexcept {
  return Rng((*this)());
}

Rng::State Rng::state() const noexcept {
  return {s_[0], s_[1], s_[2], s_[3],
          std::bit_cast<std::uint64_t>(cached_normal_),
          has_cached_normal_ ? 1ULL : 0ULL};
}

void Rng::set_state(const State& st) {
  if ((st[0] | st[1] | st[2] | st[3]) == 0) {
    throw std::invalid_argument(
        "Rng::set_state: all-zero xoshiro state (corrupted snapshot)");
  }
  for (int i = 0; i < 4; ++i) s_[i] = st[static_cast<std::size_t>(i)];
  cached_normal_ = std::bit_cast<double>(st[4]);
  has_cached_normal_ = st[5] != 0;
}

}  // namespace readys::util
