#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace readys::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`,
/// continuing from `seed` — pass the previous return value to checksum a
/// stream in chunks. The default seed is the standard initial value, so
/// crc32("abc") matches zlib's crc32(0, "abc", 3).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0) noexcept;

}  // namespace readys::util
