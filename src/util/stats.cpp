#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace readys::util {

Summary summarize(std::span<const double> xs) noexcept {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  RunningStats acc;
  s.min = xs[0];
  s.max = xs[0];
  for (double x : xs) {
    acc.add(x);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  if (s.count > 1) {
    const double sem = s.stddev / std::sqrt(static_cast<double>(s.count));
    s.ci95_half_width = 1.96 * sem;
    s.ci99_half_width = 2.576 * sem;
  }
  return s;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double quantile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

}  // namespace readys::util
