#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace readys::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> fields) {
  fields.resize(header_.size());
  rows_.push_back(std::move(fields));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace readys::util
