#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace readys::util {

/// Splittable, fast pseudo-random generator (xoshiro256**).
///
/// Satisfies std::uniform_random_bit_generator so it can be used with the
/// <random> distributions, and offers convenience draws used throughout the
/// library. Each worker thread derives an independent stream with split().
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a 64-bit seed using splitmix64, which guarantees
  /// a well-mixed non-zero state for any seed value (including 0).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Throws std::invalid_argument when n == 0
  /// — drawing from an empty range is always an upstream bug (e.g. an
  /// empty candidate list) and must not silently yield index 0.
  std::size_t uniform_index(std::size_t n);

  /// Standard normal draw (Box–Muller with caching).
  double normal() noexcept;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept;

  /// Derives an independent generator; deterministic given this state.
  Rng split() noexcept;

  /// Complete serialized generator state: the four xoshiro words plus
  /// the Box–Muller cache (value bit-cast to u64, presence flag), so a
  /// restored stream replays the exact tail — including a pending cached
  /// normal — with no draw lost or repeated.
  using State = std::array<std::uint64_t, 6>;

  State state() const noexcept;

  /// Restores a state captured by state(). The all-zero xoshiro state is
  /// a fixed point of the generator; set_state() rejects it with
  /// std::invalid_argument (it can only come from a corrupted snapshot,
  /// never from state()).
  void set_state(const State& st);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform_index(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace readys::util
