#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/telemetry.hpp"

namespace readys::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth = 0;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    if (obs::Telemetry* t = obs::telemetry()) {
      t->pool_tasks.add();
      t->pool_queue_depth.set(static_cast<double>(depth));
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t jobs = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          f(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& fut : futures) fut.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace readys::util
