#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace readys::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[readys %-5s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace readys::util
