#include "util/env.hpp"

#include <cstdlib>

#include "util/csv.hpp"

namespace readys::util {

namespace {

const char* raw(const char* name) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? v : nullptr;
}

}  // namespace

int env_int(const char* name, int fallback) {
  const char* v = raw(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end == v) ? fallback : static_cast<int>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = raw(name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v) ? fallback : parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = raw(name);
  return v ? std::string(v) : fallback;
}

std::vector<double> env_double_list(const char* name,
                                    const std::vector<double>& fallback) {
  const char* v = raw(name);
  if (!v) return fallback;
  std::vector<double> out;
  for (const auto& piece : split(v, ',')) {
    if (piece.empty()) continue;
    char* end = nullptr;
    const double parsed = std::strtod(piece.c_str(), &end);
    if (end != piece.c_str()) out.push_back(parsed);
  }
  return out.empty() ? fallback : out;
}

std::vector<int> env_int_list(const char* name,
                              const std::vector<int>& fallback) {
  const char* v = raw(name);
  if (!v) return fallback;
  std::vector<int> out;
  for (const auto& piece : split(v, ',')) {
    if (piece.empty()) continue;
    char* end = nullptr;
    const long parsed = std::strtol(piece.c_str(), &end, 10);
    if (end != piece.c_str()) out.push_back(static_cast<int>(parsed));
  }
  return out.empty() ? fallback : out;
}

}  // namespace readys::util
