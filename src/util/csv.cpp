#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace readys::util {

namespace {

std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_fields(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument("CsvWriter: row width mismatch in " + path_);
  }
  write_fields(fields);
}

void CsvWriter::row(const std::vector<double>& fields) {
  std::vector<std::string> s;
  s.reserve(fields.size());
  for (double v : fields) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    s.push_back(os.str());
  }
  row(s);
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  out_.flush();
}

std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace readys::util
