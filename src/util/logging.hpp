#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace readys::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global log threshold (messages below it are dropped).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  /// The threshold is checked here, once: a stream below it never
  /// formats anything (no ostringstream is even constructed), so dropped
  /// log_debug() in hot loops costs one comparison, not a string build.
  explicit LogStream(LogLevel level)
      : level_(level),
        active_(static_cast<int>(level) >= static_cast<int>(log_level())) {}
  ~LogStream() {
    if (active_) log_line(level_, os_ ? os_->str() : std::string());
  }
  template <typename T>
  LogStream& operator<<(const T& v) {
    if (active_) {
      if (!os_) os_.emplace();
      *os_ << v;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool active_;
  std::optional<std::ostringstream> os_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace readys::util
