#pragma once

#include <sstream>
#include <string>

namespace readys::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global log threshold (messages below it are dropped).
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Thread-safe write of one formatted line to stderr.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug);
}
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError);
}

}  // namespace readys::util
