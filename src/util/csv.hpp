#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace readys::util {

/// Minimal CSV writer used by the benchmark harness to dump experiment
/// series next to the console tables.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row; fields are quoted when they contain commas/quotes.
  void row(const std::vector<std::string>& fields);

  /// Convenience: converts doubles with full precision.
  void row(const std::vector<double>& fields);

  const std::string& path() const noexcept { return path_; }

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Joins string pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Splits a string on a single-character separator (no quoting rules).
std::vector<std::string> split(const std::string& s, char sep);

}  // namespace readys::util
