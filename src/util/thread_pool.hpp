#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace readys::util {

/// Fixed-size worker pool used for parallel rollout collection and
/// embarrassingly-parallel evaluation sweeps.
///
/// Tasks are arbitrary callables; submit() returns a future. parallel_for
/// blocks until all chunks complete and rethrows the first exception.
class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, >= 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a callable and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs f(i) for i in [0, n), distributing indices across the pool.
  /// Blocks until done; rethrows the first exception encountered.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace readys::util
