#include "rl/agent.hpp"

#include "nn/serialize.hpp"

namespace readys::rl {

ReadysAgent::ReadysAgent(int kernel_types, AgentConfig config)
    : kernel_types_(kernel_types), config_(config) {
  net_ = std::make_unique<PolicyNet>(
      StateEncoder::node_feature_width(kernel_types),
      StateEncoder::kResourceFeatureWidth, config_);
  trainer_ = std::make_unique<A2CTrainer>(*net_, config_);
}

TrainReport ReadysAgent::train(const dag::TaskGraph& graph,
                               const sim::Platform& platform,
                               const sim::CostModel& costs,
                               const TrainOptions& opts) {
  SchedulingEnv env(graph, platform, costs,
                    {opts.sigma, config_.window, opts.seed});
  return trainer_->train(env, opts);
}

std::vector<double> ReadysAgent::evaluate(const dag::TaskGraph& graph,
                                          const sim::Platform& platform,
                                          const sim::CostModel& costs,
                                          double sigma, int episodes,
                                          std::uint64_t seed_base,
                                          bool greedy) {
  SchedulingEnv env(graph, platform, costs,
                    {sigma, config_.window, seed_base});
  return trainer_->evaluate(env, episodes, seed_base, greedy);
}

void ReadysAgent::save(const std::string& path) const {
  nn::save_parameters(*net_, path);
}

void ReadysAgent::load(const std::string& path) {
  nn::load_parameters(*net_, path);
}

}  // namespace readys::rl
