#include "rl/async.hpp"

#include <algorithm>
#include <utility>

namespace readys::rl {

std::size_t sample_categorical(const tensor::Tensor& probs, util::Rng& rng) {
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;  // numerical slack
}

EpisodeQueue::EpisodeQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool EpisodeQueue::push(EpisodeRollout rec) {
  std::unique_lock lock(mutex_);
  not_full_.wait(lock,
                 [&] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(rec));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool EpisodeQueue::pop(EpisodeRollout& out) {
  std::unique_lock lock(mutex_);
  not_empty_.wait(lock,
                  [&] { return closed_ || error_ || !items_.empty(); });
  if (error_ || items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void EpisodeQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

void EpisodeQueue::fail(std::exception_ptr error) {
  {
    std::lock_guard lock(mutex_);
    if (!error_) error_ = std::move(error);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::exception_ptr EpisodeQueue::error() const {
  std::lock_guard lock(mutex_);
  return error_;
}

namespace {

/// Decorrelates the per-episode action stream from the base seed: the
/// 64-bit golden-ratio increment (splitmix64's gamma) keeps adjacent
/// episode indices far apart in seed space.
std::uint64_t episode_seed(std::uint64_t base, int index) {
  return base ^ (0x9E3779B97F4A7C15ULL *
                 (static_cast<std::uint64_t>(index) + 1));
}

}  // namespace

ActorPool::ActorPool(VecEnv& envs, EpisodeQueue& queue, Policy policy,
                     const Options& opts)
    : envs_(&envs),
      queue_(&queue),
      policy_(std::move(policy)),
      opts_(opts),
      next_(opts.first_episode),
      released_(opts.first_episode + std::max(1, opts.window)),
      pool_(std::max<std::size_t>(
          1, std::min(opts.actors ? opts.actors : envs.size(),
                      envs.size()))) {
  opts_.actors = pool_.size();
  futures_.reserve(opts_.actors);
  for (std::size_t slot = 0; slot < opts_.actors; ++slot) {
    futures_.push_back(pool_.submit([this, slot] { actor_loop(slot); }));
  }
}

ActorPool::~ActorPool() {
  stop();
  join();
}

void ActorPool::release_below(int bound) {
  {
    std::lock_guard lock(mutex_);
    if (bound <= released_) return;
    released_ = bound;
  }
  cv_.notify_all();
}

void ActorPool::join() {
  if (joined_) return;
  joined_ = true;
  // actor_loop catches everything into queue_->fail, so get() only
  // surfaces harness bugs (e.g. a broken promise).
  for (auto& f : futures_) f.get();
}

void ActorPool::stop() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  queue_->close();  // unblocks actors parked in push()
}

int ActorPool::claim() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] {
    return stop_ || next_ >= opts_.episodes || next_ < released_;
  });
  if (stop_ || next_ >= opts_.episodes) return -1;
  return next_++;
}

void ActorPool::actor_loop(std::size_t slot) {
  try {
    SchedulingEnv& env = envs_->env(slot);
    for (;;) {
      const int index = claim();
      if (index < 0) return;
      if (opts_.on_episode_start) opts_.on_episode_start(slot, index);
      EpisodeRollout rec;
      rec.index = index;
      util::Rng rng(episode_seed(opts_.action_seed, index));
      env.reset(opts_.env_seed + static_cast<std::uint64_t>(index));
      bool done = env.done();
      while (!done) {
        const Observation& obs = env.observation();
        const Act act = policy_(slot, obs, rng);
        rec.observations.push_back(obs);  // deep copy: step() mutates env
        rec.actions.push_back(act.action);
        rec.log_probs.push_back(act.log_prob);
        rec.values.push_back(act.value);
        const auto result = env.step(act.action);
        rec.rewards.push_back(result.reward);
        rec.reward_sum += result.reward;
        done = result.done;
      }
      rec.makespan = env.makespan();
      rec.decisions = env.decisions_this_episode();
      if (!queue_->push(std::move(rec))) return;  // closed: shutting down
    }
  } catch (...) {
    queue_->fail(std::current_exception());
  }
}

}  // namespace readys::rl
