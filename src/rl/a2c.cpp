#include "rl/a2c.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "rl/checkpoint.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace readys::rl {

A2CTrainer::A2CTrainer(PolicyNet& net, const AgentConfig& cfg)
    : net_(&net),
      cfg_(cfg),
      optimizer_(net.parameters(), cfg.lr),
      sample_rng_(cfg.seed ^ 0xA3EC647659359ACDULL) {}

double shape_reward(const AgentConfig& cfg, double reward) {
  if (!std::isfinite(reward)) {
    throw std::domain_error("shape_reward: non-finite reward " +
                            std::to_string(reward));
  }
  if (cfg.squash_reward && reward < 1.0) {
    reward = reward / (1.0 - reward);  // == mk_HEFT / mk - 1
  }
  if (cfg.reward_clip > 0.0) {
    reward = std::clamp(reward, -cfg.reward_clip, cfg.reward_clip);
  }
  return reward;
}

double A2CTrainer::shape_reward(double reward) const {
  return rl::shape_reward(cfg_, reward);
}

std::size_t A2CTrainer::select_action(const PolicyNet::Output& out,
                                      bool greedy, util::Rng& rng) const {
  const tensor::Tensor& p = out.probs.value();
  if (greedy) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i] > p[best]) best = i;
    }
    return best;
  }
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    if (u < acc) return i;
  }
  return p.size() - 1;  // numerical slack
}

bool A2CTrainer::update(const std::vector<StepRecord>& batch,
                        double bootstrap) {
  if (batch.empty()) return true;
  readys::obs::Telemetry* t_obs = readys::obs::telemetry();
  readys::obs::Span span("rl/a2c_update", "train",
                         t_obs ? &t_obs->update_us : nullptr);
  // n-step discounted returns, resetting at episode boundaries.
  std::vector<double> returns(batch.size());
  double running = bootstrap;
  for (std::size_t i = batch.size(); i-- > 0;) {
    if (batch[i].done) {
      running = batch[i].reward;
    } else {
      running = batch[i].reward + cfg_.gamma * running;
    }
    returns[i] = running;
  }

  // Raw advantages; optionally standardized across the batch, which keeps
  // the policy-gradient magnitude stable when terminal rewards swing
  // (early random policies can be several HEFT makespans away).
  std::vector<double> advantages(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    advantages[i] = returns[i] - batch[i].value.value().item();
  }
  if (cfg_.normalize_advantage && batch.size() > 1) {
    const auto s = util::summarize(advantages);
    const double scale = s.stddev > 1e-8 ? s.stddev : 1.0;
    for (double& a : advantages) a = (a - s.mean) / scale;
  }

  tensor::Var loss;
  bool first = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double advantage = advantages[i];
    tensor::Var target{tensor::Tensor(1, 1, returns[i])};
    tensor::Var step_loss = tensor::add(
        tensor::scale(batch[i].log_prob, -advantage),
        tensor::sub(
            tensor::scale(tensor::square(tensor::sub(batch[i].value, target)),
                          cfg_.value_coef),
            tensor::scale(batch[i].entropy,
                          cfg_.entropy_beta * entropy_scale_)));
    loss = first ? step_loss : tensor::add(loss, step_loss);
    first = false;
  }
  loss = tensor::scale(loss, 1.0 / static_cast<double>(batch.size()));
  return apply_loss(loss);
}

bool A2CTrainer::update_batched(const std::vector<StepRecord>& batch) {
  if (batch.empty()) return true;
  readys::obs::Telemetry* t_obs = readys::obs::telemetry();
  readys::obs::Span span("rl/a2c_update", "train",
                         t_obs ? &t_obs->update_us : nullptr);
  // Same returns/advantages as update() (whole episodes, bootstrap 0).
  const std::size_t n = batch.size();
  std::vector<double> returns(n);
  double running = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    running = batch[i].done ? batch[i].reward
                            : batch[i].reward + cfg_.gamma * running;
    returns[i] = running;
  }
  std::vector<double> advantages(n);
  for (std::size_t i = 0; i < n; ++i) {
    advantages[i] = returns[i] - batch[i].value.value().item();
  }
  if (cfg_.normalize_advantage && n > 1) {
    const auto s = util::summarize(advantages);
    const double scale = s.stddev > 1e-8 ? s.stddev : 1.0;
    for (double& a : advantages) a = (a - s.mean) / scale;
  }

  // Stack the per-step scalars into (n x 1) columns; the loss becomes a
  // handful of column ops instead of ~8 graph nodes per step.
  std::vector<tensor::Var> lps, vals, ents;
  lps.reserve(n);
  vals.reserve(n);
  ents.reserve(n);
  tensor::Tensor neg_adv(n, 1);
  tensor::Tensor rets(n, 1);
  tensor::Tensor weights(n, 1);
  bool weighted = false;
  for (std::size_t i = 0; i < n; ++i) {
    lps.push_back(batch[i].log_prob);
    vals.push_back(batch[i].value);
    ents.push_back(batch[i].entropy);
    // The importance weight is folded into the constant advantage factor
    // — on-policy steps carry exactly 1.0, an IEEE multiplicative
    // identity, so this line is bit-identical to -advantages[i] there.
    neg_adv.at(i, 0) = -advantages[i] * batch[i].is_weight;
    rets.at(i, 0) = returns[i];
    weights.at(i, 0) = batch[i].is_weight;
    weighted = weighted || batch[i].is_weight != 1.0;
  }
  const tensor::Var pg = tensor::sum_all(
      tensor::mul(tensor::concat_rows(lps), tensor::Var(std::move(neg_adv))));
  // Off-policy batches also rho-weight the critic's squared errors (the
  // value-correction half of V-trace, in loss-weighting form): the MC
  // returns are realizations of the behavior policy, so steps the current
  // policy would no longer reach pull V(s) toward the wrong target. The
  // on-policy graph is untouched — `weighted` is false there.
  tensor::Var sq_err = tensor::square(
      tensor::sub(tensor::concat_rows(vals), tensor::Var(std::move(rets))));
  if (weighted) {
    sq_err = tensor::mul(tensor::Var(std::move(weights)), sq_err);
  }
  const tensor::Var critic =
      tensor::scale(tensor::sum_all(sq_err), cfg_.value_coef);
  const tensor::Var entropy =
      tensor::scale(tensor::sum_all(tensor::concat_rows(ents)),
                    cfg_.entropy_beta * entropy_scale_);
  const tensor::Var loss =
      tensor::scale(tensor::add(pg, tensor::sub(critic, entropy)),
                    1.0 / static_cast<double>(n));
  return apply_loss(loss);
}

bool A2CTrainer::apply_loss(const tensor::Var& loss) {
  readys::obs::Telemetry* t_obs = readys::obs::telemetry();
  optimizer_.zero_grad();
  loss.backward();
  const double grad_norm = optimizer_.clip_grad_norm(cfg_.grad_clip);
  // A NaN/Inf loss or gradient stepped into Adam poisons the moments and
  // then every subsequent update; drop the batch instead. The norm is
  // non-finite iff any gradient entry is, so this one check covers the
  // whole parameter list.
  last_loss_ = loss.value().item();
  last_grad_norm_ = grad_norm;
  if (!std::isfinite(loss.value().item()) || !std::isfinite(grad_norm)) {
    optimizer_.zero_grad();
    if (t_obs) t_obs->optim_skipped.add();
    return false;
  }
  if (net_mutex_ != nullptr) {
    // Async mode: actors forward-read the weights under shared locks;
    // only the step itself (the sole writer besides rollback) needs the
    // exclusive lock — backward/clipping touch gradients, not values.
    std::unique_lock lock(*net_mutex_);
    optimizer_.step();
    net_->bump_weight_version();
  } else {
    optimizer_.step();
    net_->bump_weight_version();
  }
  ++updates_;
  if (t_obs) t_obs->optim_updates.add();
  return true;
}

void A2CTrainer::rollback(const std::string& last_good) {
  std::unique_lock<std::shared_mutex> lock;
  if (net_mutex_ != nullptr) {
    lock = std::unique_lock(*net_mutex_);
  }
  nn::deserialize_parameters(*net_, last_good);
  // Fresh optimizer: the moment estimates were built on the divergent
  // trajectory and would steer the restored weights right back into it.
  optimizer_ = nn::Adam(net_->parameters(), cfg_.lr);
}

bool A2CTrainer::update_group(const std::vector<EpisodeRollout>& eps,
                              std::size_t begin, std::size_t end,
                              bool off_policy) {
  std::size_t total = 0;
  for (std::size_t i = begin; i < end; ++i) {
    total += eps[i].observations.size();
  }
  if (total == 0) return true;
  std::vector<const Observation*> obs;
  obs.reserve(total);
  for (std::size_t i = begin; i < end; ++i) {
    for (const Observation& o : eps[i].observations) obs.push_back(&o);
  }
  // Re-forward with gradients on: the rollout recorded values only, so
  // each update's graph covers exactly its own episodes instead of a
  // whole round's packed graph.
  const auto outs = net_->forward_batched(obs);
  std::vector<StepRecord> batch;
  batch.reserve(total);
  std::size_t k = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const EpisodeRollout& e = eps[i];
    const std::size_t steps = e.observations.size();
    for (std::size_t s = 0; s < steps; ++s, ++k) {
      StepRecord rec;
      rec.log_prob = tensor::pick(outs[k].log_probs, 0, e.actions[s]);
      rec.value = outs[k].value;
      rec.entropy = tensor::entropy_row(outs[k].probs);
      rec.reward = shape_reward(e.rewards[s]);
      rec.done = (s + 1 == steps);
      if (off_policy && e.log_probs.size() == steps) {
        // Truncated importance sampling (the rho-clipping half of
        // V-trace): the trajectory was acted by the stale behavior
        // policy mu, so the policy-gradient term is reweighted by
        // min(1, pi(a|s)/mu(a|s)). Clipping at 1 keeps the variance
        // bounded; steps the current policy has moved away from are
        // down-weighted toward zero instead of blown up.
        const double ratio =
            std::exp(rec.log_prob.value().item() - e.log_probs[s]);
        rec.is_weight = std::isfinite(ratio) ? std::min(1.0, ratio) : 1.0;
      }
      batch.push_back(std::move(rec));
    }
  }
  return update_batched(batch);
}

TrainReport A2CTrainer::train(SchedulingEnv& env, const TrainOptions& opts) {
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();
  std::vector<StepRecord> batch;
  batch.reserve(static_cast<std::size_t>(cfg_.unroll));

  int start_ep = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "a2c", opts.seed, 1, optimizer_,
                                  sample_rng_);
      start_ep = std::min(ck.progress.episode, opts.episodes);
      updates_ = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = start_ep;

  // Divergence guard: updates that went NaN/Inf are skipped; after
  // `divergence_patience` consecutive skips the weights roll back to the
  // last good snapshot (refreshed at every checkpoint interval).
  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int episode) {
    CheckpointData d;
    d.progress = {episode, updates_, report.skipped_updates, report.rollbacks,
                  divergent_streak};
    d.trainer = "a2c";
    d.env_seed = opts.seed;
    d.num_envs = 1;
    d.rngs = {{"sample", sample_rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };
  const auto guarded = [&](bool applied) {
    if (applied) {
      divergent_streak = 0;
      return;
    }
    ++report.skipped_updates;
    if (++divergent_streak >= patience) {
      rollback(last_good);
      ++report.rollbacks;
      divergent_streak = 0;
    }
  };

  using obs_clock = std::chrono::steady_clock;
  for (int ep = start_ep; ep < opts.episodes; ++ep) {
    readys::obs::Telemetry* t_obs = readys::obs::telemetry();
    const auto ep_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
    entropy_scale_ =
        cfg_.entropy_decay
            ? 1.0 - static_cast<double>(ep) /
                        static_cast<double>(std::max(1, opts.episodes))
            : 1.0;
    env.reset(opts.seed + static_cast<std::uint64_t>(ep));
    batch.clear();
    double episode_reward = 0.0;
    bool done = false;
    while (!done) {
      const Observation& obs = env.observation();
      PolicyNet::Output out = net_->forward(obs);
      const std::size_t a =
          select_action(out, /*greedy=*/false, sample_rng_);
      StepRecord rec;
      rec.log_prob = tensor::pick(out.log_probs, 0, a);
      rec.value = out.value;
      rec.entropy = tensor::entropy_row(out.probs);
      const auto result = env.step(a);
      rec.reward = shape_reward(result.reward);
      rec.done = result.done;
      episode_reward += result.reward;
      done = result.done;
      batch.push_back(std::move(rec));

      if (done) {
        guarded(update(batch, 0.0));
        batch.clear();
      } else if (cfg_.unroll > 0 &&
                 batch.size() >= static_cast<std::size_t>(cfg_.unroll)) {
        const double bootstrap =
            net_->forward(env.observation()).value.value().item();
        guarded(update(batch, bootstrap));
        batch.clear();
      }
    }
    report.episode_rewards.push_back(episode_reward);
    report.episode_makespans.push_back(env.makespan());
    report.best_makespan = std::min(report.best_makespan, env.makespan());
    if (t_obs != nullptr && t_obs->sink() != nullptr) {
      const double wall_s =
          std::chrono::duration<double>(obs_clock::now() - ep_t0).count();
      const auto decisions = env.decisions_this_episode();
      readys::obs::JsonObject row;
      row.field("row", "episode")
          .field("trainer", "a2c")
          .field("episode", ep + 1)
          .field("reward", episode_reward)
          .field("makespan_ms", env.makespan())
          .field("loss", last_loss_)
          .field("grad_norm", last_grad_norm_)
          .field("decisions", static_cast<std::uint64_t>(decisions))
          .field("steps_per_s",
                 wall_s > 0.0 ? static_cast<double>(decisions) / wall_s : 0.0)
          .field("skipped_updates",
                 static_cast<std::uint64_t>(report.skipped_updates))
          .field("rollbacks", static_cast<std::uint64_t>(report.rollbacks));
      t_obs->sink()->write(row.str());
    }
    if ((ep + 1) % every == 0) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(ep + 1),
                        ck_opts);
      }
    }
    if (opts.verbose && (ep + 1) % opts.log_every == 0) {
      const std::size_t tail =
          std::min<std::size_t>(report.episode_rewards.size(),
                                static_cast<std::size_t>(opts.log_every));
      const double recent = util::mean(
          {report.episode_rewards.data() + report.episode_rewards.size() -
               tail,
           tail});
      util::log_info() << "episode " << (ep + 1) << "/" << opts.episodes
                       << " reward(avg " << tail << ")=" << recent
                       << " makespan=" << env.makespan();
    }
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  report.updates = updates_;
  if (!report.episode_rewards.empty()) {
    // Empty when --resume found a run that already finished.
    const std::size_t tail = std::max<std::size_t>(
        1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

TrainReport A2CTrainer::train(VecEnv& envs, const TrainOptions& opts) {
  if (cfg_.unroll > 0) {
    throw std::invalid_argument(
        "A2CTrainer: vectorized training requires unroll == 0 (mid-episode "
        "unrolls would interleave partial episodes across envs)");
  }
  if (opts.async) return train_async(envs, opts);
  if (envs.size() == 1) {
    // The num_envs == 1 contract is bit-exactness with the sequential
    // trainer; delegating is the strongest possible form of it.
    return train(envs.env(0), opts);
  }
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();
  const std::size_t width = envs.size();

  int start_ep = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "a2c", opts.seed, width, optimizer_,
                                  sample_rng_);
      start_ep = std::min(ck.progress.episode, opts.episodes);
      updates_ = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = start_ep;

  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const int log_every = std::max(1, opts.log_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int episode) {
    CheckpointData d;
    d.progress = {episode, updates_, report.skipped_updates, report.rollbacks,
                  divergent_streak};
    d.trainer = "a2c";
    d.env_seed = opts.seed;
    d.num_envs = width;
    d.rngs = {{"sample", sample_rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };
  // Divergence in episode units: a skipped group update advances the
  // streak by the episodes it covered, so `divergence_patience` trips
  // after the same number of bad episodes at any width.
  const auto guarded = [&](bool applied, int episode_units) {
    if (applied) {
      divergent_streak = 0;
      return;
    }
    ++report.skipped_updates;
    divergent_streak += std::max(1, episode_units);
    if (divergent_streak >= patience) {
      rollback(last_good);
      ++report.rollbacks;
      divergent_streak = 0;
    }
  };

  std::vector<EpisodeRollout> eps(width);

  using obs_clock = std::chrono::steady_clock;
  int ep = start_ep;
  while (ep < opts.episodes) {
    const int round =
        std::min(static_cast<int>(width), opts.episodes - ep);
    readys::obs::Telemetry* t_obs = readys::obs::telemetry();
    const auto round_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
    std::vector<std::size_t> active;
    active.reserve(static_cast<std::size_t>(round));
    for (int e = 0; e < round; ++e) {
      envs.reset_one(static_cast<std::size_t>(e),
                     opts.seed + static_cast<std::uint64_t>(ep + e));
      eps[static_cast<std::size_t>(e)] = EpisodeRollout{};
      eps[static_cast<std::size_t>(e)].index = ep + e;
      active.push_back(static_cast<std::size_t>(e));
    }
    // Lockstep rollout: one batched forward per round-step, actions
    // sampled in ascending env order from the shared stream, envs
    // dropping out of `active` as their episodes finish. The rollout
    // records values only (NoGradGuard) — every update below re-forwards
    // its own episodes, so no cross-episode graph is ever built.
    {
      tensor::NoGradGuard no_grad;
      while (!active.empty()) {
        const auto obs_batch = envs.observations(active);
        const auto outs = net_->forward_batched(obs_batch);
        std::vector<std::size_t> acts(active.size());
        for (std::size_t k = 0; k < active.size(); ++k) {
          acts[k] = select_action(outs[k], /*greedy=*/false, sample_rng_);
          EpisodeRollout& rec = eps[active[k]];
          rec.observations.push_back(*obs_batch[k]);
          rec.actions.push_back(acts[k]);
        }
        const auto results = envs.step(active, acts);
        std::vector<std::size_t> next;
        next.reserve(active.size());
        for (std::size_t k = 0; k < active.size(); ++k) {
          EpisodeRollout& rec = eps[active[k]];
          rec.rewards.push_back(results[k].reward);
          rec.reward_sum += results[k].reward;
          if (!results[k].done) next.push_back(active[k]);
        }
        active = std::move(next);
      }
    }
    // Per-episode updates by default (opts.updates_per_round == 0): the
    // sequential cadence, so a width-8 run performs the same number of
    // gradient steps as a sequential one. updates_per_round >= 1 merges
    // adjacent episodes into that many groups per round instead.
    const int groups =
        opts.updates_per_round <= 0
            ? round
            : std::min(round, opts.updates_per_round);
    std::vector<double> ep_loss(static_cast<std::size_t>(round));
    std::vector<double> ep_gnorm(static_cast<std::size_t>(round));
    const int g_base = round / groups;
    const int g_extra = round % groups;
    std::size_t g_begin = 0;
    for (int g = 0; g < groups; ++g) {
      const std::size_t g_size =
          static_cast<std::size_t>(g_base + (g < g_extra ? 1 : 0));
      const std::size_t g_end = g_begin + g_size;
      // Annealing follows the group's first episode index — with
      // per-episode groups this is exactly the sequential schedule.
      entropy_scale_ =
          cfg_.entropy_decay
              ? 1.0 - (static_cast<double>(ep) +
                       static_cast<double>(g_begin)) /
                          static_cast<double>(std::max(1, opts.episodes))
              : 1.0;
      guarded(update_group(eps, g_begin, g_end),
              static_cast<int>(g_size));
      for (std::size_t i = g_begin; i < g_end; ++i) {
        ep_loss[i] = last_loss_;
        ep_gnorm[i] = last_grad_norm_;
      }
      g_begin = g_end;
    }

    std::size_t round_decisions = 0;
    for (int e = 0; e < round; ++e) {
      const auto& env = envs.env(static_cast<std::size_t>(e));
      report.episode_rewards.push_back(
          eps[static_cast<std::size_t>(e)].reward_sum);
      report.episode_makespans.push_back(env.makespan());
      report.best_makespan = std::min(report.best_makespan, env.makespan());
      round_decisions += env.decisions_this_episode();
    }
    if (t_obs != nullptr && t_obs->sink() != nullptr) {
      const double wall_s =
          std::chrono::duration<double>(obs_clock::now() - round_t0).count();
      const double rate =
          wall_s > 0.0 ? static_cast<double>(round_decisions) / wall_s : 0.0;
      for (int e = 0; e < round; ++e) {
        const auto& env = envs.env(static_cast<std::size_t>(e));
        readys::obs::JsonObject row;
        row.field("row", "episode")
            .field("trainer", "a2c")
            .field("envs", static_cast<std::uint64_t>(width))
            .field("episode", ep + e + 1)
            .field("reward", eps[static_cast<std::size_t>(e)].reward_sum)
            .field("makespan_ms", env.makespan())
            // The update that actually covered this episode — distinct
            // per group, never one round-wide value fanned out.
            .field("loss", ep_loss[static_cast<std::size_t>(e)])
            .field("grad_norm", ep_gnorm[static_cast<std::size_t>(e)])
            .field("decisions",
                   static_cast<std::uint64_t>(env.decisions_this_episode()))
            .field("steps_per_s", rate)
            .field("skipped_updates",
                   static_cast<std::uint64_t>(report.skipped_updates))
            .field("rollbacks", static_cast<std::uint64_t>(report.rollbacks));
        t_obs->sink()->write(row.str());
      }
    }
    const int prev = ep;
    ep += round;
    if (ep / every != prev / every) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(ep), ck_opts);
      }
    }
    if (opts.verbose && ep / log_every != prev / log_every) {
      const std::size_t tail =
          std::min<std::size_t>(report.episode_rewards.size(),
                                static_cast<std::size_t>(log_every));
      const double recent = util::mean(
          {report.episode_rewards.data() + report.episode_rewards.size() -
               tail,
           tail});
      util::log_info() << "episode " << ep << "/" << opts.episodes
                       << " reward(avg " << tail << ")=" << recent
                       << " makespan="
                       << envs.env(static_cast<std::size_t>(round - 1))
                              .makespan();
    }
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  report.updates = updates_;
  if (!report.episode_rewards.empty()) {
    const std::size_t tail = std::max<std::size_t>(
        1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

TrainReport A2CTrainer::train_async(VecEnv& envs, const TrainOptions& opts) {
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();
  const std::size_t width = envs.size();

  int start_ep = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "a2c", opts.seed, width, optimizer_,
                                  sample_rng_);
      start_ep = std::min(ck.progress.episode, opts.episodes);
      updates_ = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = start_ep;

  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const int log_every = std::max(1, opts.log_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int episode) {
    CheckpointData d;
    d.progress = {episode, updates_, report.skipped_updates, report.rollbacks,
                  divergent_streak};
    d.trainer = "a2c";
    d.env_seed = opts.seed;
    d.num_envs = width;
    d.rngs = {{"sample", sample_rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };
  const auto guarded = [&](bool applied, int episode_units) {
    if (applied) {
      divergent_streak = 0;
      return;
    }
    ++report.skipped_updates;
    divergent_streak += std::max(1, episode_units);
    if (divergent_streak >= patience) {
      rollback(last_good);
      ++report.rollbacks;
      divergent_streak = 0;
    }
  };

  const int batch_size = std::max(1, opts.async_batch);

  // Members outlive the locals below, so clear the mutex pointer on every
  // exit path before the std::shared_mutex on this frame dies.
  std::shared_mutex net_mutex;
  struct MutexGuard {
    A2CTrainer* t;
    ~MutexGuard() { t->net_mutex_ = nullptr; }
  } mutex_guard{this};
  net_mutex_ = &net_mutex;

  // Declaration order is the shutdown order in reverse: the pool's
  // destructor joins the actor threads before the queue or the mutex
  // they use can die.
  EpisodeQueue queue(std::max<std::size_t>(
      opts.async_queue > 0 ? static_cast<std::size_t>(opts.async_queue)
                           : 2 * width,
      static_cast<std::size_t>(batch_size)));
  ActorPool::Options pool_opts;
  pool_opts.first_episode = start_ep;
  pool_opts.episodes = opts.episodes;
  pool_opts.actors = opts.async_actors > 0
                         ? static_cast<std::size_t>(opts.async_actors)
                         : width;
  pool_opts.env_seed = opts.seed;
  pool_opts.action_seed = cfg_.seed ^ 0xA3EC647659359ACDULL;
  pool_opts.strict = opts.async_strict;
  // Per-actor policy replicas, synced from the learner net at every
  // episode start: one trajectory acts under one consistent set of
  // weights (IMPALA-style). Decisions that straddle weight updates bias
  // A2C badly enough to collapse learning — see the async cells in
  // BENCH_train_quality.json for the measured cliff.
  const std::size_t n_actors =
      std::max<std::size_t>(1, std::min(pool_opts.actors, width));
  std::vector<std::unique_ptr<PolicyNet>> replicas;
  std::vector<std::vector<tensor::Var>> replica_params;
  replicas.reserve(n_actors);
  const std::vector<tensor::Var> learner_params = net_->parameters();
  for (std::size_t s = 0; s < n_actors; ++s) {
    replicas.push_back(std::make_unique<PolicyNet>(
        net_->node_features(), net_->resource_features(), cfg_));
    replica_params.push_back(replicas.back()->parameters());
  }
  pool_opts.on_episode_start = [&](std::size_t slot, int) {
    // Shared lock: the copy must not observe a half-applied Adam step.
    std::shared_lock lock(*net_mutex_);
    auto& params = replica_params[slot];
    for (std::size_t p = 0; p < params.size(); ++p) {
      params[p].mutable_value() = learner_params[p].value();
    }
  };
  // Strict: exactly one batch claimable, so actors are parked while the
  // learner updates. Free: one extra in-flight episode per actor keeps
  // them busy through the update, bounding weight staleness at
  // batch + actors episodes (unbounded run-ahead collapses learning).
  const int window =
      opts.async_strict
          ? batch_size
          : batch_size + static_cast<int>(pool_opts.actors);
  pool_opts.window = window;
  ActorPool pool(
      envs, queue,
      [&replicas](std::size_t slot, const Observation& obs, util::Rng& rng) {
        // The replica is slot-private: no lock needed per decision.
        tensor::NoGradGuard no_grad;
        const PolicyNet::Output out = replicas[slot]->forward(obs);
        ActorPool::Act act;
        act.action = sample_categorical(out.probs.value(), rng);
        act.log_prob = out.log_probs.value()[act.action];
        act.value = out.value.value().item();
        return act;
      },
      pool_opts);

  using obs_clock = std::chrono::steady_clock;
  std::vector<EpisodeRollout> batch;
  int consumed = start_ep;
  bool drained_ok = true;
  while (consumed < opts.episodes) {
    const int want = std::min(batch_size, opts.episodes - consumed);
    readys::obs::Telemetry* t_obs = readys::obs::telemetry();
    const auto batch_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
    batch.clear();
    EpisodeRollout rec;
    while (static_cast<int>(batch.size()) < want) {
      if (!queue.pop(rec)) {
        drained_ok = false;
        break;
      }
      batch.push_back(std::move(rec));
    }
    if (!drained_ok) break;
    // Arrival order is thread-timing; episode order is not. Sorting
    // makes the learner's view (and, in strict mode, the whole run) a
    // function of episode indices alone.
    std::sort(batch.begin(), batch.end(),
              [](const EpisodeRollout& a, const EpisodeRollout& b) {
                return a.index < b.index;
              });
    // Per-episode update cadence inside the drained batch: async_batch
    // sets how many episodes move through the queue per learner pass
    // (communication granularity), not how many share one gradient step
    // — the cadence bugfix this PR exists for applies here too. Free
    // mode's trajectories come from stale weights, so their updates get
    // the truncated importance correction; strict mode's staleness is
    // the same 0..batch-1 in-batch lag the lockstep path has, and stays
    // uncorrected for exact parity with it.
    const bool off_policy = !opts.async_strict;
    std::vector<double> ep_loss(batch.size());
    std::vector<double> ep_gnorm(batch.size());
    for (std::size_t g = 0; g < batch.size(); ++g) {
      entropy_scale_ =
          cfg_.entropy_decay
              ? 1.0 - static_cast<double>(consumed + static_cast<int>(g)) /
                          static_cast<double>(std::max(1, opts.episodes))
              : 1.0;
      guarded(update_group(batch, g, g + 1, off_policy), 1);
      ep_loss[g] = last_loss_;
      ep_gnorm[g] = last_grad_norm_;
    }

    std::size_t batch_decisions = 0;
    for (const EpisodeRollout& e : batch) batch_decisions += e.decisions;
    for (const EpisodeRollout& e : batch) {
      report.episode_rewards.push_back(e.reward_sum);
      report.episode_makespans.push_back(e.makespan);
      report.best_makespan = std::min(report.best_makespan, e.makespan);
    }
    if (t_obs != nullptr && t_obs->sink() != nullptr) {
      const double wall_s =
          std::chrono::duration<double>(obs_clock::now() - batch_t0).count();
      const double rate =
          wall_s > 0.0 ? static_cast<double>(batch_decisions) / wall_s : 0.0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const EpisodeRollout& e = batch[i];
        readys::obs::JsonObject row;
        row.field("row", "episode")
            .field("trainer", "a2c")
            .field("envs", static_cast<std::uint64_t>(width))
            .field("async", true)
            .field("episode", e.index + 1)
            .field("reward", e.reward_sum)
            .field("makespan_ms", e.makespan)
            .field("loss", ep_loss[i])
            .field("grad_norm", ep_gnorm[i])
            .field("decisions", static_cast<std::uint64_t>(e.decisions))
            .field("steps_per_s", rate)
            .field("skipped_updates",
                   static_cast<std::uint64_t>(report.skipped_updates))
            .field("rollbacks", static_cast<std::uint64_t>(report.rollbacks));
        t_obs->sink()->write(row.str());
      }
    }
    const int prev = consumed;
    consumed += static_cast<int>(batch.size());
    // Un-gate the next window only after this update: in strict mode its
    // actors then see exactly these weights; in free mode the slack in
    // `window` is what keeps them busy while this thread was updating.
    pool.release_below(consumed + window);
    if (consumed / every != prev / every) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(consumed),
                        ck_opts);
      }
    }
    if (opts.verbose && consumed / log_every != prev / log_every) {
      const std::size_t tail =
          std::min<std::size_t>(report.episode_rewards.size(),
                                static_cast<std::size_t>(log_every));
      const double recent = util::mean(
          {report.episode_rewards.data() + report.episode_rewards.size() -
               tail,
           tail});
      util::log_info() << "episode " << consumed << "/" << opts.episodes
                       << " reward(avg " << tail << ")=" << recent
                       << " makespan=" << batch.back().makespan;
    }
  }
  pool.join();
  if (auto err = queue.error()) std::rethrow_exception(err);
  if (!drained_ok) {
    throw std::runtime_error(
        "A2CTrainer: async episode queue closed before the run finished");
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  report.updates = updates_;
  if (!report.episode_rewards.empty()) {
    const std::size_t tail = std::max<std::size_t>(
        1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

std::vector<double> A2CTrainer::evaluate(SchedulingEnv& env, int episodes,
                                         std::uint64_t seed_base,
                                         bool greedy) {
  // Evaluation must be a pure function of (policy weights, seed_base):
  // drawing from the shared training sample_rng_ would make the result
  // depend on how many actions were sampled during training before the
  // call, so sampled (non-greedy) evaluation uses its own stream.
  util::Rng eval_rng(seed_base ^ 0xE7037ED1A0B428DBULL);
  std::vector<double> makespans;
  makespans.reserve(static_cast<std::size_t>(episodes));
  for (int ep = 0; ep < episodes; ++ep) {
    env.reset(seed_base + static_cast<std::uint64_t>(ep));
    bool done = env.done();
    while (!done) {
      const PolicyNet::Output out = net_->forward(env.observation());
      const std::size_t a = select_action(out, greedy, eval_rng);
      done = env.step(a).done;
    }
    makespans.push_back(env.makespan());
  }
  return makespans;
}

}  // namespace readys::rl
