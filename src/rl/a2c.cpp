#include "rl/a2c.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "rl/checkpoint.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace readys::rl {

A2CTrainer::A2CTrainer(PolicyNet& net, const AgentConfig& cfg)
    : net_(&net),
      cfg_(cfg),
      optimizer_(net.parameters(), cfg.lr),
      sample_rng_(cfg.seed ^ 0xA3EC647659359ACDULL) {}

double shape_reward(const AgentConfig& cfg, double reward) {
  if (!std::isfinite(reward)) {
    throw std::domain_error("shape_reward: non-finite reward " +
                            std::to_string(reward));
  }
  if (cfg.squash_reward && reward < 1.0) {
    reward = reward / (1.0 - reward);  // == mk_HEFT / mk - 1
  }
  if (cfg.reward_clip > 0.0) {
    reward = std::clamp(reward, -cfg.reward_clip, cfg.reward_clip);
  }
  return reward;
}

double A2CTrainer::shape_reward(double reward) const {
  return rl::shape_reward(cfg_, reward);
}

std::size_t A2CTrainer::select_action(const PolicyNet::Output& out,
                                      bool greedy, util::Rng& rng) const {
  const tensor::Tensor& p = out.probs.value();
  if (greedy) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < p.size(); ++i) {
      if (p[i] > p[best]) best = i;
    }
    return best;
  }
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += p[i];
    if (u < acc) return i;
  }
  return p.size() - 1;  // numerical slack
}

bool A2CTrainer::update(const std::vector<StepRecord>& batch,
                        double bootstrap) {
  if (batch.empty()) return true;
  readys::obs::Telemetry* t_obs = readys::obs::telemetry();
  readys::obs::Span span("rl/a2c_update", "train",
                         t_obs ? &t_obs->update_us : nullptr);
  // n-step discounted returns, resetting at episode boundaries.
  std::vector<double> returns(batch.size());
  double running = bootstrap;
  for (std::size_t i = batch.size(); i-- > 0;) {
    if (batch[i].done) {
      running = batch[i].reward;
    } else {
      running = batch[i].reward + cfg_.gamma * running;
    }
    returns[i] = running;
  }

  // Raw advantages; optionally standardized across the batch, which keeps
  // the policy-gradient magnitude stable when terminal rewards swing
  // (early random policies can be several HEFT makespans away).
  std::vector<double> advantages(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    advantages[i] = returns[i] - batch[i].value.value().item();
  }
  if (cfg_.normalize_advantage && batch.size() > 1) {
    const auto s = util::summarize(advantages);
    const double scale = s.stddev > 1e-8 ? s.stddev : 1.0;
    for (double& a : advantages) a = (a - s.mean) / scale;
  }

  tensor::Var loss;
  bool first = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double advantage = advantages[i];
    tensor::Var target{tensor::Tensor(1, 1, returns[i])};
    tensor::Var step_loss = tensor::add(
        tensor::scale(batch[i].log_prob, -advantage),
        tensor::sub(
            tensor::scale(tensor::square(tensor::sub(batch[i].value, target)),
                          cfg_.value_coef),
            tensor::scale(batch[i].entropy,
                          cfg_.entropy_beta * entropy_scale_)));
    loss = first ? step_loss : tensor::add(loss, step_loss);
    first = false;
  }
  loss = tensor::scale(loss, 1.0 / static_cast<double>(batch.size()));
  return apply_loss(loss);
}

bool A2CTrainer::update_batched(const std::vector<StepRecord>& batch) {
  if (batch.empty()) return true;
  readys::obs::Telemetry* t_obs = readys::obs::telemetry();
  readys::obs::Span span("rl/a2c_update", "train",
                         t_obs ? &t_obs->update_us : nullptr);
  // Same returns/advantages as update() (whole episodes, bootstrap 0).
  const std::size_t n = batch.size();
  std::vector<double> returns(n);
  double running = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    running = batch[i].done ? batch[i].reward
                            : batch[i].reward + cfg_.gamma * running;
    returns[i] = running;
  }
  std::vector<double> advantages(n);
  for (std::size_t i = 0; i < n; ++i) {
    advantages[i] = returns[i] - batch[i].value.value().item();
  }
  if (cfg_.normalize_advantage && n > 1) {
    const auto s = util::summarize(advantages);
    const double scale = s.stddev > 1e-8 ? s.stddev : 1.0;
    for (double& a : advantages) a = (a - s.mean) / scale;
  }

  // Stack the per-step scalars into (n x 1) columns; the loss becomes a
  // handful of column ops instead of ~8 graph nodes per step.
  std::vector<tensor::Var> lps, vals, ents;
  lps.reserve(n);
  vals.reserve(n);
  ents.reserve(n);
  tensor::Tensor neg_adv(n, 1);
  tensor::Tensor rets(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    lps.push_back(batch[i].log_prob);
    vals.push_back(batch[i].value);
    ents.push_back(batch[i].entropy);
    neg_adv.at(i, 0) = -advantages[i];
    rets.at(i, 0) = returns[i];
  }
  const tensor::Var pg = tensor::sum_all(
      tensor::mul(tensor::concat_rows(lps), tensor::Var(std::move(neg_adv))));
  const tensor::Var critic = tensor::scale(
      tensor::sum_all(tensor::square(tensor::sub(
          tensor::concat_rows(vals), tensor::Var(std::move(rets))))),
      cfg_.value_coef);
  const tensor::Var entropy =
      tensor::scale(tensor::sum_all(tensor::concat_rows(ents)),
                    cfg_.entropy_beta * entropy_scale_);
  const tensor::Var loss =
      tensor::scale(tensor::add(pg, tensor::sub(critic, entropy)),
                    1.0 / static_cast<double>(n));
  return apply_loss(loss);
}

bool A2CTrainer::apply_loss(const tensor::Var& loss) {
  readys::obs::Telemetry* t_obs = readys::obs::telemetry();
  optimizer_.zero_grad();
  loss.backward();
  const double grad_norm = optimizer_.clip_grad_norm(cfg_.grad_clip);
  // A NaN/Inf loss or gradient stepped into Adam poisons the moments and
  // then every subsequent update; drop the batch instead. The norm is
  // non-finite iff any gradient entry is, so this one check covers the
  // whole parameter list.
  last_loss_ = loss.value().item();
  last_grad_norm_ = grad_norm;
  if (!std::isfinite(loss.value().item()) || !std::isfinite(grad_norm)) {
    optimizer_.zero_grad();
    if (t_obs) t_obs->optim_skipped.add();
    return false;
  }
  optimizer_.step();
  ++updates_;
  if (t_obs) t_obs->optim_updates.add();
  return true;
}

void A2CTrainer::rollback(const std::string& last_good) {
  nn::deserialize_parameters(*net_, last_good);
  // Fresh optimizer: the moment estimates were built on the divergent
  // trajectory and would steer the restored weights right back into it.
  optimizer_ = nn::Adam(net_->parameters(), cfg_.lr);
}

TrainReport A2CTrainer::train(SchedulingEnv& env, const TrainOptions& opts) {
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();
  std::vector<StepRecord> batch;
  batch.reserve(static_cast<std::size_t>(cfg_.unroll));

  int start_ep = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "a2c", opts.seed, 1, optimizer_,
                                  sample_rng_);
      start_ep = std::min(ck.progress.episode, opts.episodes);
      updates_ = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = start_ep;

  // Divergence guard: updates that went NaN/Inf are skipped; after
  // `divergence_patience` consecutive skips the weights roll back to the
  // last good snapshot (refreshed at every checkpoint interval).
  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int episode) {
    CheckpointData d;
    d.progress = {episode, updates_, report.skipped_updates, report.rollbacks,
                  divergent_streak};
    d.trainer = "a2c";
    d.env_seed = opts.seed;
    d.num_envs = 1;
    d.rngs = {{"sample", sample_rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };
  const auto guarded = [&](bool applied) {
    if (applied) {
      divergent_streak = 0;
      return;
    }
    ++report.skipped_updates;
    if (++divergent_streak >= patience) {
      rollback(last_good);
      ++report.rollbacks;
      divergent_streak = 0;
    }
  };

  using obs_clock = std::chrono::steady_clock;
  for (int ep = start_ep; ep < opts.episodes; ++ep) {
    readys::obs::Telemetry* t_obs = readys::obs::telemetry();
    const auto ep_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
    entropy_scale_ =
        cfg_.entropy_decay
            ? 1.0 - static_cast<double>(ep) /
                        static_cast<double>(std::max(1, opts.episodes))
            : 1.0;
    env.reset(opts.seed + static_cast<std::uint64_t>(ep));
    batch.clear();
    double episode_reward = 0.0;
    bool done = false;
    while (!done) {
      const Observation& obs = env.observation();
      PolicyNet::Output out = net_->forward(obs);
      const std::size_t a =
          select_action(out, /*greedy=*/false, sample_rng_);
      StepRecord rec;
      rec.log_prob = tensor::pick(out.log_probs, 0, a);
      rec.value = out.value;
      rec.entropy = tensor::entropy_row(out.probs);
      const auto result = env.step(a);
      rec.reward = shape_reward(result.reward);
      rec.done = result.done;
      episode_reward += result.reward;
      done = result.done;
      batch.push_back(std::move(rec));

      if (done) {
        guarded(update(batch, 0.0));
        batch.clear();
      } else if (cfg_.unroll > 0 &&
                 batch.size() >= static_cast<std::size_t>(cfg_.unroll)) {
        const double bootstrap =
            net_->forward(env.observation()).value.value().item();
        guarded(update(batch, bootstrap));
        batch.clear();
      }
    }
    report.episode_rewards.push_back(episode_reward);
    report.episode_makespans.push_back(env.makespan());
    report.best_makespan = std::min(report.best_makespan, env.makespan());
    if (t_obs != nullptr && t_obs->sink() != nullptr) {
      const double wall_s =
          std::chrono::duration<double>(obs_clock::now() - ep_t0).count();
      const auto decisions = env.decisions_this_episode();
      readys::obs::JsonObject row;
      row.field("row", "episode")
          .field("trainer", "a2c")
          .field("episode", ep + 1)
          .field("reward", episode_reward)
          .field("makespan_ms", env.makespan())
          .field("loss", last_loss_)
          .field("grad_norm", last_grad_norm_)
          .field("decisions", static_cast<std::uint64_t>(decisions))
          .field("steps_per_s",
                 wall_s > 0.0 ? static_cast<double>(decisions) / wall_s : 0.0)
          .field("skipped_updates",
                 static_cast<std::uint64_t>(report.skipped_updates))
          .field("rollbacks", static_cast<std::uint64_t>(report.rollbacks));
      t_obs->sink()->write(row.str());
    }
    if ((ep + 1) % every == 0) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(ep + 1),
                        ck_opts);
      }
    }
    if (opts.verbose && (ep + 1) % opts.log_every == 0) {
      const std::size_t tail =
          std::min<std::size_t>(report.episode_rewards.size(),
                                static_cast<std::size_t>(opts.log_every));
      const double recent = util::mean(
          {report.episode_rewards.data() + report.episode_rewards.size() -
               tail,
           tail});
      util::log_info() << "episode " << (ep + 1) << "/" << opts.episodes
                       << " reward(avg " << tail << ")=" << recent
                       << " makespan=" << env.makespan();
    }
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  report.updates = updates_;
  if (!report.episode_rewards.empty()) {
    // Empty when --resume found a run that already finished.
    const std::size_t tail = std::max<std::size_t>(
        1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

TrainReport A2CTrainer::train(VecEnv& envs, const TrainOptions& opts) {
  if (cfg_.unroll > 0) {
    throw std::invalid_argument(
        "A2CTrainer: vectorized training requires unroll == 0 (mid-episode "
        "unrolls would interleave partial episodes across envs)");
  }
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();
  const std::size_t width = envs.size();

  int start_ep = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "a2c", opts.seed, width, optimizer_,
                                  sample_rng_);
      start_ep = std::min(ck.progress.episode, opts.episodes);
      updates_ = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = start_ep;

  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const int log_every = std::max(1, opts.log_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int episode) {
    CheckpointData d;
    d.progress = {episode, updates_, report.skipped_updates, report.rollbacks,
                  divergent_streak};
    d.trainer = "a2c";
    d.env_seed = opts.seed;
    d.num_envs = width;
    d.rngs = {{"sample", sample_rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };
  const auto guarded = [&](bool applied) {
    if (applied) {
      divergent_streak = 0;
      return;
    }
    ++report.skipped_updates;
    if (++divergent_streak >= patience) {
      rollback(last_good);
      ++report.rollbacks;
      divergent_streak = 0;
    }
  };

  std::vector<std::vector<StepRecord>> records(width);
  std::vector<double> ep_reward(width, 0.0);
  std::vector<StepRecord> batch;

  using obs_clock = std::chrono::steady_clock;
  int ep = start_ep;
  while (ep < opts.episodes) {
    const int round =
        std::min(static_cast<int>(width), opts.episodes - ep);
    readys::obs::Telemetry* t_obs = readys::obs::telemetry();
    const auto round_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
    // The annealing factor is frozen at the round's first episode index;
    // with one env per round this is exactly the sequential schedule.
    entropy_scale_ =
        cfg_.entropy_decay
            ? 1.0 - static_cast<double>(ep) /
                        static_cast<double>(std::max(1, opts.episodes))
            : 1.0;
    std::vector<std::size_t> active;
    active.reserve(static_cast<std::size_t>(round));
    for (int e = 0; e < round; ++e) {
      envs.reset_one(static_cast<std::size_t>(e),
                     opts.seed + static_cast<std::uint64_t>(ep + e));
      records[static_cast<std::size_t>(e)].clear();
      ep_reward[static_cast<std::size_t>(e)] = 0.0;
      active.push_back(static_cast<std::size_t>(e));
    }
    // Lockstep rollout: one batched forward per round-step, actions
    // sampled in ascending env order from the shared stream, envs
    // dropping out of `active` as their episodes finish.
    while (!active.empty()) {
      const auto obs_batch = envs.observations(active);
      const auto outs = net_->forward_batched(obs_batch);
      std::vector<std::size_t> acts(active.size());
      for (std::size_t k = 0; k < active.size(); ++k) {
        acts[k] = select_action(outs[k], /*greedy=*/false, sample_rng_);
        StepRecord rec;
        rec.log_prob = tensor::pick(outs[k].log_probs, 0, acts[k]);
        rec.value = outs[k].value;
        rec.entropy = tensor::entropy_row(outs[k].probs);
        records[active[k]].push_back(std::move(rec));
      }
      const auto results = envs.step(active, acts);
      std::vector<std::size_t> next;
      next.reserve(active.size());
      for (std::size_t k = 0; k < active.size(); ++k) {
        StepRecord& rec = records[active[k]].back();
        rec.reward = shape_reward(results[k].reward);
        rec.done = results[k].done;
        ep_reward[active[k]] += results[k].reward;
        if (!results[k].done) next.push_back(active[k]);
      }
      active = std::move(next);
    }
    // One update over the round, env-major so the concatenation equals
    // episode order (update() resets its return at each `done`).
    batch.clear();
    for (int e = 0; e < round; ++e) {
      auto& recs = records[static_cast<std::size_t>(e)];
      for (StepRecord& rec : recs) batch.push_back(std::move(rec));
      recs.clear();
    }
    // Rounds of one episode keep the sequential update (bit-exact
    // num_envs == 1 contract); wider rounds take the batched-loss form.
    guarded(round > 1 ? update_batched(batch) : update(batch, 0.0));
    batch.clear();

    std::size_t round_decisions = 0;
    for (int e = 0; e < round; ++e) {
      const auto& env = envs.env(static_cast<std::size_t>(e));
      report.episode_rewards.push_back(
          ep_reward[static_cast<std::size_t>(e)]);
      report.episode_makespans.push_back(env.makespan());
      report.best_makespan = std::min(report.best_makespan, env.makespan());
      round_decisions += env.decisions_this_episode();
    }
    if (t_obs != nullptr && t_obs->sink() != nullptr) {
      const double wall_s =
          std::chrono::duration<double>(obs_clock::now() - round_t0).count();
      const double rate =
          wall_s > 0.0 ? static_cast<double>(round_decisions) / wall_s : 0.0;
      for (int e = 0; e < round; ++e) {
        const auto& env = envs.env(static_cast<std::size_t>(e));
        readys::obs::JsonObject row;
        row.field("row", "episode")
            .field("trainer", "a2c")
            .field("envs", static_cast<std::uint64_t>(width))
            .field("episode", ep + e + 1)
            .field("reward", ep_reward[static_cast<std::size_t>(e)])
            .field("makespan_ms", env.makespan())
            .field("loss", last_loss_)
            .field("grad_norm", last_grad_norm_)
            .field("decisions",
                   static_cast<std::uint64_t>(env.decisions_this_episode()))
            .field("steps_per_s", rate)
            .field("skipped_updates",
                   static_cast<std::uint64_t>(report.skipped_updates))
            .field("rollbacks", static_cast<std::uint64_t>(report.rollbacks));
        t_obs->sink()->write(row.str());
      }
    }
    const int prev = ep;
    ep += round;
    if (ep / every != prev / every) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(ep), ck_opts);
      }
    }
    if (opts.verbose && ep / log_every != prev / log_every) {
      const std::size_t tail =
          std::min<std::size_t>(report.episode_rewards.size(),
                                static_cast<std::size_t>(log_every));
      const double recent = util::mean(
          {report.episode_rewards.data() + report.episode_rewards.size() -
               tail,
           tail});
      util::log_info() << "episode " << ep << "/" << opts.episodes
                       << " reward(avg " << tail << ")=" << recent
                       << " makespan="
                       << envs.env(static_cast<std::size_t>(round - 1))
                              .makespan();
    }
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  report.updates = updates_;
  if (!report.episode_rewards.empty()) {
    const std::size_t tail = std::max<std::size_t>(
        1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

std::vector<double> A2CTrainer::evaluate(SchedulingEnv& env, int episodes,
                                         std::uint64_t seed_base,
                                         bool greedy) {
  // Evaluation must be a pure function of (policy weights, seed_base):
  // drawing from the shared training sample_rng_ would make the result
  // depend on how many actions were sampled during training before the
  // call, so sampled (non-greedy) evaluation uses its own stream.
  util::Rng eval_rng(seed_base ^ 0xE7037ED1A0B428DBULL);
  std::vector<double> makespans;
  makespans.reserve(static_cast<std::size_t>(episodes));
  for (int ep = 0; ep < episodes; ++ep) {
    env.reset(seed_base + static_cast<std::uint64_t>(ep));
    bool done = env.done();
    while (!done) {
      const PolicyNet::Output out = net_->forward(env.observation());
      const std::size_t a = select_action(out, greedy, eval_rng);
      done = env.step(a).done;
    }
    makespans.push_back(env.makespan());
  }
  return makespans;
}

}  // namespace readys::rl
