#include "rl/inference.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "rl/policy_net.hpp"
#include "tensor/autograd.hpp"
#include "tensor/f32.hpp"

namespace readys::rl {

InferenceBackendKind parse_inference_backend(const std::string& name) {
  if (name == "f64ref") return InferenceBackendKind::kF64Ref;
  if (name == "f32simd") return InferenceBackendKind::kF32Simd;
  throw std::invalid_argument("unknown inference backend \"" + name +
                              "\" (known: f64ref, f32simd)");
}

const char* inference_backend_name(InferenceBackendKind kind) noexcept {
  return kind == InferenceBackendKind::kF32Simd ? "f32simd" : "f64ref";
}

namespace {

std::vector<float> to_f32(const tensor::Tensor& t) {
  std::vector<float> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = static_cast<float>(t[i]);
  }
  return out;
}

/// Row softmax + log-softmax in double over the float logits, with the
/// same max-subtraction stabilization as tensor::softmax_row.
void softmax_rows(const std::vector<double>& logits, InferenceOutput& out) {
  const std::size_t n = logits.size();
  out.probs.resize(n);
  out.log_probs.resize(n);
  double mx = logits[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  double z = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.probs[i] = std::exp(logits[i] - mx);
    z += out.probs[i];
  }
  for (std::size_t i = 0; i < n; ++i) out.probs[i] /= z;
  const double logz = mx + std::log(z);
  for (std::size_t i = 0; i < n; ++i) out.log_probs[i] = logits[i] - logz;
}

}  // namespace

namespace {
std::atomic<std::uint64_t> g_snapshot_builds{0};
}  // namespace

std::uint64_t InferenceWeights::snapshot_builds() noexcept {
  return g_snapshot_builds.load(std::memory_order_relaxed);
}

InferenceWeights InferenceWeights::snapshot(const PolicyNet& net) {
  g_snapshot_builds.fetch_add(1, std::memory_order_relaxed);
  InferenceWeights w;
  w.node_features = net.node_features();
  w.resource_features = net.resource_features();
  w.hidden = net.hidden();
  w.gcn_in.resize(static_cast<std::size_t>(net.num_gcn_layers()));
  w.gcn_w.resize(w.gcn_in.size());
  w.gcn_b.resize(w.gcn_in.size());

  bool have_value = false;
  std::size_t value_rows = 0;
  for (const auto& [name, var] : net.named_parameters()) {
    const tensor::Tensor& v = var.value();
    if (name.rfind("gcn", 0) == 0) {
      const std::size_t dot = name.find('.');
      const std::size_t layer =
          static_cast<std::size_t>(std::stoi(name.substr(3, dot - 3)));
      if (layer >= w.gcn_in.size()) {
        throw std::invalid_argument(
            "InferenceWeights: unexpected GCN layer in \"" + name + "\"");
      }
      if (name.ends_with(".weight")) {
        w.gcn_in[layer] = v.rows();
        w.gcn_w[layer] = to_f32(v);
      } else {
        w.gcn_b[layer] = to_f32(v);
      }
    } else if (name == "actor.weight") {
      w.actor_w = to_f32(v);
    } else if (name == "actor.bias") {
      w.actor_b = static_cast<float>(v.item());
    } else if (name == "res_proj.weight") {
      w.res_w = to_f32(v);
    } else if (name == "res_proj.bias") {
      w.res_b = to_f32(v);
    } else if (name == "idle.weight") {
      w.idle_w = to_f32(v);
    } else if (name == "idle.bias") {
      w.idle_b = static_cast<float>(v.item());
    } else if (name == "value.weight") {
      w.value_w = to_f32(v);
      value_rows = v.rows();
      have_value = true;
    } else if (name == "value.bias") {
      w.value_b = static_cast<float>(v.item());
    } else {
      throw std::invalid_argument(
          "InferenceWeights: unexpected parameter \"" + name +
          "\" (not a PolicyNet?)");
    }
  }
  if (!have_value || w.actor_w.empty() || w.gcn_w.empty() ||
      w.gcn_w.front().empty()) {
    throw std::invalid_argument(
        "InferenceWeights: missing PolicyNet parameters");
  }
  w.critic_sees_resources =
      value_rows == 2 * static_cast<std::size_t>(w.hidden);
  return w;
}

// --- F64Ref ---------------------------------------------------------------

void F64RefBackend::forward(const Observation& obs, InferenceOutput& out) {
  readys::obs::Telemetry* t = readys::obs::telemetry();
  readys::obs::Span span("rl/infer", "infer", t ? &t->infer_us : nullptr);
  tensor::NoGradGuard no_grad;
  const PolicyNet::Output o = net_->forward(obs);
  const tensor::Tensor& p = o.probs.value();
  const tensor::Tensor& lp = o.log_probs.value();
  out.probs.assign(p.data(), p.data() + p.size());
  out.log_probs.assign(lp.data(), lp.data() + lp.size());
  out.value = o.value.value().item();
}

void F64RefBackend::forward_batched(
    const std::vector<const Observation*>& batch,
    std::vector<InferenceOutput>& outs) {
  readys::obs::Telemetry* t = readys::obs::telemetry();
  readys::obs::Span span("rl/infer_batched", "infer",
                         t ? &t->infer_us : nullptr);
  tensor::NoGradGuard no_grad;
  const std::vector<PolicyNet::Output> os = net_->forward_batched(batch);
  outs.resize(os.size());
  for (std::size_t i = 0; i < os.size(); ++i) {
    const tensor::Tensor& p = os[i].probs.value();
    const tensor::Tensor& lp = os[i].log_probs.value();
    outs[i].probs.assign(p.data(), p.data() + p.size());
    outs[i].log_probs.assign(lp.data(), lp.data() + lp.size());
    outs[i].value = os[i].value.value().item();
  }
}

// --- F32Simd --------------------------------------------------------------

F32SimdBackend::F32SimdBackend(InferenceWeights weights)
    : F32SimdBackend(
          std::make_shared<const InferenceWeights>(std::move(weights))) {}

F32SimdBackend::F32SimdBackend(std::shared_ptr<const InferenceWeights> weights)
    : w_(std::move(weights)) {
  if (!w_) {
    throw std::invalid_argument("F32SimdBackend: null weight snapshot");
  }
}

void F32SimdBackend::forward(const Observation& obs, InferenceOutput& out) {
  readys::obs::Telemetry* t = readys::obs::telemetry();
  readys::obs::Span span("rl/infer", "infer", t ? &t->infer_us : nullptr);
  if (obs.ready_tasks.empty()) {
    throw std::invalid_argument("F32SimdBackend::forward: no ready task");
  }
  const std::size_t n = obs.features.rows();
  const std::size_t f = obs.features.cols();
  const std::size_t h = static_cast<std::size_t>(w_->hidden);
  const std::size_t rf = static_cast<std::size_t>(w_->resource_features);
  if (f != w_->gcn_in.front()) {
    throw std::invalid_argument(
        "F32SimdBackend::forward: feature width mismatch");
  }
  if (obs.resource_state.cols() != rf) {
    throw std::invalid_argument(
        "F32SimdBackend::forward: resource width mismatch");
  }

  arena_.reset();

  // Inputs to float. Â is consumed through its CSR view when the encoder
  // provided one (O(nnz) instead of O(n^2) — the decisive win for large
  // windows); hand-assembled observations fall back to the dense matrix.
  float* x = arena_.alloc_f32(n * f);
  for (std::size_t i = 0; i < n * f; ++i) {
    x[i] = static_cast<float>(obs.features[i]);
  }
  const bool csr = !obs.ahat_csr.empty() && obs.ahat_csr.rows() == n;
  float* ahat = nullptr;
  if (!csr) {
    ahat = arena_.alloc_f32(n * n);
    for (std::size_t i = 0; i < n * n; ++i) {
      ahat[i] = static_cast<float>(obs.ahat[i]);
    }
  }

  // GCN trunk: H' = Ahat (H W) + b, ReLU between layers (not after the
  // last) — the same composition as PolicyNet::embed. The CSR and dense
  // products accumulate term for term in the same order (ascending
  // columns), so both routes produce the same floats.
  const std::size_t layers = w_->gcn_in.size();
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t in = w_->gcn_in[l];
    float* xw = arena_.alloc_f32(n * h);
    tensor::f32::matmul_bias(x, n, in, w_->gcn_w[l].data(), h, nullptr, xw);
    float* hl = arena_.alloc_f32(n * h);
    if (csr) {
      tensor::f32::spmm_bias(obs.ahat_csr.row_ptr.data(),
                             obs.ahat_csr.col.data(), obs.ahat_csr.val.data(),
                             n, xw, h, w_->gcn_b[l].data(), hl);
    } else {
      tensor::f32::matmul_bias(ahat, n, n, xw, h, w_->gcn_b[l].data(), hl);
    }
    if (l + 1 < layers) tensor::f32::relu_inplace(hl, n * h);
    x = hl;
  }
  const float* emb = x;  // n x h node embeddings

  // Resource embedding: relu(res W + b), 1 x h.
  float* res_in = arena_.alloc_f32(rf);
  for (std::size_t i = 0; i < rf; ++i) {
    res_in[i] = static_cast<float>(obs.resource_state[i]);
  }
  float* rstate = arena_.alloc_f32(h);
  tensor::f32::matmul_bias(res_in, 1, rf, w_->res_w.data(), h,
                           w_->res_b.data(), rstate);
  tensor::f32::relu_inplace(rstate, h);

  // Critic: mean-pool (+ resource embedding when configured) -> scalar.
  float* pooled = arena_.alloc_f32(h);
  tensor::f32::mean_cols(emb, n, h, pooled);
  float v;
  if (w_->critic_sees_resources) {
    v = tensor::f32::dot(pooled, w_->value_w.data(), h) +
        tensor::f32::dot(rstate, w_->value_w.data() + h, h) + w_->value_b;
  } else {
    v = tensor::f32::dot(pooled, w_->value_w.data(), h) + w_->value_b;
  }
  out.value = static_cast<double>(v);

  // Actor scores per ready row, plus the ∅ score when idling is legal.
  const std::size_t k = obs.ready_tasks.size();
  logits_.resize(k + (obs.allow_idle ? 1 : 0));
  for (std::size_t i = 0; i < k; ++i) {
    const float* row = emb + obs.ready_positions[i] * h;
    logits_[i] = static_cast<double>(
        tensor::f32::dot(row, w_->actor_w.data(), h) + w_->actor_b);
  }
  if (obs.allow_idle) {
    float* maxp = arena_.alloc_f32(h);
    tensor::f32::max_cols(emb, n, h, maxp);
    // idle head input is [rstate ‖ maxpool].
    const float s = tensor::f32::dot(rstate, w_->idle_w.data(), h) +
                    tensor::f32::dot(maxp, w_->idle_w.data() + h, h) +
                    w_->idle_b;
    logits_[k] = static_cast<double>(s);
  }
  softmax_rows(logits_, out);
}

void F32SimdBackend::forward_batched(
    const std::vector<const Observation*>& batch,
    std::vector<InferenceOutput>& outs) {
  if (batch.empty()) {
    throw std::invalid_argument("F32SimdBackend::forward_batched: empty batch");
  }
  // Without an autograd graph there is nothing to pack: a per-graph loop
  // is the block-diagonal product computed block by block, so each
  // session's output is trivially independent of batch composition.
  outs.resize(batch.size());
  for (std::size_t g = 0; g < batch.size(); ++g) {
    forward(*batch[g], outs[g]);
  }
}

// --- factory --------------------------------------------------------------

std::unique_ptr<InferenceBackend> make_inference_backend(
    const PolicyNet& net, InferenceBackendKind kind) {
  if (kind == InferenceBackendKind::kF32Simd) {
    return std::make_unique<F32SimdBackend>(InferenceWeights::snapshot(net));
  }
  return std::make_unique<F64RefBackend>(net);
}

}  // namespace readys::rl
