#include "rl/policy_net.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"
#include "tensor/ops.hpp"

namespace readys::rl {

PolicyNet::PolicyNet(int node_features, int resource_features,
                     const AgentConfig& cfg)
    : node_features_(node_features), hidden_(cfg.hidden) {
  if (cfg.gcn_layers < 1) {
    throw std::invalid_argument("PolicyNet: need >= 1 GCN layer");
  }
  util::Rng rng(cfg.seed);
  const std::size_t h = static_cast<std::size_t>(hidden_);
  for (int l = 0; l < cfg.gcn_layers; ++l) {
    const std::size_t in =
        l == 0 ? static_cast<std::size_t>(node_features) : h;
    gcn_.push_back(std::make_unique<nn::GCNLayer>(in, h, rng));
    register_module("gcn" + std::to_string(l), *gcn_.back());
  }
  actor_head_ = std::make_unique<nn::Linear>(h, 1, rng);
  register_module("actor", *actor_head_);
  res_proj_ = std::make_unique<nn::Linear>(
      static_cast<std::size_t>(resource_features), h, rng);
  register_module("res_proj", *res_proj_);
  idle_head_ = std::make_unique<nn::Linear>(2 * h, 1, rng);
  register_module("idle", *idle_head_);
  critic_sees_resources_ = cfg.critic_sees_resources;
  value_head_ = std::make_unique<nn::Linear>(
      critic_sees_resources_ ? 2 * h : h, 1, rng);
  register_module("value", *value_head_);
}

Var PolicyNet::embed(const Observation& obs) const {
  // `obs` the parameter shadows `obs` the namespace — qualify via readys::.
  readys::obs::Span span("nn/gcn_embed", "train");
  Var h{obs.features};
  const Var ahat{obs.ahat};
  for (std::size_t l = 0; l < gcn_.size(); ++l) {
    h = gcn_[l]->forward(ahat, h);
    if (l + 1 < gcn_.size()) h = tensor::relu(h);
  }
  return h;
}

PolicyNet::Output PolicyNet::forward(const Observation& obs) const {
  readys::obs::Telemetry* t = readys::obs::telemetry();
  readys::obs::Span span("rl/policy_forward", "train",
                         t ? &t->policy_forward_us : nullptr);
  if (t) t->policy_forwards.add();
  if (obs.ready_tasks.empty()) {
    throw std::invalid_argument("PolicyNet::forward: no ready task");
  }
  const Var h = embed(obs);
  const Var rstate =
      tensor::relu(res_proj_->forward(Var{obs.resource_state}));

  // Critic: mean-pool over nodes (+ the resource embedding unless the
  // literal Fig. 2 head was requested), one-dimensional projection.
  Output out;
  const Var pooled = tensor::mean_rows(h);
  out.value = value_head_->forward(
      critic_sees_resources_ ? tensor::concat_cols(pooled, rstate) : pooled);

  // Actor: a score per ready task...
  const Var ready_emb = tensor::gather_rows(h, obs.ready_positions);
  Var logits = tensor::reshape(actor_head_->forward(ready_emb), 1,
                               obs.ready_tasks.size());
  // ...plus the ∅ score from the processor state and the max-pooled DAG
  // embedding, when idling is legal.
  if (obs.allow_idle) {
    const Var idle_score = idle_head_->forward(
        tensor::concat_cols(rstate, tensor::max_rows(h)));
    logits = tensor::concat_cols(logits, idle_score);
  }
  out.probs = tensor::softmax_row(logits);
  out.log_probs = tensor::log_softmax_row(logits);
  return out;
}

}  // namespace readys::rl
