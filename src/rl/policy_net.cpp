#include "rl/policy_net.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"
#include "rl/inference.hpp"
#include "tensor/ops.hpp"

namespace readys::rl {

PolicyNet::PolicyNet(int node_features, int resource_features,
                     const AgentConfig& cfg)
    : node_features_(node_features),
      resource_features_(resource_features),
      hidden_(cfg.hidden) {
  if (cfg.gcn_layers < 1) {
    throw std::invalid_argument("PolicyNet: need >= 1 GCN layer");
  }
  util::Rng rng(cfg.seed);
  const std::size_t h = static_cast<std::size_t>(hidden_);
  for (int l = 0; l < cfg.gcn_layers; ++l) {
    const std::size_t in =
        l == 0 ? static_cast<std::size_t>(node_features) : h;
    gcn_.push_back(std::make_unique<nn::GCNLayer>(in, h, rng));
    register_module("gcn" + std::to_string(l), *gcn_.back());
  }
  actor_head_ = std::make_unique<nn::Linear>(h, 1, rng);
  register_module("actor", *actor_head_);
  res_proj_ = std::make_unique<nn::Linear>(
      static_cast<std::size_t>(resource_features), h, rng);
  register_module("res_proj", *res_proj_);
  idle_head_ = std::make_unique<nn::Linear>(2 * h, 1, rng);
  register_module("idle", *idle_head_);
  critic_sees_resources_ = cfg.critic_sees_resources;
  value_head_ = std::make_unique<nn::Linear>(
      critic_sees_resources_ ? 2 * h : h, 1, rng);
  register_module("value", *value_head_);
}

std::unique_ptr<InferenceBackend> PolicyNet::make_inference(
    InferenceBackendKind kind) const {
  return make_inference_backend(*this, kind);
}

Var PolicyNet::embed(const Observation& obs) const {
  // `obs` the parameter shadows `obs` the namespace — qualify via readys::.
  readys::obs::Span span("nn/gcn_embed", "train");
  Var h{obs.features};
  const Var ahat{obs.ahat};
  for (std::size_t l = 0; l < gcn_.size(); ++l) {
    h = gcn_[l]->forward(ahat, h);
    if (l + 1 < gcn_.size()) h = tensor::relu(h);
  }
  return h;
}

PolicyNet::Output PolicyNet::forward(const Observation& obs) const {
  readys::obs::Telemetry* t = readys::obs::telemetry();
  readys::obs::Span span("rl/policy_forward", "train",
                         t ? &t->policy_forward_us : nullptr);
  if (t) t->policy_forwards.add();
  if (obs.ready_tasks.empty()) {
    throw std::invalid_argument("PolicyNet::forward: no ready task");
  }
  const Var h = embed(obs);
  const Var rstate =
      tensor::relu(res_proj_->forward(Var{obs.resource_state}));

  // Critic: mean-pool over nodes (+ the resource embedding unless the
  // literal Fig. 2 head was requested), one-dimensional projection.
  Output out;
  const Var pooled = tensor::mean_rows(h);
  out.value = value_head_->forward(
      critic_sees_resources_ ? tensor::concat_cols(pooled, rstate) : pooled);

  // Actor: a score per ready task...
  const Var ready_emb = tensor::gather_rows(h, obs.ready_positions);
  Var logits = tensor::reshape(actor_head_->forward(ready_emb), 1,
                               obs.ready_tasks.size());
  // ...plus the ∅ score from the processor state and the max-pooled DAG
  // embedding, when idling is legal.
  if (obs.allow_idle) {
    const Var idle_score = idle_head_->forward(
        tensor::concat_cols(rstate, tensor::max_rows(h)));
    logits = tensor::concat_cols(logits, idle_score);
  }
  out.probs = tensor::softmax_row(logits);
  out.log_probs = tensor::log_softmax_row(logits);
  return out;
}

std::vector<PolicyNet::Output> PolicyNet::forward_batched(
    const std::vector<const Observation*>& batch) const {
  if (batch.empty()) {
    throw std::invalid_argument("PolicyNet::forward_batched: empty batch");
  }
  if (batch.size() == 1) {
    // Delegating keeps single-env training structurally identical to the
    // sequential path: same graph shape, same backward accumulation
    // order, hence bit-exact trajectories.
    return {forward(*batch.front())};
  }
  readys::obs::Telemetry* t = readys::obs::telemetry();
  readys::obs::Span span("rl/policy_forward_batched", "train",
                         t ? &t->policy_forward_us : nullptr);
  if (t) t->policy_forwards.add(batch.size());

  const std::size_t n_envs = batch.size();
  std::vector<std::size_t> offsets(n_envs + 1, 0);
  std::size_t n_ready = 0;
  for (std::size_t g = 0; g < n_envs; ++g) {
    const Observation& o = *batch[g];
    if (o.ready_tasks.empty()) {
      throw std::invalid_argument(
          "PolicyNet::forward_batched: no ready task");
    }
    if (o.features.cols() != static_cast<std::size_t>(node_features_)) {
      throw std::invalid_argument(
          "PolicyNet::forward_batched: feature width mismatch");
    }
    offsets[g + 1] = offsets[g] + o.features.rows();
    n_ready += o.ready_tasks.size();
  }

  // Pack node features and resource rows; collect the adjacency blocks.
  tensor::Tensor feats(offsets.back(),
                       static_cast<std::size_t>(node_features_));
  tensor::Tensor res(n_envs, batch.front()->resource_state.cols());
  auto blocks = std::make_shared<std::vector<tensor::Tensor>>();
  blocks->reserve(n_envs);
  for (std::size_t g = 0; g < n_envs; ++g) {
    const Observation& o = *batch[g];
    for (std::size_t r = 0; r < o.features.rows(); ++r) {
      for (std::size_t c = 0; c < o.features.cols(); ++c) {
        feats.at(offsets[g] + r, c) = o.features.at(r, c);
      }
    }
    for (std::size_t c = 0; c < o.resource_state.cols(); ++c) {
      res.at(g, c) = o.resource_state.at(0, c);
    }
    blocks->push_back(o.ahat);
  }

  Var h{std::move(feats)};
  {
    readys::obs::Span embed_span("nn/gcn_embed", "train");
    for (std::size_t l = 0; l < gcn_.size(); ++l) {
      h = gcn_[l]->forward_packed(blocks, h);
      if (l + 1 < gcn_.size()) h = tensor::relu(h);
    }
  }
  const Var rstate = tensor::relu(res_proj_->forward(Var{std::move(res)}));

  // Critic over per-graph mean pools, one packed head projection.
  const Var pooled = tensor::segment_mean_rows(h, offsets);
  const Var values = value_head_->forward(
      critic_sees_resources_ ? tensor::concat_cols(pooled, rstate) : pooled);

  // Actor scores for every ready row of every graph in one gather.
  std::vector<std::size_t> ready_rows;
  ready_rows.reserve(n_ready);
  std::vector<std::size_t> ready_begin(n_envs, 0);
  for (std::size_t g = 0; g < n_envs; ++g) {
    ready_begin[g] = ready_rows.size();
    for (std::size_t p : batch[g]->ready_positions) {
      ready_rows.push_back(offsets[g] + p);
    }
  }
  const Var scores =
      actor_head_->forward(tensor::gather_rows(h, ready_rows));

  // ∅ scores for every graph. Rows of graphs that disallow idling never
  // reach a loss, so their gradient contribution is exactly zero.
  const Var idle_scores = idle_head_->forward(
      tensor::concat_cols(rstate, tensor::segment_max_rows(h, offsets)));

  std::vector<Output> outs(n_envs);
  for (std::size_t g = 0; g < n_envs; ++g) {
    const Observation& o = *batch[g];
    const std::size_t k = o.ready_tasks.size();
    Var logits = tensor::reshape(
        tensor::slice_rows(scores, ready_begin[g], k), 1, k);
    if (o.allow_idle) {
      logits = tensor::concat_cols(logits,
                                   tensor::slice_rows(idle_scores, g, 1));
    }
    outs[g].probs = tensor::softmax_row(logits);
    outs[g].log_probs = tensor::log_softmax_row(logits);
    outs[g].value = tensor::slice_rows(values, g, 1);
  }
  return outs;
}

}  // namespace readys::rl
