#pragma once

#include <memory>
#include <unordered_set>

#include "rl/inference.hpp"
#include "rl/policy_net.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace readys::rl {

/// How a ReadysScheduler evaluates the policy. The defaults keep the
/// historical bit-exact behavior (f64 reference arithmetic) while
/// enabling the incremental encoder, which is bit-identical by contract.
struct ReadysOptions {
  bool greedy = true;          ///< argmax instead of sampling from π
  std::uint64_t seed = 1;      ///< rng seed (offers + sampling)
  bool random_offer = false;   ///< must match how the policy was trained
  /// Inference arithmetic: kF64Ref reproduces PolicyNet::forward
  /// bit-for-bit; kF32Simd runs the float32 SIMD fast path (argmax
  /// agreement pinned by tests, not bit-exact).
  InferenceBackendKind backend = InferenceBackendKind::kF64Ref;
  /// Maintain the window observation incrementally between decisions
  /// instead of re-encoding from scratch. Bit-identical either way.
  bool incremental = true;
};

/// Adapter running a (trained) READYS policy under the generic Simulator,
/// so the agent can be compared, traced, and validity-checked exactly
/// like HEFT and MCT. Implements the same decision protocol as
/// SchedulingEnv: random current processor among non-declined idle
/// resources, ∅ parks the processor until the next completion.
///
/// The policy is evaluated through an InferenceBackend built in reset()
/// — per episode, so a kF32Simd weight snapshot stays fresh across
/// train-then-evaluate flows.
class ReadysScheduler : public sim::Scheduler {
 public:
  /// The policy must outlive the scheduler.
  ReadysScheduler(const PolicyNet& net, int window, ReadysOptions opts);

  /// Historical convenience signature; `greedy` takes argmax actions
  /// (evaluation mode), otherwise actions are sampled from π.
  ReadysScheduler(const PolicyNet& net, int window, bool greedy = true,
                  std::uint64_t seed = 1, bool random_offer = false)
      : ReadysScheduler(net, window,
                        ReadysOptions{greedy, seed, random_offer,
                                      InferenceBackendKind::kF64Ref, true}) {}

  void reset(const sim::EngineView& engine) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override { return "READYS"; }

 private:
  const PolicyNet* net_;
  int window_;
  ReadysOptions opts_;
  util::Rng rng_;
  std::unique_ptr<InferenceBackend> backend_;
  std::uint64_t backend_version_ = 0;  ///< net weight_version backend_ saw
  std::unique_ptr<IncrementalEncoder> inc_;
  std::unique_ptr<StateEncoder> encoder_;  ///< when !opts_.incremental
  Observation obs_full_;                   ///< scratch for the full encoder
  InferenceOutput out_;                    ///< scratch, reused per decision
  std::unordered_set<int> declined_;
  double last_instant_ = -1.0;
};

/// Registers (or re-registers) the trained policy in sched::registry()
/// under the name "readys", so bench/CLI code can construct it like any
/// heuristic: make_scheduler("readys", {.seed = 3, .greedy = false}), or
/// with per-spec overrides: "readys(backend=f32simd,incremental=1)".
/// `defaults` seeds the options every spec starts from (the CLI routes
/// RunConfig::inference_backend through it), so plain "readys" — and
/// wrapped forms like "guarded:readys" — inherit the configured backend.
/// The net must outlive every scheduler the registry hands out. Lives
/// here — not in sched — because sched cannot depend on rl.
void register_readys_scheduler(const PolicyNet& net, int window,
                               bool random_offer = false,
                               ReadysOptions defaults = {});

}  // namespace readys::rl
