#pragma once

#include <memory>
#include <unordered_set>

#include "rl/policy_net.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace readys::rl {

/// Adapter running a (trained) READYS policy under the generic Simulator,
/// so the agent can be compared, traced, and validity-checked exactly
/// like HEFT and MCT. Implements the same decision protocol as
/// SchedulingEnv: random current processor among non-declined idle
/// resources, ∅ parks the processor until the next completion.
class ReadysScheduler : public sim::Scheduler {
 public:
  /// The policy must outlive the scheduler. `greedy` takes argmax actions
  /// (evaluation mode); otherwise actions are sampled from π.
  /// `random_offer` mirrors SchedulingEnv::Config::random_offer and must
  /// match how the policy was trained.
  ReadysScheduler(const PolicyNet& net, int window, bool greedy = true,
                  std::uint64_t seed = 1, bool random_offer = false);

  void reset(const sim::EngineView& engine) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override { return "READYS"; }

 private:
  const PolicyNet* net_;
  int window_;
  bool greedy_;
  bool random_offer_;
  std::uint64_t seed_;
  util::Rng rng_;
  std::unique_ptr<StateEncoder> encoder_;
  std::unordered_set<int> declined_;
  double last_instant_ = -1.0;
};

/// Registers (or re-registers) the trained policy in sched::registry()
/// under the name "readys", so bench/CLI code can construct it like any
/// heuristic: make_scheduler("readys", {.seed = 3, .greedy = false}).
/// The net must outlive every scheduler the registry hands out. Lives
/// here — not in sched — because sched cannot depend on rl.
void register_readys_scheduler(const PolicyNet& net, int window,
                               bool random_offer = false);

}  // namespace readys::rl
