#pragma once

#include <memory>
#include <string>

#include "rl/a2c.hpp"

namespace readys::rl {

/// High-level facade over the READYS agent: owns the policy network and
/// exposes train / evaluate / save / load. One agent can be trained on
/// one (graph, platform) combination and evaluated — or transferred — to
/// any other, as long as the number of kernel types matches (the paper's
/// transfer experiments reuse Cholesky agents across problem sizes).
class ReadysAgent {
 public:
  /// `kernel_types` fixes the node-feature width (4 for the tiled
  /// factorizations).
  ReadysAgent(int kernel_types, AgentConfig config);

  const AgentConfig& config() const noexcept { return config_; }
  PolicyNet& net() noexcept { return *net_; }
  const PolicyNet& net() const noexcept { return *net_; }
  int kernel_types() const noexcept { return kernel_types_; }

  /// Trains on the given instance with the paper's terminal reward.
  TrainReport train(const dag::TaskGraph& graph, const sim::Platform& platform,
                    const sim::CostModel& costs, const TrainOptions& opts);

  /// Mean makespan of the current policy over `episodes` evaluation
  /// seeds.
  std::vector<double> evaluate(const dag::TaskGraph& graph,
                               const sim::Platform& platform,
                               const sim::CostModel& costs, double sigma,
                               int episodes, std::uint64_t seed_base,
                               bool greedy = true);

  /// Weight (de)serialization; the loading agent must be constructed with
  /// the same AgentConfig (architecture is not stored).
  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  int kernel_types_;
  AgentConfig config_;
  std::unique_ptr<PolicyNet> net_;
  std::unique_ptr<A2CTrainer> trainer_;
};

}  // namespace readys::rl
