#pragma once

#include <vector>

#include "dag/features.hpp"
#include "dag/window.hpp"
#include "sim/engine.hpp"
#include "sim/engine_view.hpp"
#include "tensor/tensor.hpp"

namespace readys::rl {

/// One observation of the MDP: the window sub-DAG with per-node features,
/// its normalized adjacency, the candidate actions (ready tasks + the
/// optional ∅), and a platform-agnostic resource-state vector.
struct Observation {
  dag::Window window;
  tensor::Tensor features;  ///< |window| x node_feature_width
  tensor::Tensor ahat;      ///< |window| x |window| renormalized adjacency
  std::vector<std::size_t> ready_positions;  ///< rows that are ready tasks
  std::vector<dag::TaskId> ready_tasks;      ///< aligned with positions
  tensor::Tensor resource_state;             ///< 1 x resource_feature_width
  sim::ResourceId current_resource = -1;
  bool allow_idle = false;  ///< the ∅ action is legal (something running)

  /// Number of legal actions: ready tasks (+1 when ∅ is allowed).
  std::size_t num_actions() const noexcept {
    return ready_tasks.size() + (allow_idle ? 1 : 0);
  }
  /// Index of the ∅ action within the action distribution (== number of
  /// ready tasks). Only meaningful when allow_idle.
  std::size_t idle_action() const noexcept { return ready_tasks.size(); }
};

/// Builds Observations from a SimEngine. Holds the per-graph static
/// features (computed once) so per-decision encoding touches only the
/// window.
class StateEncoder {
 public:
  /// Per-node feature width: 2 degrees + one-hot type + descendant
  /// profile F + [ready, running, remaining, on-gpu] + normalized
  /// expected durations [on CPU, on GPU, on the current processor]. The
  /// duration triple is the "computing resource state" enrichment of the
  /// sub-DAG (Fig. 2): it lets task scores depend on the processor being
  /// offered, exactly the information MCT and HEFT read from the cost
  /// model.
  static int node_feature_width(int kernel_types) {
    return 2 + 2 * kernel_types + 4 + 3;
  }
  /// Width of the resource-state summary vector.
  static constexpr int kResourceFeatureWidth = 8;

  StateEncoder(const dag::TaskGraph& graph, const sim::CostModel& costs,
               int window);

  /// Encodes the state at a decision instant for `current` (an idle
  /// resource). Seeds of the window are the running tasks followed by the
  /// ready tasks, as in Fig. 1 of the paper.
  ///
  /// `allow_idle` marks the ∅ action legal. It must be false exactly when
  /// declining would deadlock: nothing is running AND no other idle
  /// resource is left to be offered at this instant. The overload without
  /// the flag derives the weaker any_running() condition, sufficient for
  /// standalone encoding.
  Observation encode(const sim::EngineView& engine, sim::ResourceId current,
                     bool allow_idle) const;
  Observation encode(const sim::EngineView& engine,
                     sim::ResourceId current) const;

  int window() const noexcept { return window_; }
  const dag::StaticFeatures& static_features() const noexcept {
    return static_;
  }

 private:
  const dag::TaskGraph* graph_;
  dag::StaticFeatures static_;
  sim::CostModel costs_;  ///< copied: tiny, and temporaries stay safe
  int window_;
  double time_scale_;  ///< max expected kernel duration on a CPU
};

}  // namespace readys::rl
