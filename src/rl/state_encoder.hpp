#pragma once

#include <cstdint>
#include <vector>

#include "dag/features.hpp"
#include "dag/window.hpp"
#include "nn/gcn.hpp"
#include "sim/engine.hpp"
#include "sim/engine_view.hpp"
#include "tensor/tensor.hpp"

namespace readys::rl {

/// One observation of the MDP: the window sub-DAG with per-node features,
/// its normalized adjacency, the candidate actions (ready tasks + the
/// optional ∅), and a platform-agnostic resource-state vector.
struct Observation {
  dag::Window window;
  tensor::Tensor features;  ///< |window| x node_feature_width
  tensor::Tensor ahat;      ///< |window| x |window| renormalized adjacency
  /// CSR view of `ahat` (same values bit for bit; see
  /// nn::normalized_adjacency_csr). Both encoders fill it; the f32
  /// inference backend consumes it to stay O(nnz) per decision. Empty on
  /// hand-assembled observations — consumers must fall back to `ahat`.
  nn::SparseAdj ahat_csr;
  std::vector<std::size_t> ready_positions;  ///< rows that are ready tasks
  std::vector<dag::TaskId> ready_tasks;      ///< aligned with positions
  tensor::Tensor resource_state;             ///< 1 x resource_feature_width
  sim::ResourceId current_resource = -1;
  bool allow_idle = false;  ///< the ∅ action is legal (something running)

  /// Number of legal actions: ready tasks (+1 when ∅ is allowed).
  std::size_t num_actions() const noexcept {
    return ready_tasks.size() + (allow_idle ? 1 : 0);
  }
  /// Index of the ∅ action within the action distribution (== number of
  /// ready tasks). Only meaningful when allow_idle.
  std::size_t idle_action() const noexcept { return ready_tasks.size(); }
};

/// Builds Observations from a SimEngine. Holds the per-graph static
/// features (computed once) so per-decision encoding touches only the
/// window.
class StateEncoder {
 public:
  /// Per-node feature width: 2 degrees + one-hot type + descendant
  /// profile F + [ready, running, remaining, on-gpu] + normalized
  /// expected durations [on CPU, on GPU, on the current processor]. The
  /// duration triple is the "computing resource state" enrichment of the
  /// sub-DAG (Fig. 2): it lets task scores depend on the processor being
  /// offered, exactly the information MCT and HEFT read from the cost
  /// model.
  static int node_feature_width(int kernel_types) {
    return 2 + 2 * kernel_types + 4 + 3;
  }
  /// Width of the resource-state summary vector.
  static constexpr int kResourceFeatureWidth = 8;

  StateEncoder(const dag::TaskGraph& graph, const sim::CostModel& costs,
               int window);

  /// Encodes the state at a decision instant for `current` (an idle
  /// resource). Seeds of the window are the running tasks followed by the
  /// ready tasks, as in Fig. 1 of the paper.
  ///
  /// `allow_idle` marks the ∅ action legal. It must be false exactly when
  /// declining would deadlock: nothing is running AND no other idle
  /// resource is left to be offered at this instant. The overload without
  /// the flag derives the weaker any_running() condition, sufficient for
  /// standalone encoding.
  Observation encode(const sim::EngineView& engine, sim::ResourceId current,
                     bool allow_idle) const;
  Observation encode(const sim::EngineView& engine,
                     sim::ResourceId current) const;

  int window() const noexcept { return window_; }
  const dag::StaticFeatures& static_features() const noexcept {
    return static_;
  }
  const dag::TaskGraph& graph() const noexcept { return *graph_; }
  const sim::CostModel& costs() const noexcept { return costs_; }
  /// Normalization constant for all duration-valued features.
  double time_scale() const noexcept { return time_scale_; }

 private:
  const dag::TaskGraph* graph_;
  dag::StaticFeatures static_;
  sim::CostModel costs_;  ///< copied: tiny, and temporaries stay safe
  int window_;
  double time_scale_;  ///< max expected kernel duration on a CPU
};

/// Incremental counterpart of StateEncoder for the inference fast path.
/// Produces Observations bit-identical to StateEncoder::encode on the
/// same engine state, but amortizes the per-decision work:
///
///  - static feature columns (degrees, type one-hot, descendant profile
///    F(i)) and the normalized CPU/GPU duration columns are precomputed
///    once per graph into a base-row table and copied, never re-derived;
///  - the window sub-DAG and Â are rebuilt only when the seed lists
///    (running tasks then ready tasks) changed since the last encode —
///    consecutive offers at the same decision instant with no start in
///    between (∅ declines) reuse both outright;
///  - even across a rebuild, Â is reused when the induced edge set is
///    unchanged (e.g. periodic re-encodes of a quiescent state);
///  - dynamic columns are written as deltas: the running columns touched
///    by the previous encode are undone and only the current running
///    set is rewritten (O(R) instead of O(n·R)).
///
/// The ready bit is rescanned for every window row each encode because
/// readiness is a global DAG fact that can change without the scoped
/// seed lists changing (shard-scoped EngineViews). The resource-state
/// summary is always recomputed — it is O(P) and time-dependent.
///
/// The returned reference stays valid until the next encode() call.
/// Not thread-safe: one IncrementalEncoder per scheduler/session.
class IncrementalEncoder {
 public:
  IncrementalEncoder(const dag::TaskGraph& graph, const sim::CostModel& costs,
                     int window);

  /// See StateEncoder::encode for semantics; the result is bit-identical.
  const Observation& encode(const sim::EngineView& engine,
                            sim::ResourceId current, bool allow_idle);
  const Observation& encode(const sim::EngineView& engine,
                            sim::ResourceId current);

  /// The observation produced by the last encode() call.
  const Observation& observation() const noexcept { return obs_; }

  /// Drops the cached topology; the next encode() rebuilds from scratch.
  /// Reuse across engine resets is safe without this (dynamic state is
  /// re-derived from the engine every encode); call it when the encoder
  /// is re-pointed at a different engine for the same graph.
  void invalidate() noexcept { valid_ = false; }

  /// When on, observations carry Â only as the CSR view (ahat_csr) and
  /// `ahat` is left an empty 0x0 tensor so a dense consumer fails loudly
  /// instead of reading stale numbers. Skipping the O(n^2) dense build is
  /// the point: the f32 inference backend never touches it.
  /// ReadysScheduler enables this for backend=f32simd. Off by default —
  /// the bit-identity contract with StateEncoder::encode needs the dense
  /// matrix present.
  void set_sparse_ahat(bool on) noexcept {
    sparse_ahat_ = on;
    valid_ = false;
  }

  int window() const noexcept { return window_; }
  std::uint64_t window_rebuilds() const noexcept { return rebuilds_; }
  std::uint64_t window_reuses() const noexcept { return reuses_; }
  std::uint64_t ahat_reuses() const noexcept { return ahat_reuses_; }

 private:
  void rebuild_topology();

  const dag::TaskGraph* graph_;
  dag::StaticFeatures static_;
  sim::CostModel costs_;
  int window_;
  double time_scale_;
  int width_ = 0;           ///< node_feature_width(kernel_types)
  int base_ = 0;            ///< static_width(): first dynamic column
  tensor::Tensor base_rows_;  ///< num_tasks x width: static + duration cols

  Observation obs_;
  std::vector<dag::TaskId> seeds_;          ///< seed signature of obs_
  std::vector<dag::TaskId> seeds_scratch_;  ///< this encode's seeds
  std::vector<std::size_t> running_rows_;   ///< rows with running cols set
  bool valid_ = false;
  bool sparse_ahat_ = false;  ///< see set_sparse_ahat
  int last_cur_gpu_ = -1;  ///< type feeding the base+6 column (-1 = stale)

  std::uint64_t rebuilds_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t ahat_reuses_ = 0;
};

}  // namespace readys::rl
