#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "util/rng.hpp"

namespace readys::rl {

/// Training progress captured alongside the weights, so a resumed run
/// continues counting where the interrupted one stopped.
struct CheckpointState {
  int episode = 0;                  ///< episodes fully trained so far
  std::size_t updates = 0;          ///< gradient updates applied so far
  std::size_t skipped_updates = 0;  ///< divergent updates dropped so far
  std::size_t rollbacks = 0;        ///< weight rollbacks performed so far
  /// Consecutive divergent updates at checkpoint time (the divergence
  /// guard's patience countdown must survive a resume to fire at the
  /// same update it would have fired at uninterrupted).
  int divergent_streak = 0;
};

/// Everything a `readys-ckpt/2` file carries besides the weights. With
/// all of it restored — Adam moments + step count, every trainer RNG
/// stream, and the reseed identity of the environment(s) — a resumed
/// run is bit-identical to the uninterrupted one (the env streams
/// themselves are fully reseeded from (env_seed, episode index) at each
/// episode start, so env_seed + num_envs IS the env/VecEnv state at an
/// episode boundary).
struct CheckpointData {
  CheckpointState progress;
  std::string trainer;         ///< "a2c" | "ppo" (resume cross-checks it)
  std::uint64_t env_seed = 0;  ///< TrainOptions::seed driving env reseeds
  std::size_t num_envs = 1;    ///< VecEnv width (1 = sequential trainer)
  /// Named trainer RNG streams (e.g. {"sample", ...}), via Rng::state().
  std::vector<std::pair<std::string, util::Rng::State>> rngs;
  /// Opaque optimizer section from nn::Optimizer::state_rows().
  std::vector<std::string> optimizer;
  /// Set by load_checkpoint when the file was a legacy v1 checkpoint:
  /// weights and episode/updates were migrated, `rngs` and `optimizer`
  /// are empty and the caller must warn that they start fresh.
  bool migrated_v1 = false;
};

struct CheckpointOptions {
  /// Newest checkpoint files kept on disk (older ones are pruned after
  /// each successful save). Minimum 1; > 1 is what makes fallback from
  /// a corrupted latest file possible.
  int retain = 3;
};

/// Path of the legacy single-file v1 checkpoint inside `dir`.
std::string checkpoint_path(const std::string& dir);

/// Path of the retained v2 checkpoint with the given sequence index.
std::string checkpoint_file_path(const std::string& dir, int index);

/// Path of the `LATEST` pointer file naming the newest checkpoint.
std::string latest_pointer_path(const std::string& dir);

/// Serializes a complete `readys-ckpt/2` document: header fields,
/// RNG streams, optimizer rows, the readys-weights payload, and a
/// trailing `crc32 <8 hex>` integrity footer over everything above it.
std::string serialize_checkpoint(const nn::Module& module,
                                 const CheckpointData& data);

/// Parses and applies a `readys-ckpt/2` blob. The whole document —
/// including the CRC footer and the weights payload — is validated
/// before `module` or `data` is touched, so a corrupt blob throws
/// std::runtime_error and leaves both exactly as they were.
void deserialize_checkpoint(nn::Module& module, CheckpointData& data,
                            const std::string& blob);

/// Durably writes the next `checkpoint.<n>.txt` in `dir` (creating the
/// directory if needed): payload to a tmp file, fsync, atomic rename,
/// directory fsync, then the `LATEST` pointer via the same tmp+rename
/// dance, then pruning down to `opts.retain` files. A kill at any
/// instant leaves the previous retained checkpoints intact and
/// load_checkpoint able to resume. Stale *.tmp files from an earlier
/// interrupted writer are removed. I/O errors (ENOSPC, EIO, ...) throw
/// std::runtime_error naming the path and the errno message.
void save_checkpoint(const std::string& dir, const nn::Module& module,
                     const CheckpointData& data,
                     const CheckpointOptions& opts = {});

/// Restores the newest *valid* checkpoint in `dir`: the `LATEST` target
/// first, then remaining retained files newest-first (each corrupt
/// candidate skipped counts into the ckpt.fallbacks metric), finally a
/// legacy v1 `checkpoint.txt`, which is migrated (weights + progress,
/// fresh optimizer/RNG, `migrated_v1` set, warning logged). Returns
/// false — touching nothing — when no checkpoint exists at all; throws
/// std::runtime_error when files exist but every one is corrupt.
bool load_checkpoint(const std::string& dir, nn::Module& module,
                     CheckpointData& data);

/// Applies the non-weight parts of a loaded checkpoint to a trainer:
/// restores the optimizer moments and the "sample" RNG stream. Throws
/// std::runtime_error when the checkpoint was written by a different
/// trainer (resuming a2c from a ppo file silently trains garbage); logs
/// a warning — and continues with fresh state — when the seed or env
/// width differs (resume works, bit-identity does not) or when the file
/// was a migrated v1 checkpoint carrying no optimizer/RNG state.
void apply_checkpoint_to_trainer(const CheckpointData& data,
                                 const std::string& trainer,
                                 std::uint64_t env_seed, std::size_t num_envs,
                                 nn::Optimizer& optimizer,
                                 util::Rng& sample_rng);

namespace testing_hooks {

/// Chaos-test injection point inside save_checkpoint. Phases fire in
/// order: "begin" (before any byte is written), "mid-write" (half the
/// payload flushed to the tmp file), "pre-rename" (tmp complete and
/// fsynced), "post-rename" (renamed, LATEST not yet updated). `index`
/// is the sequence number of the checkpoint being written. The chaos
/// harness SIGKILLs itself from the hook; production code never sets it.
using CheckpointWriteHook = std::function<void(const char* phase, int index)>;

void set_checkpoint_write_hook(CheckpointWriteHook hook);

}  // namespace testing_hooks

}  // namespace readys::rl
