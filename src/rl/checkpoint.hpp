#pragma once

#include <cstdint>
#include <string>

#include "nn/module.hpp"

namespace readys::rl {

/// Training progress captured alongside the weights, so a resumed run
/// continues counting where the interrupted one stopped.
struct CheckpointState {
  int episode = 0;           ///< episodes fully trained so far
  std::size_t updates = 0;   ///< gradient updates applied so far
};

/// Path of the (single) checkpoint file inside `dir`.
std::string checkpoint_path(const std::string& dir);

/// Atomically writes weights + progress to `<dir>/checkpoint.txt`
/// (creating `dir` if needed). Everything lives in one file written via
/// tmp-then-rename, so a kill at any instant leaves either the previous
/// complete checkpoint or the new complete checkpoint on disk — never a
/// torn one. A stale `checkpoint.txt.tmp` from an interrupted write may
/// remain; load_checkpoint ignores it. Throws std::runtime_error on I/O
/// failure.
void save_checkpoint(const std::string& dir, const nn::Module& module,
                     const CheckpointState& state);

/// Restores weights + progress from `<dir>/checkpoint.txt`. Returns
/// false (leaving `module` and `state` untouched) when no checkpoint
/// file exists — including when only a partial `.tmp` is present.
/// Throws std::runtime_error if the file exists but is corrupt (bad
/// magic, torn payload, shape mismatch).
bool load_checkpoint(const std::string& dir, nn::Module& module,
                     CheckpointState& state);

}  // namespace readys::rl
