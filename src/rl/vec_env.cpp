#include "rl/vec_env.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"

namespace readys::rl {

VecEnv::VecEnv(std::vector<std::unique_ptr<SchedulingEnv>> envs,
               util::ThreadPool* pool)
    : envs_(std::move(envs)), pool_(pool) {
  if (envs_.empty()) throw std::invalid_argument("VecEnv: no envs");
  for (const auto& e : envs_) {
    if (e == nullptr) throw std::invalid_argument("VecEnv: null env");
  }
  if (obs::Telemetry* t = obs::telemetry()) {
    t->train_envs.set(static_cast<double>(envs_.size()));
  }
}

VecEnv::VecEnv(const dag::TaskGraph& graph, const sim::Platform& platform,
               const sim::CostModel& costs, SchedulingEnv::Config base,
               std::size_t n, util::ThreadPool* pool)
    : pool_(pool) {
  if (n == 0) throw std::invalid_argument("VecEnv: need >= 1 env");
  envs_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SchedulingEnv::Config cfg = base;
    cfg.seed = base.seed + i;
    envs_.push_back(
        std::make_unique<SchedulingEnv>(graph, platform, costs, cfg));
  }
  if (obs::Telemetry* t = obs::telemetry()) {
    t->train_envs.set(static_cast<double>(n));
  }
}

const Observation& VecEnv::reset_one(std::size_t i, std::uint64_t seed) {
  return envs_.at(i)->reset(seed);
}

std::vector<const Observation*> VecEnv::reset(
    const std::vector<std::uint64_t>& seeds) {
  if (seeds.size() != envs_.size()) {
    throw std::invalid_argument("VecEnv::reset: seed count mismatch");
  }
  std::vector<const Observation*> out(envs_.size());
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    out[i] = &envs_[i]->reset(seeds[i]);
  }
  return out;
}

std::vector<VecEnv::StepResult> VecEnv::step(
    const std::vector<std::size_t>& ids,
    const std::vector<std::size_t>& actions) {
  if (ids.size() != actions.size()) {
    throw std::invalid_argument("VecEnv::step: ids/actions mismatch");
  }
  obs::Telemetry* t = obs::telemetry();
  obs::Span span("rl/vec_step", "train", t ? &t->vec_step_us : nullptr);
  if (t) t->vec_steps.add();
  std::vector<StepResult> out(ids.size());
  auto step_one = [&](std::size_t k) {
    const auto r = envs_.at(ids[k])->step(actions[k]);
    out[k] = {r.reward, r.done};
  };
  if (pool_ != nullptr && ids.size() > 1) {
    pool_->parallel_for(ids.size(), step_one);
  } else {
    for (std::size_t k = 0; k < ids.size(); ++k) step_one(k);
  }
  return out;
}

std::vector<const Observation*> VecEnv::observations(
    const std::vector<std::size_t>& ids) const {
  std::vector<const Observation*> out(ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    out[k] = &envs_.at(ids[k])->observation();
  }
  return out;
}

}  // namespace readys::rl
