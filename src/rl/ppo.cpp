#include "rl/ppo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "rl/checkpoint.hpp"
#include "tensor/ops.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace readys::rl {

PpoTrainer::PpoTrainer(PolicyNet& net, const AgentConfig& cfg, PpoConfig ppo)
    : net_(&net),
      cfg_(cfg),
      ppo_(ppo),
      optimizer_(net.parameters(), cfg.lr),
      rng_(cfg.seed ^ 0xC2B2AE3D27D4EB4FULL) {}

std::size_t PpoTrainer::sample(const tensor::Tensor& probs) {
  const double u = rng_.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    acc += probs[i];
    if (u < acc) return i;
  }
  return probs.size() - 1;
}

void PpoTrainer::rollback(const std::string& last_good) {
  std::unique_lock<std::shared_mutex> lock;
  if (net_mutex_ != nullptr) {
    lock = std::unique_lock(*net_mutex_);
  }
  nn::deserialize_parameters(*net_, last_good);
  // Fresh optimizer: the moment estimates were built on the divergent
  // trajectory and would steer the restored weights right back into it.
  optimizer_ = nn::Adam(net_->parameters(), cfg_.lr);
}

void PpoTrainer::optimize(std::vector<Step>& steps, TrainReport& report,
                          const std::string& last_good, int patience,
                          int& divergent_streak, bool batched) {
  readys::obs::Telemetry* t_obs = readys::obs::telemetry();
  readys::obs::Span round_span("rl/ppo_optimize", "train",
                               t_obs ? &t_obs->update_us : nullptr);
  // Async mode: actors forward-read the weights under shared locks, so
  // only the step (and rollback) — the value writers — take the
  // exclusive lock; backward/clipping touch gradients, not values.
  const auto locked_step = [&] {
    if (net_mutex_ != nullptr) {
      std::unique_lock lock(*net_mutex_);
      optimizer_.step();
      net_->bump_weight_version();
    } else {
      optimizer_.step();
      net_->bump_weight_version();
    }
  };
  for (int epoch = 0; epoch < ppo_.epochs; ++epoch) {
    rng_.shuffle(steps);
    for (std::size_t begin = 0; begin < steps.size();
         begin += static_cast<std::size_t>(ppo_.minibatch)) {
      const std::size_t end = std::min(
          steps.size(), begin + static_cast<std::size_t>(ppo_.minibatch));
      const std::size_t m = end - begin;
      tensor::Var loss;
      if (batched) {
        // One batched forward for the minibatch, then the loss terms
        // stacked into (m x 1) columns so the assembly graph is O(1)
        // nodes instead of ~10 per step. Clip decisions are still made
        // analytically per step on the ratio values, exactly like the
        // per-step path; gradients match it up to floating-point
        // regrouping, which is why width-1 training (bit-exact contract)
        // keeps batched == false.
        std::vector<const Observation*> mb;
        mb.reserve(m);
        for (std::size_t i = begin; i < end; ++i) mb.push_back(&steps[i].obs);
        const auto outs = net_->forward_batched(mb);
        std::vector<tensor::Var> lps, vals, ents;
        lps.reserve(m);
        vals.reserve(m);
        ents.reserve(m);
        tensor::Tensor old_lp(m, 1);
        tensor::Tensor rets(m, 1);
        for (std::size_t i = 0; i < m; ++i) {
          const Step& s = steps[begin + i];
          lps.push_back(tensor::pick(outs[i].log_probs, 0, s.action));
          vals.push_back(outs[i].value);
          ents.push_back(tensor::entropy_row(outs[i].probs));
          old_lp.at(i, 0) = s.old_log_prob;
          rets.at(i, 0) = s.ret;
        }
        const tensor::Var ratio = tensor::exp_op(
            tensor::sub(tensor::concat_rows(lps),
                        tensor::Var(std::move(old_lp))));
        tensor::Tensor coef(m, 1);
        double clipped_sum = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const Step& s = steps[begin + i];
          const double advantage = s.ret - s.old_value;
          const double r = ratio.value().at(i, 0);
          const bool clipped =
              (advantage >= 0.0 && r > 1.0 + ppo_.clip) ||
              (advantage < 0.0 && r < 1.0 - ppo_.clip);
          if (clipped) {
            // Constant contribution: the clipped branch carries no
            // gradient, so it folds into a scalar offset.
            clipped_sum +=
                std::clamp(r, 1.0 - ppo_.clip, 1.0 + ppo_.clip) * advantage;
          } else {
            coef.at(i, 0) = advantage;
          }
        }
        const tensor::Var surrogate = tensor::add_scalar(
            tensor::sum_all(tensor::mul(ratio, tensor::Var(std::move(coef)))),
            clipped_sum);
        const tensor::Var critic = tensor::scale(
            tensor::sum_all(tensor::square(tensor::sub(
                tensor::concat_rows(vals), tensor::Var(std::move(rets))))),
            cfg_.value_coef);
        const tensor::Var entropy = tensor::scale(
            tensor::sum_all(tensor::concat_rows(ents)), cfg_.entropy_beta);
        loss = tensor::scale(
            tensor::add(tensor::neg(surrogate),
                        tensor::sub(critic, entropy)),
            1.0 / static_cast<double>(m));
        optimizer_.zero_grad();
        loss.backward();
        const double grad_norm = optimizer_.clip_grad_norm(cfg_.grad_clip);
        last_loss_ = loss.value().item();
        last_grad_norm_ = grad_norm;
        if (!std::isfinite(loss.value().item()) ||
            !std::isfinite(grad_norm)) {
          optimizer_.zero_grad();
          ++report.skipped_updates;
          if (t_obs) t_obs->optim_skipped.add();
          if (++divergent_streak >= patience) {
            rollback(last_good);
            ++report.rollbacks;
            divergent_streak = 0;
          }
          continue;
        }
        divergent_streak = 0;
        locked_step();
        if (t_obs) t_obs->optim_updates.add();
        continue;
      }
      bool first = true;
      for (std::size_t i = begin; i < end; ++i) {
        const Step& s = steps[i];
        const PolicyNet::Output out = net_->forward(s.obs);
        // The action set is state-determined, so the index stays valid.
        const tensor::Var logp =
            tensor::pick(out.log_probs, 0, s.action);
        const double advantage = s.ret - s.old_value;
        // Clipped surrogate: ratio * A vs clip(ratio) * A, elementwise
        // min expressed via the standard max-of-negatives trick on
        // scalars. Both branches share the forward graph.
        const tensor::Var ratio =
            tensor::exp_op(tensor::add_scalar(logp, -s.old_log_prob));
        const double r = ratio.value().item();
        // Pick the active branch analytically (scalar case): the clipped
        // objective's gradient is zero when the ratio is outside the
        // trust region on the favorable side.
        tensor::Var surrogate;
        const bool clipped =
            (advantage >= 0.0 && r > 1.0 + ppo_.clip) ||
            (advantage < 0.0 && r < 1.0 - ppo_.clip);
        if (clipped) {
          surrogate = tensor::Var(tensor::Tensor(
              1, 1,
              std::clamp(r, 1.0 - ppo_.clip, 1.0 + ppo_.clip) * advantage));
        } else {
          surrogate = tensor::scale(ratio, advantage);
        }
        tensor::Var target{tensor::Tensor(1, 1, s.ret)};
        tensor::Var step_loss = tensor::add(
            tensor::neg(surrogate),
            tensor::sub(
                tensor::scale(
                    tensor::square(tensor::sub(out.value, target)),
                    cfg_.value_coef),
                tensor::scale(tensor::entropy_row(out.probs),
                              cfg_.entropy_beta)));
        loss = first ? step_loss : tensor::add(loss, step_loss);
        first = false;
      }
      loss = tensor::scale(loss, 1.0 / static_cast<double>(end - begin));
      optimizer_.zero_grad();
      loss.backward();
      const double grad_norm = optimizer_.clip_grad_norm(cfg_.grad_clip);
      last_loss_ = loss.value().item();
      last_grad_norm_ = grad_norm;
      if (!std::isfinite(loss.value().item()) ||
          !std::isfinite(grad_norm)) {
        // Poisoned minibatch: skip it before step() bakes NaN/Inf into
        // the weights and the Adam moments.
        optimizer_.zero_grad();
        ++report.skipped_updates;
        if (t_obs) t_obs->optim_skipped.add();
        if (++divergent_streak >= patience) {
          rollback(last_good);
          ++report.rollbacks;
          divergent_streak = 0;
        }
        continue;
      }
      divergent_streak = 0;
      locked_step();
      if (t_obs) t_obs->optim_updates.add();
    }
  }
}

TrainReport PpoTrainer::train(SchedulingEnv& env, const TrainOptions& opts) {
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();

  int episode = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "ppo", opts.seed, 1, optimizer_, rng_);
      episode = std::min(ck.progress.episode, opts.episodes);
      report.updates = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = episode;

  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int ep_done) {
    CheckpointData d;
    d.progress = {ep_done, report.updates, report.skipped_updates,
                  report.rollbacks, divergent_streak};
    d.trainer = "ppo";
    d.env_seed = opts.seed;
    d.num_envs = 1;
    d.rngs = {{"sample", rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };
  int since_checkpoint = 0;
  while (episode < opts.episodes) {
    std::vector<Step> steps;
    const int round = std::min(ppo_.rollout_episodes,
                               opts.episodes - episode);
    for (int e = 0; e < round; ++e, ++episode) {
      using obs_clock = std::chrono::steady_clock;
      readys::obs::Telemetry* t_obs = readys::obs::telemetry();
      const auto ep_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
      env.reset(opts.seed + static_cast<std::uint64_t>(episode));
      std::vector<Step> episode_steps;
      bool done = env.done();
      double reward = 0.0;
      while (!done) {
        Step s;
        s.obs = env.observation();
        const PolicyNet::Output out = net_->forward(s.obs);
        s.action = sample(out.probs.value());
        s.old_log_prob = out.log_probs.value()[s.action];
        s.old_value = out.value.value().item();
        const auto result = env.step(s.action);
        reward = shape_reward(cfg_, result.reward);
        done = result.done;
        episode_steps.push_back(std::move(s));
      }
      // Monte-Carlo returns: terminal-only reward discounted backwards.
      double running = 0.0;
      for (std::size_t i = episode_steps.size(); i-- > 0;) {
        running = (i + 1 == episode_steps.size())
                      ? reward
                      : cfg_.gamma * running;
        episode_steps[i].ret = running;
      }
      report.episode_rewards.push_back(reward);
      report.episode_makespans.push_back(env.makespan());
      report.best_makespan =
          std::min(report.best_makespan, env.makespan());
      if (t_obs != nullptr && t_obs->sink() != nullptr) {
        const double wall_s =
            std::chrono::duration<double>(obs_clock::now() - ep_t0).count();
        const auto decisions = env.decisions_this_episode();
        readys::obs::JsonObject row;
        row.field("row", "episode")
            .field("trainer", "ppo")
            .field("episode", episode + 1)
            .field("reward", reward)
            .field("makespan_ms", env.makespan())
            .field("loss", last_loss_)
            .field("grad_norm", last_grad_norm_)
            .field("decisions", static_cast<std::uint64_t>(decisions))
            .field("steps_per_s", wall_s > 0.0
                                      ? static_cast<double>(decisions) / wall_s
                                      : 0.0)
            .field("skipped_updates",
                   static_cast<std::uint64_t>(report.skipped_updates))
            .field("rollbacks",
                   static_cast<std::uint64_t>(report.rollbacks));
        t_obs->sink()->write(row.str());
      }
      steps.insert(steps.end(),
                   std::make_move_iterator(episode_steps.begin()),
                   std::make_move_iterator(episode_steps.end()));
    }
    optimize(steps, report, last_good, patience, divergent_streak);
    ++report.updates;
    since_checkpoint += round;
    if (since_checkpoint >= every) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(episode),
                        ck_opts);
      }
      since_checkpoint = 0;
    }
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  if (!report.episode_rewards.empty()) {
    // Empty when --resume found a run that already finished.
    const std::size_t tail =
        std::max<std::size_t>(1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

TrainReport PpoTrainer::train(VecEnv& envs, const TrainOptions& opts) {
  if (opts.async) return train_async(envs, opts);
  if (envs.size() == 1) {
    // The num_envs == 1 contract is bit-exactness with the sequential
    // trainer; delegating is the strongest possible form of it.
    return train(envs.env(0), opts);
  }
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();
  const std::size_t width = envs.size();
  // Batched minibatch re-forwards regroup the gradient accumulation;
  // width 1 delegated above, so this path is always genuinely multi-env.
  const bool batched = true;

  int episode = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "ppo", opts.seed, width, optimizer_,
                                  rng_);
      episode = std::min(ck.progress.episode, opts.episodes);
      report.updates = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = episode;

  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int ep_done) {
    CheckpointData d;
    d.progress = {ep_done, report.updates, report.skipped_updates,
                  report.rollbacks, divergent_streak};
    d.trainer = "ppo";
    d.env_seed = opts.seed;
    d.num_envs = width;
    d.rngs = {{"sample", rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };
  int since_checkpoint = 0;
  std::vector<std::vector<Step>> ep_steps(width);
  std::vector<double> ep_rewards(width, 0.0);
  while (episode < opts.episodes) {
    std::vector<Step> steps;
    const int round = std::min(ppo_.rollout_episodes,
                               opts.episodes - episode);
    // Collect the round in lockstep waves of up to `width` episodes.
    int collected = 0;
    while (collected < round) {
      using obs_clock = std::chrono::steady_clock;
      readys::obs::Telemetry* t_obs = readys::obs::telemetry();
      const auto wave_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
      const int wave = std::min(static_cast<int>(width), round - collected);
      std::vector<std::size_t> active;
      active.reserve(static_cast<std::size_t>(wave));
      for (int e = 0; e < wave; ++e) {
        envs.reset_one(static_cast<std::size_t>(e),
                       opts.seed + static_cast<std::uint64_t>(episode + e));
        ep_steps[static_cast<std::size_t>(e)].clear();
        ep_rewards[static_cast<std::size_t>(e)] = 0.0;
        active.push_back(static_cast<std::size_t>(e));
      }
      {
        // Collection is inference: record values only, skip the graph.
        tensor::NoGradGuard no_grad;
        while (!active.empty()) {
          const auto obs_batch = envs.observations(active);
          const auto outs = net_->forward_batched(obs_batch);
          std::vector<std::size_t> acts(active.size());
          for (std::size_t k = 0; k < active.size(); ++k) {
            Step s;
            s.obs = *obs_batch[k];
            s.action = sample(outs[k].probs.value());
            s.old_log_prob = outs[k].log_probs.value()[s.action];
            s.old_value = outs[k].value.value().item();
            acts[k] = s.action;
            ep_steps[active[k]].push_back(std::move(s));
          }
          const auto results = envs.step(active, acts);
          std::vector<std::size_t> next;
          next.reserve(active.size());
          for (std::size_t k = 0; k < active.size(); ++k) {
            // Overwritten every step, so the terminal reward survives —
            // the same contract as the sequential collection loop.
            ep_rewards[active[k]] = shape_reward(cfg_, results[k].reward);
            if (!results[k].done) next.push_back(active[k]);
          }
          active = std::move(next);
        }
      }
      const double wave_wall_s =
          t_obs ? std::chrono::duration<double>(obs_clock::now() - wave_t0)
                      .count()
                : 0.0;
      std::size_t wave_decisions = 0;
      for (int e = 0; e < wave; ++e) {
        wave_decisions +=
            envs.env(static_cast<std::size_t>(e)).decisions_this_episode();
      }
      for (int e = 0; e < wave; ++e) {
        auto& es = ep_steps[static_cast<std::size_t>(e)];
        const double reward = ep_rewards[static_cast<std::size_t>(e)];
        // Monte-Carlo returns: terminal-only reward discounted backwards.
        double running = 0.0;
        for (std::size_t i = es.size(); i-- > 0;) {
          running = (i + 1 == es.size()) ? reward : cfg_.gamma * running;
          es[i].ret = running;
        }
        const auto& env = envs.env(static_cast<std::size_t>(e));
        report.episode_rewards.push_back(reward);
        report.episode_makespans.push_back(env.makespan());
        report.best_makespan =
            std::min(report.best_makespan, env.makespan());
        if (t_obs != nullptr && t_obs->sink() != nullptr) {
          readys::obs::JsonObject row;
          row.field("row", "episode")
              .field("trainer", "ppo")
              .field("envs", static_cast<std::uint64_t>(width))
              .field("episode", episode + e + 1)
              .field("reward", reward)
              .field("makespan_ms", env.makespan())
              // These rows precede the round's optimize, so no update
              // covers them yet; null (non-finite renders as null)
              // instead of fanning out a stale minibatch loss.
              .field("loss", std::numeric_limits<double>::quiet_NaN())
              .field("grad_norm", std::numeric_limits<double>::quiet_NaN())
              .field("decisions", static_cast<std::uint64_t>(
                                      env.decisions_this_episode()))
              .field("steps_per_s",
                     wave_wall_s > 0.0
                         ? static_cast<double>(wave_decisions) / wave_wall_s
                         : 0.0)
              .field("skipped_updates",
                     static_cast<std::uint64_t>(report.skipped_updates))
              .field("rollbacks",
                     static_cast<std::uint64_t>(report.rollbacks));
          t_obs->sink()->write(row.str());
        }
        steps.insert(steps.end(), std::make_move_iterator(es.begin()),
                     std::make_move_iterator(es.end()));
        es.clear();
      }
      episode += wave;
      collected += wave;
    }
    optimize(steps, report, last_good, patience, divergent_streak, batched);
    ++report.updates;
    since_checkpoint += round;
    if (since_checkpoint >= every) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(episode),
                        ck_opts);
      }
      since_checkpoint = 0;
    }
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  if (!report.episode_rewards.empty()) {
    const std::size_t tail =
        std::max<std::size_t>(1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

TrainReport PpoTrainer::train_async(VecEnv& envs, const TrainOptions& opts) {
  TrainReport report;
  report.best_makespan = std::numeric_limits<double>::infinity();
  const std::size_t width = envs.size();

  int episode = 0;
  int divergent_streak = 0;
  if (opts.resume && !opts.checkpoint_dir.empty()) {
    CheckpointData ck;
    if (load_checkpoint(opts.checkpoint_dir, *net_, ck)) {
      apply_checkpoint_to_trainer(ck, "ppo", opts.seed, width, optimizer_,
                                  rng_);
      episode = std::min(ck.progress.episode, opts.episodes);
      report.updates = ck.progress.updates;
      report.skipped_updates = ck.progress.skipped_updates;
      report.rollbacks = ck.progress.rollbacks;
      divergent_streak = ck.progress.divergent_streak;
      if (opts.verbose) {
        util::log_info() << "resumed from " << opts.checkpoint_dir
                         << " at episode " << ck.progress.episode;
      }
    }
  }
  report.start_episode = episode;

  std::string last_good = nn::serialize_parameters(*net_);
  const int patience = std::max(1, opts.divergence_patience);
  const int every = std::max(1, opts.checkpoint_every);
  const CheckpointOptions ck_opts{opts.checkpoint_retain};
  const auto make_ckpt = [&](int ep_done) {
    CheckpointData d;
    d.progress = {ep_done, report.updates, report.skipped_updates,
                  report.rollbacks, divergent_streak};
    d.trainer = "ppo";
    d.env_seed = opts.seed;
    d.num_envs = width;
    d.rngs = {{"sample", rng_.state()}};
    d.optimizer = optimizer_.state_rows();
    return d;
  };

  // PPO's rollout round is already its learner batch: drain exactly
  // rollout_episodes per optimize (async_batch is ignored), with the
  // strict-mode window matching.
  const int batch_size = std::max(1, ppo_.rollout_episodes);

  std::shared_mutex net_mutex;
  struct MutexGuard {
    PpoTrainer* t;
    ~MutexGuard() { t->net_mutex_ = nullptr; }
  } mutex_guard{this};
  net_mutex_ = &net_mutex;

  // Declaration order is the shutdown order in reverse: the pool's
  // destructor joins the actor threads before the queue or the mutex
  // they use can die.
  EpisodeQueue queue(std::max<std::size_t>(
      opts.async_queue > 0 ? static_cast<std::size_t>(opts.async_queue)
                           : 2 * width,
      static_cast<std::size_t>(batch_size)));
  ActorPool::Options pool_opts;
  pool_opts.first_episode = episode;
  pool_opts.episodes = opts.episodes;
  pool_opts.actors = opts.async_actors > 0
                         ? static_cast<std::size_t>(opts.async_actors)
                         : width;
  pool_opts.env_seed = opts.seed;
  pool_opts.action_seed = cfg_.seed ^ 0xC2B2AE3D27D4EB4FULL;
  pool_opts.strict = opts.async_strict;
  // Strict: exactly one rollout round claimable, so actors are parked
  // while the learner optimizes. Free: one extra in-flight episode per
  // actor bounds weight staleness at round + actors episodes.
  const int window =
      opts.async_strict
          ? batch_size
          : batch_size + static_cast<int>(pool_opts.actors);
  pool_opts.window = window;
  // Per-actor policy replicas, synced from the learner net at every
  // episode start, so a trajectory's old_log_probs all come from one
  // consistent behavior policy (PPO's ratio is meaningless otherwise).
  const std::size_t n_actors =
      std::max<std::size_t>(1, std::min(pool_opts.actors, width));
  std::vector<std::unique_ptr<PolicyNet>> replicas;
  std::vector<std::vector<tensor::Var>> replica_params;
  replicas.reserve(n_actors);
  const std::vector<tensor::Var> learner_params = net_->parameters();
  for (std::size_t s = 0; s < n_actors; ++s) {
    replicas.push_back(std::make_unique<PolicyNet>(
        net_->node_features(), net_->resource_features(), cfg_));
    replica_params.push_back(replicas.back()->parameters());
  }
  pool_opts.on_episode_start = [&](std::size_t slot, int) {
    // Shared lock: the copy must not observe a half-applied Adam step.
    std::shared_lock lock(*net_mutex_);
    auto& params = replica_params[slot];
    for (std::size_t p = 0; p < params.size(); ++p) {
      params[p].mutable_value() = learner_params[p].value();
    }
  };
  ActorPool pool(
      envs, queue,
      [&replicas](std::size_t slot, const Observation& obs, util::Rng& rng) {
        // The replica is slot-private: no lock needed per decision.
        tensor::NoGradGuard no_grad;
        const PolicyNet::Output out = replicas[slot]->forward(obs);
        ActorPool::Act act;
        act.action = sample_categorical(out.probs.value(), rng);
        act.log_prob = out.log_probs.value()[act.action];
        act.value = out.value.value().item();
        return act;
      },
      pool_opts);

  using obs_clock = std::chrono::steady_clock;
  std::vector<EpisodeRollout> batch;
  int since_checkpoint = 0;
  bool drained_ok = true;
  while (episode < opts.episodes) {
    const int want = std::min(batch_size, opts.episodes - episode);
    readys::obs::Telemetry* t_obs = readys::obs::telemetry();
    const auto batch_t0 = t_obs ? obs_clock::now() : obs_clock::time_point{};
    batch.clear();
    EpisodeRollout rec;
    while (static_cast<int>(batch.size()) < want) {
      if (!queue.pop(rec)) {
        drained_ok = false;
        break;
      }
      batch.push_back(std::move(rec));
    }
    if (!drained_ok) break;
    // Arrival order is thread-timing; episode order is not. Sorting
    // makes the learner's view (and, in strict mode, the whole run —
    // including rng_'s minibatch shuffles) a function of episode
    // indices alone.
    std::sort(batch.begin(), batch.end(),
              [](const EpisodeRollout& a, const EpisodeRollout& b) {
                return a.index < b.index;
              });

    std::vector<Step> steps;
    std::size_t batch_decisions = 0;
    for (EpisodeRollout& e : batch) batch_decisions += e.decisions;
    const double batch_wall_s =
        t_obs
            ? std::chrono::duration<double>(obs_clock::now() - batch_t0)
                  .count()
            : 0.0;
    for (EpisodeRollout& e : batch) {
      const std::size_t n = e.observations.size();
      const double reward =
          n > 0 ? shape_reward(cfg_, e.rewards.back()) : 0.0;
      // Monte-Carlo returns: terminal-only reward discounted backwards.
      std::vector<double> rets(n);
      double running = 0.0;
      for (std::size_t i = n; i-- > 0;) {
        running = (i + 1 == n) ? reward : cfg_.gamma * running;
        rets[i] = running;
      }
      for (std::size_t i = 0; i < n; ++i) {
        Step s;
        s.obs = std::move(e.observations[i]);
        s.action = e.actions[i];
        s.old_log_prob = e.log_probs[i];
        s.old_value = e.values[i];
        s.ret = rets[i];
        steps.push_back(std::move(s));
      }
      report.episode_rewards.push_back(reward);
      report.episode_makespans.push_back(e.makespan);
      report.best_makespan = std::min(report.best_makespan, e.makespan);
      if (t_obs != nullptr && t_obs->sink() != nullptr) {
        readys::obs::JsonObject row;
        row.field("row", "episode")
            .field("trainer", "ppo")
            .field("envs", static_cast<std::uint64_t>(width))
            .field("async", true)
            .field("episode", e.index + 1)
            .field("reward", reward)
            .field("makespan_ms", e.makespan)
            .field("loss", std::numeric_limits<double>::quiet_NaN())
            .field("grad_norm", std::numeric_limits<double>::quiet_NaN())
            .field("decisions", static_cast<std::uint64_t>(e.decisions))
            .field("steps_per_s",
                   batch_wall_s > 0.0
                       ? static_cast<double>(batch_decisions) / batch_wall_s
                       : 0.0)
            .field("skipped_updates",
                   static_cast<std::uint64_t>(report.skipped_updates))
            .field("rollbacks",
                   static_cast<std::uint64_t>(report.rollbacks));
        t_obs->sink()->write(row.str());
      }
    }
    optimize(steps, report, last_good, patience, divergent_streak,
             /*batched=*/true);
    ++report.updates;
    const int prev = episode;
    episode += static_cast<int>(batch.size());
    // Un-gate the next window only after this optimize: in strict mode
    // its actors then see exactly these weights; in free mode the slack
    // in `window` kept them busy while this thread was optimizing.
    pool.release_below(episode + window);
    since_checkpoint += episode - prev;
    if (since_checkpoint >= every) {
      last_good = nn::serialize_parameters(*net_);
      if (!opts.checkpoint_dir.empty()) {
        save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(episode),
                        ck_opts);
      }
      since_checkpoint = 0;
    }
  }
  pool.join();
  if (auto err = queue.error()) std::rethrow_exception(err);
  if (!drained_ok) {
    throw std::runtime_error(
        "PpoTrainer: async episode queue closed before the run finished");
  }
  if (!opts.checkpoint_dir.empty()) {
    save_checkpoint(opts.checkpoint_dir, *net_, make_ckpt(opts.episodes),
                    ck_opts);
  }
  if (!report.episode_rewards.empty()) {
    const std::size_t tail =
        std::max<std::size_t>(1, report.episode_rewards.size() / 5);
    report.final_mean_reward = util::mean(
        {report.episode_rewards.data() + report.episode_rewards.size() - tail,
         tail});
  }
  return report;
}

std::vector<double> PpoTrainer::evaluate(SchedulingEnv& env, int episodes,
                                         std::uint64_t seed_base,
                                         bool greedy) {
  std::vector<double> makespans;
  makespans.reserve(static_cast<std::size_t>(episodes));
  for (int ep = 0; ep < episodes; ++ep) {
    env.reset(seed_base + static_cast<std::uint64_t>(ep));
    bool done = env.done();
    while (!done) {
      const PolicyNet::Output out = net_->forward(env.observation());
      const tensor::Tensor& p = out.probs.value();
      std::size_t a = 0;
      if (greedy) {
        for (std::size_t i = 1; i < p.size(); ++i) {
          if (p[i] > p[a]) a = i;
        }
      } else {
        a = sample(p);
      }
      done = env.step(a).done;
    }
    makespans.push_back(env.makespan());
  }
  return makespans;
}

}  // namespace readys::rl
