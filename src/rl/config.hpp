#pragma once

#include <cstdint>
#include <string>

namespace readys::rl {

/// Hyper-parameters of the READYS agent and its A2C trainer. Defaults
/// follow §V-D of the paper (Adam, gamma = 0.99, baseline-loss scaling
/// 0.5, unroll length and entropy ratio from the grid the paper searched,
/// window w and GCN depth g from its random-search ranges).
struct AgentConfig {
  // --- observation ---
  int window = 1;  ///< the paper's w: descendants kept up to this depth

  // --- network (Fig. 2) ---
  int gcn_layers = 2;  ///< the paper's g; >= 1. Uses >= w to let ready
                       ///< tasks see the whole window.
  int hidden = 64;     ///< GCN/actor/critic embedding width

  // --- A2C ---
  double lr = 1e-2;           ///< Adam learning rate (paper's value)
  double gamma = 0.99;        ///< discount
  double entropy_beta = 5e-3; ///< entropy regularization ratio
  /// Linearly anneal the entropy ratio to 0 over the training run:
  /// exploration early, sharp exploitation late. Set false for the
  /// paper's constant ratio.
  bool entropy_decay = true;
  double value_coef = 0.5;    ///< baseline (critic) loss scaling
  /// Decisions per gradient update. 0 (default) updates once per episode
  /// with true Monte-Carlo returns. With the paper's terminal-only reward
  /// a mid-episode batch carries no environment signal — its targets are
  /// pure critic bootstrap — so n-step unrolls (the paper's 20..80 grid)
  /// destabilize training here; they remain available for experimenting
  /// with denser rewards.
  int unroll = 0;
  double grad_clip = 1.0;     ///< global-norm gradient clipping
  /// Standardize advantages per batch. Off by default: with the paper's
  /// terminal-only reward every return in a batch is a power of gamma
  /// times the same episode reward, so standardization erases the reward
  /// sign and substitutes a spurious time gradient. Useful only with
  /// denser reward shapes.
  bool normalize_advantage = false;
  /// Squash the paper's terminal reward r = (mk_HEFT - mk)/mk_HEFT
  /// through r' = r / (1 - r) = mk_HEFT/mk - 1. The transform is strictly
  /// monotone (same optimal policy) but bounded below by -1, so the
  /// makespans several HEFT multiples long that early random policies
  /// produce cannot blow up the critic loss and drown the actor gradient
  /// through the shared GCN trunk, while — unlike hard clipping — bad
  /// episodes remain mutually distinguishable.
  bool squash_reward = true;
  /// Clip the (possibly squashed) terminal reward to [-clip, +clip];
  /// 0 turns clipping off.
  double reward_clip = 1.0;

  /// Feed the resource-state embedding into the critic alongside the
  /// mean-pooled DAG embedding (an experiment beyond Fig. 2, which
  /// projects the mean-pool alone). Off by default: in our runs the
  /// enriched critic destabilized larger instances (T=8 collapsed into
  /// the one-GPU local optimum) while the literal Fig.-2 critic reached
  /// near-HEFT quality.
  bool critic_sees_resources = false;

  std::uint64_t seed = 1;  ///< weight init + action sampling stream
};

/// Parameters of one training run.
struct TrainOptions {
  int episodes = 200;
  double sigma = 0.0;        ///< task-duration noise during training
  std::uint64_t seed = 1;    ///< environment (noise + processor draw) seed
  bool verbose = false;      ///< log a line every `log_every` episodes
  int log_every = 50;

  // --- resilience (see docs/architecture.md, "Fault tolerance") ---
  /// Directory for periodic checkpoints (weights + progress, written
  /// atomically). Empty disables checkpointing. The same directory is
  /// what `resume` restores from.
  std::string checkpoint_dir;
  /// Episodes between checkpoints (also the final state is always
  /// checkpointed when a directory is set).
  int checkpoint_every = 50;
  /// Newest checkpoint files kept in checkpoint_dir; older ones are
  /// pruned after each save. Keeping more than one is what lets resume
  /// fall back when the newest file is corrupt (torn write, bad disk).
  int checkpoint_retain = 3;
  /// Restore weights + episode counter from checkpoint_dir before
  /// training; a missing checkpoint silently starts from scratch, so a
  /// resumable run can use the same invocation for first start and
  /// restart.
  bool resume = false;
  /// After this many consecutive divergent (NaN/Inf loss or gradient)
  /// updates, roll the weights back to the last good snapshot and reset
  /// the optimizer. Divergent updates are always skipped, never applied.
  /// The multi-env train() overloads count this (and `checkpoint_every`)
  /// in episode units, so the knobs mean the same thing at any num_envs.
  int divergence_patience = 3;

  // --- multi-env update cadence (vec train() overloads only) ---
  /// Gradient updates per round of `num_envs` lockstep episodes. 0 (the
  /// default) performs one update per episode — the sequential cadence,
  /// invariant to num_envs. Values >= 1 coarsen the cadence (1 restores
  /// the old one-update-per-round behavior that collapsed learning; see
  /// BENCH_train_quality.json). Clamped to the round width.
  int updates_per_round = 0;

  // --- async actor–learner (vec train() overloads only) ---
  /// Decouple acting from learning: actor threads run whole episodes on
  /// their own env (reseeded per episode from `seed` + episode index) and
  /// feed a bounded queue; the learner thread drains `async_batch`
  /// episodes at a time and updates the shared policy under a
  /// shared_mutex (actors take shared forward locks, the optimizer step
  /// takes the exclusive lock). Episode-indexed seeding keeps every
  /// trajectory a pure function of (episode index, weights at act time).
  bool async = false;
  /// Actor thread count; 0 means one per env. Clamped to num_envs (each
  /// actor owns one VecEnv slot exclusively).
  int async_actors = 0;
  /// Queue capacity in episodes; 0 means 2 * num_envs. Clamped up to
  /// async_batch so the learner can always assemble a full batch.
  int async_queue = 0;
  /// Episodes the learner drains per update. 1 matches the sequential
  /// cadence exactly (PPO instead always drains its rollout_episodes).
  int async_batch = 1;
  /// Deterministic test mode: actors only start episodes inside a
  /// released window of `async_batch` indices, and the learner sorts each
  /// drained batch by episode index before updating — so weights at act
  /// time, batch composition, and batch order are all run-to-run
  /// reproducible for any actor count (at the cost of barrier stalls).
  bool async_strict = false;
};

}  // namespace readys::rl
