#pragma once

#include "rl/a2c.hpp"

namespace readys::rl {

/// PPO-specific hyper-parameters (the shared ones — lr, gamma, entropy,
/// reward shaping — come from AgentConfig).
struct PpoConfig {
  int rollout_episodes = 8;  ///< episodes per data-collection round
  int epochs = 4;            ///< optimization passes over each round
  int minibatch = 64;        ///< steps per gradient update
  double clip = 0.2;         ///< PPO clip range epsilon
};

/// Proximal Policy Optimization (clipped surrogate) on the scheduling
/// MDP. The paper suggests more recent policy-gradient methods as future
/// work (§VI); PPO reuses the same PolicyNet, environment and reward
/// shaping as the A2C trainer, so the two are directly comparable (see
/// bench/ablation_hyperparams).
class PpoTrainer {
 public:
  PpoTrainer(PolicyNet& net, const AgentConfig& cfg, PpoConfig ppo = {});

  /// Trains in-place; the TrainOptions/TrainReport contract matches
  /// A2CTrainer::train.
  TrainReport train(SchedulingEnv& env, const TrainOptions& opts);

  /// Vectorized training: each rollout round collects its episodes in
  /// waves of up to envs.size() lockstep episodes (episode i runs with
  /// seed opts.seed + i, as in the sequential path), batching the
  /// collection forwards through PolicyNet::forward_batched under
  /// tensor::NoGradGuard; with more than one env the optimization epochs
  /// batch their minibatch forwards too. PPO's update cadence is already
  /// width-invariant (one optimize round per rollout_episodes), so only
  /// collection parallelizes. With envs.size() == 1 this delegates to
  /// the sequential train() (bit-for-bit identical). With opts.async it
  /// switches to the actor–learner mode: ActorPool threads run episodes
  /// into an EpisodeQueue and the learner drains rollout_episodes per
  /// optimize round (opts.async_batch is ignored — PPO's round IS its
  /// batch), with the same strict-mode determinism contract as A2C.
  TrainReport train(VecEnv& envs, const TrainOptions& opts);

  /// Greedy / sampled evaluation (same semantics as A2CTrainer).
  std::vector<double> evaluate(SchedulingEnv& env, int episodes,
                               std::uint64_t seed_base, bool greedy);

 private:
  struct Step {
    Observation obs;
    std::size_t action = 0;
    double old_log_prob = 0.0;
    double ret = 0.0;        ///< Monte-Carlo return
    double old_value = 0.0;  ///< V(s) at collection time
  };

  /// One optimization round over the collected steps. Minibatch updates
  /// whose loss or gradients go NaN/Inf are skipped (counted in
  /// `report.skipped_updates`); after `patience` consecutive skips the
  /// weights roll back to `last_good` and the optimizer is reset.
  /// `batched` runs each minibatch's re-forwards through
  /// forward_batched; it changes the gradient accumulation order (one
  /// packed trunk instead of per-step graphs), so the single-env paths
  /// keep it off to stay bit-exact.
  void optimize(std::vector<Step>& steps, TrainReport& report,
                const std::string& last_good, int patience,
                int& divergent_streak, bool batched = false);

  /// Restores `last_good` into the net and resets the optimizer (under
  /// the exclusive net lock when training asynchronously).
  void rollback(const std::string& last_good);

  /// The async actor–learner loop behind train(VecEnv&) + opts.async.
  TrainReport train_async(VecEnv& envs, const TrainOptions& opts);

  std::size_t sample(const tensor::Tensor& probs);

  PolicyNet* net_;
  AgentConfig cfg_;
  PpoConfig ppo_;
  nn::Adam optimizer_;
  util::Rng rng_;
  // Last minibatch update, for the telemetry episode rows (NaN until the
  // first update; a skipped update records what was rejected).
  double last_loss_ = std::numeric_limits<double>::quiet_NaN();
  double last_grad_norm_ = std::numeric_limits<double>::quiet_NaN();
  /// Set only inside train_async: actors hold it shared around forwards;
  /// the optimizer step and rollback take it exclusively.
  std::shared_mutex* net_mutex_ = nullptr;
};

}  // namespace readys::rl
