#include "rl/state_encoder.hpp"

#include <algorithm>

#include "nn/gcn.hpp"

namespace readys::rl {

StateEncoder::StateEncoder(const dag::TaskGraph& graph,
                           const sim::CostModel& costs, int window)
    : graph_(&graph), static_(graph), costs_(costs), window_(window) {
  time_scale_ = 1.0;
  for (int k = 0; k < graph.num_kernel_types(); ++k) {
    time_scale_ = std::max(
        time_scale_, costs.expected(k, sim::ResourceType::kCpu));
  }
}

Observation StateEncoder::encode(const sim::EngineView& engine,
                                 sim::ResourceId current) const {
  return encode(engine, current, engine.any_running());
}

Observation StateEncoder::encode(const sim::EngineView& engine,
                                 sim::ResourceId current,
                                 bool allow_idle) const {
  Observation obs;
  obs.current_resource = current;
  obs.allow_idle = allow_idle;

  // Seeds: running tasks first, then ready tasks (Fig. 1).
  std::vector<dag::TaskId> seeds;
  seeds.reserve(engine.running().size() + engine.ready().size());
  for (const auto& info : engine.running()) seeds.push_back(info.task);
  for (dag::TaskId t : engine.ready()) seeds.push_back(t);
  obs.window = dag::extract_window(*graph_, seeds, window_);

  const std::size_t n = obs.window.size();
  const int kt = graph_->num_kernel_types();
  const int width = node_feature_width(kt);
  obs.features = tensor::Tensor(n, static_cast<std::size_t>(width));

  // Per-node dynamic context.
  const double now = engine.now();
  for (std::size_t i = 0; i < n; ++i) {
    const dag::TaskId t = obs.window.nodes[i];
    double* row = obs.features.data() + i * static_cast<std::size_t>(width);
    static_.write_static(t, *graph_, row);
    double ready = engine.is_ready(t) ? 1.0 : 0.0;
    double running = 0.0;
    double remaining = 0.0;
    double on_gpu = 0.0;
    for (const auto& info : engine.running()) {
      if (info.task != t) continue;
      running = 1.0;
      remaining =
          std::max(0.0, info.expected_finish - now) / time_scale_;
      on_gpu = engine.platform().type(info.resource) ==
                       sim::ResourceType::kGpu
                   ? 1.0
                   : 0.0;
      break;
    }
    const int base = static_.static_width();
    row[base + 0] = ready;
    row[base + 1] = running;
    row[base + 2] = remaining;
    row[base + 3] = on_gpu;
    const int kernel = graph_->kernel(t);
    const double on_cpu_ms = costs_.expected(kernel, sim::ResourceType::kCpu);
    const double on_gpu_ms = costs_.expected(kernel, sim::ResourceType::kGpu);
    row[base + 4] = on_cpu_ms / time_scale_;
    row[base + 5] = on_gpu_ms / time_scale_;
    row[base + 6] = costs_.expected(kernel, engine.platform().type(current)) /
                    time_scale_;
    if (ready > 0.0) {
      obs.ready_positions.push_back(i);
      obs.ready_tasks.push_back(t);
    }
  }

  obs.ahat = nn::normalized_adjacency(n, obs.window.edges);

  // Platform-agnostic resource summary (see DESIGN.md):
  // [cur-is-gpu, idle-cpu-frac, idle-gpu-frac, cpu-avail, gpu-avail,
  //  cpu-share, gpu-share, ready-pressure].
  const auto& platform = engine.platform();
  obs.resource_state = tensor::Tensor(1, kResourceFeatureWidth);
  double idle_cpu = 0.0;
  double idle_gpu = 0.0;
  double next_cpu = -1.0;
  double next_gpu = -1.0;
  // The summary covers the visible resources only: the full view walks
  // the whole platform (identical to the historical 0..P-1 scan), a
  // shard-scoped view summarizes its own shard — the agent's partial
  // observation under the cluster scheduler.
  double ncpu = 0.0;
  double ngpu = 0.0;
  for (const sim::ResourceId r : engine.resources()) {
    const bool gpu = platform.type(r) == sim::ResourceType::kGpu;
    (gpu ? ngpu : ncpu) += 1.0;
    if (engine.is_idle(r)) (gpu ? idle_gpu : idle_cpu) += 1.0;
    const double avail = engine.expected_available_at(r) - now;
    double& next = gpu ? next_gpu : next_cpu;
    if (next < 0.0 || avail < next) next = avail;
  }
  const double total = ncpu + ngpu;
  obs.resource_state[0] =
      platform.type(current) == sim::ResourceType::kGpu ? 1.0 : 0.0;
  obs.resource_state[1] = ncpu > 0.0 ? idle_cpu / ncpu : 0.0;
  obs.resource_state[2] = ngpu > 0.0 ? idle_gpu / ngpu : 0.0;
  obs.resource_state[3] = next_cpu >= 0.0 ? next_cpu / time_scale_ : 1.0;
  obs.resource_state[4] = next_gpu >= 0.0 ? next_gpu / time_scale_ : 1.0;
  obs.resource_state[5] = ncpu / total;
  obs.resource_state[6] = ngpu / total;
  obs.resource_state[7] =
      n > 0 ? static_cast<double>(obs.ready_tasks.size()) /
                  static_cast<double>(n)
            : 0.0;
  return obs;
}

}  // namespace readys::rl
