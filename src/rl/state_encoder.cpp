#include "rl/state_encoder.hpp"

#include <algorithm>
#include <cstring>

#include "nn/gcn.hpp"
#include "obs/telemetry.hpp"

namespace readys::rl {

StateEncoder::StateEncoder(const dag::TaskGraph& graph,
                           const sim::CostModel& costs, int window)
    : graph_(&graph), static_(graph), costs_(costs), window_(window) {
  time_scale_ = 1.0;
  for (int k = 0; k < graph.num_kernel_types(); ++k) {
    time_scale_ = std::max(
        time_scale_, costs.expected(k, sim::ResourceType::kCpu));
  }
}

Observation StateEncoder::encode(const sim::EngineView& engine,
                                 sim::ResourceId current) const {
  return encode(engine, current, engine.any_running());
}

Observation StateEncoder::encode(const sim::EngineView& engine,
                                 sim::ResourceId current,
                                 bool allow_idle) const {
  Observation obs;
  obs.current_resource = current;
  obs.allow_idle = allow_idle;

  // Seeds: running tasks first, then ready tasks (Fig. 1).
  std::vector<dag::TaskId> seeds;
  seeds.reserve(engine.running().size() + engine.ready().size());
  for (const auto& info : engine.running()) seeds.push_back(info.task);
  for (dag::TaskId t : engine.ready()) seeds.push_back(t);
  obs.window = dag::extract_window(*graph_, seeds, window_);

  const std::size_t n = obs.window.size();
  const int kt = graph_->num_kernel_types();
  const int width = node_feature_width(kt);
  obs.features = tensor::Tensor(n, static_cast<std::size_t>(width));

  // Per-node dynamic context.
  const double now = engine.now();
  for (std::size_t i = 0; i < n; ++i) {
    const dag::TaskId t = obs.window.nodes[i];
    double* row = obs.features.data() + i * static_cast<std::size_t>(width);
    static_.write_static(t, *graph_, row);
    double ready = engine.is_ready(t) ? 1.0 : 0.0;
    double running = 0.0;
    double remaining = 0.0;
    double on_gpu = 0.0;
    for (const auto& info : engine.running()) {
      if (info.task != t) continue;
      running = 1.0;
      remaining =
          std::max(0.0, info.expected_finish - now) / time_scale_;
      on_gpu = engine.platform().type(info.resource) ==
                       sim::ResourceType::kGpu
                   ? 1.0
                   : 0.0;
      break;
    }
    const int base = static_.static_width();
    row[base + 0] = ready;
    row[base + 1] = running;
    row[base + 2] = remaining;
    row[base + 3] = on_gpu;
    const int kernel = graph_->kernel(t);
    const double on_cpu_ms = costs_.expected(kernel, sim::ResourceType::kCpu);
    const double on_gpu_ms = costs_.expected(kernel, sim::ResourceType::kGpu);
    row[base + 4] = on_cpu_ms / time_scale_;
    row[base + 5] = on_gpu_ms / time_scale_;
    row[base + 6] = costs_.expected(kernel, engine.platform().type(current)) /
                    time_scale_;
    if (ready > 0.0) {
      obs.ready_positions.push_back(i);
      obs.ready_tasks.push_back(t);
    }
  }

  obs.ahat = nn::normalized_adjacency(n, obs.window.edges);
  nn::normalized_adjacency_csr(n, obs.window.edges, obs.ahat_csr);

  // Platform-agnostic resource summary (see DESIGN.md):
  // [cur-is-gpu, idle-cpu-frac, idle-gpu-frac, cpu-avail, gpu-avail,
  //  cpu-share, gpu-share, ready-pressure].
  const auto& platform = engine.platform();
  obs.resource_state = tensor::Tensor(1, kResourceFeatureWidth);
  double idle_cpu = 0.0;
  double idle_gpu = 0.0;
  double next_cpu = -1.0;
  double next_gpu = -1.0;
  // The summary covers the visible resources only: the full view walks
  // the whole platform (identical to the historical 0..P-1 scan), a
  // shard-scoped view summarizes its own shard — the agent's partial
  // observation under the cluster scheduler.
  double ncpu = 0.0;
  double ngpu = 0.0;
  for (const sim::ResourceId r : engine.resources()) {
    const bool gpu = platform.type(r) == sim::ResourceType::kGpu;
    (gpu ? ngpu : ncpu) += 1.0;
    if (engine.is_idle(r)) (gpu ? idle_gpu : idle_cpu) += 1.0;
    const double avail = engine.expected_available_at(r) - now;
    double& next = gpu ? next_gpu : next_cpu;
    if (next < 0.0 || avail < next) next = avail;
  }
  const double total = ncpu + ngpu;
  obs.resource_state[0] =
      platform.type(current) == sim::ResourceType::kGpu ? 1.0 : 0.0;
  obs.resource_state[1] = ncpu > 0.0 ? idle_cpu / ncpu : 0.0;
  obs.resource_state[2] = ngpu > 0.0 ? idle_gpu / ngpu : 0.0;
  obs.resource_state[3] = next_cpu >= 0.0 ? next_cpu / time_scale_ : 1.0;
  obs.resource_state[4] = next_gpu >= 0.0 ? next_gpu / time_scale_ : 1.0;
  obs.resource_state[5] = ncpu / total;
  obs.resource_state[6] = ngpu / total;
  obs.resource_state[7] =
      n > 0 ? static_cast<double>(obs.ready_tasks.size()) /
                  static_cast<double>(n)
            : 0.0;
  return obs;
}

IncrementalEncoder::IncrementalEncoder(const dag::TaskGraph& graph,
                                       const sim::CostModel& costs,
                                       int window)
    : graph_(&graph), static_(graph), costs_(costs), window_(window) {
  time_scale_ = 1.0;
  for (int k = 0; k < graph.num_kernel_types(); ++k) {
    time_scale_ =
        std::max(time_scale_, costs.expected(k, sim::ResourceType::kCpu));
  }
  const int kt = graph.num_kernel_types();
  width_ = StateEncoder::node_feature_width(kt);
  base_ = static_.static_width();
  // Base rows: everything about a task that does not depend on the
  // schedule or the offered processor. Dynamic columns and the
  // offered-processor duration column stay zero here.
  const std::size_t n_tasks = graph.num_tasks();
  base_rows_ = tensor::Tensor(n_tasks, static_cast<std::size_t>(width_));
  for (std::size_t t = 0; t < n_tasks; ++t) {
    double* row = base_rows_.data() + t * static_cast<std::size_t>(width_);
    static_.write_static(static_cast<dag::TaskId>(t), graph, row);
    const int kernel = graph.kernel(static_cast<dag::TaskId>(t));
    row[base_ + 4] =
        costs_.expected(kernel, sim::ResourceType::kCpu) / time_scale_;
    row[base_ + 5] =
        costs_.expected(kernel, sim::ResourceType::kGpu) / time_scale_;
  }
}

const Observation& IncrementalEncoder::encode(const sim::EngineView& engine,
                                              sim::ResourceId current) {
  return encode(engine, current, engine.any_running());
}

const Observation& IncrementalEncoder::encode(const sim::EngineView& engine,
                                              sim::ResourceId current,
                                              bool allow_idle) {
  obs_.current_resource = current;
  obs_.allow_idle = allow_idle;

  // Seed signature: running tasks then ready tasks, the exact seed order
  // StateEncoder::encode feeds to extract_window. Equal signature ⇒
  // identical window and identical feature-row order.
  seeds_scratch_.clear();
  for (const auto& info : engine.running()) seeds_scratch_.push_back(info.task);
  for (dag::TaskId t : engine.ready()) seeds_scratch_.push_back(t);

  const bool reuse = valid_ && seeds_scratch_ == seeds_;
  if (!reuse) {
    rebuild_topology();
  } else {
    ++reuses_;
    if (obs::Telemetry* tel = obs::telemetry()) {
      tel->encoder_delta_events.add();
    }
    // Undo the running columns of the previous encode; everything else
    // dynamic is rewritten unconditionally below.
    for (std::size_t pos : running_rows_) {
      double* row =
          obs_.features.data() + pos * static_cast<std::size_t>(width_);
      row[base_ + 1] = 0.0;
      row[base_ + 2] = 0.0;
      row[base_ + 3] = 0.0;
    }
  }
  running_rows_.clear();

  const std::size_t n = obs_.window.size();
  const std::size_t w = static_cast<std::size_t>(width_);

  // Offered-processor duration column: bitwise a copy of the CPU or GPU
  // column (same division, same operands), refreshed only when the
  // offered type changed or the rows were rebuilt.
  const bool cur_gpu =
      engine.platform().type(current) == sim::ResourceType::kGpu;
  if (static_cast<int>(cur_gpu) != last_cur_gpu_) {
    const std::size_t src = static_cast<std::size_t>(base_ + (cur_gpu ? 5 : 4));
    for (std::size_t i = 0; i < n; ++i) {
      double* row = obs_.features.data() + i * w;
      row[base_ + 6] = row[src];
    }
    last_cur_gpu_ = cur_gpu ? 1 : 0;
  }

  // Ready bit + action lists, rescanned for every row: under a
  // shard-scoped view a descendant can become ready globally without the
  // scoped seed lists changing.
  obs_.ready_positions.clear();
  obs_.ready_tasks.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const dag::TaskId t = obs_.window.nodes[i];
    double* row = obs_.features.data() + i * w;
    if (engine.is_ready(t)) {
      row[base_ + 0] = 1.0;
      obs_.ready_positions.push_back(i);
      obs_.ready_tasks.push_back(t);
    } else {
      row[base_ + 0] = 0.0;
    }
  }

  // Running columns: O(R) writes against the window index instead of the
  // full encoder's O(n·R) scan. Values match bitwise (same expressions).
  const double now = engine.now();
  for (const auto& info : engine.running()) {
    const std::size_t pos = obs_.window.position_of(info.task);
    if (pos == dag::Window::npos) continue;
    double* row = obs_.features.data() + pos * w;
    row[base_ + 1] = 1.0;
    row[base_ + 2] = std::max(0.0, info.expected_finish - now) / time_scale_;
    row[base_ + 3] =
        engine.platform().type(info.resource) == sim::ResourceType::kGpu
            ? 1.0
            : 0.0;
    running_rows_.push_back(pos);
  }

  // Resource summary: identical arithmetic to StateEncoder::encode.
  const auto& platform = engine.platform();
  if (obs_.resource_state.rows() != 1) {
    obs_.resource_state =
        tensor::Tensor(1, StateEncoder::kResourceFeatureWidth);
  }
  double idle_cpu = 0.0;
  double idle_gpu = 0.0;
  double next_cpu = -1.0;
  double next_gpu = -1.0;
  double ncpu = 0.0;
  double ngpu = 0.0;
  for (const sim::ResourceId r : engine.resources()) {
    const bool gpu = platform.type(r) == sim::ResourceType::kGpu;
    (gpu ? ngpu : ncpu) += 1.0;
    if (engine.is_idle(r)) (gpu ? idle_gpu : idle_cpu) += 1.0;
    const double avail = engine.expected_available_at(r) - now;
    double& next = gpu ? next_gpu : next_cpu;
    if (next < 0.0 || avail < next) next = avail;
  }
  const double total = ncpu + ngpu;
  obs_.resource_state[0] = cur_gpu ? 1.0 : 0.0;
  obs_.resource_state[1] = ncpu > 0.0 ? idle_cpu / ncpu : 0.0;
  obs_.resource_state[2] = ngpu > 0.0 ? idle_gpu / ngpu : 0.0;
  obs_.resource_state[3] = next_cpu >= 0.0 ? next_cpu / time_scale_ : 1.0;
  obs_.resource_state[4] = next_gpu >= 0.0 ? next_gpu / time_scale_ : 1.0;
  obs_.resource_state[5] = ncpu / total;
  obs_.resource_state[6] = ngpu / total;
  obs_.resource_state[7] =
      n > 0 ? static_cast<double>(obs_.ready_tasks.size()) /
                  static_cast<double>(n)
            : 0.0;
  return obs_;
}

void IncrementalEncoder::rebuild_topology() {
  ++rebuilds_;
  dag::Window w = dag::extract_window(*graph_, seeds_scratch_, window_);
  const std::size_t n = w.size();
  // Â depends only on the node count and the index-pair edge list; an
  // identical edge set over the same count yields the same matrix.
  const bool same_ahat = valid_ && n == obs_.window.size() &&
                         w.edges == obs_.window.edges;
  obs_.window = std::move(w);
  if (same_ahat) {
    ++ahat_reuses_;
  } else {
    obs_.ahat = sparse_ahat_ ? tensor::Tensor()
                             : nn::normalized_adjacency(n, obs_.window.edges);
    nn::normalized_adjacency_csr(n, obs_.window.edges, obs_.ahat_csr);
  }
  const std::size_t width = static_cast<std::size_t>(width_);
  if (obs_.features.rows() != n || obs_.features.cols() != width) {
    obs_.features = tensor::Tensor(n, width);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(obs_.features.data() + i * width,
                base_rows_.data() +
                    static_cast<std::size_t>(obs_.window.nodes[i]) * width,
                width * sizeof(double));
  }
  running_rows_.clear();
  seeds_ = seeds_scratch_;
  valid_ = true;
  last_cur_gpu_ = -1;  // base rows carry a zero column; force the refresh
}

}  // namespace readys::rl
