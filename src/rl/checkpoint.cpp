#include "rl/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"

namespace readys::rl {

namespace {
constexpr const char* kMagic = "readys-checkpoint v1";
constexpr const char* kFileName = "checkpoint.txt";
}  // namespace

std::string checkpoint_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kFileName).string();
}

void save_checkpoint(const std::string& dir, const nn::Module& module,
                     const CheckpointState& state) {
  obs::Span span("rl/checkpoint_save", "train");
  if (obs::Telemetry* t = obs::telemetry()) t->checkpoint_writes.add();
  std::filesystem::create_directories(dir);
  const std::string path = checkpoint_path(dir);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("save_checkpoint: cannot open " + tmp);
    }
    out << kMagic << '\n'
        << "episode " << state.episode << '\n'
        << "updates " << state.updates << '\n'
        << nn::serialize_parameters(module);
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("save_checkpoint: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("save_checkpoint: cannot rename " + tmp +
                             " to " + path);
  }
}

bool load_checkpoint(const std::string& dir, nn::Module& module,
                     CheckpointState& state) {
  const std::string path = checkpoint_path(dir);
  std::ifstream in(path);
  if (!in) return false;  // no complete checkpoint (a .tmp does not count)

  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) {
    throw std::runtime_error("load_checkpoint: " + path + ": bad magic '" +
                             magic + "'");
  }
  std::string key;
  CheckpointState parsed;
  if (!(in >> key >> parsed.episode) || key != "episode") {
    throw std::runtime_error("load_checkpoint: " + path +
                             ": malformed episode line");
  }
  if (!(in >> key >> parsed.updates) || key != "updates") {
    throw std::runtime_error("load_checkpoint: " + path +
                             ": malformed updates line");
  }
  in.ignore();  // trailing newline before the weights payload
  std::ostringstream payload;
  payload << in.rdbuf();
  // Validate the payload fully before touching module or state.
  nn::deserialize_parameters(module, payload.str());
  state = parsed;
  return true;
}

}  // namespace readys::rl
