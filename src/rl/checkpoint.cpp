#include "rl/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"

namespace readys::rl {

namespace {

namespace fs = std::filesystem;

constexpr const char* kMagicV2 = "readys-ckpt/2";
constexpr const char* kMagicV1 = "readys-checkpoint v1";
constexpr const char* kFileNameV1 = "checkpoint.txt";
constexpr const char* kLatestName = "LATEST";
// Fixed-width footer: "crc32 " + 8 hex digits + '\n'. A fixed size makes
// truncation anywhere in the file detectable by construction — either
// the footer is gone or the CRC no longer matches.
constexpr std::size_t kFooterSize = 15;

testing_hooks::CheckpointWriteHook& write_hook() {
  static testing_hooks::CheckpointWriteHook hook;
  return hook;
}

void fire_hook(const char* phase, int index) {
  if (index >= 0 && write_hook()) write_hook()(phase, index);
}

std::string errno_text() { return std::strerror(errno); }

[[noreturn]] void parse_fail(const std::string& what) {
  throw std::runtime_error("checkpoint: " + what);
}

/// Index encoded in a "checkpoint.<n>.txt" file name, or -1.
int parse_index(const std::string& filename) {
  constexpr const char* prefix = "checkpoint.";
  constexpr const char* suffix = ".txt";
  if (filename.size() <= std::strlen(prefix) + std::strlen(suffix) ||
      filename.rfind(prefix, 0) != 0 ||
      filename.substr(filename.size() - std::strlen(suffix)) != suffix) {
    return -1;
  }
  const std::string digits = filename.substr(
      std::strlen(prefix),
      filename.size() - std::strlen(prefix) - std::strlen(suffix));
  if (digits.empty()) return -1;
  for (const char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
  }
  try {
    return std::stoi(digits);
  } catch (const std::exception&) {
    return -1;  // out of int range — not one of ours
  }
}

/// Retained checkpoint indices in `dir`, ascending. Missing dir -> empty.
std::vector<int> retained_indices(const std::string& dir) {
  std::vector<int> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const int idx = parse_index(entry.path().filename().string());
    if (idx >= 0) out.push_back(idx);
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// write(2) loop with EINTR handling; errors surface the errno message
/// and the path (the satellite case: ENOSPC/EIO must not be silent).
void write_all(int fd, const char* p, std::size_t n, const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      const std::string msg = errno_text();
      ::close(fd);
      ::unlink((path + ".tmp").c_str());
      throw std::runtime_error("save_checkpoint: write failed for " + path +
                               ".tmp: " + msg);
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Durably writes `payload` to `path` via tmp + fsync + rename. When
/// `hook_index >= 0` the chaos hooks fire around the payload write.
void write_durable(const std::string& path, const std::string& payload,
                   int hook_index) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("save_checkpoint: cannot open " + tmp + ": " +
                             errno_text());
  }
  const std::size_t half = payload.size() / 2;
  write_all(fd, payload.data(), half, path);
  fire_hook("mid-write", hook_index);
  write_all(fd, payload.data() + half, payload.size() - half, path);
  if (::fsync(fd) != 0) {
    const std::string msg = errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    throw std::runtime_error("save_checkpoint: fsync failed for " + tmp +
                             ": " + msg);
  }
  if (::close(fd) != 0) {  // close can surface deferred ENOSPC/EIO
    const std::string msg = errno_text();
    ::unlink(tmp.c_str());
    throw std::runtime_error("save_checkpoint: close failed for " + tmp +
                             ": " + msg);
  }
  fire_hook("pre-rename", hook_index);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string msg = errno_text();
    std::remove(tmp.c_str());
    throw std::runtime_error("save_checkpoint: cannot rename " + tmp +
                             " to " + path + ": " + msg);
  }
}

/// fsync on the directory makes the rename itself power-loss durable.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    throw std::runtime_error("save_checkpoint: cannot open directory " + dir +
                             " for fsync: " + errno_text());
  }
  if (::fsync(fd) != 0) {
    const std::string msg = errno_text();
    ::close(fd);
    throw std::runtime_error("save_checkpoint: fsync failed for directory " +
                             dir + ": " + msg);
  }
  ::close(fd);
}

/// Reads lines out of an in-memory blob, tracking the byte offset so the
/// weights payload can be taken as a substring after its marker line.
struct LineCursor {
  const std::string& s;
  std::size_t pos = 0;

  bool next(std::string& out) {
    if (pos >= s.size()) return false;
    const std::size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) {
      out = s.substr(pos);
      pos = s.size();
    } else {
      out = s.substr(pos, nl - pos);
      pos = nl + 1;
    }
    return true;
  }
};

/// Parses "<key> <unsigned>" strictly.
std::uint64_t parse_u64_field(LineCursor& cur, const char* key) {
  std::string line;
  if (!cur.next(line)) parse_fail(std::string("missing '") + key + "' line");
  std::istringstream is(line);
  std::string got;
  std::uint64_t value = 0;
  std::string extra;
  if (!(is >> got >> value) || got != key || (is >> extra)) {
    parse_fail(std::string("malformed '") + key + "' line '" + line + "'");
  }
  return value;
}

/// Legacy v1 parser (the old single-file format): magic, episode,
/// updates, weights payload. Validates fully before applying.
void load_v1(nn::Module& module, CheckpointData& data,
             const std::string& blob) {
  LineCursor cur{blob};
  std::string line;
  if (!cur.next(line) || line != kMagicV1) {
    parse_fail("bad v1 magic '" + line + "'");
  }
  CheckpointState st;
  st.episode = static_cast<int>(parse_u64_field(cur, "episode"));
  st.updates = static_cast<std::size_t>(parse_u64_field(cur, "updates"));
  nn::deserialize_parameters(module, blob.substr(cur.pos));
  data = CheckpointData{};
  data.progress = st;
  data.migrated_v1 = true;
}

/// Tries one candidate file; throws on any corruption, applies on success.
void load_file(const std::string& path, nn::Module& module,
               CheckpointData& data) {
  std::ifstream in(path, std::ios::binary);
  if (!in) parse_fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) parse_fail("cannot read " + path);
  deserialize_checkpoint(module, data, buffer.str());
}

}  // namespace

namespace testing_hooks {

void set_checkpoint_write_hook(CheckpointWriteHook hook) {
  write_hook() = std::move(hook);
}

}  // namespace testing_hooks

std::string checkpoint_path(const std::string& dir) {
  return (fs::path(dir) / kFileNameV1).string();
}

std::string checkpoint_file_path(const std::string& dir, int index) {
  return (fs::path(dir) / ("checkpoint." + std::to_string(index) + ".txt"))
      .string();
}

std::string latest_pointer_path(const std::string& dir) {
  return (fs::path(dir) / kLatestName).string();
}

std::string serialize_checkpoint(const nn::Module& module,
                                 const CheckpointData& data) {
  std::ostringstream os;
  os << kMagicV2 << '\n'
     << "trainer " << (data.trainer.empty() ? "-" : data.trainer) << '\n'
     << "episode " << data.progress.episode << '\n'
     << "updates " << data.progress.updates << '\n'
     << "skipped_updates " << data.progress.skipped_updates << '\n'
     << "rollbacks " << data.progress.rollbacks << '\n'
     << "divergent_streak " << data.progress.divergent_streak << '\n'
     << "env_seed " << data.env_seed << '\n'
     << "num_envs " << data.num_envs << '\n';
  os << "rngs " << data.rngs.size() << '\n';
  for (const auto& [name, st] : data.rngs) {
    os << "rng " << name;
    for (const std::uint64_t w : st) os << ' ' << w;
    os << '\n';
  }
  os << "optim " << data.optimizer.size() << '\n';
  for (const std::string& row : data.optimizer) os << row << '\n';
  os << "weights\n" << nn::serialize_parameters(module);
  const std::string body = os.str();
  char footer[32];
  std::snprintf(footer, sizeof(footer), "crc32 %08x\n",
                util::crc32(body));
  return body + footer;
}

void deserialize_checkpoint(nn::Module& module, CheckpointData& data,
                            const std::string& blob) {
  if (blob.size() < kFooterSize) parse_fail("truncated file (no footer)");
  const std::string footer = blob.substr(blob.size() - kFooterSize);
  if (footer.rfind("crc32 ", 0) != 0 || footer.back() != '\n') {
    parse_fail("missing crc32 footer (truncated or torn file)");
  }
  std::uint32_t stored = 0;
  {
    std::istringstream is(footer.substr(6, 8));
    is >> std::hex >> stored;
    if (is.fail()) parse_fail("malformed crc32 footer '" + footer + "'");
  }
  const std::string body = blob.substr(0, blob.size() - kFooterSize);
  const std::uint32_t actual = util::crc32(body);
  if (actual != stored) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "stored %08x, computed %08x", stored,
                  actual);
    parse_fail(std::string("crc32 mismatch (") + buf + ")");
  }

  LineCursor cur{body};
  std::string line;
  if (!cur.next(line)) parse_fail("empty file");
  if (line != kMagicV2) {
    if (line == kMagicV1) {
      parse_fail(std::string("found a '") + kMagicV1 +
                 "' payload where a '" + kMagicV2 +
                 "' file was expected (legacy v1 checkpoints live in "
                 "checkpoint.txt and are migrated from there)");
    }
    parse_fail("bad magic '" + line + "' (expected '" + kMagicV2 +
               "'; legacy '" + kMagicV1 + "' is only accepted as " +
               kFileNameV1 + ")");
  }

  CheckpointData parsed;
  {
    std::string trainer_line;
    if (!cur.next(trainer_line)) parse_fail("missing 'trainer' line");
    std::istringstream is(trainer_line);
    std::string key;
    std::string value;
    std::string extra;
    if (!(is >> key >> value) || key != "trainer" || (is >> extra)) {
      parse_fail("malformed 'trainer' line '" + trainer_line + "'");
    }
    parsed.trainer = value == "-" ? "" : value;
  }
  parsed.progress.episode =
      static_cast<int>(parse_u64_field(cur, "episode"));
  parsed.progress.updates =
      static_cast<std::size_t>(parse_u64_field(cur, "updates"));
  parsed.progress.skipped_updates =
      static_cast<std::size_t>(parse_u64_field(cur, "skipped_updates"));
  parsed.progress.rollbacks =
      static_cast<std::size_t>(parse_u64_field(cur, "rollbacks"));
  parsed.progress.divergent_streak =
      static_cast<int>(parse_u64_field(cur, "divergent_streak"));
  parsed.env_seed = parse_u64_field(cur, "env_seed");
  parsed.num_envs = static_cast<std::size_t>(parse_u64_field(cur, "num_envs"));

  const std::uint64_t num_rngs = parse_u64_field(cur, "rngs");
  for (std::uint64_t i = 0; i < num_rngs; ++i) {
    if (!cur.next(line)) parse_fail("missing rng line");
    std::istringstream is(line);
    std::string key;
    std::string name;
    if (!(is >> key >> name) || key != "rng") {
      parse_fail("malformed rng line '" + line + "'");
    }
    util::Rng::State st{};
    for (auto& w : st) {
      if (!(is >> w)) parse_fail("truncated rng state for stream '" + name +
                                 "'");
    }
    std::string extra;
    if (is >> extra) parse_fail("trailing rng state for stream '" + name + "'");
    parsed.rngs.emplace_back(name, st);
  }

  const std::uint64_t num_optim = parse_u64_field(cur, "optim");
  for (std::uint64_t i = 0; i < num_optim; ++i) {
    if (!cur.next(line)) parse_fail("missing optimizer row");
    parsed.optimizer.push_back(line);
  }

  if (!cur.next(line) || line != "weights") {
    parse_fail("missing 'weights' marker line");
  }
  // Validate the weights payload fully before touching module or data —
  // deserialize_parameters applies only after the whole payload checks
  // out, and it is the last fallible operation here.
  nn::deserialize_parameters(module, body.substr(cur.pos));
  data = std::move(parsed);
}

void save_checkpoint(const std::string& dir, const nn::Module& module,
                     const CheckpointData& data,
                     const CheckpointOptions& opts) {
  obs::Span span("rl/checkpoint_save", "train");
  if (obs::Telemetry* t = obs::telemetry()) t->checkpoint_writes.add();
  fs::create_directories(dir);

  // A kill mid-write leaves a stale *.tmp behind; it can never shadow a
  // complete checkpoint, but it should not accumulate either.
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
    }
  }

  const std::vector<int> existing = retained_indices(dir);
  const int next = existing.empty() ? 1 : existing.back() + 1;
  fire_hook("begin", next);

  const std::string path = checkpoint_file_path(dir, next);
  write_durable(path, serialize_checkpoint(module, data), next);
  fsync_dir(dir);
  fire_hook("post-rename", next);

  // The LATEST pointer flips atomically via the same tmp+rename dance; a
  // kill between the checkpoint rename and this flip is recovered by the
  // loader's newest-first directory scan.
  write_durable(latest_pointer_path(dir),
                fs::path(path).filename().string() + "\n", -1);
  fsync_dir(dir);

  const int retain = std::max(1, opts.retain);
  std::vector<int> indices = retained_indices(dir);
  if (static_cast<int>(indices.size()) > retain) {
    std::error_code ec;
    for (std::size_t i = 0; i + static_cast<std::size_t>(retain) <
                            indices.size();
         ++i) {
      fs::remove(checkpoint_file_path(dir, indices[i]), ec);
    }
  }
}

bool load_checkpoint(const std::string& dir, nn::Module& module,
                     CheckpointData& data) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return false;

  // Candidate order: the LATEST target first, then every other retained
  // file newest-first, finally a legacy v1 checkpoint.txt.
  std::vector<int> indices = retained_indices(dir);
  std::sort(indices.begin(), indices.end(), std::greater<int>());
  std::vector<std::string> candidates;
  {
    std::ifstream latest(latest_pointer_path(dir));
    std::string target;
    if (latest && std::getline(latest, target) && parse_index(target) >= 0 &&
        fs::exists(fs::path(dir) / target, ec)) {
      candidates.push_back((fs::path(dir) / target).string());
    }
  }
  for (const int idx : indices) {
    const std::string p = checkpoint_file_path(dir, idx);
    if (std::find(candidates.begin(), candidates.end(), p) ==
        candidates.end()) {
      candidates.push_back(p);
    }
  }

  std::vector<std::string> errors;
  for (const std::string& path : candidates) {
    try {
      load_file(path, module, data);
      if (!errors.empty()) {
        util::log_warn() << "load_checkpoint: fell back to " << path
                         << " after " << errors.size()
                         << " corrupt candidate(s): " << errors.front();
      }
      return true;
    } catch (const std::exception& e) {
      errors.push_back(path + ": " + e.what());
      if (obs::Telemetry* t = obs::telemetry()) t->ckpt_fallbacks.add();
    }
  }

  const std::string v1_path = checkpoint_path(dir);
  if (fs::exists(v1_path, ec)) {
    std::ifstream in(v1_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string blob = buffer.str();
    if (blob.rfind(kMagicV1, 0) == 0) {
      try {
        load_v1(module, data, blob);
        util::log_warn()
            << "load_checkpoint: migrated legacy '" << kMagicV1
            << "' file " << v1_path
            << " (weights + progress restored; optimizer moments and RNG "
               "streams start fresh, so the resumed run is not bit-identical "
               "to an uninterrupted one)";
        return true;
      } catch (const std::exception& e) {
        errors.push_back(v1_path + ": " + e.what());
      }
    } else {
      errors.push_back(v1_path + ": bad magic (expected legacy '" +
                       kMagicV1 + "' here or '" + kMagicV2 +
                       "' in checkpoint.<n>.txt files)");
    }
  }

  if (errors.empty() && candidates.empty()) {
    return false;  // nothing checkpoint-shaped at all
  }
  std::string joined;
  for (const std::string& e : errors) {
    if (!joined.empty()) joined += "; ";
    joined += e;
  }
  throw std::runtime_error(
      "load_checkpoint: checkpoint files exist in " + dir +
      " but none is valid: " + joined);
}

void apply_checkpoint_to_trainer(const CheckpointData& data,
                                 const std::string& trainer,
                                 std::uint64_t env_seed, std::size_t num_envs,
                                 nn::Optimizer& optimizer,
                                 util::Rng& sample_rng) {
  if (!data.migrated_v1 && data.trainer != trainer) {
    throw std::runtime_error(
        "apply_checkpoint_to_trainer: checkpoint was written by '" +
        data.trainer + "', refusing to resume a '" + trainer + "' run");
  }
  if (data.migrated_v1) {
    // load_checkpoint already warned; there is no state to apply.
    return;
  }
  if (data.env_seed != env_seed) {
    util::log_warn() << "resume: checkpoint seed " << data.env_seed
                     << " differs from this run's seed " << env_seed
                     << "; training continues but is not bit-identical to "
                        "the original run";
  }
  if (data.num_envs != num_envs) {
    util::log_warn() << "resume: checkpoint was written with num_envs="
                     << data.num_envs << ", this run uses num_envs="
                     << num_envs << "; episode batching (and thus the "
                     << "update sequence) will differ";
  }
  bool found_sample = false;
  for (const auto& [name, st] : data.rngs) {
    if (name == "sample") {
      sample_rng.set_state(st);
      found_sample = true;
    }
  }
  if (!found_sample) {
    util::log_warn() << "resume: checkpoint carries no 'sample' RNG stream; "
                        "action sampling restarts from the seed";
  }
  if (data.optimizer.empty()) {
    util::log_warn() << "resume: checkpoint carries no optimizer state; "
                        "moment estimates restart from zero";
  } else {
    optimizer.load_state_rows(data.optimizer);
  }
}

}  // namespace readys::rl
