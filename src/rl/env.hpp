#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>

#include "rl/state_encoder.hpp"
#include "sim/engine.hpp"

namespace readys::rl {

/// The paper's MDP as a step-based environment.
///
/// A decision instant occurs whenever at least one resource is idle and
/// at least one task is ready; a "current processor" is drawn uniformly
/// at random among the idle resources that have not declined at this
/// instant. The action space is {ready tasks} ∪ {∅}; picking ∅ parks the
/// current processor until the next completion event. ∅ is masked when
/// nothing is running (it would deadlock the system). The reward is zero
/// until the terminal state, where it is
///   (makespan(HEFT) − makespan) / makespan(HEFT)
/// with makespan(HEFT) the deterministic expected-duration HEFT makespan
/// (cached at construction).
class SchedulingEnv {
 public:
  struct Config {
    double sigma = 0.0;
    int window = 1;
    std::uint64_t seed = 1;
    /// Draw the current processor uniformly among idle candidates (the
    /// paper's wording). Off by default: offering the lowest-index idle
    /// resource first is strategically equivalent (∅ lets the agent pass
    /// a processor on to the next) but removes a large exogenous noise
    /// source from the returns, which stabilizes A2C substantially.
    bool random_offer = false;
    /// Fault injection for the episode engine. Down resources drop out
    /// of the candidate set (the action mask only ever offers idle, up
    /// resources), and tasks whose execution was lost reappear in the
    /// ready actions. none() keeps the environment bit-exact with the
    /// fault-free construction.
    sim::FaultModel faults = sim::FaultModel::none();
    /// Maintain observations with the IncrementalEncoder (bit-identical
    /// to the full encoder by contract; see state_encoder.hpp). Off by
    /// default: the training loop keeps its historical code path, serve
    /// sessions turn it on.
    bool incremental_encoding = false;
  };

  struct StepResult {
    double reward = 0.0;
    bool done = false;
  };

  SchedulingEnv(const dag::TaskGraph& graph, const sim::Platform& platform,
                const sim::CostModel& costs, Config config);

  /// Starts a new episode and returns the first observation (the same
  /// object observation() refers to, so the old reset-then-observe()
  /// two-call sequence keeps working). Passing a seed reseeds every
  /// stream (noise, faults, processor draw); omitting it replays the
  /// configured seed — reset() is deterministic and idempotent.
  const Observation& reset(std::optional<std::uint64_t> seed = std::nullopt);

  /// Applies action `a` (index into observation().num_actions(): the
  /// ready tasks in order, then ∅ if allowed) and advances to the next
  /// decision instant or the terminal state.
  StepResult step(std::size_t a);

  /// Valid between reset() and a step() returning done.
  const Observation& observation() const noexcept {
    return inc_ ? inc_->observation() : obs_;
  }

  bool done() const noexcept { return engine_.finished(); }
  double makespan() const noexcept { return engine_.makespan(); }
  /// The reward denominator: expected-duration HEFT makespan.
  double heft_reference() const noexcept { return heft_ref_; }
  std::size_t decisions_this_episode() const noexcept { return decisions_; }

  const sim::SimEngine& engine() const noexcept { return engine_; }
  const StateEncoder& encoder() const noexcept { return encoder_; }

 private:
  /// Advances the engine until a decision is possible (or termination)
  /// and encodes the observation.
  void advance_to_decision();

  /// Idle resources that have not declined at the current instant.
  std::vector<sim::ResourceId> candidates() const;

  sim::SimEngine engine_;
  StateEncoder encoder_;
  std::unique_ptr<IncrementalEncoder> inc_;  ///< when incremental_encoding
  Config config_;
  util::Rng action_rng_;  ///< current-processor draw (independent of noise)
  double heft_ref_;
  Observation obs_;
  std::unordered_set<int> declined_;  ///< resources parked by ∅ this instant
  std::size_t decisions_ = 0;
};

}  // namespace readys::rl
