#pragma once

#include <limits>
#include <shared_mutex>
#include <string>
#include <vector>

#include "nn/optim.hpp"
#include "rl/async.hpp"
#include "rl/config.hpp"
#include "rl/env.hpp"
#include "rl/policy_net.hpp"
#include "rl/vec_env.hpp"

namespace readys::rl {

/// Applies the configured squash/clip (see AgentConfig) to a terminal
/// reward. Shared by the A2C and PPO trainers. Throws std::domain_error
/// on a non-finite reward — a NaN here means the simulator or the HEFT
/// reference is corrupt, and squashing/clipping would silently launder
/// it into a plausible-looking value.
double shape_reward(const AgentConfig& cfg, double reward);

/// Summary of one training run.
struct TrainReport {
  std::vector<double> episode_rewards;
  std::vector<double> episode_makespans;
  double best_makespan = 0.0;
  double final_mean_reward = 0.0;  ///< mean reward over the last 20%
  std::size_t updates = 0;
  /// Updates skipped because the loss or a gradient went NaN/Inf (the
  /// poisoned batch is dropped; weights and Adam moments stay clean).
  std::size_t skipped_updates = 0;
  /// Times the weights were rolled back to the last good snapshot after
  /// `TrainOptions::divergence_patience` consecutive divergent updates.
  std::size_t rollbacks = 0;
  /// First episode index actually trained (non-zero after --resume).
  int start_episode = 0;
};

/// Synchronous advantage actor-critic (A2C) on the scheduling MDP.
///
/// Follows §IV-A of the paper: n-step unrolls, advantage = (return −
/// V(s)), entropy regularization, critic loss scaled by value_coef, a
/// single Adam optimizer over actor and critic (they share the GCN
/// trunk).
class A2CTrainer {
 public:
  A2CTrainer(PolicyNet& net, const AgentConfig& cfg);

  /// Trains in-place on `env` for opts.episodes episodes.
  TrainReport train(SchedulingEnv& env, const TrainOptions& opts);

  /// Vectorized training: rounds of up to envs.size() episodes run in
  /// lockstep (episode ep + e on env e, seeded opts.seed + ep + e), the
  /// rollout forwards batched through PolicyNet::forward_batched under
  /// tensor::NoGradGuard, then the round's episodes re-forwarded and
  /// updated in opts.updates_per_round groups (default: one update per
  /// episode — the sequential cadence, so entropy decay, divergence
  /// patience, and checkpoint-every all stay in episode units and mean
  /// the same thing at any width). With envs.size() == 1 this delegates
  /// to the sequential train() (bit-for-bit identical). With opts.async
  /// it switches to the actor–learner mode: ActorPool threads run
  /// episodes (reseeded per episode index) into an EpisodeQueue while
  /// this thread drains opts.async_batch episodes per update; weights
  /// are guarded by a shared_mutex (actors take shared forward locks,
  /// the optimizer step the exclusive lock). Requires cfg.unroll == 0 —
  /// mid-episode unrolls would interleave gradients across envs — and
  /// throws std::invalid_argument otherwise.
  TrainReport train(VecEnv& envs, const TrainOptions& opts);

  /// Rolls out the current policy without learning; returns makespans.
  /// `greedy` picks argmax actions, otherwise samples from π.
  std::vector<double> evaluate(SchedulingEnv& env, int episodes,
                               std::uint64_t seed_base, bool greedy);

  /// Samples (or argmaxes) an action from a policy output.
  std::size_t select_action(const PolicyNet::Output& out, bool greedy,
                            util::Rng& rng) const;

  /// Applies the configured squash/clip to a terminal reward.
  double shape_reward(double reward) const;

 private:
  struct StepRecord {
    tensor::Var log_prob;  // 1x1, grad flows to the net
    tensor::Var value;     // 1x1
    tensor::Var entropy;   // 1x1
    double reward = 0.0;
    bool done = false;
    /// Truncated importance weight min(1, π(a|s)/μ(a|s)) applied to this
    /// step's policy-gradient term; exactly 1.0 on every on-policy path
    /// (x * 1.0 is an IEEE identity, so those paths stay bit-identical).
    /// Only async free mode sets μ ≠ π: its actors act under weights up
    /// to `window` updates stale, and uncorrected that bias collapses
    /// learning (see BENCH_train_quality.json).
    double is_weight = 1.0;
  };

  /// One gradient step from a batch of transitions; `bootstrap` is
  /// V(s_next) of the last (non-terminal) state. Returns false when the
  /// update was skipped because the loss or gradients were non-finite
  /// (the weights are left untouched).
  bool update(const std::vector<StepRecord>& batch, double bootstrap);

  /// update() with the per-step loss terms stacked into (batch x 1)
  /// columns (concat_rows), so the loss graph is O(1) nodes instead of
  /// O(batch) — the assembly chain dominates update cost on multi-env
  /// rounds. Identical returns/advantage semantics; gradients match
  /// update() only up to floating-point regrouping, so the single-env
  /// paths (which promise bit-exactness) never use it.
  bool update_batched(const std::vector<StepRecord>& batch);

  /// Shared tail of the update variants: backward, gradient clipping,
  /// the divergence guard, and the optimizer step.
  bool apply_loss(const tensor::Var& loss);

  /// Restores `last_good` into the net and resets the optimizer (Adam
  /// moments may reference the divergent trajectory). Takes the
  /// exclusive net lock when training asynchronously.
  void rollback(const std::string& last_good);

  /// Re-forwards episodes [begin, end) of `eps` through forward_batched
  /// (each episode's steps contiguous, episode-major) and applies one
  /// batched update over their transitions. Rewards are shaped here.
  /// `off_policy` enables the truncated importance weights (requires the
  /// rollouts to carry behavior log_probs — async actors record them).
  bool update_group(const std::vector<EpisodeRollout>& eps,
                    std::size_t begin, std::size_t end,
                    bool off_policy = false);

  /// The async actor–learner loop behind train(VecEnv&) + opts.async.
  TrainReport train_async(VecEnv& envs, const TrainOptions& opts);

  PolicyNet* net_;
  AgentConfig cfg_;
  nn::Adam optimizer_;
  util::Rng sample_rng_;
  std::size_t updates_ = 0;
  double entropy_scale_ = 1.0;  ///< annealing factor (see entropy_decay)
  // Last applied update, for the telemetry episode rows (NaN until the
  // first update; a skipped update records what was rejected).
  double last_loss_ = std::numeric_limits<double>::quiet_NaN();
  double last_grad_norm_ = std::numeric_limits<double>::quiet_NaN();
  /// Set only inside train_async: actors hold it shared around forwards;
  /// the optimizer step and rollback take it exclusively.
  std::shared_mutex* net_mutex_ = nullptr;
};

}  // namespace readys::rl
