#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rl/state_encoder.hpp"
#include "tensor/arena.hpp"

namespace readys::rl {

class PolicyNet;

/// Which InferenceBackend implementation to build (see docs/api.md,
/// "Inference backends"). kF64Ref delegates to the double-precision
/// autograd forward under NoGradGuard and is bit-exact with training;
/// kF32Simd runs the float32 SIMD kernels (tensor/f32.hpp) over a frozen
/// weight snapshot — tolerance-pinned against the reference, never used
/// by trainers.
enum class InferenceBackendKind : int { kF64Ref, kF32Simd };

/// "f64ref" <-> kF64Ref, "f32simd" <-> kF32Simd; parse throws
/// std::invalid_argument on anything else (shared by RunConfig::validate,
/// the registry spec `readys(backend=...)` and the CLI flag).
InferenceBackendKind parse_inference_backend(const std::string& name);
const char* inference_backend_name(InferenceBackendKind kind) noexcept;

/// One policy evaluation as plain rows — no tensor::autograd types in
/// the signature. `probs` and `log_probs` have obs.num_actions()
/// entries; buffers are reused across calls when the caller passes the
/// same object back in.
struct InferenceOutput {
  std::vector<double> probs;
  std::vector<double> log_probs;
  double value = 0.0;
};

/// The inference-only surface extracted from PolicyNet: π(a|s), log π
/// and V(s) for one observation (or a batch), over weights frozen at
/// construction time. Implementations are NOT thread-safe — one backend
/// per worker/replica, matching serve's replica model. Build one via
/// PolicyNet::make_inference(kind).
class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  virtual const char* name() const noexcept = 0;

  /// Evaluates one observation, reusing `out`'s buffers. Throws
  /// std::invalid_argument when the observation has no ready task
  /// (mirroring PolicyNet::forward).
  virtual void forward(const Observation& obs, InferenceOutput& out) = 0;

  /// Evaluates a batch; outs is resized to batch.size(). Per-graph
  /// results match forward() on that observation alone bit-for-bit —
  /// the session-isolation keystone serve relies on. Throws like the
  /// training path on an empty batch / missing ready task / feature
  /// width mismatch.
  virtual void forward_batched(const std::vector<const Observation*>& batch,
                               std::vector<InferenceOutput>& outs) = 0;
};

/// Frozen float32 snapshot of a PolicyNet's parameters, in the layout
/// the f32 kernels consume (row-major, per-layer). Taking a snapshot is
/// the explicit "weights are now fixed" point of the fast path: a
/// later optimizer step on the source net does not affect backends
/// already built (re-snapshot by constructing a new backend — see
/// ReadysScheduler::reset, which does this per episode).
struct InferenceWeights {
  int node_features = 0;
  int resource_features = 0;
  int hidden = 0;
  bool critic_sees_resources = false;
  std::vector<std::size_t> gcn_in;         ///< input width per GCN layer
  std::vector<std::vector<float>> gcn_w;   ///< per layer, gcn_in[l] x hidden
  std::vector<std::vector<float>> gcn_b;   ///< per layer, 1 x hidden
  std::vector<float> actor_w;              ///< hidden x 1, flattened
  float actor_b = 0.0f;
  std::vector<float> res_w;                ///< resource_features x hidden
  std::vector<float> res_b;                ///< 1 x hidden
  std::vector<float> idle_w;               ///< 2*hidden x 1
  float idle_b = 0.0f;
  std::vector<float> value_w;              ///< (2*)hidden x 1
  float value_b = 0.0f;

  /// Rounds every parameter of `net` to float. Throws
  /// std::invalid_argument when the parameter names do not describe a
  /// PolicyNet architecture.
  static InferenceWeights snapshot(const PolicyNet& net);

  /// Process-wide count of snapshot() calls. Purely observability: lets
  /// tests pin that cached backends are reused instead of rebuilding the
  /// snapshot every episode (see ReadysScheduler::reset) and that serve
  /// workers share one snapshot per published version.
  static std::uint64_t snapshot_builds() noexcept;
};

/// Bit-exact reference backend: delegates to PolicyNet::forward /
/// forward_batched under tensor::NoGradGuard and copies the rows out.
/// Reads the net's weights live (the net must outlive the backend), so
/// it is exactly "today's path" behind the new interface.
class F64RefBackend final : public InferenceBackend {
 public:
  explicit F64RefBackend(const PolicyNet& net) : net_(&net) {}

  const char* name() const noexcept override { return "f64ref"; }
  void forward(const Observation& obs, InferenceOutput& out) override;
  void forward_batched(const std::vector<const Observation*>& batch,
                       std::vector<InferenceOutput>& outs) override;

 private:
  const PolicyNet* net_;
};

/// Float32 SIMD backend over an InferenceWeights snapshot: no autograd
/// graph, arena-allocated activations, AVX2 GEMMs with scalar fallback
/// (tensor/f32.hpp dispatches per host). Softmax/log-softmax run in
/// double over the float logits. Same argmax as the reference on
/// >= 99.9% of decisions (pinned in tests/test_inference.cpp).
class F32SimdBackend final : public InferenceBackend {
 public:
  explicit F32SimdBackend(InferenceWeights weights);

  /// Shares a frozen snapshot instead of owning a private copy — how
  /// serve's PolicyStore fans one published version out to every worker
  /// without per-worker re-snapshotting. The snapshot is immutable after
  /// publication, so concurrent backends over the same pointer are safe
  /// (each backend keeps its own arena/scratch).
  explicit F32SimdBackend(std::shared_ptr<const InferenceWeights> weights);

  const char* name() const noexcept override { return "f32simd"; }
  void forward(const Observation& obs, InferenceOutput& out) override;
  void forward_batched(const std::vector<const Observation*>& batch,
                       std::vector<InferenceOutput>& outs) override;

  const InferenceWeights& weights() const noexcept { return *w_; }

 private:
  std::shared_ptr<const InferenceWeights> w_;
  tensor::Arena arena_;
  std::vector<double> logits_;  ///< reused per-decision scratch row
};

/// Factory behind PolicyNet::make_inference (kept a free function so
/// callers holding only a const PolicyNet& can build backends too).
std::unique_ptr<InferenceBackend> make_inference_backend(
    const PolicyNet& net, InferenceBackendKind kind);

}  // namespace readys::rl
