#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/env.hpp"
#include "util/thread_pool.hpp"

namespace readys::rl {

/// N independent SchedulingEnv instances behind batched reset()/step().
///
/// Each env owns its engine and RNG streams, so stepping different envs
/// commutes: results are bit-identical with and without a thread pool,
/// for any pool size. The envs may be built over different graphs (the
/// graphs must outlive the VecEnv, as with SchedulingEnv itself); the
/// only requirement for batched forwards downstream is a common
/// kernel-type count, i.e. feature width.
///
/// Lifecycle: construct → reset (all, or reset_one per env) →
/// observations()/step() until each env reports done → reset again.
/// Trainers typically step a shrinking `ids` subset as episodes finish
/// at different lengths.
class VecEnv {
 public:
  struct StepResult {
    double reward = 0.0;
    bool done = false;
  };

  /// Wraps externally-built envs (all non-null). Use this form for
  /// heterogeneous instances (e.g. distinct DAG sizes per env).
  explicit VecEnv(std::vector<std::unique_ptr<SchedulingEnv>> envs,
                  util::ThreadPool* pool = nullptr);

  /// n homogeneous envs over one instance; env i seeds its streams with
  /// base.seed + i. When `pool` is non-null, step() distributes env
  /// stepping over its workers.
  VecEnv(const dag::TaskGraph& graph, const sim::Platform& platform,
         const sim::CostModel& costs, SchedulingEnv::Config base,
         std::size_t n, util::ThreadPool* pool = nullptr);

  std::size_t size() const noexcept { return envs_.size(); }
  SchedulingEnv& env(std::size_t i) { return *envs_[i]; }
  const SchedulingEnv& env(std::size_t i) const { return *envs_[i]; }

  /// Restarts env i and returns its first observation.
  const Observation& reset_one(std::size_t i, std::uint64_t seed);

  /// Restarts every env (seeds[i] -> env i) and returns the batch of
  /// initial observations, aligned with the env index.
  std::vector<const Observation*> reset(
      const std::vector<std::uint64_t>& seeds);

  /// Applies actions[k] to env ids[k] for every k; results align with
  /// `ids`. Runs on the pool when one was provided and the batch has
  /// more than one env, serially otherwise — identical results either
  /// way. Exceptions from any env propagate.
  std::vector<StepResult> step(const std::vector<std::size_t>& ids,
                               const std::vector<std::size_t>& actions);

  /// Current observations of the selected envs, aligned with `ids`.
  /// Pointers are invalidated by the next step()/reset() of that env.
  std::vector<const Observation*> observations(
      const std::vector<std::size_t>& ids) const;

 private:
  std::vector<std::unique_ptr<SchedulingEnv>> envs_;
  util::ThreadPool* pool_;
};

}  // namespace readys::rl
