#include "rl/env.hpp"

#include <stdexcept>

#include "obs/telemetry.hpp"
#include "sched/heft.hpp"

namespace readys::rl {

SchedulingEnv::SchedulingEnv(const dag::TaskGraph& graph,
                             const sim::Platform& platform,
                             const sim::CostModel& costs, Config config)
    : engine_(graph, platform, costs, config.faults, config.sigma,
              config.seed),
      encoder_(graph, costs, config.window),
      config_(config),
      action_rng_(config.seed ^ 0xD1B54A32D192ED03ULL),
      heft_ref_(sched::heft_expected_makespan(graph, platform, costs)) {
  if (config.incremental_encoding) {
    inc_ = std::make_unique<IncrementalEncoder>(graph, costs, config.window);
  }
  reset(config.seed);
}

const Observation& SchedulingEnv::reset(std::optional<std::uint64_t> seed) {
  obs::Span span("rl/env_reset", "train");
  if (obs::Telemetry* t = obs::telemetry()) t->env_resets.add();
  const std::uint64_t s = seed.value_or(config_.seed);
  engine_.reset(s);
  action_rng_ = util::Rng(s ^ 0xD1B54A32D192ED03ULL);
  declined_.clear();
  decisions_ = 0;
  advance_to_decision();
  return observation();
}

std::vector<sim::ResourceId> SchedulingEnv::candidates() const {
  std::vector<sim::ResourceId> out;
  for (sim::ResourceId r : engine_.idle_resources()) {
    if (!declined_.contains(r)) out.push_back(r);
  }
  return out;
}

void SchedulingEnv::advance_to_decision() {
  for (;;) {
    if (engine_.finished()) return;
    if (!engine_.ready().empty()) {
      const auto cands = candidates();
      if (!cands.empty()) {
        const sim::ResourceId current =
            config_.random_offer
                ? cands[action_rng_.uniform_index(cands.size())]
                : cands.front();
        // ∅ is legal unless declining would deadlock: nothing running and
        // this is the last idle resource that could take the work.
        const bool allow_idle = engine_.any_running() || cands.size() > 1;
        {
          obs::Span encode_span("rl/state_encode", "train");
          if (inc_) {
            inc_->encode(engine_, current, allow_idle);
          } else {
            obs_ = encoder_.encode(engine_, current, allow_idle);
          }
        }
        return;
      }
    }
    if (engine_.fault_enabled() && !engine_.any_running() &&
        engine_.num_up() == 0 && engine_.faults().mean_downtime <= 0.0) {
      // Fault events may keep firing (slowdown edges), but no resource
      // can ever come back: fail loudly instead of spinning.
      throw std::logic_error(
          "SchedulingEnv: platform unrecoverable (every resource "
          "permanently down, tasks remain)");
    }
    if (!engine_.advance()) {
      // Nothing running and no assignable work: impossible unless the ∅
      // mask was bypassed.
      throw std::logic_error("SchedulingEnv: stalled (all idle declined)");
    }
    declined_.clear();  // a completion or topology change re-opens parking
  }
}

SchedulingEnv::StepResult SchedulingEnv::step(std::size_t a) {
  obs::Telemetry* t = obs::telemetry();
  obs::Span span("rl/env_step", "train", t ? &t->env_step_us : nullptr);
  if (t) t->env_steps.add();
  if (engine_.finished()) {
    throw std::logic_error("SchedulingEnv::step: episode already done");
  }
  const Observation& obs = observation();
  if (a >= obs.num_actions()) {
    throw std::out_of_range("SchedulingEnv::step: bad action index");
  }
  ++decisions_;
  if (obs.allow_idle && a == obs.idle_action()) {
    declined_.insert(obs.current_resource);
  } else {
    engine_.start(obs.ready_tasks[a], obs.current_resource);
  }
  advance_to_decision();
  StepResult result;
  result.done = engine_.finished();
  if (result.done) {
    result.reward = (heft_ref_ - engine_.makespan()) / heft_ref_;
  }
  return result;
}

}  // namespace readys::rl
