#include "rl/readys_scheduler.hpp"

#include <cmath>
#include <stdexcept>

namespace readys::rl {

ReadysScheduler::ReadysScheduler(const PolicyNet& net, int window,
                                 bool greedy, std::uint64_t seed,
                                 bool random_offer)
    : net_(&net),
      window_(window),
      greedy_(greedy),
      random_offer_(random_offer),
      seed_(seed),
      rng_(seed) {}

void ReadysScheduler::reset(const sim::EngineView& engine) {
  encoder_ = std::make_unique<StateEncoder>(engine.graph(), engine.costs(),
                                            window_);
  rng_ = util::Rng(seed_);
  declined_.clear();
  last_instant_ = -1.0;
}

std::vector<sim::Assignment> ReadysScheduler::decide(
    const sim::EngineView& engine) {
  if (engine.now() != last_instant_) {
    declined_.clear();  // a new instant re-opens parked resources
    last_instant_ = engine.now();
  }
  if (engine.ready().empty()) return {};

  std::vector<sim::ResourceId> cands;
  for (sim::ResourceId r : engine.idle_resources()) {
    if (!declined_.contains(r)) cands.push_back(r);
  }
  while (!cands.empty()) {
    const std::size_t pick =
        random_offer_ ? rng_.uniform_index(cands.size()) : 0;
    const sim::ResourceId current = cands[pick];
    const bool allow_idle = engine.any_running() || cands.size() > 1;
    const Observation obs = encoder_->encode(engine, current, allow_idle);
    const PolicyNet::Output out = net_->forward(obs);

    // Greedy argmax or categorical sample over π.
    const tensor::Tensor& p = out.probs.value();
    // A NaN policy must not silently argmax to action 0: surface it so a
    // wrapper (sched::GuardedScheduler) can fall back to a heuristic.
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!std::isfinite(p[i])) {
        throw std::runtime_error(
            "ReadysScheduler: non-finite policy probability " +
            std::to_string(p[i]) + " at action " + std::to_string(i));
      }
    }
    std::size_t a = 0;
    if (greedy_) {
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i] > p[a]) a = i;
      }
    } else {
      const double u = rng_.uniform();
      double acc = 0.0;
      a = p.size() - 1;
      for (std::size_t i = 0; i < p.size(); ++i) {
        acc += p[i];
        if (u < acc) {
          a = i;
          break;
        }
      }
    }
    if (obs.allow_idle && a == obs.idle_action()) {
      declined_.insert(current);
      cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;  // offer the instant to another idle resource
    }
    return {{obs.ready_tasks[a], current}};
  }
  return {};
}

void register_readys_scheduler(const PolicyNet& net, int window,
                               bool random_offer) {
  sched::registry().add(
      "readys", [&net, window, random_offer](const sched::SchedulerConfig& cfg)
                    -> std::unique_ptr<sim::Scheduler> {
        return std::make_unique<ReadysScheduler>(net, window, cfg.greedy,
                                                 cfg.seed, random_offer);
      });
}

}  // namespace readys::rl
