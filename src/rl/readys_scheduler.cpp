#include "rl/readys_scheduler.hpp"

#include <cmath>
#include <stdexcept>

#include "sched/spec.hpp"

namespace readys::rl {

ReadysScheduler::ReadysScheduler(const PolicyNet& net, int window,
                                 ReadysOptions opts)
    : net_(&net), window_(window), opts_(opts), rng_(opts.seed) {}

void ReadysScheduler::reset(const sim::EngineView& engine) {
  if (opts_.incremental) {
    inc_ = std::make_unique<IncrementalEncoder>(engine.graph(), engine.costs(),
                                                window_);
    // The f32 backend reads Â through the CSR view only; skip the O(n^2)
    // dense build. The f64 reference forward needs the dense matrix.
    if (opts_.backend == InferenceBackendKind::kF32Simd) {
      inc_->set_sparse_ahat(true);
    }
    encoder_.reset();
  } else {
    encoder_ = std::make_unique<StateEncoder>(engine.graph(), engine.costs(),
                                              window_);
    inc_.reset();
  }
  // Rebuilt only when the net's weights actually changed since the last
  // episode (weight_version is bumped on optimizer step / deserialize),
  // so a kF32Simd snapshot tracks the live weights across
  // train-then-evaluate flows without re-snapshotting per reset.
  if (!backend_ || backend_version_ != net_->weight_version()) {
    backend_ = net_->make_inference(opts_.backend);
    backend_version_ = net_->weight_version();
  }
  rng_ = util::Rng(opts_.seed);
  declined_.clear();
  last_instant_ = -1.0;
}

std::vector<sim::Assignment> ReadysScheduler::decide(
    const sim::EngineView& engine) {
  if (engine.now() != last_instant_) {
    declined_.clear();  // a new instant re-opens parked resources
    last_instant_ = engine.now();
  }
  if (engine.ready().empty()) return {};

  std::vector<sim::ResourceId> cands;
  for (sim::ResourceId r : engine.idle_resources()) {
    if (!declined_.contains(r)) cands.push_back(r);
  }
  while (!cands.empty()) {
    const std::size_t pick =
        opts_.random_offer ? rng_.uniform_index(cands.size()) : 0;
    const sim::ResourceId current = cands[pick];
    const bool allow_idle = engine.any_running() || cands.size() > 1;
    const Observation& obs =
        inc_ ? inc_->encode(engine, current, allow_idle)
             : (obs_full_ = encoder_->encode(engine, current, allow_idle));
    backend_->forward(obs, out_);

    // Greedy argmax or categorical sample over π.
    const std::vector<double>& p = out_.probs;
    // A NaN policy must not silently argmax to action 0: surface it so a
    // wrapper (sched::GuardedScheduler) can fall back to a heuristic.
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!std::isfinite(p[i])) {
        throw std::runtime_error(
            "ReadysScheduler: non-finite policy probability " +
            std::to_string(p[i]) + " at action " + std::to_string(i));
      }
    }
    std::size_t a = 0;
    if (opts_.greedy) {
      for (std::size_t i = 1; i < p.size(); ++i) {
        if (p[i] > p[a]) a = i;
      }
    } else {
      const double u = rng_.uniform();
      double acc = 0.0;
      a = p.size() - 1;
      for (std::size_t i = 0; i < p.size(); ++i) {
        acc += p[i];
        if (u < acc) {
          a = i;
          break;
        }
      }
    }
    if (obs.allow_idle && a == obs.idle_action()) {
      declined_.insert(current);
      cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(pick));
      continue;  // offer the instant to another idle resource
    }
    return {{obs.ready_tasks[a], current}};
  }
  return {};
}

namespace {

ReadysOptions parse_readys_options(const sched::SpecOptions& spec,
                                   ReadysOptions opts) {
  for (const auto& [key, value] : spec.items) {
    if (key == "backend") {
      opts.backend = parse_inference_backend(value);  // throws on bad value
    } else if (key == "incremental") {
      opts.incremental = sched::option_int(key, value, 0, 1) != 0;
    } else {
      throw std::invalid_argument("unknown readys option \"" + key +
                                  "\" (known: backend, incremental)");
    }
  }
  return opts;
}

}  // namespace

void register_readys_scheduler(const PolicyNet& net, int window,
                               bool random_offer, ReadysOptions defaults) {
  defaults.random_offer = random_offer;
  sched::registry().add_spec(
      "readys",
      [defaults](const sched::SpecOptions& spec) {
        (void)parse_readys_options(spec, defaults);
      },
      [&net, window, defaults](const sched::SpecOptions& spec,
                               const sched::SchedulerConfig& cfg)
          -> std::unique_ptr<sim::Scheduler> {
        ReadysOptions opts = parse_readys_options(spec, defaults);
        opts.greedy = cfg.greedy;
        opts.seed = cfg.seed;
        return std::make_unique<ReadysScheduler>(net, window, opts);
      });
}

}  // namespace readys::rl
