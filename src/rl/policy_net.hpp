#pragma once

#include <memory>
#include <vector>

#include "nn/gcn.hpp"
#include "nn/linear.hpp"
#include "rl/config.hpp"
#include "rl/state_encoder.hpp"

namespace readys::rl {

class InferenceBackend;
enum class InferenceBackendKind : int;

using tensor::Var;

/// The READYS network (Fig. 2 of the paper).
///
/// A stack of GCN layers embeds the window sub-DAG. The critic projects
/// the mean-pooled embedding to a scalar V(s). The actor scores each
/// ready task via a shared one-dimensional projection of its embedding;
/// the ∅ action's score is projected from [resource-state embedding ‖
/// max-pooled DAG embedding]. A softmax over the scores yields π(a|s).
class PolicyNet : public nn::Module {
 public:
  struct Output {
    Var probs;      ///< 1 x num_actions
    Var log_probs;  ///< 1 x num_actions
    Var value;      ///< 1 x 1
  };

  PolicyNet(int node_features, int resource_features, const AgentConfig& cfg);

  /// Full forward pass for one observation. Requires at least one ready
  /// task (decision instants always have one by construction).
  Output forward(const Observation& obs) const;

  /// Batched forward over N observations (possibly from different
  /// graphs, as long as the feature width matches): the N window
  /// sub-DAGs run through the GCN trunk as one block-diagonal pass and
  /// the heads as packed matrices; softmax/value stay per-observation.
  /// outs[g] matches forward(*batch[g]) bit-for-bit in value (the ops
  /// replicate the per-graph arithmetic exactly); gradients agree to
  /// floating-point accumulation order (≤1e-10 in practice). A batch of
  /// one delegates to forward(), so single-env training is structurally
  /// identical to the sequential path, backward included.
  std::vector<Output> forward_batched(
      const std::vector<const Observation*>& batch) const;

  int node_features() const noexcept { return node_features_; }
  int resource_features() const noexcept { return resource_features_; }
  int hidden() const noexcept { return hidden_; }
  int num_gcn_layers() const noexcept {
    return static_cast<int>(gcn_.size());
  }
  bool critic_sees_resources() const noexcept {
    return critic_sees_resources_;
  }

  /// Builds an inference-only backend over this net (see
  /// rl/inference.hpp): kF64Ref reads the weights live and reproduces
  /// forward()/forward_batched() bit-for-bit; kF32Simd freezes a float32
  /// snapshot of the current weights for the SIMD fast path. The net
  /// must outlive a kF64Ref backend; a kF32Simd backend is
  /// self-contained after construction.
  std::unique_ptr<InferenceBackend> make_inference(
      InferenceBackendKind kind) const;

 private:
  /// GCN stack -> (|window| x hidden) node embeddings.
  Var embed(const Observation& obs) const;

  int node_features_;
  int resource_features_;
  int hidden_;
  bool critic_sees_resources_ = true;
  std::vector<std::unique_ptr<nn::GCNLayer>> gcn_;
  std::unique_ptr<nn::Linear> actor_head_;   // hidden -> 1
  std::unique_ptr<nn::Linear> res_proj_;     // resource feats -> hidden
  std::unique_ptr<nn::Linear> idle_head_;    // 2*hidden -> 1
  std::unique_ptr<nn::Linear> value_head_;   // hidden -> 1
};

}  // namespace readys::rl
