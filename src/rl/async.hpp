#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <vector>

#include "rl/env.hpp"
#include "rl/vec_env.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace readys::rl {

/// One completed episode, recorded as plain data (no autograd graph):
/// everything a learner needs to re-forward the trajectory and compute a
/// loss. Rewards are the raw environment rewards — the trainer applies
/// its shaping (squash/clip) at update time, exactly once, so the same
/// record serves both the synchronous lockstep rollout and the async
/// actor threads.
struct EpisodeRollout {
  int index = 0;  ///< global episode number (seeds derive from it)
  std::vector<Observation> observations;  ///< one per decision
  std::vector<std::size_t> actions;
  std::vector<double> rewards;    ///< raw env reward after each action
  std::vector<double> log_probs;  ///< log pi(a|s) at act time (PPO)
  std::vector<double> values;     ///< V(s) at act time (PPO)
  double reward_sum = 0.0;        ///< sum of raw rewards
  double makespan = 0.0;
  std::size_t decisions = 0;
};

/// Samples an index from a 1xN probability row — the same cumulative
/// scan (with the same numerical-slack fallback) as
/// A2CTrainer::select_action, but over a caller-owned stream so actors
/// can draw from per-episode RNGs.
std::size_t sample_categorical(const tensor::Tensor& probs, util::Rng& rng);

/// Bounded multi-producer single-consumer queue of finished episodes.
///
/// push() blocks while the queue is full (backpressure keeps actors at
/// most `capacity` episodes ahead of the learner) and returns false once
/// the queue is closed. pop() blocks while empty and returns false when
/// the queue is closed and drained, or immediately when a producer
/// failed — the consumer then rethrows error(). The first failure wins.
class EpisodeQueue {
 public:
  explicit EpisodeQueue(std::size_t capacity);

  EpisodeQueue(const EpisodeQueue&) = delete;
  EpisodeQueue& operator=(const EpisodeQueue&) = delete;

  bool push(EpisodeRollout rec);
  bool pop(EpisodeRollout& out);

  /// Wakes all waiters; further pushes fail, pops drain then fail.
  void close();

  /// Records a producer's exception (first one wins) and closes.
  void fail(std::exception_ptr error);

  std::exception_ptr error() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<EpisodeRollout> items_;
  std::size_t capacity_;
  bool closed_ = false;
  std::exception_ptr error_;
};

/// The actor half of the async actor–learner split (IMPALA-style, see
/// docs/api.md): `actors` threads each own one VecEnv slot, repeatedly
/// claim the next global episode index, run the whole episode with the
/// provided policy callback, and push the finished EpisodeRollout into
/// the queue.
///
/// Determinism contract: the env is fully reseeded from
/// env_seed + index and the action stream is derived from
/// (action_seed, index), so a trajectory is a pure function of (episode
/// index, policy weights snapshotted at episode start) — never of which
/// thread ran it.
/// Both modes gate claims to a released window of `window` indices that
/// the learner advances after each update — the window bounds how stale
/// the acting weights can get (unbounded run-ahead demonstrably
/// collapses A2C learning; see BENCH_train_quality.json). Strict mode
/// sets window = batch so every actor is parked while the weights
/// change, making weights-at-act-time reproducible; free mode adds
/// ~one in-flight episode per actor on top so actors keep working
/// through the update at the cost of that bounded staleness.
class ActorPool {
 public:
  /// What the policy callback returns for one decision.
  struct Act {
    std::size_t action = 0;
    double log_prob = 0.0;  ///< log pi(action | obs)
    double value = 0.0;     ///< V(obs)
  };
  /// Called once per decision; must be thread-safe across slots (the
  /// trainers forward through a per-slot policy replica under a
  /// tensor::NoGradGuard, so slots never share mutable state).
  using Policy =
      std::function<Act(std::size_t slot, const Observation&, util::Rng&)>;

  struct Options {
    int first_episode = 0;  ///< first index to run (resume offset)
    int episodes = 0;       ///< exclusive end index
    std::size_t actors = 1;
    std::uint64_t env_seed = 0;     ///< episode i reseeds env_seed + i
    std::uint64_t action_seed = 0;  ///< per-episode stream base
    bool strict = false;  ///< park actors during updates (determinism)
    int window = 1;       ///< claimable look-ahead past the last release
    /// Called right after a claim, before the episode runs — the
    /// trainers snapshot the learner weights into the slot's replica
    /// here, so one trajectory acts under one consistent policy (a
    /// trajectory whose decisions straddle weight updates demonstrably
    /// collapses A2C learning; see BENCH_train_quality.json).
    std::function<void(std::size_t slot, int episode)> on_episode_start;
  };

  /// Starts the actor threads immediately. `actors` is clamped to
  /// envs.size() — each actor owns envs.env(slot) exclusively.
  ActorPool(VecEnv& envs, EpisodeQueue& queue, Policy policy,
            const Options& opts);

  /// Stops claiming, closes the queue, and joins the threads.
  ~ActorPool();

  ActorPool(const ActorPool&) = delete;
  ActorPool& operator=(const ActorPool&) = delete;

  /// Strict mode: allows claims of indices < bound. No-op when the bound
  /// does not advance; free mode releases everything up front.
  void release_below(int bound);

  /// Waits for the actors to finish naturally (all indices claimed and
  /// pushed, or the queue closed/failed).
  void join();

 private:
  /// Next episode index for this actor, or -1 to shut down.
  int claim();
  void actor_loop(std::size_t slot);
  void stop();

  VecEnv* envs_;
  EpisodeQueue* queue_;
  Policy policy_;
  Options opts_;

  std::mutex mutex_;
  std::condition_variable cv_;
  int next_;      ///< next unclaimed episode index
  int released_;  ///< indices < released_ may be claimed
  bool stop_ = false;
  bool joined_ = false;

  util::ThreadPool pool_;
  std::vector<std::future<void>> futures_;
};

}  // namespace readys::rl
