#include "tensor/f32.hpp"

#include <algorithm>
#include <atomic>

#if defined(__x86_64__) && !defined(READYS_NO_AVX2)
#define READYS_F32_HAVE_AVX2 1
#include <immintrin.h>
#else
#define READYS_F32_HAVE_AVX2 0
#endif

namespace readys::tensor::f32 {

namespace {

std::atomic<bool> g_force_scalar{false};

void matmul_bias_scalar(const float* a, std::size_t m, std::size_t k,
                        const float* b, std::size_t n, const float* bias,
                        float* c) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (bias != nullptr) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = bias[j];
    } else {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    const float* arow = a + i * k;
    for (std::size_t l = 0; l < k; ++l) {
      const float ail = arow[l];
      if (ail == 0.0f) continue;  // sparse adjacency rows skip cheaply
      const float* brow = b + l * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += ail * brow[j];
    }
  }
}

#if READYS_F32_HAVE_AVX2
// Same i-l-j loop (each output element accumulates the inner dimension
// in ascending order, like the scalar kernel and the f64 matmul_value);
// only the j loop is 8-wide and mul+add fuses into FMA.
__attribute__((target("avx2,fma"))) void matmul_bias_avx2(
    const float* a, std::size_t m, std::size_t k, const float* b,
    std::size_t n, const float* bias, float* c) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    std::size_t j = 0;
    if (bias != nullptr) {
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(crow + j, _mm256_loadu_ps(bias + j));
      }
      for (; j < n; ++j) crow[j] = bias[j];
    } else {
      const __m256 zero = _mm256_setzero_ps();
      for (; j + 8 <= n; j += 8) _mm256_storeu_ps(crow + j, zero);
      for (; j < n; ++j) crow[j] = 0.0f;
    }
    const float* arow = a + i * k;
    for (std::size_t l = 0; l < k; ++l) {
      const float ail = arow[l];
      if (ail == 0.0f) continue;
      const float* brow = b + l * n;
      const __m256 av = _mm256_set1_ps(ail);
      j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 cv = _mm256_loadu_ps(crow + j);
        cv = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + j), cv);
        _mm256_storeu_ps(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += ail * brow[j];
    }
  }
}
#endif  // READYS_F32_HAVE_AVX2

void spmm_bias_scalar(const std::size_t* row_ptr, const std::size_t* col,
                      const double* val, std::size_t m, const float* x,
                      std::size_t n, const float* bias, float* c) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (bias != nullptr) {
      for (std::size_t j = 0; j < n; ++j) crow[j] = bias[j];
    } else {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const float a = static_cast<float>(val[p]);
      const float* xrow = x + col[p] * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += a * xrow[j];
    }
  }
}

#if READYS_F32_HAVE_AVX2
__attribute__((target("avx2,fma"))) void spmm_bias_avx2(
    const std::size_t* row_ptr, const std::size_t* col, const double* val,
    std::size_t m, const float* x, std::size_t n, const float* bias,
    float* c) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    std::size_t j = 0;
    if (bias != nullptr) {
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(crow + j, _mm256_loadu_ps(bias + j));
      }
      for (; j < n; ++j) crow[j] = bias[j];
    } else {
      const __m256 zero = _mm256_setzero_ps();
      for (; j + 8 <= n; j += 8) _mm256_storeu_ps(crow + j, zero);
      for (; j < n; ++j) crow[j] = 0.0f;
    }
    for (std::size_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
      const float a = static_cast<float>(val[p]);
      const float* xrow = x + col[p] * n;
      const __m256 av = _mm256_set1_ps(a);
      j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 cv = _mm256_loadu_ps(crow + j);
        cv = _mm256_fmadd_ps(av, _mm256_loadu_ps(xrow + j), cv);
        _mm256_storeu_ps(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += a * xrow[j];
    }
  }
}
#endif  // READYS_F32_HAVE_AVX2

}  // namespace

bool avx2_compiled() noexcept { return READYS_F32_HAVE_AVX2 != 0; }

bool avx2_available() noexcept {
#if READYS_F32_HAVE_AVX2
  // __builtin_cpu_supports caches the cpuid probe after the first call.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const char* isa_name(Isa isa) noexcept {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

Isa active_isa() noexcept {
  if (g_force_scalar.load(std::memory_order_relaxed)) return Isa::kScalar;
  return avx2_available() ? Isa::kAvx2 : Isa::kScalar;
}

void force_scalar(bool on) noexcept {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

void matmul_bias(const float* a, std::size_t m, std::size_t k,
                 const float* b, std::size_t n, const float* bias,
                 float* c) noexcept {
#if READYS_F32_HAVE_AVX2
  if (active_isa() == Isa::kAvx2) {
    matmul_bias_avx2(a, m, k, b, n, bias, c);
    return;
  }
#endif
  matmul_bias_scalar(a, m, k, b, n, bias, c);
}

void spmm_bias(const std::size_t* row_ptr, const std::size_t* col,
               const double* val, std::size_t m, const float* x,
               std::size_t n, const float* bias, float* c) noexcept {
#if READYS_F32_HAVE_AVX2
  if (active_isa() == Isa::kAvx2) {
    spmm_bias_avx2(row_ptr, col, val, m, x, n, bias, c);
    return;
  }
#endif
  spmm_bias_scalar(row_ptr, col, val, m, x, n, bias, c);
}

void relu_inplace(float* x, std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::max(x[i], 0.0f);
}

void mean_cols(const float* x, std::size_t m, std::size_t n,
               float* out) noexcept {
  for (std::size_t j = 0; j < n; ++j) out[j] = 0.0f;
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = x + i * n;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(m);
  for (std::size_t j = 0; j < n; ++j) out[j] *= inv;
}

void max_cols(const float* x, std::size_t m, std::size_t n,
              float* out) noexcept {
  for (std::size_t j = 0; j < n; ++j) out[j] = x[j];
  for (std::size_t i = 1; i < m; ++i) {
    const float* row = x + i * n;
    for (std::size_t j = 0; j < n; ++j) out[j] = std::max(out[j], row[j]);
  }
}

float dot(const float* a, const float* b, std::size_t n) noexcept {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace readys::tensor::f32
