#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.hpp"

namespace readys::tensor {

namespace detail {

/// One node of the dynamically-built (define-by-run) computation graph.
struct Node {
  Tensor value;
  Tensor grad;  ///< lazily allocated to value's shape on first touch
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Propagates this->grad into parents' grads. Empty for leaves.
  std::function<void(Node&)> backward_fn;

  Tensor& ensure_grad();
};

}  // namespace detail

/// Whether ops on this thread record the computation graph. Defaults to
/// true; toggled by NoGradGuard. When false, Var::make_op returns a plain
/// leaf holding the forward value — no parents, no backward closure — so
/// inference-only rollouts pay neither the allocation nor the retention
/// cost of the graph.
bool grad_enabled() noexcept;

/// RAII scope that disables graph recording on the current thread.
///
/// Forward values are bit-identical with and without the guard (the same
/// arithmetic runs either way); only bookkeeping is skipped. Nestable;
/// restores the previous state on destruction.
class NoGradGuard {
 public:
  NoGradGuard() noexcept;
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Handle to an autograd variable (shared ownership of the graph node).
///
/// Vars are created from Tensors (leaves, optionally trainable) or by the
/// ops in ops.hpp. Calling backward() on a scalar Var runs reverse-mode
/// differentiation through every reachable ancestor that requires grad.
class Var {
 public:
  Var() = default;

  /// Wraps a value as a graph leaf.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const noexcept { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  Tensor& mutable_value() { return node_->value; }
  bool requires_grad() const noexcept {
    return node_ && node_->requires_grad;
  }

  /// Accumulated gradient (zeros until backward() reaches this node).
  const Tensor& grad() const;

  /// Zeroes this node's gradient buffer (if allocated).
  void zero_grad() noexcept;

  std::size_t rows() const noexcept { return node_->value.rows(); }
  std::size_t cols() const noexcept { return node_->value.cols(); }

  /// Runs reverse-mode autodiff from this variable. The value must be a
  /// scalar (1x1); its gradient is seeded with 1. Gradients accumulate, so
  /// call zero_grad on parameters (or Optimizer::zero_grad) between steps.
  void backward() const;

  /// Internal: constructs an op result node.
  static Var make_op(Tensor value, std::vector<Var> parents,
                     std::function<void(detail::Node&)> backward_fn);

  const std::shared_ptr<detail::Node>& node() const noexcept { return node_; }

 private:
  std::shared_ptr<detail::Node> node_;
};

}  // namespace readys::tensor
