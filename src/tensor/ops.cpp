#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace readys::tensor {

namespace {

using detail::Node;

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Accumulates `g` into the parent's grad if it participates in autodiff.
void accumulate(const std::shared_ptr<Node>& parent, const Tensor& g) {
  if (!parent->requires_grad) return;
  parent->ensure_grad().add_(g);
}

enum class Broadcast { kNone, kRow, kScalar };

Broadcast broadcast_kind(const Tensor& a, const Tensor& b, const char* op) {
  if (a.same_shape(b)) return Broadcast::kNone;
  if (b.rows() == 1 && b.cols() == a.cols()) return Broadcast::kRow;
  if (b.rows() == 1 && b.cols() == 1) return Broadcast::kScalar;
  throw std::invalid_argument(std::string(op) + ": incompatible shapes");
}

/// Reduces a full-shape gradient back to the broadcast operand's shape.
Tensor reduce_for_broadcast(const Tensor& g, Broadcast kind) {
  if (kind == Broadcast::kNone) return g;
  if (kind == Broadcast::kScalar) {
    Tensor out(1, 1);
    out[0] = g.sum();
    return out;
  }
  Tensor out(1, g.cols());
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t c = 0; c < g.cols(); ++c) out[c] += g.at(r, c);
  }
  return out;
}

/// Generic elementwise unary op with derivative expressed from (x, y).
template <typename Fwd, typename Bwd>
Var unary_elementwise(const Var& a, Fwd fwd, Bwd dydx) {
  Tensor out(a.rows(), a.cols());
  const Tensor& x = a.value();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = fwd(x[i]);
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa, dydx](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& pg = pa->ensure_grad();
    const Tensor& x = pa->value;
    for (std::size_t i = 0; i < x.size(); ++i) {
      pg[i] += self.grad[i] * dydx(x[i], self.value[i]);
    }
  });
}

}  // namespace

Var matmul(const Var& a, const Var& b) {
  require(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Tensor out = matmul_value(a.value(), b.value());
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  auto pb = b.node();
  return Var::make_op(std::move(out), {a, b}, [pa, pb](Node& self) {
    const Tensor& g = self.grad;
    if (pa->requires_grad) {
      // dA = G * B^T, with B^T materialized so the hot loop streams
      // contiguous rows into independent accumulators — the form the
      // compiler can vectorize without reassociating any reduction (each
      // dA element still gathers its terms in ascending j).
      Tensor& ga = pa->ensure_grad();
      const Tensor& bv = pb->value;
      const std::size_t K = bv.rows();
      const std::size_t N = bv.cols();
      Tensor bt(N, K);
      for (std::size_t k = 0; k < K; ++k) {
        const double* brow = bv.data() + k * N;
        for (std::size_t j = 0; j < N; ++j) bt.at(j, k) = brow[j];
      }
      for (std::size_t i = 0; i < ga.rows(); ++i) {
        double* garow = ga.data() + i * K;
        const double* grow = g.data() + i * N;
        for (std::size_t j = 0; j < N; ++j) {
          const double gij = grow[j];
          if (gij == 0.0) continue;
          const double* btrow = bt.data() + j * K;
          for (std::size_t k = 0; k < K; ++k) garow[k] += gij * btrow[k];
        }
      }
    }
    if (pb->requires_grad) {
      // dB = A^T * G in the same scattered i-k-j form (per-element terms
      // still accumulate in ascending i; A's ReLU zeros skip whole rows
      // of work, as in matmul_value).
      Tensor& gb = pb->ensure_grad();
      const Tensor& av = pa->value;
      const std::size_t K = av.cols();
      const std::size_t N = g.cols();
      for (std::size_t i = 0; i < av.rows(); ++i) {
        const double* arow = av.data() + i * K;
        const double* grow = g.data() + i * N;
        for (std::size_t k = 0; k < K; ++k) {
          const double aik = arow[k];
          if (aik == 0.0) continue;
          double* gbrow = gb.data() + k * N;
          for (std::size_t j = 0; j < N; ++j) gbrow[j] += aik * grow[j];
        }
      }
    }
  });
}

Var add(const Var& a, const Var& b) {
  const Broadcast kind = broadcast_kind(a.value(), b.value(), "add");
  Tensor out = a.value();
  const Tensor& bv = b.value();
  switch (kind) {
    case Broadcast::kNone:
      out.add_(bv);
      break;
    case Broadcast::kRow:
      for (std::size_t r = 0; r < out.rows(); ++r) {
        for (std::size_t c = 0; c < out.cols(); ++c) out.at(r, c) += bv[c];
      }
      break;
    case Broadcast::kScalar:
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += bv[0];
      break;
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  auto pb = b.node();
  return Var::make_op(std::move(out), {a, b}, [pa, pb, kind](Node& self) {
    accumulate(pa, self.grad);
    if (pb->requires_grad) {
      pb->ensure_grad().add_(reduce_for_broadcast(self.grad, kind));
    }
  });
}

Var sub(const Var& a, const Var& b) {
  const Broadcast kind = broadcast_kind(a.value(), b.value(), "sub");
  Tensor out = a.value();
  const Tensor& bv = b.value();
  switch (kind) {
    case Broadcast::kNone:
      for (std::size_t i = 0; i < out.size(); ++i) out[i] -= bv[i];
      break;
    case Broadcast::kRow:
      for (std::size_t r = 0; r < out.rows(); ++r) {
        for (std::size_t c = 0; c < out.cols(); ++c) out.at(r, c) -= bv[c];
      }
      break;
    case Broadcast::kScalar:
      for (std::size_t i = 0; i < out.size(); ++i) out[i] -= bv[0];
      break;
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  auto pb = b.node();
  return Var::make_op(std::move(out), {a, b}, [pa, pb, kind](Node& self) {
    accumulate(pa, self.grad);
    if (pb->requires_grad) {
      Tensor g = reduce_for_broadcast(self.grad, kind);
      g.scale_(-1.0);
      pb->ensure_grad().add_(g);
    }
  });
}

Var mul(const Var& a, const Var& b) {
  const Broadcast kind = broadcast_kind(a.value(), b.value(), "mul");
  require(kind != Broadcast::kRow, "mul: row broadcast not supported");
  Tensor out = a.value();
  const Tensor& bv = b.value();
  if (kind == Broadcast::kNone) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] *= bv[i];
  } else {
    out.scale_(bv[0]);
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  auto pb = b.node();
  return Var::make_op(std::move(out), {a, b}, [pa, pb, kind](Node& self) {
    const Tensor& g = self.grad;
    if (pa->requires_grad) {
      Tensor& ga = pa->ensure_grad();
      if (kind == Broadcast::kNone) {
        for (std::size_t i = 0; i < g.size(); ++i) {
          ga[i] += g[i] * pb->value[i];
        }
      } else {
        for (std::size_t i = 0; i < g.size(); ++i) {
          ga[i] += g[i] * pb->value[0];
        }
      }
    }
    if (pb->requires_grad) {
      Tensor& gb = pb->ensure_grad();
      if (kind == Broadcast::kNone) {
        for (std::size_t i = 0; i < g.size(); ++i) {
          gb[i] += g[i] * pa->value[i];
        }
      } else {
        double acc = 0.0;
        for (std::size_t i = 0; i < g.size(); ++i) acc += g[i] * pa->value[i];
        gb[0] += acc;
      }
    }
  });
}

Var scale(const Var& a, double s) {
  Tensor out = a.value();
  out.scale_(s);
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa, s](Node& self) {
    if (!pa->requires_grad) return;
    Tensor g = self.grad;
    g.scale_(s);
    pa->ensure_grad().add_(g);
  });
}

Var add_scalar(const Var& a, double s) {
  Tensor out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += s;
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a},
                      [pa](Node& self) { accumulate(pa, self.grad); });
}

Var neg(const Var& a) { return scale(a, -1.0); }

Var relu(const Var& a) {
  return unary_elementwise(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var leaky_relu(const Var& a, double slope) {
  return unary_elementwise(
      a, [slope](double x) { return x > 0.0 ? x : slope * x; },
      [slope](double x, double) { return x > 0.0 ? 1.0 : slope; });
}

Var tanh_op(const Var& a) {
  return unary_elementwise(
      a, [](double x) { return std::tanh(x); },
      [](double, double y) { return 1.0 - y * y; });
}

Var sigmoid(const Var& a) {
  return unary_elementwise(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double, double y) { return y * (1.0 - y); });
}

Var exp_op(const Var& a) {
  return unary_elementwise(
      a, [](double x) { return std::exp(x); },
      [](double, double y) { return y; });
}

Var log_op(const Var& a, double eps) {
  return unary_elementwise(
      a, [eps](double x) { return std::log(std::max(x, eps)); },
      [eps](double x, double) { return 1.0 / std::max(x, eps); });
}

Var square(const Var& a) {
  return unary_elementwise(
      a, [](double x) { return x * x; },
      [](double x, double) { return 2.0 * x; });
}

Var sum_all(const Var& a) {
  Tensor out(1, 1);
  out[0] = a.value().sum();
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& g = pa->ensure_grad();
    const double gs = self.grad[0];
    for (std::size_t i = 0; i < g.size(); ++i) g[i] += gs;
  });
}

Var mean_all(const Var& a) {
  require(a.value().size() > 0, "mean_all: empty tensor");
  return scale(sum_all(a), 1.0 / static_cast<double>(a.value().size()));
}

Var sum_rows(const Var& a) {
  Tensor out(1, a.cols());
  const Tensor& x = a.value();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) out[c] += x.at(r, c);
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& g = pa->ensure_grad();
    for (std::size_t r = 0; r < g.rows(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) g.at(r, c) += self.grad[c];
    }
  });
}

Var mean_rows(const Var& a) {
  require(a.rows() > 0, "mean_rows: empty tensor");
  return scale(sum_rows(a), 1.0 / static_cast<double>(a.rows()));
}

Var max_rows(const Var& a) {
  require(a.rows() > 0, "max_rows: empty tensor");
  const Tensor& x = a.value();
  Tensor out(1, x.cols());
  std::vector<std::size_t> argmax(x.cols(), 0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double best = x.at(0, c);
    for (std::size_t r = 1; r < x.rows(); ++r) {
      if (x.at(r, c) > best) {
        best = x.at(r, c);
        argmax[c] = r;
      }
    }
    out[c] = best;
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(
      std::move(out), {a}, [pa, argmax = std::move(argmax)](Node& self) {
        if (!pa->requires_grad) return;
        Tensor& g = pa->ensure_grad();
        for (std::size_t c = 0; c < g.cols(); ++c) {
          g.at(argmax[c], c) += self.grad[c];
        }
      });
}

Var concat_cols(const Var& a, const Var& b) {
  require(a.rows() == b.rows(), "concat_cols: row count mismatch");
  const Tensor& av = a.value();
  const Tensor& bv = b.value();
  Tensor out(av.rows(), av.cols() + bv.cols());
  for (std::size_t r = 0; r < av.rows(); ++r) {
    for (std::size_t c = 0; c < av.cols(); ++c) out.at(r, c) = av.at(r, c);
    for (std::size_t c = 0; c < bv.cols(); ++c) {
      out.at(r, av.cols() + c) = bv.at(r, c);
    }
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  auto pb = b.node();
  const std::size_t ac = av.cols();
  return Var::make_op(std::move(out), {a, b}, [pa, pb, ac](Node& self) {
    const Tensor& g = self.grad;
    if (pa->requires_grad) {
      Tensor& ga = pa->ensure_grad();
      for (std::size_t r = 0; r < ga.rows(); ++r) {
        for (std::size_t c = 0; c < ga.cols(); ++c) {
          ga.at(r, c) += g.at(r, c);
        }
      }
    }
    if (pb->requires_grad) {
      Tensor& gb = pb->ensure_grad();
      for (std::size_t r = 0; r < gb.rows(); ++r) {
        for (std::size_t c = 0; c < gb.cols(); ++c) {
          gb.at(r, c) += g.at(r, ac + c);
        }
      }
    }
  });
}

Var concat_rows(const std::vector<Var>& parts) {
  require(!parts.empty(), "concat_rows: no parts");
  const std::size_t cols = parts.front().cols();
  std::size_t rows = 0;
  for (const auto& p : parts) {
    require(p.cols() == cols, "concat_rows: column count mismatch");
    rows += p.rows();
  }
  Tensor out(rows, cols);
  std::size_t r0 = 0;
  std::vector<std::size_t> offsets;
  offsets.reserve(parts.size());
  for (const auto& p : parts) {
    offsets.push_back(r0);
    const Tensor& v = p.value();
    for (std::size_t r = 0; r < v.rows(); ++r) {
      for (std::size_t c = 0; c < cols; ++c) out.at(r0 + r, c) = v.at(r, c);
    }
    r0 += v.rows();
  }
  if (!grad_enabled()) return Var(std::move(out));
  std::vector<std::shared_ptr<Node>> pnodes;
  pnodes.reserve(parts.size());
  for (const auto& p : parts) pnodes.push_back(p.node());
  return Var::make_op(
      std::move(out), parts,
      [pnodes = std::move(pnodes), offsets = std::move(offsets)](Node& self) {
        for (std::size_t k = 0; k < pnodes.size(); ++k) {
          auto& p = pnodes[k];
          if (!p->requires_grad) continue;
          Tensor& g = p->ensure_grad();
          for (std::size_t r = 0; r < g.rows(); ++r) {
            for (std::size_t c = 0; c < g.cols(); ++c) {
              g.at(r, c) += self.grad.at(offsets[k] + r, c);
            }
          }
        }
      });
}

Var slice_rows(const Var& a, std::size_t begin, std::size_t count) {
  require(begin + count <= a.rows(), "slice_rows: out of range");
  const Tensor& x = a.value();
  Tensor out(count, x.cols());
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out.at(r, c) = x.at(begin + r, c);
    }
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa, begin](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& g = pa->ensure_grad();
    for (std::size_t r = 0; r < self.grad.rows(); ++r) {
      for (std::size_t c = 0; c < self.grad.cols(); ++c) {
        g.at(begin + r, c) += self.grad.at(r, c);
      }
    }
  });
}

Var gather_rows(const Var& a, const std::vector<std::size_t>& indices) {
  const Tensor& x = a.value();
  for (std::size_t i : indices) {
    require(i < x.rows(), "gather_rows: index out of range");
  }
  Tensor out(indices.size(), x.cols());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out.at(r, c) = x.at(indices[r], c);
    }
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa, indices](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& g = pa->ensure_grad();
    for (std::size_t r = 0; r < indices.size(); ++r) {
      for (std::size_t c = 0; c < g.cols(); ++c) {
        g.at(indices[r], c) += self.grad.at(r, c);
      }
    }
  });
}

Var softmax_row(const Var& a) {
  require(a.rows() == 1 && a.cols() >= 1, "softmax_row: expects 1 x N");
  const Tensor& x = a.value();
  Tensor out(1, x.cols());
  double mx = x[0];
  for (std::size_t i = 1; i < x.size(); ++i) mx = std::max(mx, x[i]);
  double z = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(x[i] - mx);
    z += out[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) out[i] /= z;
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& g = pa->ensure_grad();
    const Tensor& y = self.value;
    double dot = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) dot += self.grad[i] * y[i];
    for (std::size_t i = 0; i < y.size(); ++i) {
      g[i] += y[i] * (self.grad[i] - dot);
    }
  });
}

Var log_softmax_row(const Var& a) {
  require(a.rows() == 1 && a.cols() >= 1, "log_softmax_row: expects 1 x N");
  const Tensor& x = a.value();
  Tensor out(1, x.cols());
  double mx = x[0];
  for (std::size_t i = 1; i < x.size(); ++i) mx = std::max(mx, x[i]);
  double z = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) z += std::exp(x[i] - mx);
  const double logz = mx + std::log(z);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - logz;
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& g = pa->ensure_grad();
    const Tensor& logp = self.value;
    double gsum = 0.0;
    for (std::size_t i = 0; i < logp.size(); ++i) gsum += self.grad[i];
    for (std::size_t i = 0; i < logp.size(); ++i) {
      g[i] += self.grad[i] - std::exp(logp[i]) * gsum;
    }
  });
}

Var reshape(const Var& a, std::size_t rows, std::size_t cols) {
  require(rows * cols == a.value().size(), "reshape: size mismatch");
  Tensor out(rows, cols);
  const Tensor& x = a.value();
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i];
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa](Node& self) {
    if (!pa->requires_grad) return;
    Tensor& g = pa->ensure_grad();
    for (std::size_t i = 0; i < g.size(); ++i) g[i] += self.grad[i];
  });
}

Var pick(const Var& a, std::size_t r, std::size_t c) {
  require(r < a.rows() && c < a.cols(), "pick: index out of range");
  Tensor out(1, 1);
  out[0] = a.value().at(r, c);
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(std::move(out), {a}, [pa, r, c](Node& self) {
    if (!pa->requires_grad) return;
    pa->ensure_grad().at(r, c) += self.grad[0];
  });
}

Var mse(const Var& a, const Var& b) {
  require(a.value().same_shape(b.value()), "mse: shape mismatch");
  return mean_all(square(sub(a, b)));
}

Var entropy_row(const Var& p, double eps) {
  require(p.rows() == 1, "entropy_row: expects 1 x N");
  return neg(sum_all(mul(p, log_op(p, eps))));
}

namespace {

void require_offsets(const std::vector<std::size_t>& offsets,
                     std::size_t rows, const char* op) {
  require(offsets.size() >= 2 && offsets.front() == 0 &&
              offsets.back() == rows,
          "segment op: offsets must start at 0 and end at a.rows()");
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    if (offsets[s] >= offsets[s + 1]) {
      throw std::invalid_argument(std::string(op) + ": empty segment");
    }
  }
}

}  // namespace

Var block_diag_matmul(
    const std::shared_ptr<const std::vector<Tensor>>& blocks, const Var& h) {
  require(blocks != nullptr && !blocks->empty(),
          "block_diag_matmul: no blocks");
  std::size_t n_total = 0;
  for (const Tensor& b : *blocks) {
    require(b.rows() == b.cols(), "block_diag_matmul: blocks must be square");
    n_total += b.rows();
  }
  require(n_total == h.rows(), "block_diag_matmul: row count mismatch");
  const Tensor& hv = h.value();
  Tensor out(n_total, hv.cols());
  std::size_t r0 = 0;
  for (const Tensor& b : *blocks) {
    // The i-k-j kernel of matmul_value, shifted into the block's rows, so
    // each segment comes out bit-identical to matmul(block, h_segment).
    const std::size_t n = b.rows();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        const double aik = b.at(i, k);
        if (aik == 0.0) continue;
        const double* hrow = hv.data() + (r0 + k) * hv.cols();
        double* orow = out.data() + (r0 + i) * out.cols();
        for (std::size_t j = 0; j < hv.cols(); ++j) orow[j] += aik * hrow[j];
      }
    }
    r0 += n;
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto ph = h.node();
  return Var::make_op(std::move(out), {h}, [ph, blocks](Node& self) {
    if (!ph->requires_grad) return;
    // dH = block^T * G per segment — matmul's dB kernel with A = block,
    // in the scattered form whose inner loop streams G's row into
    // independent accumulators (vectorizes; ascending-i accumulation per
    // element; adjacency zeros skip whole rows of work).
    Tensor& gh = ph->ensure_grad();
    const Tensor& g = self.grad;
    const std::size_t cols = g.cols();
    std::size_t r0 = 0;
    for (const Tensor& b : *blocks) {
      const std::size_t n = b.rows();
      for (std::size_t i = 0; i < n; ++i) {
        const double* grow = g.data() + (r0 + i) * cols;
        for (std::size_t k = 0; k < n; ++k) {
          const double bik = b.at(i, k);
          if (bik == 0.0) continue;
          double* ghrow = gh.data() + (r0 + k) * cols;
          for (std::size_t j = 0; j < cols; ++j) ghrow[j] += bik * grow[j];
        }
      }
      r0 += n;
    }
  });
}

Var segment_mean_rows(const Var& a,
                      const std::vector<std::size_t>& offsets) {
  require_offsets(offsets, a.rows(), "segment_mean_rows");
  const std::size_t segs = offsets.size() - 1;
  const Tensor& x = a.value();
  Tensor out(segs, x.cols());
  std::vector<double> inv(segs);
  for (std::size_t s = 0; s < segs; ++s) {
    inv[s] = 1.0 / static_cast<double>(offsets[s + 1] - offsets[s]);
    // Sum first, multiply after — mean_rows is scale(sum_rows, 1/n).
    for (std::size_t r = offsets[s]; r < offsets[s + 1]; ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        out.at(s, c) += x.at(r, c);
      }
    }
    for (std::size_t c = 0; c < x.cols(); ++c) out.at(s, c) *= inv[s];
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(
      std::move(out), {a},
      [pa, offsets, inv = std::move(inv)](Node& self) {
        if (!pa->requires_grad) return;
        Tensor& g = pa->ensure_grad();
        for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
          for (std::size_t r = offsets[s]; r < offsets[s + 1]; ++r) {
            for (std::size_t c = 0; c < g.cols(); ++c) {
              g.at(r, c) += self.grad.at(s, c) * inv[s];
            }
          }
        }
      });
}

Var segment_max_rows(const Var& a,
                     const std::vector<std::size_t>& offsets) {
  require_offsets(offsets, a.rows(), "segment_max_rows");
  const std::size_t segs = offsets.size() - 1;
  const Tensor& x = a.value();
  Tensor out(segs, x.cols());
  std::vector<std::size_t> argmax(segs * x.cols(), 0);
  for (std::size_t s = 0; s < segs; ++s) {
    // max_rows' scan: start from the segment's first row, strict >.
    for (std::size_t c = 0; c < x.cols(); ++c) {
      double best = x.at(offsets[s], c);
      std::size_t arg = offsets[s];
      for (std::size_t r = offsets[s] + 1; r < offsets[s + 1]; ++r) {
        if (x.at(r, c) > best) {
          best = x.at(r, c);
          arg = r;
        }
      }
      out.at(s, c) = best;
      argmax[s * x.cols() + c] = arg;
    }
  }
  if (!grad_enabled()) return Var(std::move(out));
  auto pa = a.node();
  return Var::make_op(
      std::move(out), {a},
      [pa, segs, argmax = std::move(argmax)](Node& self) {
        if (!pa->requires_grad) return;
        Tensor& g = pa->ensure_grad();
        for (std::size_t s = 0; s < segs; ++s) {
          for (std::size_t c = 0; c < g.cols(); ++c) {
            g.at(argmax[s * g.cols() + c], c) += self.grad.at(s, c);
          }
        }
      });
}

}  // namespace readys::tensor
