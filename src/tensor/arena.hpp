#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace readys::tensor {

/// Bump allocator for the per-decision inference path.
///
/// One decision allocates a handful of small float matrices (GCN
/// activations, head outputs) and throws them all away; malloc/free per
/// matrix dominates at the microsecond scale. The arena hands out
/// 32-byte-aligned slices of geometrically growing chunks, and reset()
/// reclaims everything at once while keeping the capacity — so a steady
/// state decision performs zero heap traffic.
///
/// Not thread-safe: each inference backend instance owns its own arena
/// (matching the one-backend-per-worker replica model in serve).
class Arena {
 public:
  /// Alignment of every allocation, wide enough for 256-bit AVX2 loads.
  static constexpr std::size_t kAlign = 32;

  explicit Arena(std::size_t initial_bytes = 1u << 16)
      : next_chunk_bytes_(round_up(initial_bytes)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for `n` floats, 32-byte aligned.
  float* alloc_f32(std::size_t n) {
    return static_cast<float*>(alloc_bytes(n * sizeof(float)));
  }

  /// Uninitialized storage for `n` doubles, 32-byte aligned.
  double* alloc_f64(std::size_t n) {
    return static_cast<double*>(alloc_bytes(n * sizeof(double)));
  }

  /// Frees every allocation at once; capacity is retained so the next
  /// decision reuses the same chunks.
  void reset() noexcept {
    chunk_ = 0;
    offset_ = 0;
  }

  /// Bytes currently held across all chunks (diagnostics).
  std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> raw;
    std::uint8_t* base = nullptr;  ///< aligned start within raw
    std::size_t size = 0;          ///< usable bytes from base
  };

  static constexpr std::size_t round_up(std::size_t n) noexcept {
    return (n + kAlign - 1) & ~(kAlign - 1);
  }

  void* alloc_bytes(std::size_t bytes) {
    bytes = round_up(bytes);
    while (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      if (offset_ + bytes <= c.size) {
        void* p = c.base + offset_;
        offset_ += bytes;
        return p;
      }
      ++chunk_;
      offset_ = 0;
    }
    // Need a fresh chunk: double the ask until it fits.
    std::size_t want = next_chunk_bytes_;
    while (want < bytes) want *= 2;
    next_chunk_bytes_ = want * 2;
    Chunk c;
    c.raw = std::make_unique<std::uint8_t[]>(want + kAlign);
    const auto addr = reinterpret_cast<std::uintptr_t>(c.raw.get());
    const std::uintptr_t aligned = (addr + kAlign - 1) & ~(kAlign - 1);
    c.base = c.raw.get() + (aligned - addr);
    c.size = want;
    chunks_.push_back(std::move(c));
    chunk_ = chunks_.size() - 1;
    offset_ = bytes;
    return chunks_.back().base;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   ///< current chunk index
  std::size_t offset_ = 0;  ///< bump offset within the current chunk
  std::size_t next_chunk_bytes_;
};

}  // namespace readys::tensor
