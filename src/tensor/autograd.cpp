#include "tensor/autograd.hpp"

#include <stdexcept>
#include <unordered_set>

namespace readys::tensor {

namespace detail {

Tensor& Node::ensure_grad() {
  if (!grad.same_shape(value)) {
    grad = Tensor::zeros(value.rows(), value.cols());
  }
  return grad;
}

}  // namespace detail

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

bool grad_enabled() noexcept { return g_grad_enabled; }

NoGradGuard::NoGradGuard() noexcept : prev_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

Var::Var(Tensor value, bool requires_grad)
    : node_(std::make_shared<detail::Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::grad() const {
  return node_->ensure_grad();
}

void Var::zero_grad() noexcept {
  if (node_ && node_->grad.same_shape(node_->value)) {
    node_->grad.fill(0.0);
  }
}

Var Var::make_op(Tensor value, std::vector<Var> parents,
                 std::function<void(detail::Node&)> backward_fn) {
  Var out(std::move(value));
  if (!g_grad_enabled) return out;  // inference mode: plain leaf
  bool any_grad = false;
  out.node_->parents.reserve(parents.size());
  for (auto& p : parents) {
    any_grad = any_grad || p.requires_grad();
    out.node_->parents.push_back(p.node());
  }
  out.node_->requires_grad = any_grad;
  if (any_grad) {
    out.node_->backward_fn = std::move(backward_fn);
  } else {
    out.node_->parents.clear();  // prune: nothing downstream needs them
  }
  return out;
}

void Var::backward() const {
  if (!node_) throw std::logic_error("Var::backward: undefined variable");
  if (node_->value.size() != 1) {
    throw std::logic_error("Var::backward: root must be a scalar");
  }

  // Iterative post-order DFS to get a reverse-topological order.
  std::vector<detail::Node*> order;
  std::unordered_set<detail::Node*> visited;
  struct Frame {
    detail::Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      detail::Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }

  node_->ensure_grad().fill(1.0);
  // `order` is post-order (leaves first); walk it backwards so each node's
  // gradient is complete before it propagates to its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    detail::Node* n = *it;
    if (n->backward_fn) {
      n->ensure_grad();
      n->backward_fn(*n);
    }
  }
}

}  // namespace readys::tensor
