#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/rng.hpp"

namespace readys::tensor {

/// Dense row-major matrix of doubles.
///
/// This is the only numeric container in the library: vectors are 1xN or
/// Nx1 matrices, scalars are 1x1. Double precision keeps finite-difference
/// gradient checks tight; the networks involved are tiny (hidden size
/// <= 128), so there is no performance reason to drop to float.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() noexcept = default;

  /// rows x cols tensor filled with `fill`.
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists; all rows must have equal width.
  static Tensor from_rows(
      std::initializer_list<std::initializer_list<double>> rows);

  /// 1xN row vector from values.
  static Tensor row(std::initializer_list<double> values);
  static Tensor row(const std::vector<double>& values);

  /// All-zero / all-one tensors.
  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor ones(std::size_t rows, std::size_t cols);

  /// Identity matrix.
  static Tensor eye(std::size_t n);

  /// I.i.d. normal entries with the given stddev.
  static Tensor randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                      double stddev = 1.0);

  /// Uniform entries in [lo, hi).
  static Tensor rand_uniform(std::size_t rows, std::size_t cols,
                             util::Rng& rng, double lo, double hi);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  bool same_shape(const Tensor& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  double& operator[](std::size_t i) noexcept { return data_[i]; }
  double operator[](std::size_t i) const noexcept { return data_[i]; }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Scalar access; requires size() == 1.
  double item() const;

  void fill(double v) noexcept;

  /// In-place elementwise accumulate; shapes must match.
  void add_(const Tensor& other);

  /// In-place scale by a constant.
  void scale_(double s) noexcept;

  /// Sum of all entries.
  double sum() const noexcept;

  /// Largest absolute entry (0 for empty).
  double abs_max() const noexcept;

  /// Frobenius norm.
  double norm() const noexcept;

  /// Exact elementwise equality.
  bool operator==(const Tensor& other) const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Value-level (non-autograd) matrix product, used by the simulator-side
/// code and by tests.
Tensor matmul_value(const Tensor& a, const Tensor& b);

}  // namespace readys::tensor
