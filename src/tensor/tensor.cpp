#include "tensor/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace readys::tensor {

Tensor::Tensor(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor Tensor::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r == 0 ? 0 : rows.begin()->size();
  Tensor t(r, c);
  std::size_t i = 0;
  for (const auto& row : rows) {
    if (row.size() != c) {
      throw std::invalid_argument("Tensor::from_rows: ragged rows");
    }
    for (double v : row) t.data_[i++] = v;
  }
  return t;
}

Tensor Tensor::row(std::initializer_list<double> values) {
  Tensor t(1, values.size());
  std::size_t i = 0;
  for (double v : values) t.data_[i++] = v;
  return t;
}

Tensor Tensor::row(const std::vector<double>& values) {
  Tensor t(1, values.size());
  for (std::size_t i = 0; i < values.size(); ++i) t.data_[i] = values[i];
  return t;
}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 0.0);
}

Tensor Tensor::ones(std::size_t rows, std::size_t cols) {
  return Tensor(rows, cols, 1.0);
}

Tensor Tensor::eye(std::size_t n) {
  Tensor t(n, n);
  for (std::size_t i = 0; i < n; ++i) t.at(i, i) = 1.0;
  return t;
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols, util::Rng& rng,
                     double stddev) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = rng.normal(0.0, stddev);
  return t;
}

Tensor Tensor::rand_uniform(std::size_t rows, std::size_t cols,
                            util::Rng& rng, double lo, double hi) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

double Tensor::item() const {
  if (size() != 1) {
    throw std::logic_error("Tensor::item: tensor is not a scalar");
  }
  return data_[0];
}

void Tensor::fill(double v) noexcept {
  for (auto& x : data_) x = v;
}

void Tensor::add_(const Tensor& other) {
  if (!same_shape(other)) {
    throw std::invalid_argument("Tensor::add_: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(double s) noexcept {
  for (auto& x : data_) x *= s;
}

double Tensor::sum() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Tensor::abs_max() const noexcept {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

double Tensor::norm() const noexcept {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

bool Tensor::operator==(const Tensor& other) const noexcept {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

Tensor matmul_value(const Tensor& a, const Tensor& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul_value: inner dimension mismatch");
  }
  Tensor out(a.rows(), b.cols());
  // i-k-j loop order: streams through b and out row-wise (cache friendly).
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols();
      double* orow = out.data() + i * out.cols();
      for (std::size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

}  // namespace readys::tensor
