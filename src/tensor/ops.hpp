#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "tensor/autograd.hpp"

namespace readys::tensor {

/// Differentiable operations over Var.
///
/// All ops build the reverse-mode graph on the fly. Shapes are validated
/// eagerly and violations throw std::invalid_argument.

/// Matrix product: (R x K) * (K x C) -> (R x C).
Var matmul(const Var& a, const Var& b);

/// Elementwise sum. `b` may also be a 1 x C row (broadcast over rows of a)
/// or a 1 x 1 scalar (broadcast over everything).
Var add(const Var& a, const Var& b);

/// Elementwise difference with the same broadcast rules as add().
Var sub(const Var& a, const Var& b);

/// Hadamard product; `b` may be 1 x 1 (scalar broadcast).
Var mul(const Var& a, const Var& b);

/// Multiply by a compile-time-known constant.
Var scale(const Var& a, double s);

/// Add a constant to every entry.
Var add_scalar(const Var& a, double s);

Var neg(const Var& a);

/// Elementwise nonlinearities.
Var relu(const Var& a);
Var leaky_relu(const Var& a, double slope = 0.01);
Var tanh_op(const Var& a);
Var sigmoid(const Var& a);
Var exp_op(const Var& a);
/// Natural log of max(a, eps) for numerical safety.
Var log_op(const Var& a, double eps = 1e-12);
Var square(const Var& a);

/// Full reductions to a 1 x 1 scalar.
Var sum_all(const Var& a);
Var mean_all(const Var& a);

/// Column-wise reductions: (R x C) -> (1 x C).
Var mean_rows(const Var& a);
Var max_rows(const Var& a);
Var sum_rows(const Var& a);

/// Horizontal concatenation: (R x C1) ++ (R x C2) -> R x (C1+C2).
Var concat_cols(const Var& a, const Var& b);

/// Vertical stack of 1-or-more matrices with equal column counts.
Var concat_rows(const std::vector<Var>& parts);

/// Rows [begin, begin+count) of a.
Var slice_rows(const Var& a, std::size_t begin, std::size_t count);

/// Row gather: out.row(i) = a.row(indices[i]). Duplicate indices allowed
/// (gradients accumulate).
Var gather_rows(const Var& a, const std::vector<std::size_t>& indices);

/// Numerically-stable softmax over a 1 x N row.
Var softmax_row(const Var& a);

/// Numerically-stable log-softmax over a 1 x N row.
Var log_softmax_row(const Var& a);

/// Reinterprets the (row-major) data with a new shape of equal size.
Var reshape(const Var& a, std::size_t rows, std::size_t cols);

/// Entry (r, c) as a 1 x 1 scalar.
Var pick(const Var& a, std::size_t r, std::size_t c);

/// Mean squared error between same-shaped tensors -> 1 x 1.
Var mse(const Var& a, const Var& b);

/// Entropy of a probability row p (1 x N): -sum p*log(p). Gradient flows
/// into p.
Var entropy_row(const Var& p, double eps = 1e-12);

// --- segment ops (batched multi-graph forwards) -----------------------
//
// These three ops are what lets N small graphs run through the network
// as one packed matrix: rows are grouped into consecutive segments
// (graph g owns rows [offsets[g], offsets[g+1]); offsets has N+1 entries
// starting at 0 and ending at the row count). Each op applies exactly
// the same arithmetic, in the same order, as its per-graph equivalent
// applied to the segment alone, so packed results are bit-identical to
// the per-graph loop.

/// Block-diagonal matrix product: rows [offsets[g], offsets[g+1]) of the
/// result are blocks[g] * (the same rows of h). Each block must be
/// square and their sizes must sum to h.rows(). The blocks are constants
/// (no gradient); the gradient w.r.t. h is blocks[g]^T * G per segment.
Var block_diag_matmul(const std::shared_ptr<const std::vector<Tensor>>& blocks,
                      const Var& h);

/// Per-segment mean_rows: (R x C) -> (N x C), row g = mean over the rows
/// of segment g. Segments must be non-empty.
Var segment_mean_rows(const Var& a, const std::vector<std::size_t>& offsets);

/// Per-segment max_rows: (R x C) -> (N x C); gradients route to each
/// segment's per-column argmax row. Segments must be non-empty.
Var segment_max_rows(const Var& a, const std::vector<std::size_t>& offsets);

}  // namespace readys::tensor
