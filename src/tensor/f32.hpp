#pragma once

#include <cstddef>

namespace readys::tensor::f32 {

/// Single-precision kernels for the inference-only fast path
/// (rl::InferenceBackend "f32simd"). The training stack stays on the
/// double-precision autograd tensors; these free functions cover exactly
/// the forward ops PolicyNet needs — GEMM with bias, ReLU, column
/// mean/max pooling — over raw row-major float buffers (typically
/// arena-allocated, see tensor/arena.hpp).
///
/// Numerical contract: every output element c[i][j] is accumulated over
/// the inner dimension in ascending order in both the scalar and the
/// AVX2 kernel, so the two differ only by FMA contraction (no
/// reassociation). Agreement with the f64 reference path is pinned by
/// tolerance tests, not bit-exactness.

/// Instruction set the GEMM dispatches to.
enum class Isa { kScalar, kAvx2 };

/// "scalar" / "avx2" — for bench manifests and log lines.
const char* isa_name(Isa isa) noexcept;

/// True when the AVX2 kernels were compiled in (x86-64 build without
/// -DREADYS_NO_AVX2).
bool avx2_compiled() noexcept;

/// True when avx2_compiled() and the host CPU reports AVX2 support
/// (cpuid via __builtin_cpu_supports) — the runtime dispatch gate, so a
/// binary carrying AVX2 code never executes it on an older machine.
bool avx2_available() noexcept;

/// What the kernels below will actually execute right now.
Isa active_isa() noexcept;

/// Test hook: force the scalar kernels even when AVX2 is available.
/// Thread-safe (atomic flag); affects the whole process.
void force_scalar(bool on) noexcept;

/// c (m x n) = a (m x k) * b (k x n) + bias, with `bias` a 1 x n row
/// broadcast over every output row (nullptr = zero). `c` must not alias
/// `a` or `b`. Zero entries of `a` are skipped, so multiplying by a
/// sparse normalized adjacency costs O(nnz * n).
void matmul_bias(const float* a, std::size_t m, std::size_t k,
                 const float* b, std::size_t n, const float* bias,
                 float* c) noexcept;

/// c (m x n) = A * x + bias for a CSR sparse A (m x m): row i's nonzeros
/// are col/val[row_ptr[i] .. row_ptr[i+1]). Values arrive as double (the
/// encoder-owned nn::SparseAdj stores f64) and are rounded to float once
/// per nonzero; with ascending columns per row this accumulates each
/// output element in exactly the order matmul_bias would after skipping
/// the zero entries of the dense matrix — same result, O(nnz * n) work.
void spmm_bias(const std::size_t* row_ptr, const std::size_t* col,
               const double* val, std::size_t m, const float* x,
               std::size_t n, const float* bias, float* c) noexcept;

/// x[i] = max(x[i], 0) in place.
void relu_inplace(float* x, std::size_t n) noexcept;

/// out (1 x n) = per-column mean of x (m x n); m >= 1.
void mean_cols(const float* x, std::size_t m, std::size_t n,
               float* out) noexcept;

/// out (1 x n) = per-column max of x (m x n); m >= 1.
void max_cols(const float* x, std::size_t m, std::size_t n,
              float* out) noexcept;

/// dot(a, b) over n floats, ascending accumulation (the 1-wide head
/// projections: actor score per ready row, idle score, value).
float dot(const float* a, const float* b, std::size_t n) noexcept;

}  // namespace readys::tensor::f32
