#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace readys::core {

/// Builds an independent scheduler instance for one evaluation run;
/// `seed` individualizes any internal randomness (the READYS processor
/// draw, the random baseline). Stateless schedulers can ignore it.
using SchedulerFactory =
    std::function<std::unique_ptr<sim::Scheduler>(std::uint64_t seed)>;

/// Runs `runs` independent executions (noise seeds seed_base, seed_base+1,
/// ...) and returns the makespans. When `pool` is non-null the runs are
/// distributed across its workers (each run gets its own engine and
/// scheduler instance, so this is safe by construction).
std::vector<double> evaluate_makespans(
    const dag::TaskGraph& graph, const sim::Platform& platform,
    const sim::CostModel& costs, const SchedulerFactory& factory,
    double sigma, int runs, std::uint64_t seed_base,
    util::ThreadPool* pool = nullptr);

/// As above, but from a full Simulator::Options base — run i executes
/// with seed `base.seed + i` and everything else (sigma, communication
/// model, fault model) carried over unchanged. This is how the
/// fault-injection benchmarks evaluate schedulers under outages.
std::vector<double> evaluate_makespans(
    const dag::TaskGraph& graph, const sim::Platform& platform,
    const sim::CostModel& costs, const SchedulerFactory& factory,
    const sim::Simulator::Options& base, int runs,
    util::ThreadPool* pool = nullptr);

/// Mean makespans of two strategies and their ratio — the paper's
/// "improvement of A over B" is makespan(B)/makespan(A) (bars above 1
/// mean A wins).
struct ImprovementResult {
  util::Summary a;
  util::Summary b;
  double improvement = 0.0;  ///< mean(b) / mean(a)
};

ImprovementResult improvement_over(
    const dag::TaskGraph& graph, const sim::Platform& platform,
    const sim::CostModel& costs, const SchedulerFactory& a,
    const SchedulerFactory& b, double sigma, int runs,
    std::uint64_t seed_base, util::ThreadPool* pool = nullptr);

/// Evaluation factory for any sched::registry() name: run i's seed goes
/// into SchedulerConfig::seed. Throws (at call time) on unknown names.
SchedulerFactory registry_factory(const std::string& name);

/// Factories for the library's reference schedulers; shorthands for
/// registry_factory("heft") etc.
SchedulerFactory heft_factory();
SchedulerFactory mct_factory();
SchedulerFactory random_factory();
SchedulerFactory greedy_eft_factory();
SchedulerFactory critical_path_factory();

}  // namespace readys::core
