#pragma once

/// \file readys.hpp
/// Umbrella header: the full public API of the READYS reproduction.
///
/// Quickstart:
/// \code
///   using namespace readys;
///   auto graph    = core::make_graph(core::App::kCholesky, 8);
///   auto costs    = core::make_costs(core::App::kCholesky);
///   auto platform = sim::Platform::hybrid(2, 2);
///
///   rl::ReadysAgent agent(graph.num_kernel_types(), rl::AgentConfig{});
///   agent.train(graph, platform, costs, {.episodes = 300, .sigma = 0.2});
///
///   rl::ReadysScheduler policy(agent.net(), agent.config().window);
///   double mk = sim::simulate_makespan(graph, platform, costs, policy,
///                                      /*sigma=*/0.2, /*seed=*/42);
/// \endcode

#include "cluster/cluster_sim.hpp"
#include "cluster/heartbeat.hpp"
#include "cluster/partition.hpp"
#include "cluster/register.hpp"
#include "cluster/shard_sched.hpp"
#include "cluster/sharded_engine.hpp"
#include "core/apps.hpp"
#include "core/evaluation.hpp"
#include "core/run_config.hpp"
#include "dag/cholesky.hpp"
#include "dag/dot_export.hpp"
#include "dag/features.hpp"
#include "dag/lu.hpp"
#include "dag/qr.hpp"
#include "dag/random_dag.hpp"
#include "dag/synthetic.hpp"
#include "dag/task_graph.hpp"
#include "dag/window.hpp"
#include "nn/gcn.hpp"
#include "obs/obs.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "rl/a2c.hpp"
#include "rl/ppo.hpp"
#include "rl/agent.hpp"
#include "rl/checkpoint.hpp"
#include "rl/config.hpp"
#include "rl/env.hpp"
#include "rl/inference.hpp"
#include "rl/policy_net.hpp"
#include "rl/readys_scheduler.hpp"
#include "rl/state_encoder.hpp"
#include "rl/vec_env.hpp"
#include "sched/batch_mode.hpp"
#include "sched/critical_path.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/random_sched.hpp"
#include "sched/scheduler.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "sim/comm_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine.hpp"
#include "sim/fault_model.hpp"
#include "sim/noise.hpp"
#include "sim/platform.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/trace_export.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
