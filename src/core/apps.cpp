#include "core/apps.hpp"

#include <stdexcept>

#include "dag/cholesky.hpp"
#include "dag/lu.hpp"
#include "dag/qr.hpp"

namespace readys::core {

std::string app_name(App app) {
  switch (app) {
    case App::kCholesky:
      return "cholesky";
    case App::kLu:
      return "lu";
    case App::kQr:
      return "qr";
  }
  throw std::invalid_argument("app_name: bad enum value");
}

App parse_app(const std::string& name) {
  if (name == "cholesky") return App::kCholesky;
  if (name == "lu") return App::kLu;
  if (name == "qr") return App::kQr;
  throw std::invalid_argument("parse_app: unknown application '" + name +
                              "'");
}

dag::TaskGraph make_graph(App app, int tiles) {
  switch (app) {
    case App::kCholesky:
      return dag::cholesky_graph(tiles);
    case App::kLu:
      return dag::lu_graph(tiles);
    case App::kQr:
      return dag::qr_graph(tiles);
  }
  throw std::invalid_argument("make_graph: bad enum value");
}

sim::CostModel make_costs(App app) {
  switch (app) {
    case App::kCholesky:
      return sim::CostModel::cholesky();
    case App::kLu:
      return sim::CostModel::lu();
    case App::kQr:
      return sim::CostModel::qr();
  }
  throw std::invalid_argument("make_costs: bad enum value");
}

std::size_t expected_task_count(App app, int tiles) {
  const std::size_t t = static_cast<std::size_t>(tiles);
  switch (app) {
    case App::kCholesky:
      // T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm
      return t + t * (t - 1) + t * (t - 1) * (t - 2) / 6;
    case App::kLu:
    case App::kQr:
      // T panel + 2 * T(T-1)/2 solves/applies + sum_{k<T} (T-1-k)^2
      return t + t * (t - 1) + (t - 1) * t * (2 * t - 1) / 6;
  }
  throw std::invalid_argument("expected_task_count: bad enum value");
}

}  // namespace readys::core
