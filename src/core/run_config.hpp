#pragma once

#include <cstdint>
#include <string>

#include "core/apps.hpp"
#include "rl/config.hpp"
#include "rl/env.hpp"
#include "sim/comm_model.hpp"
#include "sim/platform.hpp"

namespace readys::core {

/// One experiment, one document. RunConfig folds the knobs that used to
/// be scattered across rl::AgentConfig, rl::TrainOptions,
/// SchedulingEnv::Config, ad-hoc CLI positionals and READYS_* env
/// variables into a single struct with a strict JSON round-trip
/// (schema "readys-run/1", see docs/api.md). The CLI accepts it via
/// `--config run.json` and every manifest embeds it verbatim, so a run
/// is reproducible from its manifest alone.
struct RunConfig {
  // --- instance ---
  std::string app = "cholesky";  ///< cholesky | lu | qr
  int tiles = 8;
  int ncpu = 2;
  int ngpu = 2;

  // --- environment ---
  double sigma = 0.0;
  bool random_offer = false;

  // --- communication model (sim::CommModel; 0 bytes = disabled) ---
  double comm_tile_bytes = 0.0;  ///< payload per dependency edge
  double comm_bandwidth = 0.0;   ///< bytes/ms across locality domains
  double comm_latency_ms = 0.0;  ///< per-transfer setup cost

  // --- cluster-scale sharded scheduling (src/cluster) ---
  int cluster_shards = 1;        ///< resource shards; 1 = centralized
  double cluster_stale_ms = 5.0; ///< cross-shard directory staleness bound
  double cluster_hb_ms = 1.0;    ///< heartbeat period (sim time)
  int cluster_parallel = 0;      ///< >0: threads for per-shard decides

  // --- run ---
  std::string scheduler = "mct";  ///< a sched::registry() name
  std::string trainer = "a2c";    ///< a2c | ppo
  int episodes = 200;
  int num_envs = 1;  ///< VecEnv width; 1 trains sequentially
  std::uint64_t seed = 1;
  std::string checkpoint_dir;
  int checkpoint_every = 50;
  int checkpoint_retain = 3;
  bool resume = false;
  int divergence_patience = 3;

  // --- multi-env cadence + async actor–learner (see rl::TrainOptions) ---
  int updates_per_round = 0;  ///< 0 = one update per episode (vec runs)
  bool async = false;         ///< async actor–learner mode (vec runs)
  int async_actors = 0;       ///< 0 = one actor thread per env
  int async_queue = 0;        ///< episode queue capacity; 0 = 2 * num_envs
  int async_batch = 1;        ///< episodes drained per learner update
  bool async_strict = false;  ///< deterministic windowed test mode

  // --- decision service (serve-bench; see src/serve) ---
  int serve_sessions = 64;         ///< sessions the load generator offers
  double serve_rate = 50.0;        ///< offered arrivals per second
  int serve_queue = 64;            ///< admission queue capacity
  int serve_active = 8;            ///< sessions batched per decision round
  int serve_workers = 1;           ///< inference worker threads
  /// Per-decision budget in microseconds: negative disables the
  /// deadline, 0 degrades every decision to one-shot MCT
  /// deterministically, positive degrades only blown decisions.
  double serve_deadline_us = -1.0;
  int serve_retries = 0;           ///< transient-fault retries per session
  /// Arrival process for the load generator: poisson | bursty | pareto
  /// (serve::ArrivalMode).
  std::string serve_arrival = "poisson";
  double serve_burst_factor = 4.0;  ///< bursty: ON-state rate multiplier
  double serve_pareto_alpha = 1.5;  ///< pareto: tail index (> 1)
  /// Per-tenant token bucket for the default tenant policy: sustained
  /// admissions/second (0 disables rate limiting) and bucket depth.
  double serve_tenant_rate = 0.0;
  double serve_tenant_burst = 8.0;
  /// Worker deaths tolerated before the supervisor degrades the service
  /// to one-shot MCT for every round.
  int serve_restart_budget = 3;
  /// Checkpoint file polled for hot weight reloads by the serve CLI
  /// ("" disables); SIGHUP forces an immediate reload of the same path.
  std::string serve_reload_watch;

  // --- inference fast path (rl::InferenceBackend) ---
  /// Arithmetic for policy evaluation on the decision path: "f64ref"
  /// reproduces training-precision forward bit-for-bit, "f32simd" runs
  /// the float32 SIMD backend. Honored by serve-bench, cluster-bench and
  /// the registry default for "readys" specs; training always uses f64.
  std::string inference_backend = "f64ref";

  rl::AgentConfig agent;

  /// Serializes to a single-line JSON object, "config":"readys-run/1"
  /// first, fields in declaration order, the agent nested under
  /// "agent". Doubles carry 15 significant digits, so
  /// from_json(to_json()) is the identity for round-trippable values.
  std::string to_json() const;

  /// Strict parse of a "readys-run/1" document: unknown keys, type
  /// mismatches, malformed JSON, and trailing garbage all throw
  /// std::invalid_argument. Missing keys keep their defaults, so a
  /// config file states only what it overrides.
  static RunConfig from_json(const std::string& json);

  /// from_json over a file's contents; throws std::runtime_error when
  /// the file cannot be read.
  static RunConfig from_file(const std::string& path);

  /// Defaults overlaid with the legacy READYS_* environment variables
  /// (READYS_APP, READYS_TILES, READYS_NCPU, READYS_NGPU, READYS_SIGMA,
  /// READYS_TRAIN_EPISODES, READYS_HIDDEN, READYS_NUM_ENVS,
  /// READYS_SEED) and the decision-service knobs (READYS_SERVE_SESSIONS,
  /// READYS_SERVE_RATE, READYS_SERVE_QUEUE, READYS_SERVE_ACTIVE,
  /// READYS_SERVE_WORKERS, READYS_SERVE_DEADLINE_US,
  /// READYS_SERVE_RETRIES), the inference fast path
  /// (READYS_INFERENCE_BACKEND), the communication axis (READYS_COMM_TILE_BYTES,
  /// READYS_COMM_BANDWIDTH, READYS_COMM_LATENCY_MS) and the cluster knobs
  /// (READYS_CLUSTER_SHARDS, READYS_CLUSTER_STALE_MS, READYS_CLUSTER_HB_MS,
  /// READYS_CLUSTER_PARALLEL), so benches stay tunable without a config
  /// file.
  static RunConfig from_env();

  /// Sanity-checks the cross-field constraints (known app/trainer,
  /// positive sizes, finite non-negative sigma...); throws
  /// std::invalid_argument with the offending field named.
  void validate() const;

  // --- derived builders ---
  App parsed_app() const { return parse_app(app); }
  dag::TaskGraph make_graph() const { return core::make_graph(parsed_app(), tiles); }
  sim::CostModel make_costs() const { return core::make_costs(parsed_app()); }
  sim::Platform make_platform() const { return sim::Platform::hybrid(ncpu, ngpu); }
  /// True when the comm axis is active (comm_tile_bytes > 0).
  bool has_comm() const noexcept { return comm_tile_bytes > 0.0; }
  sim::CommModel make_comm() const {
    return has_comm()
               ? sim::CommModel(comm_tile_bytes, comm_bandwidth, comm_latency_ms)
               : sim::CommModel::free();
  }
  rl::SchedulingEnv::Config env_config() const;
  rl::TrainOptions train_options() const;
};

}  // namespace readys::core
