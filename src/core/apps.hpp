#pragma once

#include <string>

#include "dag/task_graph.hpp"
#include "sim/cost_model.hpp"

namespace readys::core {

/// The three linear-algebra applications the paper evaluates.
enum class App { kCholesky, kLu, kQr };

/// "cholesky", "lu", "qr".
std::string app_name(App app);

/// Parses an application name; throws std::invalid_argument otherwise.
App parse_app(const std::string& name);

/// Tiled factorization DAG for a T x T tile matrix.
dag::TaskGraph make_graph(App app, int tiles);

/// Matching kernel cost table.
sim::CostModel make_costs(App app);

/// Closed-form task count of each application's DAG (used as test
/// anchors; e.g. Cholesky T=8 -> 120 tasks as quoted in the paper).
std::size_t expected_task_count(App app, int tiles);

}  // namespace readys::core
