#include "core/evaluation.hpp"

#include "obs/obs.hpp"
#include "sched/scheduler.hpp"

namespace readys::core {

std::vector<double> evaluate_makespans(
    const dag::TaskGraph& graph, const sim::Platform& platform,
    const sim::CostModel& costs, const SchedulerFactory& factory,
    double sigma, int runs, std::uint64_t seed_base,
    util::ThreadPool* pool) {
  sim::Simulator::Options base;
  base.sigma = sigma;
  base.seed = seed_base;
  return evaluate_makespans(graph, platform, costs, factory, base, runs,
                            pool);
}

std::vector<double> evaluate_makespans(
    const dag::TaskGraph& graph, const sim::Platform& platform,
    const sim::CostModel& costs, const SchedulerFactory& factory,
    const sim::Simulator::Options& base, int runs,
    util::ThreadPool* pool) {
  obs::Span span("core/evaluate_makespans", "eval");
  if (obs::Telemetry* t = obs::telemetry()) {
    t->eval_runs.add(static_cast<std::uint64_t>(runs));
  }
  std::vector<double> out(static_cast<std::size_t>(runs), 0.0);
  auto run_one = [&](std::size_t i) {
    sim::Simulator::Options options = base;
    options.seed = base.seed + i;
    auto scheduler = factory(options.seed);
    sim::Simulator sim(graph, platform, costs, options);
    out[i] = sim.run(*scheduler).makespan;
  };
  if (pool != nullptr) {
    pool->parallel_for(out.size(), run_one);
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) run_one(i);
  }
  return out;
}

ImprovementResult improvement_over(
    const dag::TaskGraph& graph, const sim::Platform& platform,
    const sim::CostModel& costs, const SchedulerFactory& a,
    const SchedulerFactory& b, double sigma, int runs,
    std::uint64_t seed_base, util::ThreadPool* pool) {
  ImprovementResult result;
  const auto ma = evaluate_makespans(graph, platform, costs, a, sigma, runs,
                                     seed_base, pool);
  const auto mb = evaluate_makespans(graph, platform, costs, b, sigma, runs,
                                     seed_base, pool);
  result.a = util::summarize(ma);
  result.b = util::summarize(mb);
  result.improvement = result.a.mean > 0.0 ? result.b.mean / result.a.mean
                                           : 0.0;
  return result;
}

SchedulerFactory registry_factory(const std::string& name) {
  return [name](std::uint64_t seed) {
    sched::SchedulerConfig cfg;
    cfg.seed = seed;
    return sched::make_scheduler(name, cfg);
  };
}

SchedulerFactory heft_factory() { return registry_factory("heft"); }

SchedulerFactory mct_factory() { return registry_factory("mct"); }

SchedulerFactory random_factory() { return registry_factory("random"); }

SchedulerFactory greedy_eft_factory() { return registry_factory("greedy"); }

SchedulerFactory critical_path_factory() { return registry_factory("cp"); }

}  // namespace readys::core
