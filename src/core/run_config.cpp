#include "core/run_config.hpp"

#include <cctype>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/sink.hpp"
#include "rl/inference.hpp"
#include "util/env.hpp"

namespace readys::core {
namespace {

/// Strict cursor over one JSON document. Anything the "readys-run/1"
/// schema does not produce — unknown keys, wrong value types, malformed
/// literals, trailing text — is a hard std::invalid_argument, never a
/// silent default: a config that round-trips is a config that was read
/// the way it was written.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          if (v >= 0x80) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(v);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double parse_number() {
    skip_ws();
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a number");
    pos_ += static_cast<std::size_t>(end - begin);
    return v;
  }

  /// Unsigned decimal literal, parsed as text so 64-bit seeds do not
  /// round through a double.
  std::uint64_t parse_uint64() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected an unsigned integer");
    errno = 0;
    const unsigned long long v =
        std::strtoull(s_.c_str() + start, nullptr, 10);
    if (errno != 0) fail("unsigned integer out of range");
    return static_cast<std::uint64_t>(v);
  }

  bool parse_bool() {
    skip_ws();
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected true or false");
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("RunConfig: " + msg + " at offset " +
                                std::to_string(pos_));
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

int parse_int_field(JsonReader& r) {
  const double v = r.parse_number();
  if (v < static_cast<double>(INT_MIN) || v > static_cast<double>(INT_MAX) ||
      v != static_cast<double>(static_cast<int>(v))) {
    r.fail("expected an integer");
  }
  return static_cast<int>(v);
}

/// `on_field` is called with each key, cursor sitting on the value.
template <typename FieldFn>
void parse_object(JsonReader& r, FieldFn&& on_field) {
  r.expect('{');
  if (r.consume('}')) return;
  while (true) {
    const std::string key = r.parse_string();
    r.expect(':');
    on_field(key);
    if (r.consume(',')) continue;
    r.expect('}');
    return;
  }
}

void parse_agent(JsonReader& r, rl::AgentConfig& a) {
  parse_object(r, [&](const std::string& key) {
    if (key == "window") a.window = parse_int_field(r);
    else if (key == "gcn_layers") a.gcn_layers = parse_int_field(r);
    else if (key == "hidden") a.hidden = parse_int_field(r);
    else if (key == "lr") a.lr = r.parse_number();
    else if (key == "gamma") a.gamma = r.parse_number();
    else if (key == "entropy_beta") a.entropy_beta = r.parse_number();
    else if (key == "entropy_decay") a.entropy_decay = r.parse_bool();
    else if (key == "value_coef") a.value_coef = r.parse_number();
    else if (key == "unroll") a.unroll = parse_int_field(r);
    else if (key == "grad_clip") a.grad_clip = r.parse_number();
    else if (key == "normalize_advantage") a.normalize_advantage = r.parse_bool();
    else if (key == "squash_reward") a.squash_reward = r.parse_bool();
    else if (key == "reward_clip") a.reward_clip = r.parse_number();
    else if (key == "critic_sees_resources") a.critic_sees_resources = r.parse_bool();
    else if (key == "seed") a.seed = r.parse_uint64();
    else r.fail("unknown agent key \"" + key + "\"");
  });
}

}  // namespace

std::string RunConfig::to_json() const {
  obs::JsonObject agent_json;
  agent_json.field("window", agent.window)
      .field("gcn_layers", agent.gcn_layers)
      .field("hidden", agent.hidden)
      .field("lr", agent.lr)
      .field("gamma", agent.gamma)
      .field("entropy_beta", agent.entropy_beta)
      .field("entropy_decay", agent.entropy_decay)
      .field("value_coef", agent.value_coef)
      .field("unroll", agent.unroll)
      .field("grad_clip", agent.grad_clip)
      .field("normalize_advantage", agent.normalize_advantage)
      .field("squash_reward", agent.squash_reward)
      .field("reward_clip", agent.reward_clip)
      .field("critic_sees_resources", agent.critic_sees_resources)
      .field("seed", agent.seed);
  obs::JsonObject j;
  j.field("config", "readys-run/1")
      .field("app", app)
      .field("tiles", tiles)
      .field("ncpu", ncpu)
      .field("ngpu", ngpu)
      .field("sigma", sigma)
      .field("random_offer", random_offer)
      .field("comm_tile_bytes", comm_tile_bytes)
      .field("comm_bandwidth", comm_bandwidth)
      .field("comm_latency_ms", comm_latency_ms)
      .field("cluster_shards", cluster_shards)
      .field("cluster_stale_ms", cluster_stale_ms)
      .field("cluster_hb_ms", cluster_hb_ms)
      .field("cluster_parallel", cluster_parallel)
      .field("scheduler", scheduler)
      .field("trainer", trainer)
      .field("episodes", episodes)
      .field("num_envs", num_envs)
      .field("seed", seed)
      .field("checkpoint_dir", checkpoint_dir)
      .field("checkpoint_every", checkpoint_every)
      .field("checkpoint_retain", checkpoint_retain)
      .field("resume", resume)
      .field("divergence_patience", divergence_patience)
      .field("updates_per_round", updates_per_round)
      .field("async", async)
      .field("async_actors", async_actors)
      .field("async_queue", async_queue)
      .field("async_batch", async_batch)
      .field("async_strict", async_strict)
      .field("serve_sessions", serve_sessions)
      .field("serve_rate", serve_rate)
      .field("serve_queue", serve_queue)
      .field("serve_active", serve_active)
      .field("serve_workers", serve_workers)
      .field("serve_deadline_us", serve_deadline_us)
      .field("serve_retries", serve_retries)
      .field("serve_arrival", serve_arrival)
      .field("serve_burst_factor", serve_burst_factor)
      .field("serve_pareto_alpha", serve_pareto_alpha)
      .field("serve_tenant_rate", serve_tenant_rate)
      .field("serve_tenant_burst", serve_tenant_burst)
      .field("serve_restart_budget", serve_restart_budget)
      .field("serve_reload_watch", serve_reload_watch)
      .field("inference_backend", inference_backend)
      .raw("agent", agent_json.str());
  return j.str();
}

RunConfig RunConfig::from_json(const std::string& json) {
  RunConfig cfg;
  JsonReader r(json);
  parse_object(r, [&](const std::string& key) {
    if (key == "config") {
      const std::string v = r.parse_string();
      if (v != "readys-run/1") {
        r.fail("unsupported config schema \"" + v + "\"");
      }
    } else if (key == "app") cfg.app = r.parse_string();
    else if (key == "tiles") cfg.tiles = parse_int_field(r);
    else if (key == "ncpu") cfg.ncpu = parse_int_field(r);
    else if (key == "ngpu") cfg.ngpu = parse_int_field(r);
    else if (key == "sigma") cfg.sigma = r.parse_number();
    else if (key == "random_offer") cfg.random_offer = r.parse_bool();
    else if (key == "comm_tile_bytes") cfg.comm_tile_bytes = r.parse_number();
    else if (key == "comm_bandwidth") cfg.comm_bandwidth = r.parse_number();
    else if (key == "comm_latency_ms") cfg.comm_latency_ms = r.parse_number();
    else if (key == "cluster_shards") cfg.cluster_shards = parse_int_field(r);
    else if (key == "cluster_stale_ms") cfg.cluster_stale_ms = r.parse_number();
    else if (key == "cluster_hb_ms") cfg.cluster_hb_ms = r.parse_number();
    else if (key == "cluster_parallel") cfg.cluster_parallel = parse_int_field(r);
    else if (key == "scheduler") cfg.scheduler = r.parse_string();
    else if (key == "trainer") cfg.trainer = r.parse_string();
    else if (key == "episodes") cfg.episodes = parse_int_field(r);
    else if (key == "num_envs") cfg.num_envs = parse_int_field(r);
    else if (key == "seed") cfg.seed = r.parse_uint64();
    else if (key == "checkpoint_dir") cfg.checkpoint_dir = r.parse_string();
    else if (key == "checkpoint_every") cfg.checkpoint_every = parse_int_field(r);
    else if (key == "checkpoint_retain") cfg.checkpoint_retain = parse_int_field(r);
    else if (key == "resume") cfg.resume = r.parse_bool();
    else if (key == "divergence_patience") cfg.divergence_patience = parse_int_field(r);
    else if (key == "updates_per_round") cfg.updates_per_round = parse_int_field(r);
    else if (key == "async") cfg.async = r.parse_bool();
    else if (key == "async_actors") cfg.async_actors = parse_int_field(r);
    else if (key == "async_queue") cfg.async_queue = parse_int_field(r);
    else if (key == "async_batch") cfg.async_batch = parse_int_field(r);
    else if (key == "async_strict") cfg.async_strict = r.parse_bool();
    else if (key == "serve_sessions") cfg.serve_sessions = parse_int_field(r);
    else if (key == "serve_rate") cfg.serve_rate = r.parse_number();
    else if (key == "serve_queue") cfg.serve_queue = parse_int_field(r);
    else if (key == "serve_active") cfg.serve_active = parse_int_field(r);
    else if (key == "serve_workers") cfg.serve_workers = parse_int_field(r);
    else if (key == "serve_deadline_us") cfg.serve_deadline_us = r.parse_number();
    else if (key == "serve_retries") cfg.serve_retries = parse_int_field(r);
    else if (key == "serve_arrival") cfg.serve_arrival = r.parse_string();
    else if (key == "serve_burst_factor") cfg.serve_burst_factor = r.parse_number();
    else if (key == "serve_pareto_alpha") cfg.serve_pareto_alpha = r.parse_number();
    else if (key == "serve_tenant_rate") cfg.serve_tenant_rate = r.parse_number();
    else if (key == "serve_tenant_burst") cfg.serve_tenant_burst = r.parse_number();
    else if (key == "serve_restart_budget") cfg.serve_restart_budget = parse_int_field(r);
    else if (key == "serve_reload_watch") cfg.serve_reload_watch = r.parse_string();
    else if (key == "inference_backend") cfg.inference_backend = r.parse_string();
    else if (key == "agent") parse_agent(r, cfg.agent);
    else r.fail("unknown key \"" + key + "\"");
  });
  if (!r.at_end()) r.fail("trailing garbage after config object");
  return cfg;
}

RunConfig RunConfig::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("RunConfig: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

RunConfig RunConfig::from_env() {
  RunConfig cfg;
  cfg.app = util::env_string("READYS_APP", cfg.app);
  cfg.tiles = util::env_int("READYS_TILES", cfg.tiles);
  cfg.ncpu = util::env_int("READYS_NCPU", cfg.ncpu);
  cfg.ngpu = util::env_int("READYS_NGPU", cfg.ngpu);
  cfg.sigma = util::env_double("READYS_SIGMA", cfg.sigma);
  cfg.episodes = util::env_int("READYS_TRAIN_EPISODES", cfg.episodes);
  cfg.num_envs = util::env_int("READYS_NUM_ENVS", cfg.num_envs);
  cfg.seed = static_cast<std::uint64_t>(
      util::env_int("READYS_SEED", static_cast<int>(cfg.seed)));
  cfg.agent.hidden = util::env_int("READYS_HIDDEN", cfg.agent.hidden);
  cfg.serve_sessions =
      util::env_int("READYS_SERVE_SESSIONS", cfg.serve_sessions);
  cfg.serve_rate = util::env_double("READYS_SERVE_RATE", cfg.serve_rate);
  cfg.serve_queue = util::env_int("READYS_SERVE_QUEUE", cfg.serve_queue);
  cfg.serve_active = util::env_int("READYS_SERVE_ACTIVE", cfg.serve_active);
  cfg.serve_workers =
      util::env_int("READYS_SERVE_WORKERS", cfg.serve_workers);
  cfg.serve_deadline_us =
      util::env_double("READYS_SERVE_DEADLINE_US", cfg.serve_deadline_us);
  cfg.serve_retries =
      util::env_int("READYS_SERVE_RETRIES", cfg.serve_retries);
  cfg.serve_arrival =
      util::env_string("READYS_SERVE_ARRIVAL", cfg.serve_arrival);
  cfg.serve_burst_factor =
      util::env_double("READYS_SERVE_BURST_FACTOR", cfg.serve_burst_factor);
  cfg.serve_pareto_alpha =
      util::env_double("READYS_SERVE_PARETO_ALPHA", cfg.serve_pareto_alpha);
  cfg.serve_tenant_rate =
      util::env_double("READYS_SERVE_TENANT_RATE", cfg.serve_tenant_rate);
  cfg.serve_tenant_burst =
      util::env_double("READYS_SERVE_TENANT_BURST", cfg.serve_tenant_burst);
  cfg.serve_restart_budget =
      util::env_int("READYS_SERVE_RESTART_BUDGET", cfg.serve_restart_budget);
  cfg.serve_reload_watch =
      util::env_string("READYS_SERVE_RELOAD_WATCH", cfg.serve_reload_watch);
  cfg.inference_backend =
      util::env_string("READYS_INFERENCE_BACKEND", cfg.inference_backend);
  cfg.comm_tile_bytes =
      util::env_double("READYS_COMM_TILE_BYTES", cfg.comm_tile_bytes);
  cfg.comm_bandwidth =
      util::env_double("READYS_COMM_BANDWIDTH", cfg.comm_bandwidth);
  cfg.comm_latency_ms =
      util::env_double("READYS_COMM_LATENCY_MS", cfg.comm_latency_ms);
  cfg.cluster_shards =
      util::env_int("READYS_CLUSTER_SHARDS", cfg.cluster_shards);
  cfg.cluster_stale_ms =
      util::env_double("READYS_CLUSTER_STALE_MS", cfg.cluster_stale_ms);
  cfg.cluster_hb_ms =
      util::env_double("READYS_CLUSTER_HB_MS", cfg.cluster_hb_ms);
  cfg.cluster_parallel =
      util::env_int("READYS_CLUSTER_PARALLEL", cfg.cluster_parallel);
  return cfg;
}

void RunConfig::validate() const {
  parse_app(app);  // throws std::invalid_argument on unknown names
  if (trainer != "a2c" && trainer != "ppo") {
    throw std::invalid_argument("RunConfig: unknown trainer \"" + trainer +
                                "\" (known: a2c, ppo)");
  }
  if (scheduler.empty()) {
    throw std::invalid_argument("RunConfig: scheduler must be non-empty");
  }
  if (tiles < 1) throw std::invalid_argument("RunConfig: tiles must be >= 1");
  if (ncpu < 0 || ngpu < 0 || ncpu + ngpu < 1) {
    throw std::invalid_argument("RunConfig: need at least one resource");
  }
  if (!(sigma >= 0.0)) {
    throw std::invalid_argument("RunConfig: sigma must be >= 0");
  }
  if (episodes < 1) {
    throw std::invalid_argument("RunConfig: episodes must be >= 1");
  }
  if (num_envs < 1) {
    throw std::invalid_argument("RunConfig: num_envs must be >= 1");
  }
  if (checkpoint_every < 1) {
    throw std::invalid_argument("RunConfig: checkpoint_every must be >= 1");
  }
  if (checkpoint_retain < 1) {
    throw std::invalid_argument("RunConfig: checkpoint_retain must be >= 1");
  }
  if (updates_per_round < 0) {
    throw std::invalid_argument("RunConfig: updates_per_round must be >= 0");
  }
  if (async_actors < 0) {
    throw std::invalid_argument("RunConfig: async_actors must be >= 0");
  }
  if (async_queue < 0) {
    throw std::invalid_argument("RunConfig: async_queue must be >= 0");
  }
  if (async_batch < 1) {
    throw std::invalid_argument("RunConfig: async_batch must be >= 1");
  }
  if (serve_sessions < 0) {
    throw std::invalid_argument("RunConfig: serve_sessions must be >= 0");
  }
  if (!(serve_rate > 0.0)) {
    throw std::invalid_argument("RunConfig: serve_rate must be > 0");
  }
  if (serve_queue < 1) {
    throw std::invalid_argument("RunConfig: serve_queue must be >= 1");
  }
  if (serve_active < 1) {
    throw std::invalid_argument("RunConfig: serve_active must be >= 1");
  }
  if (serve_workers < 0) {
    throw std::invalid_argument("RunConfig: serve_workers must be >= 0");
  }
  if (!std::isfinite(serve_deadline_us)) {
    // Negative is meaningful (deadline disabled), as is literal zero
    // (every decision degrades to one-shot MCT); only NaN/inf are out.
    throw std::invalid_argument("RunConfig: serve_deadline_us must be finite");
  }
  if (serve_retries < 0) {
    throw std::invalid_argument("RunConfig: serve_retries must be >= 0");
  }
  if (serve_arrival != "poisson" && serve_arrival != "bursty" &&
      serve_arrival != "pareto") {
    throw std::invalid_argument(
        "RunConfig: serve_arrival must be poisson | bursty | pareto");
  }
  if (!(serve_burst_factor >= 1.0)) {
    throw std::invalid_argument(
        "RunConfig: serve_burst_factor must be >= 1");
  }
  if (!(serve_pareto_alpha > 1.0)) {
    throw std::invalid_argument(
        "RunConfig: serve_pareto_alpha must be > 1 (finite mean)");
  }
  if (!(serve_tenant_rate >= 0.0) || !(serve_tenant_burst >= 1.0)) {
    throw std::invalid_argument(
        "RunConfig: serve_tenant_rate must be >= 0 and serve_tenant_burst "
        ">= 1");
  }
  if (serve_restart_budget < 0) {
    throw std::invalid_argument(
        "RunConfig: serve_restart_budget must be >= 0");
  }
  try {
    (void)rl::parse_inference_backend(inference_backend);
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("RunConfig: ") + e.what());
  }
  if (!(comm_tile_bytes >= 0.0) || !(comm_bandwidth >= 0.0) ||
      !(comm_latency_ms >= 0.0)) {
    throw std::invalid_argument("RunConfig: comm_* fields must be >= 0");
  }
  if (comm_tile_bytes > 0.0 && !(comm_bandwidth > 0.0)) {
    throw std::invalid_argument(
        "RunConfig: comm_bandwidth must be > 0 when comm_tile_bytes > 0");
  }
  if (cluster_shards < 1) {
    throw std::invalid_argument("RunConfig: cluster_shards must be >= 1");
  }
  if (!(cluster_stale_ms >= 0.0)) {
    throw std::invalid_argument("RunConfig: cluster_stale_ms must be >= 0");
  }
  if (!(cluster_hb_ms > 0.0)) {
    throw std::invalid_argument("RunConfig: cluster_hb_ms must be > 0");
  }
  if (cluster_parallel < 0) {
    throw std::invalid_argument("RunConfig: cluster_parallel must be >= 0");
  }
  if (agent.window < 1 || agent.gcn_layers < 1 || agent.hidden < 1) {
    throw std::invalid_argument(
        "RunConfig: agent window/gcn_layers/hidden must be >= 1");
  }
}

rl::SchedulingEnv::Config RunConfig::env_config() const {
  rl::SchedulingEnv::Config ec;
  ec.sigma = sigma;
  ec.window = agent.window;
  ec.seed = seed;
  ec.random_offer = random_offer;
  return ec;
}

rl::TrainOptions RunConfig::train_options() const {
  rl::TrainOptions opts;
  opts.episodes = episodes;
  opts.sigma = sigma;
  opts.seed = seed;
  opts.checkpoint_dir = checkpoint_dir;
  opts.checkpoint_every = checkpoint_every;
  opts.checkpoint_retain = checkpoint_retain;
  opts.resume = resume;
  opts.divergence_patience = divergence_patience;
  opts.updates_per_round = updates_per_round;
  opts.async = async;
  opts.async_actors = async_actors;
  opts.async_queue = async_queue;
  opts.async_batch = async_batch;
  opts.async_strict = async_strict;
  return opts;
}

}  // namespace readys::core
