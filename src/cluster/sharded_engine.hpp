#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/partition.hpp"
#include "dag/task_graph.hpp"
#include "sim/comm_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/engine_view.hpp"
#include "sim/fault_model.hpp"
#include "sim/noise.hpp"
#include "sim/platform.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace readys::cluster {

/// Sharded discrete-event core: SimEngine's semantics with the resources
/// partitioned into K shards, each owning its own event heap and ready
/// queue. Built for cluster-scale platforms (P up to ~1024) where one
/// global heap and one global ready vector stop being cache-friendly and
/// where the decentralized scheduler wants per-shard state to exist as
/// real data structures rather than filtered views.
///
/// **Bit-exactness contract** (pinned by tests/test_cluster_engine.cpp
/// against the golden-trace suite): for ANY shard count K, an execution
/// is event-for-event identical to SimEngine under the same seed. Events
/// live in the heap of the shard owning their resource, but advance()
/// always pops the globally earliest (time, seq) pair — an O(K) argmin
/// over heap fronts per pop. Since every event carries a globally unique
/// (time, seq) key and all RNG streams are consumed in the same order as
/// SimEngine (noise at start(), fault stream per ascending resource at
/// reset and per dispatched fault event), the merged event order — and
/// therefore the trace — cannot differ. K=1 degenerates to exactly one
/// heap and one queue.
///
/// Ready queues are sharded by task id (t % K): insert_ready pays
/// O(R/K + log R/K) instead of O(R), and the merged ascending ready()
/// view is materialized lazily only when someone asks.
///
/// Schedulers observe the engine through view(): an EngineView backed by
/// an EngineState whose pointers alias this engine's members directly
/// (the promised-finish table is shared, not copied), so refreshing a
/// view costs two scalar writes plus — at most — one merge of the ready
/// cache.
class ShardedEngine {
 public:
  ShardedEngine(const dag::TaskGraph& graph, const sim::Platform& platform,
                const sim::CostModel& costs, const sim::CommModel& comm,
                const sim::FaultModel& faults, double sigma,
                std::uint64_t seed, int shards);

  /// Restores the initial state with fresh noise and fault streams
  /// derived from `seed` (same derivation as SimEngine::reset).
  void reset(std::uint64_t seed);

  /// Read-only window for schedulers; cheap (refreshes two scalars and,
  /// if dirty, the merged ready cache). The view must not outlive the
  /// engine and is invalidated by start()/advance()/reset().
  sim::EngineView view() const;

  double now() const noexcept { return now_; }
  bool finished() const noexcept {
    return completed_ == graph_->num_tasks();
  }
  std::size_t num_completed() const noexcept { return completed_; }

  /// Merged ready set, ascending ids (lazily rebuilt from the shards).
  const std::vector<dag::TaskId>& ready() const;
  const std::vector<dag::TaskId>& ready_log() const noexcept {
    return ready_log_;
  }
  /// Ready tasks owned by shard `s`, ascending.
  const std::vector<dag::TaskId>& shard_ready(int s) const {
    return shard_ready_[static_cast<std::size_t>(s)];
  }

  const std::vector<sim::RunningInfo>& running() const noexcept {
    return running_;
  }
  bool any_running() const noexcept { return !running_.empty(); }

  bool is_ready(dag::TaskId t) const noexcept {
    return t < in_ready_.size() && in_ready_[t] != 0;
  }
  bool is_idle(sim::ResourceId r) const {
    return resource_up_[static_cast<std::size_t>(r)] != 0 &&
           resource_task_[static_cast<std::size_t>(r)] == dag::kInvalidTask;
  }
  bool is_done(dag::TaskId t) const { return done_[t] != 0; }
  bool is_up(sim::ResourceId r) const {
    return resource_up_[static_cast<std::size_t>(r)] != 0;
  }
  dag::TaskId running_on(sim::ResourceId r) const {
    return resource_task_[static_cast<std::size_t>(r)];
  }
  int num_up() const noexcept;

  double expected_duration(dag::TaskId t, sim::ResourceId r) const {
    const double d =
        duration_table_[static_cast<std::size_t>(graph_->kernel(t)) *
                            static_cast<std::size_t>(platform_.size()) +
                        static_cast<std::size_t>(r)];
    return fault_enabled_ ? d * speed_factor_[static_cast<std::size_t>(r)]
                          : d;
  }
  double expected_input_delay(dag::TaskId t, sim::ResourceId r) const;

  bool fault_enabled() const noexcept { return fault_enabled_; }
  const sim::FaultModel& faults() const noexcept { return fault_; }
  std::size_t num_outages() const noexcept { return outages_; }
  std::size_t num_recoveries() const noexcept { return recoveries_; }
  std::size_t num_lost_executions() const noexcept {
    return lost_executions_;
  }

  /// See SimEngine::start — identical protocol and RNG consumption.
  void start(dag::TaskId t, sim::ResourceId r);

  /// Advances to the next observable event across all shard heaps in
  /// global (time, seq) order. Returns false when every heap is empty.
  bool advance();

  const dag::TaskGraph& graph() const noexcept { return *graph_; }
  const sim::Platform& platform() const noexcept { return platform_; }
  const sim::CostModel& costs() const noexcept { return costs_; }
  const Partition& partition() const noexcept { return partition_; }
  int num_shards() const noexcept { return partition_.num_shards; }

  const sim::Trace& trace() const noexcept { return trace_; }
  /// Per-shard sub-traces (entries whose resource the shard owns, in
  /// completion order). Their union is trace(); pinned by the merge
  /// property test.
  const std::vector<sim::Trace>& shard_traces() const noexcept {
    return shard_traces_;
  }

  double makespan() const noexcept { return trace_.makespan(); }
  std::size_t num_started() const noexcept { return started_; }

 private:
  enum class EventKind : std::uint8_t {
    kFinish,
    kFail,
    kOutage,
    kRecovery,
    kSlowdownBegin,
    kSlowdownEnd,
  };

  /// Same layout and tie-break rule as SimEngine::Event; `seq` is global
  /// across shards so the merged order is total.
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;
    dag::TaskId task = dag::kInvalidTask;
    sim::ResourceId resource = -1;
    EventKind kind = EventKind::kFinish;
  };

  int task_shard(dag::TaskId t) const noexcept {
    return static_cast<int>(t % static_cast<dag::TaskId>(
                                    partition_.num_shards));
  }
  void insert_ready(dag::TaskId t);
  std::uint64_t push_event(double time, dag::TaskId task, sim::ResourceId r,
                           EventKind kind);
  /// Shard whose heap front is the globally earliest event, or -1.
  int earliest_shard() const;
  void dispatch(const Event& ev, bool& observable);
  void complete(const sim::RunningInfo& info);
  void kill_running(sim::ResourceId r);
  bool outage_would_strand(sim::ResourceId r) const;
  void bind_state();

  const dag::TaskGraph* graph_;
  sim::Platform platform_;
  sim::CostModel costs_;
  std::optional<sim::CommModel> comm_;
  sim::NoiseModel noise_;
  util::Rng rng_;
  Partition partition_;

  sim::FaultModel fault_;
  bool fault_enabled_ = false;
  util::Rng fault_rng_;

  double now_ = 0.0;
  std::vector<std::size_t> missing_preds_;
  std::vector<std::uint8_t> done_;
  std::vector<std::vector<dag::TaskId>> shard_ready_;  // per shard, ascending
  std::vector<std::uint8_t> in_ready_;
  std::vector<dag::TaskId> ready_log_;
  std::vector<sim::RunningInfo> running_;
  std::vector<std::vector<Event>> heaps_;  // per shard, (time, seq) min-heaps
  std::uint64_t event_seq_ = 0;            // global: total order across shards
  std::vector<dag::TaskId> resource_task_;
  std::vector<double> resource_expected_finish_;  // NaN idle (shared w/ view)
  std::vector<std::uint8_t> resource_up_;
  std::vector<double> speed_factor_;
  std::vector<sim::ResourceId> producer_of_;
  std::vector<double> duration_table_;
  sim::Trace trace_;
  std::vector<sim::Trace> shard_traces_;
  std::size_t completed_ = 0;
  std::size_t started_ = 0;
  std::size_t outages_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t lost_executions_ = 0;

  // Lazy ascending merge of shard_ready_, plus the EngineState whose
  // pointers alias the members above. Mutable: refreshed from const
  // accessors without changing observable engine state.
  mutable std::vector<dag::TaskId> merged_ready_;
  mutable bool merged_dirty_ = true;
  mutable sim::EngineState state_;
};

}  // namespace readys::cluster
