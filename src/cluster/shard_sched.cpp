#include "cluster/shard_sched.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace readys::cluster {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Per-shard queue-depth gauges are registered for at most this many
/// shards — beyond that the metric surface would outgrow its usefulness.
constexpr int kMaxDepthGauges = 32;
}  // namespace

ShardScheduler::ShardScheduler(
    std::vector<std::unique_ptr<sim::Scheduler>> inners, Options opts,
    std::string inner_label)
    : inners_(std::move(inners)),
      opts_(opts),
      inner_label_(std::move(inner_label)) {
  if (inners_.empty()) {
    throw std::invalid_argument(
        "ShardScheduler: needs at least one inner scheduler");
  }
  opts_.shards = std::max(1, opts_.shards);
  opts_.hb_suspect = std::max(1, opts_.hb_suspect);
  opts_.hb_dead = std::max(opts_.hb_suspect, opts_.hb_dead);
}

std::string ShardScheduler::name() const {
  return "shard(" + std::to_string(opts_.shards) + "x" + inner_label_ + ")";
}

bool ShardScheduler::shard_believed_alive(int s) const {
  for (const sim::ResourceId r : shards_[static_cast<std::size_t>(s)].members) {
    if (monitor_.believed_alive(static_cast<std::size_t>(r))) return true;
  }
  return false;
}

void ShardScheduler::bind_scoped_states() {
  for (Shard& shard : shards_) {
    sim::EngineState& st = shard.state;
    st.graph = &base_view_->graph();
    st.platform = &base_view_->platform();
    st.costs = &base_view_->costs();
    st.comm = base_view_->comm_model();
    st.resources = &shard.members;
    st.ready = &shard.ready;
    st.ready_log = &shard.ready_log;
    st.running = &shard.running;
    // in_ready stays null so is_ready() delegates to the base view:
    // readiness is a global DAG fact, and a guard wrapped around the
    // inner (guarded:<inner>) must not count a stolen-away task — which
    // is still genuinely ready — as an inner failure. Ownership is
    // enforced by the coordinator's own drop check instead.
    st.in_ready = nullptr;
    st.up = &shard.up;
    st.avail = &shard.avail;
    // done / producer_of / resource_task / duration_table stay null:
    // they are global facts and delegate to the full base view.
    st.done = nullptr;
    st.producer_of = nullptr;
    st.resource_task = nullptr;
    st.expected_finish = nullptr;
    st.speed = nullptr;
    st.duration_table = nullptr;
    st.base = &*base_view_;
  }
}

void ShardScheduler::reset(const sim::EngineView& view) {
  const auto p = static_cast<std::size_t>(view.platform().size());
  const std::size_t n = view.graph().num_tasks();
  const int k = static_cast<int>(
      std::min({static_cast<std::size_t>(opts_.shards), p, inners_.size()}));
  partition_ = Partition::by_type_round_robin(view.platform(), k);
  base_view_.emplace(view);

  shards_.clear();
  shards_.resize(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard.inner = inners_[static_cast<std::size_t>(s)].get();
    shard.members = partition_.members[static_cast<std::size_t>(s)];
    shard.in_ready.assign(n, 0);
    shard.up.assign(p, 0);
    shard.avail.assign(p, kInf);
  }
  bind_scoped_states();

  HeartbeatMonitor::Config hb;
  hb.period_ms = opts_.hb_period_ms;
  hb.suspect_after = opts_.hb_suspect;
  hb.dead_after = opts_.hb_dead;
  hb.seed = opts_.seed;
  monitor_ = HeartbeatMonitor(hb);
  monitor_.reset(p, view.now());
  hb_transitions_seen_ = 0;

  owner_.assign(n, -1);
  log_cursor_ = 0;
  used_scratch_.assign(p, 0);
  invoked_.clear();
  invoked_.reserve(static_cast<std::size_t>(k));
  batches_.assign(static_cast<std::size_t>(k), {});
  directory_.assign(static_cast<std::size_t>(k), {});
  directory_at_ = view.now();
  directory_fresh_ = false;

  if (opts_.parallel > 0 && !pool_) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<std::size_t>(
        std::min(opts_.parallel, k)));
  }
  depth_gauges_.clear();
  if (obs::Telemetry* t = obs::telemetry()) {
    for (int s = 0; s < std::min(k, kMaxDepthGauges); ++s) {
      depth_gauges_.push_back(&t->registry().gauge(
          "cluster.shard" + std::to_string(s) + ".queue_depth"));
    }
  }

  // Inners reset on their (still empty) scoped views; ownership of the
  // initial sources lands at the first decide() via the ready log.
  refresh_scoped(view);
  for (Shard& shard : shards_) {
    shard.inner->reset(sim::EngineView(shard.state));
  }
}

void ShardScheduler::insert_owned(int s, dag::TaskId t) {
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  shard.ready.insert(
      std::lower_bound(shard.ready.begin(), shard.ready.end(), t), t);
  shard.in_ready[t] = 1;
  shard.ready_log.push_back(t);
  owner_[t] = s;
}

void ShardScheduler::remove_owned(dag::TaskId t) {
  const int s = owner_[t];
  if (s < 0) return;
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  const auto it =
      std::lower_bound(shard.ready.begin(), shard.ready.end(), t);
  if (it != shard.ready.end() && *it == t) shard.ready.erase(it);
  shard.in_ready[t] = 0;
  owner_[t] = -1;
}

void ShardScheduler::sync_ownership(const sim::EngineView& view) {
  const auto& log = view.ready_log();
  const auto& graph = view.graph();
  for (; log_cursor_ < log.size(); ++log_cursor_) {
    const dag::TaskId t = log[log_cursor_];
    if (!view.is_ready(t)) continue;  // started before we saw the entry
    if (owner_[t] >= 0) continue;     // duplicate log entry, already placed
    int s;
    if (graph.in_degree(t) > 0) {
      // Data locality: follow the first input home. Its producer is
      // known because a ready task's predecessors all completed.
      const sim::ResourceId pr = view.producer_of(graph.predecessors(t)[0]);
      s = pr >= 0 ? partition_.shard(pr)
                  : static_cast<int>(t % static_cast<dag::TaskId>(
                                             shards_.size()));
    } else {
      s = static_cast<int>(t % static_cast<dag::TaskId>(shards_.size()));
    }
    insert_owned(s, t);
  }
}

void ShardScheduler::refresh_scoped(const sim::EngineView& view) {
  // Pass 1: liveness and idleness for every member (cheap bitmap-level
  // queries); a shard with no up-and-idle member cannot bind anything
  // this round, so the expensive per-resource refreshes below are
  // reserved for shards that will actually be woken.
  for (Shard& shard : shards_) {
    shard.has_idle = false;
    // Local facts are fresh — a shard always knows its own resources.
    for (const sim::ResourceId r : shard.members) {
      const auto ri = static_cast<std::size_t>(r);
      const bool up = view.is_up(r);
      shard.up[ri] = up ? 1 : 0;
      if (up && view.is_idle(r)) shard.has_idle = true;
    }
    sim::EngineState& st = shard.state;
    st.now = view.now();
    st.any_running = view.any_running();
    // Always on: remote resources read as "down", which routes every
    // inner's existing fault-tolerance path (drain dead queues, steal
    // from dead plans) into cross-shard behavior for free.
    st.fault_enabled = true;
  }
  // Pass 2: full scoped state, only where an inner will look at it.
  for (Shard& shard : shards_) {
    if (!shard.has_idle) continue;
    shard.running.clear();
    for (const sim::ResourceId r : shard.members) {
      const auto ri = static_cast<std::size_t>(r);
      shard.avail[ri] =
          shard.up[ri] != 0 ? view.expected_available_at(r) : kInf;
    }
  }
  for (const sim::RunningInfo& info : view.running()) {
    Shard& shard =
        shards_[static_cast<std::size_t>(partition_.shard(info.resource))];
    if (shard.has_idle) shard.running.push_back(info);
  }
}

void ShardScheduler::refresh_directory(const sim::EngineView& view) {
  const double now = view.now();
  if (directory_fresh_ && now - directory_at_ < opts_.stale_ms) return;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    directory_[s].depth = shards_[s].ready.size();
    directory_[s].alive = shard_believed_alive(static_cast<int>(s));
  }
  directory_at_ = now;
  directory_fresh_ = true;
}

void ShardScheduler::try_steal(const sim::EngineView& view) {
  obs::Telemetry* tel = obs::telemetry();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& thief = shards_[s];
    if (!thief.ready.empty()) continue;
    if (!thief.has_idle) continue;  // computed by refresh_scoped
    // Victim selection runs on the bounded-stale directory (this is the
    // only cross-shard information a shard consults); the transfer
    // itself is a live exchange with the chosen victim.
    const double age = view.now() - directory_at_;
    if (tel) tel->cluster_stale_age.observe(age);
    int victim = -1;
    std::size_t best_depth = 0;
    for (std::size_t v = 0; v < shards_.size(); ++v) {
      if (v == s || !directory_[v].alive) continue;
      if (directory_[v].depth > best_depth) {
        best_depth = directory_[v].depth;
        victim = static_cast<int>(v);
      }
    }
    if (victim < 0) continue;
    auto& vq = shards_[static_cast<std::size_t>(victim)].ready;
    if (vq.empty()) {
      // The directory lied (stale); remember the truth locally so the
      // same empty victim is not re-picked until the next refresh.
      directory_[static_cast<std::size_t>(victim)].depth = 0;
      continue;
    }
    const std::size_t take = std::max<std::size_t>(1, vq.size() / 2);
    // Steal from the back: highest ids are the victim's freshest work,
    // least likely to be mid-flight in its inner's private queues.
    std::vector<dag::TaskId> moved(vq.end() - static_cast<std::ptrdiff_t>(take),
                                   vq.end());
    for (const dag::TaskId t : moved) {
      remove_owned(t);
      insert_owned(static_cast<int>(s), t);
    }
    directory_[static_cast<std::size_t>(victim)].depth = vq.size();
    ++steals_;
    stolen_tasks_ += take;
    if (tel) {
      tel->cluster_steals.add();
      tel->cluster_stolen.add(take);
    }
  }
}

std::vector<sim::Assignment> ShardScheduler::decide(
    const sim::EngineView& view) {
  obs::Telemetry* tel = obs::telemetry();
  base_view_.emplace(view);  // stable address: scoped states point here

  // 1. Failure detection: feed current liveness into the heartbeat
  // machine; schedulers downstream only see its *beliefs*. The monitor
  // is event-driven and queries ground truth only for resources whose
  // wake time has arrived.
  const auto p = static_cast<std::size_t>(view.platform().size());
  monitor_.observe(view.now(), [&view](std::size_t r) {
    return view.is_up(static_cast<sim::ResourceId>(r));
  });
  if (tel && monitor_.total_transitions() != hb_transitions_seen_) {
    tel->cluster_hb_transitions.add(monitor_.total_transitions() -
                                    hb_transitions_seen_);
  }
  hb_transitions_seen_ = monitor_.total_transitions();

  // 2. Ownership, scoped state, stale directory, stealing.
  sync_ownership(view);
  refresh_scoped(view);
  refresh_directory(view);
  if (opts_.steal) try_steal(view);

  // 3. Event-driven activation: only shards with an up-and-idle member
  // can bind work this round, so only their inners are woken. Scopes
  // are disjoint, so the parallel path and the serial path produce the
  // same batches; results always apply in shard order.
  invoked_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].has_idle) invoked_.push_back(static_cast<std::uint32_t>(s));
  }
  if (pool_ && invoked_.size() > 1) {
    pool_->parallel_for(invoked_.size(), [&](std::size_t i) {
      const std::size_t s = invoked_[i];
      batches_[s] =
          shards_[s].inner->decide(sim::EngineView(shards_[s].state));
    });
  } else {
    for (const std::uint32_t s : invoked_) {
      batches_[s] =
          shards_[s].inner->decide(sim::EngineView(shards_[s].state));
    }
  }

  std::vector<sim::Assignment> out;
  std::fill(used_scratch_.begin(), used_scratch_.end(), 0);
  std::vector<std::uint8_t>& used_res = used_scratch_;
  for (const std::uint32_t s : invoked_) {
    for (const sim::Assignment& a : batches_[s]) {
      const auto ri = static_cast<std::size_t>(a.resource);
      // An inner can lag its shard's truth (e.g. its private queue
      // still holds a task that was stolen away); such proposals are
      // dropped and the inner self-heals on its next decide.
      const bool ok = a.task < owner_.size() && a.resource >= 0 &&
                      ri < p &&
                      shards_[s].in_ready[a.task] != 0 &&
                      view.is_ready(a.task) &&
                      partition_.shard(a.resource) == static_cast<int>(s) &&
                      view.is_up(a.resource) && view.is_idle(a.resource) &&
                      used_res[ri] == 0;
      if (!ok) {
        ++dropped_;
        if (tel) tel->cluster_dropped.add();
        continue;
      }
      used_res[ri] = 1;
      remove_owned(a.task);
      out.push_back(a);
    }
  }

  // 4. Liveness rescue: if no shard bound anything and nothing runs,
  // the simulator would declare a stall. One full-view MCT shot keeps
  // the episode alive (e.g. all ready work owned by shards whose
  // resources are down, with stealing disabled).
  if (out.empty() && !view.any_running() && !view.ready().empty()) {
    const auto rescue = sched::one_shot_mct(rescue_scratch_, view);
    for (const sim::Assignment& a : rescue) {
      const auto ri = static_cast<std::size_t>(a.resource);
      if (!view.is_ready(a.task) || !view.is_up(a.resource) ||
          !view.is_idle(a.resource) || used_res[ri] != 0) {
        continue;
      }
      used_res[ri] = 1;
      remove_owned(a.task);
      out.push_back(a);
    }
    if (!out.empty()) {
      ++rescues_;
      if (tel) tel->cluster_rescues.add();
    }
  }

  for (std::size_t s = 0; s < depth_gauges_.size(); ++s) {
    depth_gauges_[s]->set(static_cast<double>(shards_[s].ready.size()));
  }
  return out;
}

}  // namespace readys::cluster
