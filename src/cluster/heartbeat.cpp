#include "cluster/heartbeat.hpp"

#include <algorithm>
#include <limits>

namespace readys::cluster {

namespace {
/// Wake a hair before a computed threshold crossing so float rounding
/// in `last_heard + k * period` can never make the detector look one
/// observation *later* than the `missed >= k` comparison it models.
/// Waking early is harmless (one extra no-op check); waking late would
/// delay a transition.
constexpr double kWakeSlack = 1e-9;
}  // namespace

void HeartbeatMonitor::reset(std::size_t num_resources, double now) {
  state_.assign(num_resources, HbState::kAlive);
  period_.resize(num_resources);
  next_emit_.resize(num_resources);
  last_heard_.assign(num_resources, now);
  for (auto& row : transitions_) row.fill(0);
  total_ = 0;
  util::Rng rng(config_.seed);
  heap_.clear();
  heap_.reserve(num_resources);
  due_.clear();
  for (std::size_t r = 0; r < num_resources; ++r) {
    // Jitter in [0.75, 1.25) x period so the fleet's emissions do not
    // phase-lock; fixed per episode for determinism.
    period_[r] = config_.period_ms * (0.75 + 0.5 * rng.uniform());
    next_emit_[r] = now + period_[r];
    heap_.push_back({next_wake(r, now), static_cast<std::uint32_t>(r)});
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void HeartbeatMonitor::step_to(std::size_t r, HbState target) {
  HbState cur = state_[r];
  if (target == cur) return;
  if (target < cur) {
    // A heartbeat was heard: any belief snaps straight back to alive.
    transitions_[static_cast<int>(cur)][static_cast<int>(HbState::kAlive)]++;
    ++total_;
    state_[r] = HbState::kAlive;
    return;
  }
  // Worsening: one severity step per observation, so alive always
  // passes through suspect before dead.
  const HbState next = static_cast<HbState>(static_cast<int>(cur) + 1);
  transitions_[static_cast<int>(cur)][static_cast<int>(next)]++;
  ++total_;
  state_[r] = next;
}

/// Earliest future time resource r's belief could change, given frozen
/// inputs: its next beat boundary (a beat may be heard, or missed-beat
/// counts grow past it), or — while silent — the crossing into the next
/// severity band. A resource still worsening toward its target must be
/// re-checked at the very next observe (one severity step per call).
double HeartbeatMonitor::next_wake(std::size_t r, double now) const {
  double cross = std::numeric_limits<double>::infinity();
  if (state_[r] == HbState::kAlive) {
    cross = last_heard_[r] +
            static_cast<double>(config_.suspect_after) * period_[r];
  } else if (state_[r] == HbState::kSuspect) {
    cross =
        last_heard_[r] + static_cast<double>(config_.dead_after) * period_[r];
  }
  return std::max(now, std::min(next_emit_[r], cross - kWakeSlack));
}

void HeartbeatMonitor::observe(double now, const UpFn& up) {
  due_.clear();
  while (!heap_.empty() && heap_.front().at <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const std::uint32_t r = heap_.back().resource;
    heap_.pop_back();
    while (next_emit_[r] <= now) {
      if (up(r)) last_heard_[r] = next_emit_[r];
      next_emit_[r] += period_[r];
    }
    const double missed = (now - last_heard_[r]) / period_[r];
    HbState target = HbState::kAlive;
    if (missed >= static_cast<double>(config_.dead_after)) {
      target = HbState::kDead;
    } else if (missed >= static_cast<double>(config_.suspect_after)) {
      target = HbState::kSuspect;
    }
    step_to(r, target);
    // Still short of a worsening target (alive stepped only to
    // suspect): wake at `now` so the very next observe, at any later
    // time, takes the following severity step.
    const double at = state_[r] != target ? now : next_wake(r, now);
    due_.push_back({at, r});
  }
  // Re-arm after the drain loop so a resource is processed at most
  // once per observe call even when its wake time stays <= now.
  for (const Wake& w : due_) {
    heap_.push_back(w);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
}

}  // namespace readys::cluster
