#include "cluster/cluster_sim.hpp"

#include <stdexcept>

#include "obs/span.hpp"

namespace readys::cluster {

ClusterSimulator::ClusterSimulator(const dag::TaskGraph& graph,
                                   const sim::Platform& platform,
                                   const sim::CostModel& costs,
                                   Options options)
    : graph_(&graph),
      platform_(platform),
      costs_(costs),
      options_(options) {}

ClusterResult ClusterSimulator::run(sim::Scheduler& scheduler) {
  obs::Span span("cluster/episode", "sim");
  const sim::CommModel comm = options_.comm.has_value()
                                  ? *options_.comm
                                  : sim::CommModel::free();
  const sim::FaultModel faults = options_.faults.has_value()
                                     ? *options_.faults
                                     : sim::FaultModel::none();
  ShardedEngine engine(*graph_, platform_, costs_, comm, faults,
                       options_.sigma, options_.seed, options_.shards);
  scheduler.reset(engine.view());

  ClusterResult result;
  while (!engine.finished()) {
    ++result.decision_instants;
    for (;;) {
      const auto assignments = scheduler.decide(engine.view());
      if (assignments.empty()) break;
      for (const auto& a : assignments) {
        engine.start(a.task, a.resource);
      }
    }
    if (engine.finished()) break;
    if (engine.fault_enabled() && !engine.any_running() &&
        engine.num_up() == 0 && engine.faults().mean_downtime <= 0.0) {
      throw std::logic_error(
          "ClusterSimulator: platform unrecoverable (every resource "
          "permanently down, tasks remain)");
    }
    if (!engine.advance()) {
      throw std::logic_error(
          "ClusterSimulator: scheduler stalled (no task running, none "
          "assigned, tasks remain)");
    }
  }
  result.makespan = engine.makespan();
  result.trace = engine.trace();
  result.shard_traces = engine.shard_traces();
  return result;
}

}  // namespace readys::cluster
