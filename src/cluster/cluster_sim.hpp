#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/sharded_engine.hpp"
#include "sim/simulator.hpp"

namespace readys::cluster {

/// Result of one cluster-scale execution: the plain SimResult fields
/// plus the per-shard sub-traces (whose merge equals `trace` — pinned by
/// the property suite).
struct ClusterResult {
  double makespan = 0.0;
  sim::Trace trace;
  std::size_t decision_instants = 0;
  std::vector<sim::Trace> shard_traces;
};

/// Event-driven executor over a ShardedEngine — the same decide/start/
/// advance protocol as sim::Simulator (including the stall and
/// unrecoverable-platform failure modes), but the scheduler observes a
/// table-backed EngineView published by the sharded core. Any Scheduler
/// runs here unchanged; pairing it with a ShardScheduler built for the
/// same shard count is what the "shard:<inner>" registry family does.
class ClusterSimulator {
 public:
  struct Options {
    double sigma = 0.0;
    std::uint64_t seed = 1;
    int shards = 1;
    std::optional<sim::CommModel> comm;
    std::optional<sim::FaultModel> faults;
  };

  ClusterSimulator(const dag::TaskGraph& graph, const sim::Platform& platform,
                   const sim::CostModel& costs, Options options);

  ClusterResult run(sim::Scheduler& scheduler);

 private:
  const dag::TaskGraph* graph_;  // must outlive the simulator
  sim::Platform platform_;       // copied: inline temporaries are safe
  sim::CostModel costs_;
  Options options_;
};

}  // namespace readys::cluster
