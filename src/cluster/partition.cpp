#include "cluster/partition.hpp"

#include <stdexcept>
#include <string>

namespace readys::cluster {

Partition Partition::by_type_round_robin(const sim::Platform& platform,
                                         int shards) {
  if (shards < 1 || shards > platform.size()) {
    throw std::invalid_argument(
        "Partition: shard count " + std::to_string(shards) +
        " out of range for a " + std::to_string(platform.size()) +
        "-resource platform (expected 1 to P)");
  }
  Partition p;
  p.num_shards = shards;
  p.shard_of.resize(static_cast<std::size_t>(platform.size()));
  p.members.resize(static_cast<std::size_t>(shards));
  int per_type_index[sim::kNumResourceTypes] = {0, 0};
  for (sim::ResourceId r = 0; r < platform.size(); ++r) {
    const int type = static_cast<int>(platform.type(r));
    const int s = per_type_index[type]++ % shards;
    p.shard_of[static_cast<std::size_t>(r)] = s;
    p.members[static_cast<std::size_t>(s)].push_back(r);
  }
  return p;
}

}  // namespace readys::cluster
