#include "cluster/register.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace readys::cluster {

ShardScheduler::Options parse_shard_options(const sched::SpecOptions& spec) {
  ShardScheduler::Options opts;
  for (const auto& [key, value] : spec.items) {
    if (key == "shards") {
      opts.shards = sched::option_int(key, value, 1, 4096);
    } else if (key == "stale_ms") {
      opts.stale_ms = sched::option_double(key, value, 0.0, 1e12);
    } else if (key == "hb_ms") {
      opts.hb_period_ms = sched::option_double(key, value, 1e-9, 1e12);
    } else if (key == "suspect") {
      opts.hb_suspect = sched::option_int(key, value, 1, 1 << 20);
    } else if (key == "dead") {
      opts.hb_dead = sched::option_int(key, value, 1, 1 << 20);
    } else if (key == "steal") {
      opts.steal = sched::option_int(key, value, 0, 1) != 0;
    } else if (key == "parallel") {
      opts.parallel = sched::option_int(key, value, 0, 1024);
    } else {
      throw std::invalid_argument(
          "unknown shard option \"" + key +
          "\" (known: shards, stale_ms, hb_ms, suspect, dead, steal, "
          "parallel)");
    }
  }
  if (opts.hb_dead < opts.hb_suspect) {
    throw std::invalid_argument(
        "shard option dead must be >= suspect (" +
        std::to_string(opts.hb_dead) + " < " +
        std::to_string(opts.hb_suspect) + ")");
  }
  return opts;
}

void register_cluster_scheduler() {
  sched::registry().add_prefix(
      "shard",
      [](const sched::SpecOptions& spec) { (void)parse_shard_options(spec); },
      [](const sched::SpecOptions& spec, const sched::SchedulerConfig& cfg,
         const sched::Registry& self) -> std::unique_ptr<sched::Scheduler> {
        const ShardScheduler::Options opts = parse_shard_options(spec);
        std::vector<std::unique_ptr<sim::Scheduler>> inners;
        inners.reserve(static_cast<std::size_t>(opts.shards));
        for (int s = 0; s < opts.shards; ++s) {
          sched::SchedulerConfig inner_cfg = cfg;
          inner_cfg.seed = cfg.seed + static_cast<std::uint64_t>(s);
          inners.push_back(self.make(spec.inner, inner_cfg));
        }
        ShardScheduler::Options seeded = opts;
        seeded.seed = cfg.seed;
        return std::make_unique<ShardScheduler>(std::move(inners), seeded,
                                                spec.inner);
      });
}

}  // namespace readys::cluster
