#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace readys::cluster {

/// Believed liveness of one resource as seen through its heartbeats.
/// Ordered by severity: transitions only ever move one step toward
/// kDead, and any fresh heartbeat snaps straight back to kAlive.
enum class HbState : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

inline constexpr int kNumHbStates = 3;

/// Phi-accrual-flavored failure detector over simulated time.
///
/// Each resource emits a heartbeat every `period_ms` of simulated time
/// (jittered per resource so emissions do not phase-lock across the
/// platform), but only while it is actually up — an outage silences the
/// resource and the detector *discovers* the failure after enough
/// missed beats, it is never told. That indirection is the point: a
/// decentralized scheduler composing with the engine's FaultModel sees
/// outages with detection latency, exactly like a real cluster
/// membership service, instead of reading ground truth.
///
///   missed < suspect_after          -> kAlive
///   suspect_after <= missed < dead  -> kSuspect (stop stealing for it)
///   dead_after <= missed            -> kDead    (treat as departed)
///
/// Worsening transitions step through kSuspect one observe() at a time
/// (alive never jumps straight to dead); a heard heartbeat snaps any
/// state back to kAlive. Every transition is counted into a 3x3 matrix
/// so tests can pin the machine's validity (e.g. the dead->suspect cell
/// stays zero forever) and the cluster.heartbeat_transitions metric has
/// an exact source of truth.
///
/// observe() is event-driven: a wake-time min-heap holds, per resource,
/// the earliest simulated time its belief could possibly change (its
/// next beat boundary or its next missed-beat threshold crossing), so a
/// call touches only the resources whose wake time has arrived instead
/// of scanning the whole platform. A coordinator deciding every few
/// microseconds of simulated time therefore pays O(beats crossed), not
/// O(P), per round — with identical observable behavior, since a beat
/// is still processed at the first observe() after its boundary.
///
/// The detector is deterministic: jitter comes from its own seeded Rng
/// and time is simulation time, so a run is bit-reproducible.
class HeartbeatMonitor {
 public:
  struct Config {
    double period_ms = 1.0;  ///< mean heartbeat interval (simulated ms)
    int suspect_after = 3;   ///< missed beats before kSuspect
    int dead_after = 6;      ///< missed beats before kDead
    std::uint64_t seed = 0x4bea7;
  };

  /// Ground-truth liveness query for one resource, answered by the
  /// caller at observation time (see observe()).
  using UpFn = std::function<bool(std::size_t)>;

  HeartbeatMonitor() = default;
  explicit HeartbeatMonitor(Config config) : config_(config) {}

  /// (Re)starts the detector for `num_resources` resources at time
  /// `now`: everyone starts kAlive with a heartbeat just heard, and the
  /// per-resource jittered periods are re-drawn from the seed.
  void reset(std::size_t num_resources, double now);

  /// Advances every due resource's emission schedule to `now` and
  /// updates beliefs. `up(r)` is the resource's *current* ground-truth
  /// liveness: heartbeats scheduled in (last_observe, now] are heard
  /// only if the resource is up at this observation (a discrete-time
  /// approximation — detection latency is already the feature under
  /// test, sub-period outage timing is noise).
  void observe(double now, const UpFn& up);

  /// Table-backed convenience overload: `up[r]` per resource.
  void observe(double now, const std::vector<std::uint8_t>& up) {
    observe(now, UpFn([&up](std::size_t r) { return up[r] != 0; }));
  }

  HbState state(std::size_t r) const { return state_[r]; }
  /// True unless the resource is believed dead (suspects are still
  /// polled, but not targeted by work stealing).
  bool believed_alive(std::size_t r) const {
    return state_[r] != HbState::kDead;
  }
  std::size_t num_resources() const noexcept { return state_.size(); }

  /// transition_counts()[from][to]: times a resource moved from->to.
  /// Diagonal stays zero (self-transitions are not transitions).
  const std::array<std::array<std::uint64_t, kNumHbStates>, kNumHbStates>&
  transition_counts() const noexcept {
    return transitions_;
  }
  std::uint64_t total_transitions() const noexcept { return total_; }

  const Config& config() const noexcept { return config_; }

 private:
  void step_to(std::size_t r, HbState target);
  double next_wake(std::size_t r, double now) const;

  /// Heap entry: (wake time, resource). Exactly one live entry per
  /// resource — wake times only change when the entry is popped.
  struct Wake {
    double at = 0.0;
    std::uint32_t resource = 0;
    bool operator>(const Wake& o) const noexcept { return at > o.at; }
  };

  Config config_;
  std::vector<HbState> state_;
  std::vector<double> period_;     ///< jittered per-resource interval
  std::vector<double> next_emit_;  ///< next scheduled heartbeat time
  std::vector<double> last_heard_; ///< last heartbeat actually received
  std::vector<Wake> heap_;  ///< min-heap on wake time
  std::vector<Wake> due_;   ///< scratch: entries re-armed this call
  std::array<std::array<std::uint64_t, kNumHbStates>, kNumHbStates>
      transitions_{};
  std::uint64_t total_ = 0;
};

}  // namespace readys::cluster
