#include "cluster/sharded_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace readys::cluster {

namespace {

/// Same fault-stream salt as SimEngine — the streams must be identical
/// for the bit-exactness contract.
constexpr std::uint64_t kFaultSeedSalt = 0xFA171E5D00DAD5ULL;

bool event_after(double ta, std::uint64_t sa, double tb,
                 std::uint64_t sb) noexcept {
  if (ta != tb) return ta > tb;
  return sa > sb;
}

}  // namespace

ShardedEngine::ShardedEngine(const dag::TaskGraph& graph,
                             const sim::Platform& platform,
                             const sim::CostModel& costs,
                             const sim::CommModel& comm,
                             const sim::FaultModel& faults, double sigma,
                             std::uint64_t seed, int shards)
    : graph_(&graph),
      platform_(platform),
      costs_(costs),
      noise_(sigma),
      rng_(seed),
      partition_(Partition::by_type_round_robin(platform, shards)) {
  if (costs.num_kernels() < graph.num_kernel_types()) {
    throw std::invalid_argument(
        "ShardedEngine: cost model does not cover every kernel type");
  }
  faults.validate();
  fault_ = faults;
  fault_enabled_ = faults.enabled();
  if (!comm.is_free()) comm_ = comm;
  const auto n_res = static_cast<std::size_t>(platform_.size());
  duration_table_.resize(static_cast<std::size_t>(costs_.num_kernels()) *
                         n_res);
  for (int k = 0; k < costs_.num_kernels(); ++k) {
    for (sim::ResourceId r = 0; r < platform_.size(); ++r) {
      duration_table_[static_cast<std::size_t>(k) * n_res +
                      static_cast<std::size_t>(r)] =
          costs_.expected(k, platform_.type(r));
    }
  }
  bind_state();
  reset(seed);
}

void ShardedEngine::bind_state() {
  // Static aliasing into this engine's members: view() only touches the
  // scalars afterwards. The vectors may reallocate their storage — the
  // EngineState holds pointers to the vector objects, not their buffers.
  state_.graph = graph_;
  state_.platform = &platform_;
  state_.costs = &costs_;
  state_.comm = comm_ ? &*comm_ : nullptr;
  state_.resources = &platform_.ids();
  state_.ready = &merged_ready_;
  state_.ready_log = &ready_log_;
  state_.running = &running_;
  state_.in_ready = &in_ready_;
  state_.up = &resource_up_;
  state_.done = &done_;
  state_.producer_of = &producer_of_;
  state_.resource_task = &resource_task_;
  state_.expected_finish = &resource_expected_finish_;
  state_.speed = &speed_factor_;
  state_.duration_table = &duration_table_;
  state_.base = nullptr;
}

void ShardedEngine::reset(std::uint64_t seed) {
  if (obs::Telemetry* t_obs = obs::telemetry()) t_obs->sim_episodes.add();
  rng_ = util::Rng(seed);
  now_ = 0.0;
  completed_ = 0;
  started_ = 0;
  outages_ = 0;
  recoveries_ = 0;
  lost_executions_ = 0;
  event_seq_ = 0;
  const std::size_t n = graph_->num_tasks();
  const auto n_res = static_cast<std::size_t>(platform_.size());
  const auto k = static_cast<std::size_t>(partition_.num_shards);
  missing_preds_.assign(n, 0);
  done_.assign(n, 0);
  shard_ready_.assign(k, {});
  in_ready_.assign(n, 0);
  ready_log_.clear();
  ready_log_.reserve(n);
  running_.clear();
  heaps_.assign(k, {});
  resource_task_.assign(n_res, dag::kInvalidTask);
  resource_expected_finish_.assign(
      n_res, std::numeric_limits<double>::quiet_NaN());
  resource_up_.assign(n_res, 1);
  speed_factor_.assign(n_res, 1.0);
  producer_of_.assign(n, -1);
  trace_.clear();
  shard_traces_.assign(k, {});
  merged_ready_.clear();
  merged_dirty_ = true;
  for (dag::TaskId t = 0; t < n; ++t) {
    missing_preds_[t] = graph_->in_degree(t);
    if (missing_preds_[t] == 0) insert_ready(t);
  }
  if (fault_enabled_) {
    fault_rng_ = util::Rng(seed ^ kFaultSeedSalt);
    // Ascending resource order: consumes the fault stream exactly as
    // SimEngine::reset does, whichever shard each event lands in.
    for (sim::ResourceId r = 0; r < platform_.size(); ++r) {
      if (fault_.outage_rate > 0.0) {
        push_event(
            sim::FaultModel::sample_gap(fault_.outage_rate, fault_rng_),
            dag::kInvalidTask, r, EventKind::kOutage);
      }
      if (fault_.slowdown_rate > 0.0) {
        push_event(
            sim::FaultModel::sample_gap(fault_.slowdown_rate, fault_rng_),
            dag::kInvalidTask, r, EventKind::kSlowdownBegin);
      }
    }
  }
}

const std::vector<dag::TaskId>& ShardedEngine::ready() const {
  if (merged_dirty_) {
    merged_ready_.clear();
    for (const auto& q : shard_ready_) {
      merged_ready_.insert(merged_ready_.end(), q.begin(), q.end());
    }
    std::sort(merged_ready_.begin(), merged_ready_.end());
    merged_dirty_ = false;
  }
  return merged_ready_;
}

sim::EngineView ShardedEngine::view() const {
  (void)ready();  // settle the merged cache the state points at
  state_.now = now_;
  state_.fault_enabled = fault_enabled_;
  state_.any_running = !running_.empty();
  return sim::EngineView(state_);
}

int ShardedEngine::num_up() const noexcept {
  int up = 0;
  for (const std::uint8_t u : resource_up_) up += u != 0;
  return up;
}

double ShardedEngine::expected_input_delay(dag::TaskId t,
                                           sim::ResourceId r) const {
  if (!comm_) return 0.0;
  return comm_->input_delay(*graph_, t, platform_, producer_of_, r);
}

void ShardedEngine::insert_ready(dag::TaskId t) {
  auto& q = shard_ready_[static_cast<std::size_t>(task_shard(t))];
  q.insert(std::lower_bound(q.begin(), q.end(), t), t);
  in_ready_[t] = 1;
  ready_log_.push_back(t);
  merged_dirty_ = true;
}

std::uint64_t ShardedEngine::push_event(double time, dag::TaskId task,
                                        sim::ResourceId r, EventKind kind) {
  const std::uint64_t seq = event_seq_++;
  auto& heap = heaps_[static_cast<std::size_t>(partition_.shard(r))];
  heap.push_back({time, seq, task, r, kind});
  std::push_heap(heap.begin(), heap.end(),
                 [](const Event& a, const Event& b) {
                   return event_after(a.time, a.seq, b.time, b.seq);
                 });
  return seq;
}

int ShardedEngine::earliest_shard() const {
  int best = -1;
  for (std::size_t s = 0; s < heaps_.size(); ++s) {
    if (heaps_[s].empty()) continue;
    if (best < 0 ||
        event_after(heaps_[static_cast<std::size_t>(best)].front().time,
                    heaps_[static_cast<std::size_t>(best)].front().seq,
                    heaps_[s].front().time, heaps_[s].front().seq)) {
      best = static_cast<int>(s);
    }
  }
  return best;
}

void ShardedEngine::start(dag::TaskId t, sim::ResourceId r) {
  if (r < 0 || r >= platform_.size()) {
    throw std::logic_error("ShardedEngine::start: invalid resource");
  }
  if (fault_enabled_ && !is_up(r)) {
    throw std::logic_error("ShardedEngine::start: resource is down");
  }
  if (!is_idle(r)) {
    throw std::logic_error("ShardedEngine::start: resource is busy");
  }
  if (!is_ready(t)) {
    throw std::logic_error("ShardedEngine::start: task is not ready");
  }
  auto& q = shard_ready_[static_cast<std::size_t>(task_shard(t))];
  q.erase(std::lower_bound(q.begin(), q.end(), t));
  in_ready_[t] = 0;
  merged_dirty_ = true;

  const double expected = expected_duration(t, r);
  const double actual = noise_.sample(expected, rng_);
  const double shipping = expected_input_delay(t, r);
  const bool fails = fault_enabled_ && fault_.task_failure_prob > 0.0 &&
                     fault_rng_.uniform() < fault_.task_failure_prob;
  sim::RunningInfo info;
  info.task = t;
  info.resource = r;
  info.start = now_;
  info.actual_finish = now_ + shipping + actual;
  info.expected_finish = now_ + shipping + expected;
  info.seq = push_event(info.actual_finish, t, r,
                        fails ? EventKind::kFail : EventKind::kFinish);
  running_.push_back(info);
  resource_task_[static_cast<std::size_t>(r)] = t;
  resource_expected_finish_[static_cast<std::size_t>(r)] =
      info.expected_finish;
  ++started_;
  if (obs::Telemetry* t_obs = obs::telemetry()) t_obs->sim_tasks_started.add();
}

void ShardedEngine::complete(const sim::RunningInfo& info) {
  resource_task_[static_cast<std::size_t>(info.resource)] = dag::kInvalidTask;
  resource_expected_finish_[static_cast<std::size_t>(info.resource)] =
      std::numeric_limits<double>::quiet_NaN();
  producer_of_[info.task] = info.resource;
  done_[info.task] = 1;
  ++completed_;
  const sim::TraceEntry entry{info.task, info.resource, info.start,
                              info.actual_finish};
  trace_.add(entry);
  shard_traces_[static_cast<std::size_t>(partition_.shard(info.resource))]
      .add(entry);
  for (dag::TaskId s : graph_->successors(info.task)) {
    if (--missing_preds_[s] == 0) insert_ready(s);
  }
}

void ShardedEngine::kill_running(sim::ResourceId r) {
  auto it = std::find_if(
      running_.begin(), running_.end(),
      [r](const sim::RunningInfo& info) { return info.resource == r; });
  if (it == running_.end()) return;
  const dag::TaskId task = it->task;
  running_.erase(it);
  resource_task_[static_cast<std::size_t>(r)] = dag::kInvalidTask;
  resource_expected_finish_[static_cast<std::size_t>(r)] =
      std::numeric_limits<double>::quiet_NaN();
  insert_ready(task);
  ++lost_executions_;
}

bool ShardedEngine::outage_would_strand(sim::ResourceId r) const {
  if (fault_.min_survivors_per_type <= 0) return false;
  const sim::ResourceType type = platform_.type(r);
  int up_of_type = 0;
  for (sim::ResourceId o = 0; o < platform_.size(); ++o) {
    if (platform_.type(o) == type && is_up(o)) ++up_of_type;
  }
  return up_of_type <= fault_.min_survivors_per_type;
}

void ShardedEngine::dispatch(const Event& ev, bool& observable) {
  switch (ev.kind) {
    case EventKind::kFinish:
    case EventKind::kFail: {
      auto it = std::find_if(running_.begin(), running_.end(),
                             [&ev](const sim::RunningInfo& info) {
                               return info.task == ev.task &&
                                      info.seq == ev.seq;
                             });
      if (it == running_.end()) {
        if (!fault_enabled_) {
          throw std::logic_error(
              "ShardedEngine::complete: event for a task that is not "
              "running (state corruption)");
        }
        return;  // stale: the execution was killed mid-flight
      }
      const sim::RunningInfo info = *it;
      running_.erase(it);
      if (ev.kind == EventKind::kFinish) {
        complete(info);
      } else {
        resource_task_[static_cast<std::size_t>(info.resource)] =
            dag::kInvalidTask;
        resource_expected_finish_[static_cast<std::size_t>(info.resource)] =
            std::numeric_limits<double>::quiet_NaN();
        insert_ready(info.task);
        ++lost_executions_;
      }
      observable = true;
      return;
    }
    case EventKind::kOutage: {
      if (!is_up(ev.resource)) return;
      if (outage_would_strand(ev.resource)) {
        push_event(now_ + sim::FaultModel::sample_gap(fault_.outage_rate,
                                                      fault_rng_),
                   dag::kInvalidTask, ev.resource, EventKind::kOutage);
        return;
      }
      resource_up_[static_cast<std::size_t>(ev.resource)] = 0;
      ++outages_;
      kill_running(ev.resource);
      if (fault_.mean_downtime > 0.0) {
        push_event(
            now_ + sim::FaultModel::sample_duration(fault_.mean_downtime,
                                                    fault_rng_),
            dag::kInvalidTask, ev.resource, EventKind::kRecovery);
      }
      observable = true;
      return;
    }
    case EventKind::kRecovery: {
      resource_up_[static_cast<std::size_t>(ev.resource)] = 1;
      ++recoveries_;
      push_event(
          now_ + sim::FaultModel::sample_gap(fault_.outage_rate, fault_rng_),
          dag::kInvalidTask, ev.resource, EventKind::kOutage);
      observable = true;
      return;
    }
    case EventKind::kSlowdownBegin: {
      speed_factor_[static_cast<std::size_t>(ev.resource)] =
          fault_.slowdown_factor;
      push_event(
          now_ + sim::FaultModel::sample_duration(fault_.mean_slowdown,
                                                  fault_rng_),
          dag::kInvalidTask, ev.resource, EventKind::kSlowdownEnd);
      observable = true;
      return;
    }
    case EventKind::kSlowdownEnd: {
      speed_factor_[static_cast<std::size_t>(ev.resource)] = 1.0;
      push_event(
          now_ + sim::FaultModel::sample_gap(fault_.slowdown_rate,
                                             fault_rng_),
          dag::kInvalidTask, ev.resource, EventKind::kSlowdownBegin);
      observable = true;
      return;
    }
  }
}

bool ShardedEngine::advance() {
  if (obs::Telemetry* t_obs = obs::telemetry()) t_obs->sim_events.add();
  const auto later = [](const Event& a, const Event& b) {
    return event_after(a.time, a.seq, b.time, b.seq);
  };
  int s = earliest_shard();
  while (s >= 0) {
    now_ = heaps_[static_cast<std::size_t>(s)].front().time;
    // Epoch: drain every event at this instant in global (time, seq)
    // order. Dispatch may push follow-up events into any shard's heap,
    // so the argmin is recomputed per pop — the inner loop is exactly
    // SimEngine's, just over K fronts instead of one.
    bool observable = false;
    while (s >= 0 &&
           heaps_[static_cast<std::size_t>(s)].front().time <= now_) {
      auto& heap = heaps_[static_cast<std::size_t>(s)];
      std::pop_heap(heap.begin(), heap.end(), later);
      const Event ev = heap.back();
      heap.pop_back();
      dispatch(ev, observable);
      s = earliest_shard();
    }
    if (observable) return true;
    s = earliest_shard();
  }
  return false;
}

}  // namespace readys::cluster
