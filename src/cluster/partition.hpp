#pragma once

#include <vector>

#include "sim/platform.hpp"

namespace readys::cluster {

/// Static assignment of a platform's resources to K shards. Both lookup
/// directions are materialized: `shard_of` answers "which shard owns
/// resource r" in O(1) (the sharded engine routes every event through
/// it), `members` hands each shard its ascending resource list (what a
/// shard-scoped EngineView publishes as its visible resources).
struct Partition {
  int num_shards = 1;
  std::vector<int> shard_of;                        ///< per resource
  std::vector<std::vector<sim::ResourceId>> members;///< per shard, ascending

  /// Partitions CPUs and GPUs round-robin *independently*, so every
  /// shard stays heterogeneous when the platform is (a shard holding
  /// only CPUs could never run GPU-favored kernels competitively and
  /// would poison per-shard scheduling). Resource ids within a shard
  /// remain ascending. Throws std::invalid_argument unless
  /// 1 <= shards <= platform.size().
  static Partition by_type_round_robin(const sim::Platform& platform,
                                       int shards);

  int shard(sim::ResourceId r) const {
    return shard_of[static_cast<std::size_t>(r)];
  }
};

}  // namespace readys::cluster
