#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/heartbeat.hpp"
#include "cluster/partition.hpp"
#include "obs/metrics.hpp"
#include "sched/guarded.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace readys::cluster {

/// Decentralized scheduler: K per-shard instances of any registered
/// inner policy, each deciding over a *scoped* view of its own shard,
/// coordinated through bounded-stale summaries instead of shared state.
///
/// Scoping is the whole trick: a shard's EngineState lists only its
/// member resources, reports every remote resource as down, and sets
/// fault_enabled — so an unmodified inner (MCT, HEFT, guarded:readys,
/// ...) confines its bindings to the shard through the exact code paths
/// it already uses for dead resources. No inner knows it is sharded.
///
/// Per decide() the coordinator:
///   1. consumes the global ready log and assigns each newly-ready task
///      an owner shard — the shard of the resource that produced its
///      first input (data locality), hash-sharded for sources;
///   2. feeds current liveness into a HeartbeatMonitor (failure is
///      *discovered* after missed beats, never read from ground truth);
///   3. refreshes a stale directory of per-shard queue depths at most
///      every `stale_ms` of simulated time — the only cross-shard
///      state, aged into cluster.stale_view_age_ms;
///   4. lets starved shards steal half of the deepest believed-alive
///      victim's queue (directory picks the victim, the live transfer
///      moves ownership);
///   5. runs the inners of shards that have an up-and-idle member on
///      their scoped views (a shard with every member busy or down
///      cannot bind anything, so its inner is not woken — the
///      event-driven activation that keeps coordinator cost per round
///      near O(P/K) instead of O(P)); optionally on a thread pool —
///      scopes are disjoint, results apply in shard order, so parallel
///      and serial decide identically;
///   6. if nothing was bound anywhere and nothing runs, rescues
///      liveness with a one-shot full-view MCT decision (counted in
///      cluster.rescue_fallbacks) instead of stalling the simulator.
///
/// Works under both sim::Simulator (engine-backed views) and
/// ClusterSimulator (table-backed views); pair shards here with the
/// engine's shard count to make the per-shard scans line up.
class ShardScheduler : public sim::Scheduler {
 public:
  struct Options {
    int shards = 4;          ///< clamped to the platform size at reset
    double stale_ms = 5.0;   ///< directory refresh interval (sim time)
    double hb_period_ms = 1.0;
    int hb_suspect = 3;      ///< missed beats -> suspect
    int hb_dead = 6;         ///< missed beats -> dead
    bool steal = true;       ///< work stealing on ready-queue drain
    int parallel = 0;        ///< >0: thread-pool width for inner decides
    std::uint64_t seed = 7;  ///< heartbeat jitter stream
  };

  /// `inners` supplies one scheduler per shard (size == opts.shards);
  /// `inner_label` is the inner spec used in name().
  ShardScheduler(std::vector<std::unique_ptr<sim::Scheduler>> inners,
                 Options opts, std::string inner_label);

  void reset(const sim::EngineView& view) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& view) override;
  std::string name() const override;

  // --- introspection (tests / experiment tables) ---------------------
  int num_shards() const noexcept { return static_cast<int>(shards_.size()); }
  const Options& options() const noexcept { return opts_; }
  const HeartbeatMonitor& heartbeat() const noexcept { return monitor_; }
  /// Ready tasks currently owned by shard s, ascending.
  const std::vector<dag::TaskId>& shard_queue(int s) const {
    return shards_[static_cast<std::size_t>(s)].ready;
  }
  /// Simulated time of the last directory refresh; nondecreasing over
  /// an episode, and decide() never leaves the directory older than
  /// stale_ms (the bounded-staleness guarantee the property suite pins).
  double directory_refreshed_at() const noexcept { return directory_at_; }
  std::size_t steals() const noexcept { return steals_; }
  std::size_t stolen_tasks() const noexcept { return stolen_tasks_; }
  std::size_t rescue_fallbacks() const noexcept { return rescues_; }
  std::size_t dropped_assignments() const noexcept { return dropped_; }

 private:
  struct Shard {
    sim::Scheduler* inner = nullptr;        ///< borrowed from inners_
    std::vector<sim::ResourceId> members;   ///< ascending
    std::vector<dag::TaskId> ready;         ///< owned ready tasks, ascending
    std::vector<std::uint8_t> in_ready;     ///< ownership bitmap, per task
                                            ///< (coordinator-private; the
                                            ///< scoped view's is_ready
                                            ///< delegates to the base)
    std::vector<dag::TaskId> ready_log;     ///< per-shard became-ready order
    std::vector<sim::RunningInfo> running;  ///< scoped to members
    std::vector<std::uint8_t> up;           ///< per resource; remote = 0
    std::vector<double> avail;              ///< per resource; remote = +inf
    bool has_idle = false;  ///< any member up and idle this round
    sim::EngineState state;
  };

  /// Bounded-stale cross-shard summary (what a shard would learn from
  /// gossip): per-shard queue depth as of the last refresh.
  struct DirEntry {
    std::size_t depth = 0;
    bool alive = true;
  };

  void bind_scoped_states();
  void sync_ownership(const sim::EngineView& view);
  void refresh_scoped(const sim::EngineView& view);
  void refresh_directory(const sim::EngineView& view);
  void try_steal(const sim::EngineView& view);
  void insert_owned(int s, dag::TaskId t);
  void remove_owned(dag::TaskId t);
  bool shard_believed_alive(int s) const;

  std::vector<std::unique_ptr<sim::Scheduler>> inners_;
  Options opts_;
  std::string inner_label_;

  std::vector<Shard> shards_;
  Partition partition_;
  HeartbeatMonitor monitor_;
  sched::MctScheduler rescue_scratch_;
  std::optional<sim::EngineView> base_view_;
  std::vector<int> owner_;             ///< per task: owning shard or -1
  std::size_t log_cursor_ = 0;
  // Per-round scratch, hoisted so decide() allocates nothing steady-state.
  std::vector<std::uint8_t> used_scratch_;      ///< resource bound this round
  std::vector<std::uint32_t> invoked_;          ///< shards decided this round
  std::vector<std::vector<sim::Assignment>> batches_;
  std::vector<DirEntry> directory_;
  double directory_at_ = 0.0;
  bool directory_fresh_ = false;
  std::uint64_t hb_transitions_seen_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;
  std::vector<obs::Gauge*> depth_gauges_;  ///< cluster.shard<i>.queue_depth

  std::size_t steals_ = 0;
  std::size_t stolen_tasks_ = 0;
  std::size_t rescues_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace readys::cluster
