#pragma once

#include "cluster/shard_sched.hpp"
#include "sched/spec.hpp"

namespace readys::cluster {

/// Interprets a parsed "shard(...)" option list. Known keys: shards,
/// stale_ms, hb_ms, suspect, dead, steal (0/1), parallel. Throws
/// std::invalid_argument on unknown keys or out-of-range values (the
/// registry maps that to contains() == false).
ShardScheduler::Options parse_shard_options(const sched::SpecOptions& spec);

/// Registers the "shard:<inner>" / "shard(k=v,...):<inner>" decorator
/// prefix in the process-wide scheduler registry. The factory builds one
/// inner per shard (seeds offset per shard so stochastic inners
/// decorrelate) — any registered name composes, including "readys" and
/// "guarded:readys". Idempotent; call it from binaries that want the
/// cluster family, mirroring rl::register_readys_scheduler (a static
/// initializer would be dead-stripped out of archives).
void register_cluster_scheduler();

}  // namespace readys::cluster
