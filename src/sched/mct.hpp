#pragma once

#include <deque>

#include "sim/simulator.hpp"

namespace readys::sched {

/// Minimum Completion Time (Sakellariou & Zhao [46]) — the paper's dynamic
/// baseline.
///
/// Each time a task becomes ready it is immediately bound to the resource
/// on which it is *expected* to complete the soonest, given the expected
/// availability of that resource (running task remainder + already-queued
/// work). Resources then execute their queues in FIFO order. Like READYS,
/// MCT never inspects the DAG beyond the ready set.
class MctScheduler : public sim::Scheduler {
 public:
  /// `comm_aware` adds the expected input-shipping delay (engine's
  /// communication model, if any) to each completion estimate — the
  /// "minimize data exchange" refinement of runtime systems (§III-A).
  explicit MctScheduler(bool comm_aware = false);

  void reset(const sim::SimEngine& engine) override;
  std::vector<sim::Assignment> decide(const sim::SimEngine& engine) override;
  std::string name() const override {
    return comm_aware_ ? "MCT-COMM" : "MCT";
  }

 private:
  /// Expected time at which resource r can start new work, accounting for
  /// the running task (expected remainder) and its queued backlog.
  double expected_available(const sim::SimEngine& engine,
                            sim::ResourceId r) const;

  bool comm_aware_;
  std::vector<std::deque<dag::TaskId>> queue_;  // per resource
  /// Sum of expected durations of queue_[r] — maintained on push/pop so
  /// each candidate completion estimate is O(1) instead of O(|queue|).
  /// Reset to exactly 0 whenever a queue drains, so floating-point drift
  /// cannot outlive a busy period.
  std::vector<double> tail_;
  std::vector<bool> bound_;                     // per task: already queued
  /// Position in engine.ready_log() up to which tasks have been bound;
  /// the binding scan only touches log entries past this cursor.
  std::size_t log_cursor_ = 0;
  /// Scratch: per-resource expected availability, snapshotted once per
  /// binding scan (it cannot change while tasks are being bound).
  std::vector<double> avail_base_;
  /// Scratch: newly-ready batch, sorted ascending before binding.
  std::vector<dag::TaskId> batch_;
};

}  // namespace readys::sched
