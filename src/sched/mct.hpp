#pragma once

#include <deque>

#include "sim/simulator.hpp"

namespace readys::sched {

/// Minimum Completion Time (Sakellariou & Zhao [46]) — the paper's dynamic
/// baseline.
///
/// Each time a task becomes ready it is immediately bound to the resource
/// on which it is *expected* to complete the soonest, given the expected
/// availability of that resource (running task remainder + already-queued
/// work). Resources then execute their queues in FIFO order. Like READYS,
/// MCT never inspects the DAG beyond the ready set.
///
/// Fault tolerance: binding considers only resources that are up, a task
/// whose execution is lost (its resource died mid-run, or the result
/// failed) re-enters the engine's ready_log() and is simply re-bound like
/// any newly-ready task, and the backlog queued on a resource that goes
/// down is drained and re-bound elsewhere on the next decision. When no
/// resource is up at all, unbound work parks in a pending list and is
/// retried once the platform recovers. None of these paths activates in a
/// fault-free run, which keeps the golden traces bit-exact.
class MctScheduler : public sim::Scheduler {
 public:
  /// `comm_aware` adds the expected input-shipping delay (engine's
  /// communication model, if any) to each completion estimate — the
  /// "minimize data exchange" refinement of runtime systems (§III-A).
  explicit MctScheduler(bool comm_aware = false);

  void reset(const sim::EngineView& engine) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override {
    return comm_aware_ ? "MCT-COMM" : "MCT";
  }

 private:
  /// Expected time at which resource r can start new work, accounting for
  /// the running task (expected remainder) and its queued backlog.
  double expected_available(const sim::EngineView& engine,
                            sim::ResourceId r) const;

  /// Binds every task in `batch_` (sorted ascending) to its
  /// minimum-expected-completion resource among the up resources;
  /// unbindable tasks go to `pending_`.
  void bind_batch(const sim::EngineView& engine);

  bool comm_aware_;
  std::vector<std::deque<dag::TaskId>> queue_;  // per resource
  /// Sum of expected durations of queue_[r] — maintained on push/pop so
  /// each candidate completion estimate is O(1) instead of O(|queue|).
  /// Reset to exactly 0 whenever a queue drains, so floating-point drift
  /// cannot outlive a busy period.
  std::vector<double> tail_;
  std::vector<std::uint8_t> queued_;            // per task: in some queue
  /// Position in engine.ready_log() up to which tasks have been bound;
  /// the binding scan only touches log entries past this cursor. Under
  /// fault injection the log can contain the same task several times
  /// (once per time it became ready); the cursor consumes each
  /// became-ready occurrence exactly once.
  std::size_t log_cursor_ = 0;
  /// Scratch: per-resource expected availability, snapshotted once per
  /// binding scan (it cannot change while tasks are being bound).
  std::vector<double> avail_base_;
  /// Scratch: batch to bind, sorted ascending before binding.
  std::vector<dag::TaskId> batch_;
  /// Tasks that could not be bound (no resource up); retried each call.
  std::vector<dag::TaskId> pending_;
};

}  // namespace readys::sched
