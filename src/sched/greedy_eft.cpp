#include "sched/greedy_eft.hpp"

#include <limits>

namespace readys::sched {

std::vector<sim::Assignment> GreedyEftScheduler::decide(
    const sim::EngineView& engine) {
  const auto& ready = engine.ready();
  const auto idle = engine.idle_resources();
  if (ready.empty() || idle.empty()) return {};
  double best = std::numeric_limits<double>::infinity();
  sim::Assignment pick{};
  for (dag::TaskId t : ready) {
    for (sim::ResourceId r : idle) {
      const double finish = engine.expected_duration(t, r);
      if (finish < best) {
        best = finish;
        pick = {t, r};
      }
    }
  }
  return {pick};
}

}  // namespace readys::sched
