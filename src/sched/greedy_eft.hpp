#pragma once

#include "sim/simulator.hpp"

namespace readys::sched {

/// Greedy earliest-finish-time list scheduler restricted to *idle*
/// resources: at each instant, start the (ready task, idle resource) pair
/// with the smallest expected finish time, repeatedly. Unlike MCT it
/// never queues work on busy resources, so it cannot commit a GEMM to a
/// busy GPU — a useful ablation between MCT and READYS.
class GreedyEftScheduler : public sim::Scheduler {
 public:
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override { return "GREEDY-EFT"; }
};

}  // namespace readys::sched
