#pragma once

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace readys::sched {

/// Uniformly random list scheduler: assigns a random ready task to a
/// random idle resource until one of the two sets is empty. A sanity
/// lower bound for experiments and a workhorse for property tests (any
/// trace it produces must still be valid).
class RandomScheduler : public sim::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed = 7);

  void reset(const sim::EngineView& engine) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override { return "RANDOM"; }

 private:
  std::uint64_t seed_;
  util::Rng rng_;
};

}  // namespace readys::sched
