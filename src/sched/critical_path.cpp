#include "sched/critical_path.hpp"

#include <algorithm>
#include <limits>

namespace readys::sched {

void CriticalPathScheduler::reset(const sim::EngineView& engine) {
  const auto& graph = engine.graph();
  rank_.assign(graph.num_tasks(), 0.0);
  const auto topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const dag::TaskId t = *it;
    double best_succ = 0.0;
    for (dag::TaskId c : graph.successors(t)) {
      best_succ = std::max(best_succ, rank_[c]);
    }
    rank_[t] = engine.costs().mean_over_platform(graph.kernel(t),
                                                 engine.platform()) +
               best_succ;
  }
}

std::vector<sim::Assignment> CriticalPathScheduler::decide(
    const sim::EngineView& engine) {
  const auto& ready = engine.ready();
  const auto idle = engine.idle_resources();
  if (ready.empty() || idle.empty()) return {};
  // Highest-priority ready task...
  dag::TaskId best_task = ready.front();
  for (dag::TaskId t : ready) {
    if (rank_[t] > rank_[best_task]) best_task = t;
  }
  // ...on the idle resource finishing it soonest.
  double best = std::numeric_limits<double>::infinity();
  sim::ResourceId best_r = idle.front();
  for (sim::ResourceId r : idle) {
    const double d = engine.expected_duration(best_task, r);
    if (d < best) {
      best = d;
      best_r = r;
    }
  }
  return {{best_task, best_r}};
}

}  // namespace readys::sched
