#pragma once

#include "sim/simulator.hpp"

namespace readys::sched {

using dag::TaskGraph;
using dag::TaskId;
using sim::CostModel;
using sim::Platform;
using sim::ResourceId;

/// A static schedule computed by HEFT on *expected* durations.
struct HeftSchedule {
  std::vector<ResourceId> assignment;           ///< per task
  std::vector<std::vector<TaskId>> order;       ///< per resource, by start
  std::vector<double> expected_start;           ///< per task
  std::vector<double> expected_finish;          ///< per task
  std::vector<double> upward_rank;              ///< per task
  double expected_makespan = 0.0;
};

/// Computes the HEFT schedule (Topcuoglu et al. [48]): upward ranks on
/// platform-averaged costs, then insertion-based earliest-finish-time
/// placement in decreasing rank order. Communication costs are zero (the
/// paper's model), so the data-ready time of a task is the max expected
/// finish of its predecessors.
HeftSchedule compute_heft(const TaskGraph& graph, const Platform& platform,
                          const CostModel& costs);

/// Expected (sigma = 0) HEFT makespan; this is the denominator of the
/// paper's terminal reward. Deterministic in its inputs.
double heft_expected_makespan(const TaskGraph& graph, const Platform& platform,
                              const CostModel& costs);

/// Replays a HEFT schedule dynamically: each resource starts its next
/// scheduled task as soon as (a) the resource is free and (b) the task's
/// predecessors completed. Under sigma = 0 this reproduces the expected
/// schedule exactly; under noise the assignment and per-resource order
/// stay fixed while start times drift — the static-schedule behaviour the
/// paper compares against.
class HeftScheduler : public sim::Scheduler {
 public:
  void reset(const sim::SimEngine& engine) override;
  std::vector<sim::Assignment> decide(const sim::SimEngine& engine) override;
  std::string name() const override { return "HEFT"; }

  const HeftSchedule& schedule() const noexcept { return schedule_; }

 private:
  HeftSchedule schedule_;
  std::vector<std::size_t> next_index_;  // per resource, cursor into order
};

}  // namespace readys::sched
