#pragma once

#include "sim/simulator.hpp"

namespace readys::sched {

using dag::TaskGraph;
using dag::TaskId;
using sim::CostModel;
using sim::Platform;
using sim::ResourceId;

/// A static schedule computed by HEFT on *expected* durations.
struct HeftSchedule {
  std::vector<ResourceId> assignment;           ///< per task
  std::vector<std::vector<TaskId>> order;       ///< per resource, by start
  std::vector<double> expected_start;           ///< per task
  std::vector<double> expected_finish;          ///< per task
  std::vector<double> upward_rank;              ///< per task
  double expected_makespan = 0.0;
};

/// Computes the HEFT schedule (Topcuoglu et al. [48]): upward ranks on
/// platform-averaged costs, then insertion-based earliest-finish-time
/// placement in decreasing rank order. Communication costs are zero (the
/// paper's model), so the data-ready time of a task is the max expected
/// finish of its predecessors.
HeftSchedule compute_heft(const TaskGraph& graph, const Platform& platform,
                          const CostModel& costs);

/// Expected (sigma = 0) HEFT makespan; this is the denominator of the
/// paper's terminal reward. Deterministic in its inputs.
double heft_expected_makespan(const TaskGraph& graph, const Platform& platform,
                              const CostModel& costs);

/// Replays a HEFT schedule dynamically: each resource starts its next
/// scheduled task as soon as (a) the resource is free and (b) the task's
/// predecessors completed. Under sigma = 0 this reproduces the expected
/// schedule exactly; under noise the assignment and per-resource order
/// stay fixed while start times drift — the static-schedule behaviour the
/// paper compares against.
///
/// Fault tolerance (static schedules are exactly what breaks under
/// faults, so this is deliberately minimal): the per-resource cursor
/// tracks *completed* rather than started tasks, so a task whose
/// execution is lost is simply re-dispatched by its home resource; and
/// when a resource is down, an idle resource with no dispatchable work
/// of its own picks up ready tasks stranded in the dead resource's queue
/// (in queue order). Fault-free runs never hit either path and stay
/// bit-exact with the historical started-task cursor.
class HeftScheduler : public sim::Scheduler {
 public:
  void reset(const sim::EngineView& engine) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override { return "HEFT"; }

  const HeftSchedule& schedule() const noexcept { return schedule_; }

 private:
  HeftSchedule schedule_;
  std::vector<std::size_t> next_index_;  // per resource: done-task cursor
  /// Scratch: per task, running right now (rebuilt per decide; only used
  /// under fault injection, where a stolen task can sit mid-queue while
  /// in flight on another resource).
  std::vector<std::uint8_t> running_now_;
};

}  // namespace readys::sched
