#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/mct.hpp"
#include "sched/spec.hpp"
#include "sim/simulator.hpp"

namespace readys::sched {

/// Decorator that makes any scheduler safe to run unattended. Every
/// decide() of the wrapped scheduler is guarded against
///
///   - thrown exceptions (e.g. the READYS policy surfacing NaN logits),
///   - invalid assignments (task out of range or not ready, resource out
///     of range, down, or busy, duplicates within one batch),
///   - blowing a wall-clock decision budget (optional).
///
/// A guarded failure falls back to a one-shot MCT decision computed from
/// the current engine state — the episode completes with degraded
/// quality instead of crashing or corrupting the simulation. Each
/// fallback counts into fallback_decisions() and the
/// sched.fallback_decisions metric. After `max_strikes` consecutive
/// failures the wrapper stops consulting the inner scheduler for the
/// rest of the run (permanent degradation to MCT) — a policy that
/// went NaN will not come back.
///
/// Registered in the Registry under the "guarded:<inner>" prefix, e.g.
/// make_scheduler("guarded:readys"). Options are configurable from the
/// spec too: "guarded(budget_us=500,max_strikes=2):readys" — the same
/// knob the serve deadline path uses, so standalone runs and the
/// decision service share one budget configuration surface.
class GuardedScheduler : public sim::Scheduler {
 public:
  struct Options {
    /// Consecutive guarded failures before the inner scheduler is
    /// abandoned for good. Minimum 1.
    int max_strikes = 3;
    /// Wall-clock budget per decide() call in milliseconds; an overrun
    /// counts as a failure (the inner result is discarded, MCT decides).
    /// 0 disables the budget — decision latency is then unbounded but
    /// deterministic tests stay timing-independent.
    double decide_budget_ms = 0.0;
  };

  explicit GuardedScheduler(std::unique_ptr<sim::Scheduler> inner);
  GuardedScheduler(std::unique_ptr<sim::Scheduler> inner, Options opts);

  void reset(const sim::EngineView& engine) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override;

  /// Decisions answered by the MCT fallback instead of the inner
  /// scheduler (monotone over the wrapper's lifetime).
  std::size_t fallback_decisions() const noexcept {
    return fallback_decisions_;
  }
  /// True once the inner scheduler has been permanently abandoned.
  bool degraded() const noexcept { return degraded_; }
  /// Reason of the most recent guarded failure ("" when none yet).
  const std::string& last_fault() const noexcept { return last_fault_; }
  const Options& options() const noexcept { return opts_; }

 private:
  /// True iff `batch` can be applied to `engine` as-is; otherwise `why`
  /// describes the first violation.
  bool valid_batch(const sim::EngineView& engine,
                   const std::vector<sim::Assignment>& batch,
                   std::string& why) const;
  std::vector<sim::Assignment> fall_back(const sim::EngineView& engine,
                                         const std::string& why);

  std::unique_ptr<sim::Scheduler> inner_;
  Options opts_;
  MctScheduler fallback_;
  int strikes_ = 0;
  bool degraded_ = false;
  bool inner_reset_ok_ = true;
  std::size_t fallback_decisions_ = 0;
  std::string last_fault_;
};

/// Interprets a parsed "guarded(...)" option list (keys budget_us /
/// budget_ms / max_strikes) with the shared strict readers; throws
/// std::invalid_argument on unknown keys or out-of-range values.
GuardedScheduler::Options parse_guarded_options(const SpecOptions& spec);

/// One-shot MCT answer for the current engine state: resets `scratch`
/// (clearing its queues and ready-log cursor) and re-derives bindings
/// from what is ready and idle right now. Correct mid-episode because
/// MCT's binding scan skips tasks that are no longer ready. This is the
/// degrade primitive shared by GuardedScheduler and the serve deadline
/// path.
std::vector<sim::Assignment> one_shot_mct(MctScheduler& scratch,
                                          const sim::EngineView& engine);

}  // namespace readys::sched
