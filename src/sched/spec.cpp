#include "sched/spec.hpp"

#include <stdexcept>

namespace readys::sched {

namespace {

/// Splits "k=v,k=v" into spec.items; sets matched+error on bad items.
/// Returns false when an error was recorded.
bool split_items(const std::string& items, SpecParse& out) {
  std::size_t start = 0;
  while (start <= items.size() && !items.empty()) {
    std::size_t comma = items.find(',', start);
    if (comma == std::string::npos) comma = items.size();
    const std::string item = items.substr(start, comma - start);
    start = comma + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      out.matched = true;
      out.error = "expected key=value, got \"" + item + "\"";
      return false;
    }
    out.spec.items.emplace_back(item.substr(0, eq), item.substr(eq + 1));
    if (start > items.size()) break;
  }
  return true;
}

}  // namespace

SpecParse parse_spec(const std::string& name, const std::string& word) {
  SpecParse out;
  const std::size_t len = word.size();
  if (name.size() <= len || name.compare(0, len, word) != 0) return out;
  std::size_t pos = len;
  bool had_options = false;
  if (name[pos] == '(') {
    had_options = true;
    const std::size_t close = name.find(')', pos);
    if (close == std::string::npos) {
      out.matched = true;
      out.error = "missing ')' in \"" + name + "\"";
      return out;
    }
    if (!split_items(name.substr(pos + 1, close - pos - 1), out)) return out;
    pos = close + 1;
  }
  if (pos >= name.size() || name[pos] != ':' || pos + 1 >= name.size()) {
    // "<word>foo" is some other (unknown) scheduler name, not a
    // malformed spec — unless an option list was present.
    if (had_options) {
      out.matched = true;
      out.error = "expected \":<inner>\" after the option list";
    }
    return out;
  }
  out.matched = true;
  out.spec.word = word;
  out.spec.inner = name.substr(pos + 1);
  return out;
}

SpecParse parse_base_spec(const std::string& name, const std::string& word) {
  SpecParse out;
  const std::size_t len = word.size();
  if (name.size() < len || name.compare(0, len, word) != 0) return out;
  if (name.size() == len) {  // bare "<word>": defaults
    out.matched = true;
    out.spec.word = word;
    return out;
  }
  if (name[len] != '(') return out;  // "<word>foo": some other name
  const std::size_t close = name.find(')', len);
  if (close == std::string::npos) {
    out.matched = true;
    out.error = "missing ')' in \"" + name + "\"";
    return out;
  }
  if (!split_items(name.substr(len + 1, close - len - 1), out)) return out;
  if (close + 1 != name.size()) {
    out.matched = true;
    out.spec.items.clear();
    out.error = "unexpected trailing characters after ')' in \"" + name + "\"";
    return out;
  }
  out.matched = true;
  out.spec.word = word;
  return out;
}

namespace {

[[noreturn]] void throw_bad_value(const std::string& key,
                                  const std::string& value) {
  throw std::invalid_argument("bad value for " + key + ": \"" + value +
                              "\"");
}

[[noreturn]] void throw_out_of_range(const std::string& key,
                                     const std::string& value,
                                     const std::string& lo,
                                     const std::string& hi) {
  throw std::invalid_argument("out-of-range value for " + key + ": \"" +
                              value + "\" (expected " + lo + " to " + hi +
                              ")");
}

}  // namespace

double option_double(const std::string& key, const std::string& value,
                     double min_value, double max_value) {
  double v = 0.0;
  try {
    std::size_t used = 0;
    v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    throw_bad_value(key, value);
  }
  if (!(v >= min_value && v <= max_value)) {
    throw_out_of_range(key, value, std::to_string(min_value),
                       std::to_string(max_value));
  }
  return v;
}

int option_int(const std::string& key, const std::string& value,
               int min_value, int max_value) {
  int v = 0;
  try {
    std::size_t used = 0;
    v = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
  } catch (const std::exception&) {
    throw_bad_value(key, value);
  }
  if (v < min_value || v > max_value) {
    throw_out_of_range(key, value, std::to_string(min_value),
                       std::to_string(max_value));
  }
  return v;
}

}  // namespace readys::sched
