#include "sched/random_sched.hpp"

namespace readys::sched {

RandomScheduler::RandomScheduler(std::uint64_t seed)
    : seed_(seed), rng_(seed) {}

void RandomScheduler::reset(const sim::EngineView& engine) {
  (void)engine;
  rng_ = util::Rng(seed_);
}

std::vector<sim::Assignment> RandomScheduler::decide(
    const sim::EngineView& engine) {
  const auto& ready = engine.ready();
  const auto idle = engine.idle_resources();
  if (ready.empty() || idle.empty()) return {};
  return {{ready[rng_.uniform_index(ready.size())],
           idle[rng_.uniform_index(idle.size())]}};
}

}  // namespace readys::sched
