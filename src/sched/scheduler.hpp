#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sched/spec.hpp"
#include "sim/simulator.hpp"

namespace readys::sched {

/// The scheduling-policy interface every heuristic (and the trained
/// READYS policy) implements. It is the simulator's Scheduler contract:
/// the registry exists so callers construct policies by name instead of
/// hard-coding a dispatch chain per binary.
using Scheduler = sim::Scheduler;

/// Construction-time knobs shared by every registered scheduler. Fields
/// a given scheduler does not use are ignored (HEFT has no seed, the
/// READYS policy ignores nothing).
struct SchedulerConfig {
  std::uint64_t seed = 7;  ///< RNG seed for stochastic schedulers
  bool greedy = true;      ///< argmax vs sampled actions (learned policies)
};

/// Name -> factory table for schedulers. Thread-safe; one process-wide
/// instance lives behind registry(). The built-in heuristics register
/// themselves on first access; the learned policy joins via
/// rl::register_readys_scheduler (the net lives in rl, which links
/// against this library, not the other way around).
class Registry {
 public:
  using Factory =
      std::function<std::unique_ptr<sim::Scheduler>(const SchedulerConfig&)>;

  /// Validates a matched spec's option list; throws std::invalid_argument
  /// on unknown keys or malformed / out-of-range values. Called by
  /// contains() (errors resolve to false) and by make() via the factory.
  using PrefixValidator = std::function<void(const SpecOptions&)>;
  /// Builds the decorator for a matched "<word>...:<inner>" spec. The
  /// registry itself is passed in so the factory can construct the inner
  /// scheduler (recursively: "guarded:shard(k=4):mct" resolves).
  using PrefixFactory = std::function<std::unique_ptr<sim::Scheduler>(
      const SpecOptions&, const SchedulerConfig&, const Registry&)>;

  /// Builds a configurable leaf scheduler for a matched "<word>" /
  /// "<word>(k=v,...)" base spec (no inner scheduler).
  using SpecFactory = std::function<std::unique_ptr<sim::Scheduler>(
      const SpecOptions&, const SchedulerConfig&)>;

  /// Adds (or replaces) a factory under `name`.
  void add(const std::string& name, Factory factory);

  /// Registers a decorator prefix: "<word>:<inner>" and
  /// "<word>(k=v,...):<inner>" resolve through `factory` with the shared
  /// strict key=value spec grammar (sched/spec.hpp).
  void add_prefix(const std::string& word, PrefixValidator validate,
                  PrefixFactory factory);

  /// Registers a configurable leaf scheduler: both "<word>" and
  /// "<word>(k=v,...)" resolve through `factory` with the shared strict
  /// key=value grammar (sched/spec.hpp, parse_base_spec). Replaces any
  /// exact factory previously add()ed under `word` — a name resolves
  /// through exactly one mechanism.
  void add_spec(const std::string& word, PrefixValidator validate,
                SpecFactory factory);

  bool contains(const std::string& name) const;

  /// Constructs a fresh scheduler. Throws std::invalid_argument for an
  /// unknown name, listing the registered ones. The "guarded:<inner>"
  /// prefix wraps any registered scheduler in a GuardedScheduler
  /// (exception/invalid-assignment guards with MCT fallback).
  std::unique_ptr<sim::Scheduler> make(const std::string& name,
                                       const SchedulerConfig& cfg = {}) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  struct PrefixHandler {
    PrefixValidator validate;
    PrefixFactory factory;
  };
  struct SpecHandler {
    PrefixValidator validate;
    SpecFactory factory;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
  std::map<std::string, PrefixHandler> prefixes_;
  std::map<std::string, SpecHandler> specs_;
};

/// The process-wide registry, pre-seeded with the built-in heuristics:
/// heft, mct, mct-comm, greedy, cp, minmin, maxmin, sufferage, olb,
/// random.
Registry& registry();

/// Shorthand for registry().make(name, cfg).
std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name,
                                               const SchedulerConfig& cfg = {});

}  // namespace readys::sched
