#include "sched/batch_mode.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace readys::sched {

BatchModeScheduler::BatchModeScheduler(Rule rule) : rule_(rule) {}

std::string BatchModeScheduler::name() const {
  switch (rule_) {
    case Rule::kOlb:
      return "OLB";
    case Rule::kMinMin:
      return "MIN-MIN";
    case Rule::kMaxMin:
      return "MAX-MIN";
    case Rule::kSufferage:
      return "SUFFERAGE";
  }
  throw std::logic_error("BatchModeScheduler: bad rule");
}

std::vector<sim::Assignment> BatchModeScheduler::decide(
    const sim::EngineView& engine) {
  const auto& ready = engine.ready();
  const auto idle = engine.idle_resources();
  if (ready.empty() || idle.empty()) return {};

  if (rule_ == Rule::kOlb) {
    // Earliest-available resource: all idle resources are available now,
    // so any is "earliest"; take the lowest index for determinism.
    return {{ready.front(), idle.front()}};
  }

  // Per ready task: best and second-best completion across idle
  // resources (everything idle completes at now + E).
  double best_key = rule_ == Rule::kMinMin
                        ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
  sim::Assignment pick{ready.front(), idle.front()};
  for (dag::TaskId t : ready) {
    double best = std::numeric_limits<double>::infinity();
    double second = std::numeric_limits<double>::infinity();
    sim::ResourceId best_r = idle.front();
    for (sim::ResourceId r : idle) {
      const double completion = engine.expected_duration(t, r);
      if (completion < best) {
        second = best;
        best = completion;
        best_r = r;
      } else if (completion < second) {
        second = completion;
      }
    }
    double key = 0.0;
    switch (rule_) {
      case Rule::kMinMin:
        key = best;
        if (key < best_key) {
          best_key = key;
          pick = {t, best_r};
        }
        break;
      case Rule::kMaxMin:
        key = best;
        if (key > best_key) {
          best_key = key;
          pick = {t, best_r};
        }
        break;
      case Rule::kSufferage:
        // With a single idle resource every task suffers equally; fall
        // back to the best completion as the tie-breaking key.
        key = std::isinf(second) ? best : second - best;
        if (key > best_key) {
          best_key = key;
          pick = {t, best_r};
        }
        break;
      case Rule::kOlb:
        break;  // handled above
    }
  }
  return {pick};
}

}  // namespace readys::sched
