#pragma once

#include <string>
#include <utility>
#include <vector>

namespace readys::sched {

/// One parsed "<word>:<inner>" / "<word>(k=v,...):<inner>" scheduler
/// spec, shared by every prefixed decorator in the registry (guarded,
/// shard). The option items are raw key=value strings in written order;
/// each decorator interprets them with the strict option_* readers
/// below, so "what is a malformed spec" means the same thing for every
/// prefix.
struct SpecOptions {
  std::string word;   ///< the matched prefix word
  std::string inner;  ///< inner scheduler name (everything after ':')
  std::vector<std::pair<std::string, std::string>> items;  ///< k=v pairs
};

/// Result of matching a name against one prefix word. `matched` is false
/// when the name is not a spec for this word at all ("guardedfoo" is
/// some other scheduler name, not a malformed guarded spec — unless an
/// option list was present); `error` is non-empty when it is one but the
/// syntax is malformed (missing ')', missing ":<inner>", bare items).
struct SpecParse {
  bool matched = false;
  SpecOptions spec;
  std::string error;
};

/// Matches "<word>:<inner>" and "<word>(k=v,...):<inner>". Purely
/// syntactic: option keys and values are split but not interpreted —
/// value validation belongs to the decorator's option parser so the
/// registry can report unknown keys with the decorator's vocabulary.
SpecParse parse_spec(const std::string& name, const std::string& word);

/// Matches "<word>" and "<word>(k=v,...)" — the base-scheduler form of
/// the spec grammar, with no ":<inner>" (a configurable leaf scheduler
/// such as "readys(backend=f32simd)" rather than a decorator). `inner`
/// stays empty. Trailing characters after ')' are a syntax error;
/// "<word>foo" is some other scheduler name, not a malformed spec.
SpecParse parse_base_spec(const std::string& name, const std::string& word);

/// Strict option-value readers: the whole string must parse (no trailing
/// junk) and the value must land in [min_value, max_value]. Throws
/// std::invalid_argument naming the key otherwise. Shared by every
/// prefix so "budget_us=abc" and "shards=abc" fail identically.
double option_double(const std::string& key, const std::string& value,
                     double min_value, double max_value);
int option_int(const std::string& key, const std::string& value,
               int min_value, int max_value);

}  // namespace readys::sched
