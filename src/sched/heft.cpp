#include "sched/heft.hpp"

#include <algorithm>
#include <limits>

#include "obs/telemetry.hpp"

namespace readys::sched {

namespace {

/// Busy interval on a resource timeline, kept sorted by start time.
struct Slot {
  double start;
  double finish;
  TaskId task;
};

/// Finds the earliest start >= ready_time where a task of length
/// `duration` fits on the timeline (insertion policy).
double earliest_slot(const std::vector<Slot>& timeline, double ready_time,
                     double duration) {
  double candidate = ready_time;
  for (const auto& slot : timeline) {
    if (candidate + duration <= slot.start) {
      return candidate;  // fits in the gap before this busy interval
    }
    candidate = std::max(candidate, slot.finish);
  }
  return candidate;
}

}  // namespace

HeftSchedule compute_heft(const TaskGraph& graph, const Platform& platform,
                          const CostModel& costs) {
  const std::size_t n = graph.num_tasks();
  HeftSchedule s;
  s.assignment.assign(n, -1);
  s.expected_start.assign(n, 0.0);
  s.expected_finish.assign(n, 0.0);
  s.upward_rank.assign(n, 0.0);
  s.order.assign(static_cast<std::size_t>(platform.size()), {});

  // Upward ranks on platform-averaged execution costs.
  const auto topo = graph.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const TaskId t = *it;
    double best_succ = 0.0;
    for (TaskId c : graph.successors(t)) {
      best_succ = std::max(best_succ, s.upward_rank[c]);
    }
    s.upward_rank[t] =
        costs.mean_over_platform(graph.kernel(t), platform) + best_succ;
  }

  // Decreasing rank order; ties broken by id for determinism.
  std::vector<TaskId> by_rank(topo);
  std::sort(by_rank.begin(), by_rank.end(), [&](TaskId a, TaskId b) {
    if (s.upward_rank[a] != s.upward_rank[b]) {
      return s.upward_rank[a] > s.upward_rank[b];
    }
    return a < b;
  });

  std::vector<std::vector<Slot>> timeline(
      static_cast<std::size_t>(platform.size()));
  for (TaskId t : by_rank) {
    double ready_time = 0.0;
    for (TaskId p : graph.predecessors(t)) {
      ready_time = std::max(ready_time, s.expected_finish[p]);
    }
    double best_finish = std::numeric_limits<double>::infinity();
    double best_start = 0.0;
    ResourceId best_resource = 0;
    for (ResourceId r = 0; r < platform.size(); ++r) {
      const double duration = costs.expected(graph, t, platform, r);
      const double start = earliest_slot(
          timeline[static_cast<std::size_t>(r)], ready_time, duration);
      const double finish = start + duration;
      if (finish < best_finish) {
        best_finish = finish;
        best_start = start;
        best_resource = r;
      }
    }
    s.assignment[t] = best_resource;
    s.expected_start[t] = best_start;
    s.expected_finish[t] = best_finish;
    s.expected_makespan = std::max(s.expected_makespan, best_finish);
    auto& tl = timeline[static_cast<std::size_t>(best_resource)];
    const Slot slot{best_start, best_finish, t};
    tl.insert(std::upper_bound(tl.begin(), tl.end(), slot,
                               [](const Slot& a, const Slot& b) {
                                 return a.start < b.start;
                               }),
              slot);
  }
  for (ResourceId r = 0; r < platform.size(); ++r) {
    for (const auto& slot : timeline[static_cast<std::size_t>(r)]) {
      s.order[static_cast<std::size_t>(r)].push_back(slot.task);
    }
  }
  return s;
}

double heft_expected_makespan(const TaskGraph& graph, const Platform& platform,
                              const CostModel& costs) {
  return compute_heft(graph, platform, costs).expected_makespan;
}

void HeftScheduler::reset(const sim::EngineView& engine) {
  schedule_ = compute_heft(engine.graph(), engine.platform(), engine.costs());
  next_index_.assign(static_cast<std::size_t>(engine.platform().size()), 0);
  running_now_.assign(engine.graph().num_tasks(), 0);
}

std::vector<sim::Assignment> HeftScheduler::decide(
    const sim::EngineView& engine) {
  std::vector<sim::Assignment> out;
  const ResourceId n_res = engine.platform().size();
  const bool faulty = engine.fault_enabled();
  if (faulty) {
    // A stolen task can sit mid-queue while in flight elsewhere; mark
    // what is running so the scan can step over it.
    for (const auto& info : engine.running()) running_now_[info.task] = 1;
  }
  // Each resource dispatches the next entry of its own queue. The cursor
  // tracks the done prefix (not the started prefix), so a lost execution
  // is found again by the scan; fault-free the two notions coincide
  // whenever the resource is idle, so this selects exactly the entry the
  // historical started-task cursor would. Only visible resources
  // dispatch (the full view sees all of them, in the same order).
  for (const ResourceId r : engine.resources()) {
    if (!engine.is_idle(r)) continue;
    auto& cursor = next_index_[static_cast<std::size_t>(r)];
    const auto& queue = schedule_.order[static_cast<std::size_t>(r)];
    while (cursor < queue.size() && engine.is_done(queue[cursor])) ++cursor;
    for (std::size_t i = cursor; i < queue.size(); ++i) {
      const TaskId t = queue[i];
      if (engine.is_done(t)) continue;            // finished out of order
      if (faulty && running_now_[t] != 0) continue;  // stolen, in flight
      if (engine.is_ready(t)) out.push_back({t, r});
      break;  // head dispatched, or still waiting on predecessors
    }
  }
  if (faulty) {
    // Work-stealing, restricted to queues whose home resource is down:
    // an idle resource that found nothing above takes the first ready,
    // unclaimed task stranded behind an outage. Fault-free every queue's
    // home is up and this loop is dead. Shard-scoped views report remote
    // resources as down, so under the cluster scheduler this same path
    // claims ready work the static plan put on another shard. The victim
    // scan deliberately covers the whole platform (invisible queues are
    // exactly the ones worth raiding); the thief must be visible.
    for (const ResourceId r : engine.resources()) {
      if (!engine.is_idle(r)) continue;
      bool busy = false;
      for (const auto& a : out) busy = busy || a.resource == r;
      if (busy) continue;
      for (ResourceId d = 0; d < n_res && !busy; ++d) {
        if (engine.is_up(d)) continue;
        const auto& queue = schedule_.order[static_cast<std::size_t>(d)];
        for (std::size_t i = next_index_[static_cast<std::size_t>(d)];
             i < queue.size(); ++i) {
          const TaskId t = queue[i];
          if (!engine.is_ready(t)) continue;  // done, running, or blocked
          bool claimed = false;
          for (const auto& a : out) claimed = claimed || a.task == t;
          if (claimed) continue;
          out.push_back({t, r});
          busy = true;
          break;
        }
      }
    }
    for (const auto& info : engine.running()) running_now_[info.task] = 0;
  }
  if (!out.empty()) {
    if (obs::Telemetry* t = obs::telemetry()) t->sched_decisions.add(out.size());
  }
  return out;
}

}  // namespace readys::sched
