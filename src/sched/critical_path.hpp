#pragma once

#include "sim/simulator.hpp"

namespace readys::sched {

/// Dynamic critical-path scheduler: the runtime-system strategy the paper
/// describes in §II — rank ready tasks by HEFT's upward rank (computed
/// once on expected costs) and place the highest-priority ready task on
/// the idle resource that finishes it soonest. Unlike HEFT the mapping is
/// chosen at runtime, so it adapts to duration noise; unlike READYS it
/// needs the full DAG upfront to compute ranks.
class CriticalPathScheduler : public sim::Scheduler {
 public:
  void reset(const sim::EngineView& engine) override;
  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override { return "CP-DYN"; }

 private:
  std::vector<double> rank_;
};

}  // namespace readys::sched
