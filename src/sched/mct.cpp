#include "sched/mct.hpp"

#include <algorithm>
#include <limits>

namespace readys::sched {

MctScheduler::MctScheduler(bool comm_aware) : comm_aware_(comm_aware) {}

void MctScheduler::reset(const sim::SimEngine& engine) {
  queue_.assign(static_cast<std::size_t>(engine.platform().size()), {});
  tail_.assign(static_cast<std::size_t>(engine.platform().size()), 0.0);
  bound_.assign(engine.graph().num_tasks(), false);
  log_cursor_ = 0;
}

double MctScheduler::expected_available(const sim::SimEngine& engine,
                                        sim::ResourceId r) const {
  return engine.expected_available_at(r) +
         tail_[static_cast<std::size_t>(r)];
}

std::vector<sim::Assignment> MctScheduler::decide(
    const sim::SimEngine& engine) {
  // Bind newly-ready tasks to their minimum-expected-completion resource.
  // Everything ready before log_cursor_ was bound by an earlier scan, so
  // only the new tail of the ready log needs work: O(new) per decision
  // instead of rescanning the whole ready set. Sorting the batch by id
  // reproduces the ascending-id binding order of a full ready() scan.
  const auto& log = engine.ready_log();
  if (log_cursor_ < log.size()) {
    batch_.assign(log.begin() + static_cast<std::ptrdiff_t>(log_cursor_),
                  log.end());
    log_cursor_ = log.size();
    std::sort(batch_.begin(), batch_.end());
    const sim::ResourceId n_res = engine.platform().size();
    // Running-task remainders are fixed for the whole scan; only the
    // queue tails move as tasks are bound.
    avail_base_.resize(static_cast<std::size_t>(n_res));
    for (sim::ResourceId r = 0; r < n_res; ++r) {
      avail_base_[static_cast<std::size_t>(r)] =
          engine.expected_available_at(r);
    }
    for (dag::TaskId t : batch_) {
      if (bound_[t]) continue;
      double best = std::numeric_limits<double>::infinity();
      sim::ResourceId best_r = 0;
      for (sim::ResourceId r = 0; r < n_res; ++r) {
        double completion = (avail_base_[static_cast<std::size_t>(r)] +
                             tail_[static_cast<std::size_t>(r)]) +
                            engine.expected_duration(t, r);
        if (comm_aware_) completion += engine.expected_input_delay(t, r);
        if (completion < best) {
          best = completion;
          best_r = r;
        }
      }
      queue_[static_cast<std::size_t>(best_r)].push_back(t);
      tail_[static_cast<std::size_t>(best_r)] +=
          engine.expected_duration(t, best_r);
      bound_[t] = true;
    }
  }
  // Idle resources pull the head of their own queue.
  std::vector<sim::Assignment> out;
  for (sim::ResourceId r = 0; r < engine.platform().size(); ++r) {
    auto& q = queue_[static_cast<std::size_t>(r)];
    if (engine.is_idle(r) && !q.empty()) {
      out.push_back({q.front(), r});
      tail_[static_cast<std::size_t>(r)] -=
          engine.expected_duration(q.front(), r);
      q.pop_front();
      if (q.empty()) tail_[static_cast<std::size_t>(r)] = 0.0;
    }
  }
  return out;
}

}  // namespace readys::sched
