#include "sched/mct.hpp"

#include <algorithm>
#include <limits>

#include "obs/telemetry.hpp"

namespace readys::sched {

MctScheduler::MctScheduler(bool comm_aware) : comm_aware_(comm_aware) {}

void MctScheduler::reset(const sim::EngineView& engine) {
  queue_.assign(static_cast<std::size_t>(engine.platform().size()), {});
  tail_.assign(static_cast<std::size_t>(engine.platform().size()), 0.0);
  queued_.assign(engine.graph().num_tasks(), 0);
  pending_.clear();
  log_cursor_ = 0;
}

double MctScheduler::expected_available(const sim::EngineView& engine,
                                        sim::ResourceId r) const {
  return engine.expected_available_at(r) +
         tail_[static_cast<std::size_t>(r)];
}

void MctScheduler::bind_batch(const sim::EngineView& engine) {
  std::sort(batch_.begin(), batch_.end());
  // Candidate resources are the visible ones: the full view sees the
  // whole platform in ascending order (identical to the historical
  // 0..P-1 scan), a shard-scoped view sees only its own resources, so
  // the binding scan is O(P/K) per task under the cluster scheduler.
  const auto& res = engine.resources();
  // Running-task remainders are fixed for the whole scan; only the
  // queue tails move as tasks are bound. A down resource reports an
  // infinite availability, but is skipped outright so a fully-down
  // platform parks the batch instead of binding to garbage.
  avail_base_.resize(static_cast<std::size_t>(engine.platform().size()));
  for (const sim::ResourceId r : res) {
    avail_base_[static_cast<std::size_t>(r)] =
        engine.expected_available_at(r);
  }
  for (dag::TaskId t : batch_) {
    if (queued_[t] != 0 || !engine.is_ready(t)) continue;
    double best = std::numeric_limits<double>::infinity();
    sim::ResourceId best_r = -1;
    for (const sim::ResourceId r : res) {
      if (!engine.is_up(r)) continue;
      double completion = (avail_base_[static_cast<std::size_t>(r)] +
                           tail_[static_cast<std::size_t>(r)]) +
                          engine.expected_duration(t, r);
      if (comm_aware_) completion += engine.expected_input_delay(t, r);
      if (completion < best) {
        best = completion;
        best_r = r;
      }
    }
    if (best_r < 0) {
      pending_.push_back(t);  // no resource up; retry next decision
      continue;
    }
    queue_[static_cast<std::size_t>(best_r)].push_back(t);
    tail_[static_cast<std::size_t>(best_r)] +=
        engine.expected_duration(t, best_r);
    queued_[t] = 1;
  }
}

std::vector<sim::Assignment> MctScheduler::decide(
    const sim::EngineView& engine) {
  batch_.clear();
  // Backlog stranded on a dead resource is drained and re-bound; a task
  // whose *execution* was lost re-enters via the ready log below.
  if (engine.fault_enabled()) {
    for (const sim::ResourceId r : engine.resources()) {
      auto& q = queue_[static_cast<std::size_t>(r)];
      if (engine.is_up(r) || q.empty()) continue;
      for (const dag::TaskId t : q) {
        queued_[t] = 0;
        batch_.push_back(t);
      }
      q.clear();
      tail_[static_cast<std::size_t>(r)] = 0.0;
    }
    if (!pending_.empty()) {
      batch_.insert(batch_.end(), pending_.begin(), pending_.end());
      pending_.clear();
    }
  }
  // Bind newly-ready tasks to their minimum-expected-completion resource.
  // Everything ready before log_cursor_ was bound by an earlier scan, so
  // only the new tail of the ready log needs work: O(new) per decision
  // instead of rescanning the whole ready set. Sorting the batch by id
  // reproduces the ascending-id binding order of a full ready() scan.
  const auto& log = engine.ready_log();
  if (log_cursor_ < log.size()) {
    batch_.insert(batch_.end(),
                  log.begin() + static_cast<std::ptrdiff_t>(log_cursor_),
                  log.end());
    log_cursor_ = log.size();
  }
  if (!batch_.empty()) bind_batch(engine);
  // Idle resources pull the head of their own queue.
  std::vector<sim::Assignment> out;
  for (const sim::ResourceId r : engine.resources()) {
    auto& q = queue_[static_cast<std::size_t>(r)];
    // Centrally a queued task stays ready until this scheduler starts
    // it, but under the cluster coordinator a task can be stolen and
    // run by another shard while it sits in our queue. Drop such stale
    // entries instead of proposing work that no longer exists.
    while (!q.empty() && !engine.is_ready(q.front())) {
      tail_[static_cast<std::size_t>(r)] -=
          engine.expected_duration(q.front(), r);
      queued_[q.front()] = 0;
      q.pop_front();
    }
    if (q.empty()) tail_[static_cast<std::size_t>(r)] = 0.0;
    if (engine.is_idle(r) && !q.empty()) {
      out.push_back({q.front(), r});
      tail_[static_cast<std::size_t>(r)] -=
          engine.expected_duration(q.front(), r);
      queued_[q.front()] = 0;  // a lost execution re-binds via the log
      q.pop_front();
      if (q.empty()) tail_[static_cast<std::size_t>(r)] = 0.0;
    }
  }
  if (!out.empty()) {
    if (obs::Telemetry* t = obs::telemetry()) t->sched_decisions.add(out.size());
  }
  return out;
}

}  // namespace readys::sched
