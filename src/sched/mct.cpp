#include "sched/mct.hpp"

#include <limits>

namespace readys::sched {

MctScheduler::MctScheduler(bool comm_aware) : comm_aware_(comm_aware) {}

void MctScheduler::reset(const sim::SimEngine& engine) {
  queue_.assign(static_cast<std::size_t>(engine.platform().size()), {});
  bound_.assign(engine.graph().num_tasks(), false);
}

double MctScheduler::expected_available(const sim::SimEngine& engine,
                                        sim::ResourceId r) const {
  double t = engine.expected_available_at(r);
  for (dag::TaskId q : queue_[static_cast<std::size_t>(r)]) {
    t += engine.expected_duration(q, r);
  }
  return t;
}

std::vector<sim::Assignment> MctScheduler::decide(
    const sim::SimEngine& engine) {
  // Bind newly-ready tasks to their minimum-expected-completion resource.
  for (dag::TaskId t : engine.ready()) {
    if (bound_[t]) continue;
    double best = std::numeric_limits<double>::infinity();
    sim::ResourceId best_r = 0;
    for (sim::ResourceId r = 0; r < engine.platform().size(); ++r) {
      double completion =
          expected_available(engine, r) + engine.expected_duration(t, r);
      if (comm_aware_) completion += engine.expected_input_delay(t, r);
      if (completion < best) {
        best = completion;
        best_r = r;
      }
    }
    queue_[static_cast<std::size_t>(best_r)].push_back(t);
    bound_[t] = true;
  }
  // Idle resources pull the head of their own queue.
  std::vector<sim::Assignment> out;
  for (sim::ResourceId r = 0; r < engine.platform().size(); ++r) {
    auto& q = queue_[static_cast<std::size_t>(r)];
    if (engine.is_idle(r) && !q.empty()) {
      out.push_back({q.front(), r});
      q.pop_front();
    }
  }
  return out;
}

}  // namespace readys::sched
