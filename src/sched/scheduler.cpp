#include "sched/scheduler.hpp"

#include <stdexcept>
#include <utility>

#include "sched/batch_mode.hpp"
#include "sched/critical_path.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/guarded.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/random_sched.hpp"

namespace readys::sched {

namespace {

/// Parsed "guarded..." spec. `matched` is false when `name` is not a
/// guarded spec at all; `error` is non-empty when it is one but the
/// option list is malformed.
struct GuardedSpec {
  bool matched = false;
  std::string inner;
  GuardedScheduler::Options opts;
  std::string error;
};

/// Recognizes "guarded:<inner>" and "guarded(k=v,...):<inner>" with
/// keys budget_us / budget_ms (wall-clock decide budget) and
/// max_strikes. E.g. "guarded(budget_us=500,max_strikes=2):readys".
GuardedSpec parse_guarded(const std::string& name) {
  GuardedSpec spec;
  constexpr const char* kWord = "guarded";
  constexpr std::size_t kLen = 7;
  if (name.size() <= kLen || name.compare(0, kLen, kWord) != 0) return spec;
  std::size_t pos = kLen;
  if (name[pos] == '(') {
    const std::size_t close = name.find(')', pos);
    if (close == std::string::npos) {
      spec.matched = true;
      spec.error = "missing ')' in \"" + name + "\"";
      return spec;
    }
    std::string items = name.substr(pos + 1, close - pos - 1);
    pos = close + 1;
    std::size_t start = 0;
    while (start <= items.size() && !items.empty()) {
      std::size_t comma = items.find(',', start);
      if (comma == std::string::npos) comma = items.size();
      const std::string item = items.substr(start, comma - start);
      start = comma + 1;
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
        spec.matched = true;
        spec.error = "expected key=value, got \"" + item + "\"";
        return spec;
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      try {
        std::size_t used = 0;
        if (key == "budget_us") {
          spec.opts.decide_budget_ms = std::stod(value, &used) / 1000.0;
        } else if (key == "budget_ms") {
          spec.opts.decide_budget_ms = std::stod(value, &used);
        } else if (key == "max_strikes") {
          spec.opts.max_strikes = std::stoi(value, &used);
        } else {
          spec.matched = true;
          spec.error = "unknown guarded option \"" + key +
                       "\" (known: budget_us, budget_ms, max_strikes)";
          return spec;
        }
        if (used != value.size()) throw std::invalid_argument(value);
      } catch (const std::exception&) {
        spec.matched = true;
        spec.error = "bad value for " + key + ": \"" + value + "\"";
        return spec;
      }
      if (spec.opts.decide_budget_ms < 0.0 || spec.opts.max_strikes < 1) {
        spec.matched = true;
        spec.error = "out-of-range value for " + key + ": \"" + value +
                     "\" (budgets >= 0, max_strikes >= 1)";
        return spec;
      }
      if (start > items.size()) break;
    }
  }
  if (pos >= name.size() || name[pos] != ':' || pos + 1 >= name.size()) {
    // "guardedfoo" is some other (unknown) scheduler name, not a
    // malformed guarded spec — unless an option list was present.
    if (name.size() > kLen && name[kLen] == '(') {
      spec.matched = true;
      spec.error = "expected \":<inner>\" after the option list";
    }
    return spec;
  }
  spec.matched = true;
  spec.inner = name.substr(pos + 1);
  return spec;
}

}  // namespace

void Registry::add(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

bool Registry::contains(const std::string& name) const {
  const GuardedSpec spec = parse_guarded(name);
  if (spec.matched) return spec.error.empty() && contains(spec.inner);
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::unique_ptr<sim::Scheduler> Registry::make(
    const std::string& name, const SchedulerConfig& cfg) const {
  // "guarded:<inner>" / "guarded(budget_us=...,max_strikes=...):<inner>"
  // wraps any registered scheduler (recursively, so "guarded:guarded:mct"
  // also resolves — pointless but harmless).
  const GuardedSpec spec = parse_guarded(name);
  if (spec.matched) {
    if (!spec.error.empty()) {
      throw std::invalid_argument("bad guarded spec: " + spec.error);
    }
    return std::make_unique<GuardedScheduler>(make(spec.inner, cfg),
                                              spec.opts);
  }
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_) {
        (void)f;
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::invalid_argument("unknown scheduler \"" + name +
                                  "\" (known: " + known + ")");
    }
    factory = it->second;
  }
  // Invoke outside the lock: a factory may recurse into the registry.
  return factory(cfg);
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) {
    (void)f;
    out.push_back(n);  // std::map iterates sorted
  }
  return out;
}

namespace {

void add_builtins(Registry& r) {
  r.add("heft", [](const SchedulerConfig&) {
    return std::make_unique<HeftScheduler>();
  });
  r.add("mct", [](const SchedulerConfig&) {
    return std::make_unique<MctScheduler>();
  });
  r.add("mct-comm", [](const SchedulerConfig&) {
    return std::make_unique<MctScheduler>(/*comm_aware=*/true);
  });
  r.add("greedy", [](const SchedulerConfig&) {
    return std::make_unique<GreedyEftScheduler>();
  });
  r.add("cp", [](const SchedulerConfig&) {
    return std::make_unique<CriticalPathScheduler>();
  });
  r.add("olb", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kOlb);
  });
  r.add("minmin", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kMinMin);
  });
  r.add("maxmin", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kMaxMin);
  });
  r.add("sufferage", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kSufferage);
  });
  r.add("random", [](const SchedulerConfig& cfg) {
    return std::make_unique<RandomScheduler>(cfg.seed);
  });
}

}  // namespace

Registry& registry() {
  // Two thread-safe static initializations: the table exists before the
  // builtins go in, and both happen exactly once.
  static Registry instance;
  static const bool seeded = (add_builtins(instance), true);
  (void)seeded;
  return instance;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name,
                                               const SchedulerConfig& cfg) {
  return registry().make(name, cfg);
}

}  // namespace readys::sched
