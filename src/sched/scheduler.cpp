#include "sched/scheduler.hpp"

#include <stdexcept>
#include <utility>

#include "sched/batch_mode.hpp"
#include "sched/critical_path.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/guarded.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/random_sched.hpp"

namespace readys::sched {

namespace {

/// "guarded:<inner>" -> "<inner>"; empty when `name` has no such prefix.
std::string guarded_inner(const std::string& name) {
  constexpr const char* prefix = "guarded:";
  constexpr std::size_t len = 8;
  if (name.size() > len && name.compare(0, len, prefix) == 0) {
    return name.substr(len);
  }
  return {};
}

}  // namespace

void Registry::add(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

bool Registry::contains(const std::string& name) const {
  const std::string inner = guarded_inner(name);
  if (!inner.empty()) return contains(inner);
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::unique_ptr<sim::Scheduler> Registry::make(
    const std::string& name, const SchedulerConfig& cfg) const {
  // "guarded:<inner>" wraps any registered scheduler (recursively, so
  // "guarded:guarded:mct" also resolves — pointless but harmless).
  const std::string inner = guarded_inner(name);
  if (!inner.empty()) {
    return std::make_unique<GuardedScheduler>(make(inner, cfg));
  }
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_) {
        (void)f;
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::invalid_argument("unknown scheduler \"" + name +
                                  "\" (known: " + known + ")");
    }
    factory = it->second;
  }
  // Invoke outside the lock: a factory may recurse into the registry.
  return factory(cfg);
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) {
    (void)f;
    out.push_back(n);  // std::map iterates sorted
  }
  return out;
}

namespace {

void add_builtins(Registry& r) {
  r.add("heft", [](const SchedulerConfig&) {
    return std::make_unique<HeftScheduler>();
  });
  r.add("mct", [](const SchedulerConfig&) {
    return std::make_unique<MctScheduler>();
  });
  r.add("mct-comm", [](const SchedulerConfig&) {
    return std::make_unique<MctScheduler>(/*comm_aware=*/true);
  });
  r.add("greedy", [](const SchedulerConfig&) {
    return std::make_unique<GreedyEftScheduler>();
  });
  r.add("cp", [](const SchedulerConfig&) {
    return std::make_unique<CriticalPathScheduler>();
  });
  r.add("olb", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kOlb);
  });
  r.add("minmin", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kMinMin);
  });
  r.add("maxmin", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kMaxMin);
  });
  r.add("sufferage", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kSufferage);
  });
  r.add("random", [](const SchedulerConfig& cfg) {
    return std::make_unique<RandomScheduler>(cfg.seed);
  });
}

}  // namespace

Registry& registry() {
  // Two thread-safe static initializations: the table exists before the
  // builtins go in, and both happen exactly once.
  static Registry instance;
  static const bool seeded = (add_builtins(instance), true);
  (void)seeded;
  return instance;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name,
                                               const SchedulerConfig& cfg) {
  return registry().make(name, cfg);
}

}  // namespace readys::sched
