#include "sched/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sched/batch_mode.hpp"
#include "sched/critical_path.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/guarded.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/random_sched.hpp"

namespace readys::sched {

void Registry::add(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

void Registry::add_prefix(const std::string& word, PrefixValidator validate,
                          PrefixFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  prefixes_[word] = {std::move(validate), std::move(factory)};
}

void Registry::add_spec(const std::string& word, PrefixValidator validate,
                        SpecFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  factories_.erase(word);  // one resolution mechanism per name
  specs_[word] = {std::move(validate), std::move(factory)};
}

bool Registry::contains(const std::string& name) const {
  // Snapshot the prefix table under the lock; validation and the
  // recursive inner lookup run outside it (they may re-enter).
  std::vector<std::pair<std::string, PrefixValidator>> prefixes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [word, handler] : prefixes_) {
      prefixes.emplace_back(word, handler.validate);
    }
  }
  for (const auto& [word, validate] : prefixes) {
    const SpecParse parse = parse_spec(name, word);
    if (!parse.matched) continue;
    if (!parse.error.empty()) return false;
    try {
      if (validate) validate(parse.spec);
    } catch (const std::exception&) {
      return false;  // unknown key or bad value: not a resolvable name
    }
    return contains(parse.spec.inner);
  }
  std::vector<std::pair<std::string, PrefixValidator>> specs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [word, handler] : specs_) {
      specs.emplace_back(word, handler.validate);
    }
  }
  for (const auto& [word, validate] : specs) {
    const SpecParse parse = parse_base_spec(name, word);
    if (!parse.matched) continue;
    if (!parse.error.empty()) return false;
    try {
      if (validate) validate(parse.spec);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::unique_ptr<sim::Scheduler> Registry::make(
    const std::string& name, const SchedulerConfig& cfg) const {
  // Decorator prefixes ("guarded:<inner>", "shard(k=4):<inner>", ...)
  // wrap any registered scheduler, recursively — so
  // "shard(shards=4):guarded:readys" composes fault guards under the
  // decentralized coordinator.
  std::vector<std::pair<std::string, PrefixFactory>> prefixes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [word, handler] : prefixes_) {
      prefixes.emplace_back(word, handler.factory);
    }
  }
  for (const auto& [word, factory] : prefixes) {
    const SpecParse parse = parse_spec(name, word);
    if (!parse.matched) continue;
    if (!parse.error.empty()) {
      throw std::invalid_argument("bad " + word + " spec: " + parse.error);
    }
    // Invoked outside the lock: the factory recurses into the registry
    // for the inner scheduler.
    return factory(parse.spec, cfg, *this);
  }
  // Configurable leaf schedulers: "<word>" / "<word>(k=v,...)".
  std::vector<std::pair<std::string, SpecFactory>> specs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [word, handler] : specs_) {
      specs.emplace_back(word, handler.factory);
    }
  }
  for (const auto& [word, factory] : specs) {
    const SpecParse parse = parse_base_spec(name, word);
    if (!parse.matched) continue;
    if (!parse.error.empty()) {
      throw std::invalid_argument("bad " + word + " spec: " + parse.error);
    }
    return factory(parse.spec, cfg);
  }
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_) {
        (void)f;
        if (!known.empty()) known += ", ";
        known += n;
      }
      for (const auto& [w, h] : specs_) {
        (void)h;
        if (!known.empty()) known += ", ";
        known += w;
      }
      throw std::invalid_argument("unknown scheduler \"" + name +
                                  "\" (known: " + known + ")");
    }
    factory = it->second;
  }
  // Invoke outside the lock: a factory may recurse into the registry.
  return factory(cfg);
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size() + specs_.size());
  for (const auto& [n, f] : factories_) {
    (void)f;
    out.push_back(n);
  }
  for (const auto& [w, h] : specs_) {
    (void)h;
    out.push_back(w);
  }
  std::sort(out.begin(), out.end());  // the two maps interleave
  return out;
}

namespace {

void add_builtins(Registry& r) {
  r.add("heft", [](const SchedulerConfig&) {
    return std::make_unique<HeftScheduler>();
  });
  r.add("mct", [](const SchedulerConfig&) {
    return std::make_unique<MctScheduler>();
  });
  r.add("mct-comm", [](const SchedulerConfig&) {
    return std::make_unique<MctScheduler>(/*comm_aware=*/true);
  });
  r.add("greedy", [](const SchedulerConfig&) {
    return std::make_unique<GreedyEftScheduler>();
  });
  r.add("cp", [](const SchedulerConfig&) {
    return std::make_unique<CriticalPathScheduler>();
  });
  r.add("olb", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kOlb);
  });
  r.add("minmin", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kMinMin);
  });
  r.add("maxmin", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kMaxMin);
  });
  r.add("sufferage", [](const SchedulerConfig&) {
    return std::make_unique<BatchModeScheduler>(
        BatchModeScheduler::Rule::kSufferage);
  });
  r.add("random", [](const SchedulerConfig& cfg) {
    return std::make_unique<RandomScheduler>(cfg.seed);
  });
  r.add_prefix(
      "guarded",
      [](const SpecOptions& spec) { (void)parse_guarded_options(spec); },
      [](const SpecOptions& spec, const SchedulerConfig& cfg,
         const Registry& self) {
        return std::make_unique<GuardedScheduler>(
            self.make(spec.inner, cfg), parse_guarded_options(spec));
      });
}

}  // namespace

Registry& registry() {
  // Two thread-safe static initializations: the table exists before the
  // builtins go in, and both happen exactly once.
  static Registry instance;
  static const bool seeded = (add_builtins(instance), true);
  (void)seeded;
  return instance;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name,
                                               const SchedulerConfig& cfg) {
  return registry().make(name, cfg);
}

}  // namespace readys::sched
