#include "sched/guarded.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace readys::sched {

GuardedScheduler::GuardedScheduler(std::unique_ptr<sim::Scheduler> inner)
    : GuardedScheduler(std::move(inner), Options()) {}

GuardedScheduler::GuardedScheduler(std::unique_ptr<sim::Scheduler> inner,
                                   Options opts)
    : inner_(std::move(inner)), opts_(opts) {
  opts_.max_strikes = std::max(1, opts_.max_strikes);
}

void GuardedScheduler::reset(const sim::EngineView& engine) {
  inner_reset_ok_ = false;
  if (!degraded_) {
    try {
      inner_->reset(engine);
      inner_reset_ok_ = true;
    } catch (const std::exception& e) {
      last_fault_ = std::string("reset threw: ") + e.what();
      util::log_warn() << "GuardedScheduler: " << last_fault_
                       << "; episode runs on the MCT fallback";
    }
  }
}

std::string GuardedScheduler::name() const {
  return "guarded(" + inner_->name() + ")";
}

bool GuardedScheduler::valid_batch(const sim::EngineView& engine,
                                   const std::vector<sim::Assignment>& batch,
                                   std::string& why) const {
  const auto num_tasks = engine.graph().num_tasks();
  const auto num_resources =
      static_cast<sim::ResourceId>(engine.platform().size());
  std::vector<dag::TaskId> tasks;
  std::vector<sim::ResourceId> resources;
  for (const sim::Assignment& a : batch) {
    if (a.task >= num_tasks) {
      why = "task " + std::to_string(a.task) + " out of range";
      return false;
    }
    if (!engine.is_ready(a.task)) {
      why = "task " + std::to_string(a.task) + " is not ready";
      return false;
    }
    if (a.resource < 0 || a.resource >= num_resources) {
      why = "resource " + std::to_string(a.resource) + " out of range";
      return false;
    }
    if (!engine.is_up(a.resource)) {
      why = "resource " + std::to_string(a.resource) + " is down";
      return false;
    }
    if (!engine.is_idle(a.resource)) {
      why = "resource " + std::to_string(a.resource) + " is busy";
      return false;
    }
    if (std::find(tasks.begin(), tasks.end(), a.task) != tasks.end()) {
      why = "task " + std::to_string(a.task) + " assigned twice";
      return false;
    }
    if (std::find(resources.begin(), resources.end(), a.resource) !=
        resources.end()) {
      why = "resource " + std::to_string(a.resource) + " assigned twice";
      return false;
    }
    tasks.push_back(a.task);
    resources.push_back(a.resource);
  }
  return true;
}

std::vector<sim::Assignment> GuardedScheduler::fall_back(
    const sim::EngineView& engine, const std::string& why) {
  last_fault_ = why;
  ++fallback_decisions_;
  if (obs::Telemetry* t = obs::telemetry()) t->sched_fallbacks.add();
  if (!degraded_ && ++strikes_ >= opts_.max_strikes) {
    degraded_ = true;
    util::log_warn() << "GuardedScheduler: " << strikes_
                     << " consecutive guarded failures (last: " << why
                     << "); permanently degrading " << inner_->name()
                     << " to MCT";
  }
  return one_shot_mct(fallback_, engine);
}

std::vector<sim::Assignment> one_shot_mct(MctScheduler& scratch,
                                          const sim::EngineView& engine) {
  scratch.reset(engine);
  return scratch.decide(engine);
}

std::vector<sim::Assignment> GuardedScheduler::decide(
    const sim::EngineView& engine) {
  if (degraded_ || !inner_reset_ok_) {
    return fall_back(engine, last_fault_.empty() ? "degraded" : last_fault_);
  }
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  std::vector<sim::Assignment> batch;
  try {
    batch = inner_->decide(engine);
  } catch (const std::exception& e) {
    return fall_back(engine, std::string("decide threw: ") + e.what());
  }
  if (opts_.decide_budget_ms > 0.0) {
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (elapsed_ms > opts_.decide_budget_ms) {
      return fall_back(engine,
                       "decide took " + std::to_string(elapsed_ms) +
                           " ms (budget " +
                           std::to_string(opts_.decide_budget_ms) + " ms)");
    }
  }
  std::string why;
  if (!valid_batch(engine, batch, why)) {
    return fall_back(engine, "invalid batch: " + why);
  }
  strikes_ = 0;
  return batch;
}

GuardedScheduler::Options parse_guarded_options(const SpecOptions& spec) {
  constexpr double kMaxBudget = 1e12;
  GuardedScheduler::Options opts;
  for (const auto& [key, value] : spec.items) {
    if (key == "budget_us") {
      opts.decide_budget_ms =
          option_double(key, value, 0.0, kMaxBudget) / 1000.0;
    } else if (key == "budget_ms") {
      opts.decide_budget_ms = option_double(key, value, 0.0, kMaxBudget);
    } else if (key == "max_strikes") {
      opts.max_strikes =
          option_int(key, value, 1, std::numeric_limits<int>::max());
    } else {
      throw std::invalid_argument(
          "unknown guarded option \"" + key +
          "\" (known: budget_us, budget_ms, max_strikes)");
    }
  }
  return opts;
}

}  // namespace readys::sched
