#pragma once

#include "sim/simulator.hpp"

namespace readys::sched {

/// Classic batch-mode mapping heuristics (Braun et al. taxonomy): at each
/// decision instant they consider the whole ready set against the idle
/// resources and commit one (task, resource) pair per call; the
/// simulator re-invokes decide() until the instant is saturated.
///
/// They differ only in which task is mapped first:
///  - OLB       : arbitrary ready task -> earliest-available resource,
///                ignoring execution times entirely (load balancing only);
///  - Min-Min   : the task with the smallest best completion time first
///                (short tasks pack tightly, long tasks risk starving);
///  - Max-Min   : the task with the largest best completion time first
///                (long tasks early, short ones fill the gaps);
///  - Sufferage : the task that would "suffer" most if denied its best
///                resource (largest best-vs-second-best gap) first.
class BatchModeScheduler : public sim::Scheduler {
 public:
  enum class Rule { kOlb, kMinMin, kMaxMin, kSufferage };

  explicit BatchModeScheduler(Rule rule);

  std::vector<sim::Assignment> decide(const sim::EngineView& engine) override;
  std::string name() const override;

 private:
  Rule rule_;
};

/// Convenience factories.
inline BatchModeScheduler make_olb() {
  return BatchModeScheduler(BatchModeScheduler::Rule::kOlb);
}
inline BatchModeScheduler make_min_min() {
  return BatchModeScheduler(BatchModeScheduler::Rule::kMinMin);
}
inline BatchModeScheduler make_max_min() {
  return BatchModeScheduler(BatchModeScheduler::Rule::kMaxMin);
}
inline BatchModeScheduler make_sufferage() {
  return BatchModeScheduler(BatchModeScheduler::Rule::kSufferage);
}

}  // namespace readys::sched
