// Quickstart: train a READYS agent on a tiled Cholesky DAG for a small
// hybrid CPU/GPU node, then compare it against HEFT and MCT under noise.
//
// Usage: quickstart [episodes] [sigma]
//   episodes  training episodes (default 150)
//   sigma     duration-noise level for the final comparison (default 0.25)

#include <cstdio>
#include <cstdlib>

#include "core/readys.hpp"

using namespace readys;

int main(int argc, char** argv) {
  const int episodes = argc > 1 ? std::atoi(argv[1]) : 1500;
  const double sigma = argc > 2 ? std::atof(argv[2]) : 0.25;

  // 1. The instance: Cholesky with 6x6 tiles (56 tasks) on 2 CPUs + 2 GPUs.
  const auto graph = core::make_graph(core::App::kCholesky, 6);
  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);
  std::printf("instance: %s (%zu tasks) on %s\n", graph.name().c_str(),
              graph.num_tasks(), platform.name().c_str());

  // 2. Train the agent with the paper's terminal reward (vs HEFT).
  rl::AgentConfig cfg;  // paper-style defaults: w=1, 2 GCN layers
  rl::ReadysAgent agent(graph.num_kernel_types(), cfg);
  std::printf("training for %d episodes (sigma=%.2f)...\n", episodes, sigma);
  const auto report = agent.train(
      graph, platform, costs,
      {.episodes = episodes, .sigma = sigma, .verbose = true});
  std::printf("training done: best makespan %.1f ms, final mean reward %+.3f\n",
              report.best_makespan, report.final_mean_reward);

  // 3. Compare against the baselines over 5 noise seeds.
  const int runs = 5;
  auto readys_factory = [&](std::uint64_t seed) {
    return std::make_unique<rl::ReadysScheduler>(
        agent.net(), cfg.window, /*greedy=*/true, seed);
  };
  util::Table table({"scheduler", "mean makespan (ms)", "vs HEFT"});
  const auto heft = util::summarize(core::evaluate_makespans(
      graph, platform, costs, core::heft_factory(), sigma, runs, 900));
  for (const auto& [name, factory] :
       std::vector<std::pair<std::string, core::SchedulerFactory>>{
           {"READYS", readys_factory},
           {"HEFT", core::heft_factory()},
           {"MCT", core::mct_factory()}}) {
    const auto s = util::summarize(core::evaluate_makespans(
        graph, platform, costs, factory, sigma, runs, 900));
    table.add_row({name, util::Table::num(s.mean, 1),
                   util::Table::num(heft.mean / s.mean, 3)});
  }
  std::printf("\nevaluation at sigma=%.2f (%d seeds):\n", sigma, runs);
  table.print();
  std::printf("\n(vs HEFT > 1 means faster than HEFT)\n");
  return 0;
}
