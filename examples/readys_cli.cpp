// readys_cli — command-line front end over the library.
//
//   readys_cli train    <app> <tiles> <ncpu> <ngpu> <episodes> <sigma> <out.weights>
//                       [train flags]
//   readys_cli train    --config <run.json> <out.weights> [train flags]
//   readys_cli evaluate <app> <tiles> <ncpu> <ngpu> <sigma> <weights> [runs]
//   readys_cli compare  <app> <tiles> <ncpu> <ngpu> <sigma> [runs]
//   readys_cli gantt    <app> <tiles> <ncpu> <ngpu> <scheduler> [sigma]
//   readys_cli dot      <app> <tiles> <out.dot>
//   readys_cli serve-bench [--config <run.json>] [serve flags]
//   readys_cli cluster-bench [--config <run.json>] [cluster flags]
//
// train flags: [--trainer a2c|ppo] [--num-envs <n>]
//              [--updates-per-round <g>] [--async] [--async-strict]
//              [--async-actors <n>] [--async-queue <n>] [--async-batch <n>]
//              [--checkpoint-dir <dir>] [--checkpoint-every <n>]
//              [--checkpoint-retain <k>] [--resume]
//              [--metrics-out <f.jsonl>] [--trace-out <f.json>]
//              [--manifest <f.json>]
//
// <app> ∈ {cholesky, lu, qr}; <scheduler> is any sched::registry() name
// (run an unknown one to get the list). <run.json> is a "readys-run/1"
// document (see docs/api.md).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "core/readys.hpp"

using namespace readys;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  readys_cli train    <app> <tiles> <ncpu> <ngpu> <episodes> "
      "<sigma> <out.weights> [train flags]\n"
      "  readys_cli train    --config <run.json> <out.weights> [train "
      "flags]\n"
      "    train flags: [--trainer a2c|ppo] [--num-envs <n>]\n"
      "                 [--updates-per-round <g>] [--async] "
      "[--async-strict]\n"
      "                 [--async-actors <n>] [--async-queue <n>] "
      "[--async-batch <n>]\n"
      "                 [--checkpoint-dir <dir>] [--checkpoint-every <n>]\n"
      "                 [--checkpoint-retain <k>] [--resume]\n"
      "                 [--metrics-out <f.jsonl>] [--trace-out <f.json>] "
      "[--manifest <f.json>]\n"
      "  readys_cli evaluate <app> <tiles> <ncpu> <ngpu> <sigma> "
      "<weights> [runs]\n"
      "  readys_cli compare  <app> <tiles> <ncpu> <ngpu> <sigma> [runs]\n"
      "  readys_cli gantt    <app> <tiles> <ncpu> <ngpu> <scheduler> "
      "[sigma]\n"
      "  readys_cli dot      <app> <tiles> <out.dot>\n"
      "  readys_cli serve-bench [--config <run.json>] [serve flags]\n"
      "    serve flags: [--sessions <n>] [--rate <per_s>] [--queue <n>]\n"
      "                 [--active <n>] [--workers <n>] [--deadline-us <d>]\n"
      "                 [--retries <n>] [--backend f64ref|f32simd]\n"
      "                 [--arrival poisson|bursty|pareto] "
      "[--burst-factor <f>]\n"
      "                 [--pareto-alpha <a>] [--tenant-rate <per_s>]\n"
      "                 [--tenant-burst <n>] [--restart-budget <n>]\n"
      "                 [--reload-watch <ckpt>]  (SIGHUP reloads now)\n"
      "  readys_cli cluster-bench [--config <run.json>] [cluster flags]\n"
      "    cluster flags: [--app <a>] [--tiles <n>] [--ncpu <n>] "
      "[--ngpu <n>]\n"
      "                   [--sigma <s>] [--scheduler <spec>] [--runs <n>]\n"
      "                   [--seed <n>] [--shards <k>] [--stale-ms <d>]\n"
      "                   [--hb-ms <d>] [--parallel <n>]\n"
      "                   [--comm-tile-bytes <b>] [--comm-bandwidth <b_ms>]\n"
      "                   [--comm-latency-ms <d>] "
      "[--backend f64ref|f32simd]\n");
  return 2;
}

int cmd_train(int argc, char** argv) {
  core::RunConfig cfg;
  const char* out_path = nullptr;
  int flag_start = 0;
  if (argc >= 4 && std::strcmp(argv[2], "--config") == 0) {
    cfg = core::RunConfig::from_file(argv[3]);
    if (argc < 5) return usage();
    out_path = argv[4];
    flag_start = 5;
  } else {
    if (argc < 9) return usage();
    cfg.app = argv[2];
    cfg.tiles = std::atoi(argv[3]);
    cfg.ncpu = std::atoi(argv[4]);
    cfg.ngpu = std::atoi(argv[5]);
    cfg.episodes = std::atoi(argv[6]);
    cfg.sigma = std::atof(argv[7]);
    out_path = argv[8];
    flag_start = 9;
  }

  obs::TelemetryConfig telemetry_cfg;
  std::string manifest_path;
  for (int i = flag_start; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--trainer" && i + 1 < argc) {
      cfg.trainer = argv[++i];
    } else if (flag == "--num-envs" && i + 1 < argc) {
      cfg.num_envs = std::atoi(argv[++i]);
    } else if (flag == "--updates-per-round" && i + 1 < argc) {
      cfg.updates_per_round = std::atoi(argv[++i]);
    } else if (flag == "--async") {
      cfg.async = true;
    } else if (flag == "--async-strict") {
      cfg.async = true;
      cfg.async_strict = true;
    } else if (flag == "--async-actors" && i + 1 < argc) {
      cfg.async_actors = std::atoi(argv[++i]);
    } else if (flag == "--async-queue" && i + 1 < argc) {
      cfg.async_queue = std::atoi(argv[++i]);
    } else if (flag == "--async-batch" && i + 1 < argc) {
      cfg.async_batch = std::atoi(argv[++i]);
    } else if (flag == "--checkpoint-dir" && i + 1 < argc) {
      cfg.checkpoint_dir = argv[++i];
    } else if (flag == "--checkpoint-every" && i + 1 < argc) {
      cfg.checkpoint_every = std::atoi(argv[++i]);
    } else if (flag == "--checkpoint-retain" && i + 1 < argc) {
      cfg.checkpoint_retain = std::atoi(argv[++i]);
    } else if (flag == "--resume") {
      cfg.resume = true;
    } else if (flag == "--metrics-out" && i + 1 < argc) {
      telemetry_cfg.metrics_path = argv[++i];
    } else if (flag == "--trace-out" && i + 1 < argc) {
      telemetry_cfg.trace_path = argv[++i];
    } else if (flag == "--manifest" && i + 1 < argc) {
      manifest_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown train option '%s'\n", flag.c_str());
      return usage();
    }
  }
  cfg.validate();
  if (!telemetry_cfg.metrics_path.empty() ||
      !telemetry_cfg.trace_path.empty()) {
    obs::install(telemetry_cfg);
  }

  const auto graph = cfg.make_graph();
  const auto platform = cfg.make_platform();
  const auto costs = cfg.make_costs();
  rl::TrainOptions opts = cfg.train_options();
  opts.verbose = true;

  obs::RunManifest manifest("readys_cli train");
  // The whole config document, verbatim: a manifest names exactly the
  // run it describes.
  manifest.set_raw("run_config", cfg.to_json());
  manifest.set("platform", platform.name());
  manifest.set("graph", graph.name());

  rl::ReadysAgent agent(graph.num_kernel_types(), cfg.agent);
  std::printf("training %s on %s, %d episodes, sigma=%.2f, trainer=%s, "
              "envs=%d...\n",
              graph.name().c_str(), platform.name().c_str(), cfg.episodes,
              cfg.sigma, cfg.trainer.c_str(), cfg.num_envs);
  rl::TrainReport report;
  // Async mode needs the VecEnv's per-slot envs even at width 1.
  if (cfg.num_envs > 1 || cfg.async) {
    util::ThreadPool pool;
    rl::VecEnv envs(graph, platform, costs, cfg.env_config(),
                    static_cast<std::size_t>(cfg.num_envs), &pool);
    if (cfg.trainer == "ppo") {
      rl::PpoTrainer trainer(agent.net(), cfg.agent);
      report = trainer.train(envs, opts);
    } else {
      rl::A2CTrainer trainer(agent.net(), cfg.agent);
      report = trainer.train(envs, opts);
    }
  } else {
    rl::SchedulingEnv env(graph, platform, costs, cfg.env_config());
    if (cfg.trainer == "ppo") {
      rl::PpoTrainer trainer(agent.net(), cfg.agent);
      report = trainer.train(env, opts);
    } else {
      rl::A2CTrainer trainer(agent.net(), cfg.agent);
      report = trainer.train(env, opts);
    }
  }
  agent.save(out_path);
  manifest.add_output(out_path);
  if (report.start_episode > 0) {
    std::printf("resumed at episode %d\n", report.start_episode);
  }
  if (report.skipped_updates > 0 || report.rollbacks > 0) {
    std::printf("divergence guard: %zu updates skipped, %zu rollbacks\n",
                report.skipped_updates, report.rollbacks);
  }
  std::printf("best makespan %.1f ms; weights -> %s\n",
              report.best_makespan, out_path);

  if (obs::Telemetry* t = obs::telemetry()) {
    if (t->tracing()) {
      // One greedy rollout of the trained policy under the simulator so
      // the trace file shows the simulated schedule (pid 1) next to the
      // wall-clock training spans (pid 2) in the same Perfetto view.
      rl::ReadysScheduler policy(agent.net(), agent.config().window);
      sim::Simulator sim(graph, platform, costs, {cfg.sigma, opts.seed});
      const auto rollout = sim.run(policy);
      t->add_trace_fragment(
          sim::chrome_trace_events(rollout.trace, graph, platform));
      std::printf("greedy rollout makespan %.1f ms -> %s\n",
                  rollout.makespan, t->config().trace_path.c_str());
    }
    if (t->sink() != nullptr) manifest.add_output(t->config().metrics_path);
    if (t->tracing()) manifest.add_output(t->config().trace_path);
  }
  obs::shutdown();
  if (!manifest_path.empty()) {
    manifest.write(manifest_path);
    std::printf("manifest -> %s\n", manifest_path.c_str());
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  if (argc < 8) return usage();
  const auto app = core::parse_app(argv[2]);
  const auto graph = core::make_graph(app, std::atoi(argv[3]));
  const auto platform =
      sim::Platform::hybrid(std::atoi(argv[4]), std::atoi(argv[5]));
  const auto costs = core::make_costs(app);
  const double sigma = std::atof(argv[6]);
  const int runs = argc > 8 ? std::atoi(argv[8]) : 5;

  rl::ReadysAgent agent(graph.num_kernel_types(), rl::AgentConfig{});
  agent.load(argv[7]);
  const auto mks =
      agent.evaluate(graph, platform, costs, sigma, runs, 1234);
  const auto s = util::summarize(mks);
  std::printf("READYS on %s / %s, sigma=%.2f: %.1f ms (+/- %.1f over %d "
              "runs)\n",
              graph.name().c_str(), platform.name().c_str(), sigma, s.mean,
              s.ci95_half_width, runs);
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 7) return usage();
  const auto app = core::parse_app(argv[2]);
  const auto graph = core::make_graph(app, std::atoi(argv[3]));
  const auto platform =
      sim::Platform::hybrid(std::atoi(argv[4]), std::atoi(argv[5]));
  const auto costs = core::make_costs(app);
  const double sigma = std::atof(argv[6]);
  const int runs = argc > 7 ? std::atoi(argv[7]) : 10;

  util::ThreadPool pool;
  util::Table table({"scheduler", "mean (ms)", "ci95", "min", "max"});
  for (const std::string& name : sched::registry().names()) {
    const auto mks = core::evaluate_makespans(
        graph, platform, costs, core::registry_factory(name), sigma, runs,
        77, &pool);
    const auto s = util::summarize(mks);
    table.add_row({name, util::Table::num(s.mean, 1),
                   util::Table::num(s.ci95_half_width, 1),
                   util::Table::num(s.min, 1), util::Table::num(s.max, 1)});
  }
  std::printf("%s on %s, sigma=%.2f, %d runs\n", graph.name().c_str(),
              platform.name().c_str(), sigma, runs);
  table.print();
  return 0;
}

int cmd_gantt(int argc, char** argv) {
  if (argc < 7) return usage();
  const auto app = core::parse_app(argv[2]);
  const auto graph = core::make_graph(app, std::atoi(argv[3]));
  const auto platform =
      sim::Platform::hybrid(std::atoi(argv[4]), std::atoi(argv[5]));
  const auto costs = core::make_costs(app);
  // Throws with the list of registered names on an unknown scheduler.
  auto scheduler = sched::make_scheduler(argv[6]);
  const double sigma = argc > 7 ? std::atof(argv[7]) : 0.0;

  sim::Simulator sim(graph, platform, costs, {sigma, 42});
  const auto result = sim.run(*scheduler);
  std::printf("%s via %s: makespan %.1f ms\n", graph.name().c_str(),
              scheduler->name().c_str(), result.makespan);
  std::fputs(sim::to_ascii_gantt(result.trace, graph, platform, 100).c_str(),
             stdout);
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto app = core::parse_app(argv[2]);
  const auto graph = core::make_graph(app, std::atoi(argv[3]));
  dag::write_dot(graph, argv[4]);
  std::printf("%s (%zu tasks, %zu edges) -> %s\n", graph.name().c_str(),
              graph.num_tasks(), graph.num_edges(), argv[4]);
  return 0;
}

// SIGHUP flips this; the reload watcher thread picks it up.
volatile std::sig_atomic_t g_sighup = 0;
void on_sighup(int) { g_sighup = 1; }

serve::ArrivalMode parse_arrival(const std::string& name) {
  if (name == "poisson") return serve::ArrivalMode::kPoisson;
  if (name == "bursty") return serve::ArrivalMode::kBursty;
  if (name == "pareto") return serve::ArrivalMode::kPareto;
  throw std::invalid_argument("unknown arrival mode '" + name +
                              "' (poisson | bursty | pareto)");
}

// One load run against a live DecisionService, RunConfig-driven: the
// admission/QoS/deadline/fault/reload machinery exercised from the
// command line (the committed baseline sweep lives in
// bench/serve_latency). With --reload-watch the service hot-reloads the
// named readys-ckpt/2 file whenever it changes on disk, and SIGHUP
// forces an immediate reload attempt; rejected candidates keep the
// last-good weights serving.
int cmd_serve_bench(int argc, char** argv) {
  core::RunConfig cfg = core::RunConfig::from_env();
  int i = 2;
  if (argc >= 4 && std::strcmp(argv[2], "--config") == 0) {
    cfg = core::RunConfig::from_file(argv[3]);
    i = 4;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--sessions" && i + 1 < argc) {
      cfg.serve_sessions = std::atoi(argv[++i]);
    } else if (flag == "--rate" && i + 1 < argc) {
      cfg.serve_rate = std::atof(argv[++i]);
    } else if (flag == "--queue" && i + 1 < argc) {
      cfg.serve_queue = std::atoi(argv[++i]);
    } else if (flag == "--active" && i + 1 < argc) {
      cfg.serve_active = std::atoi(argv[++i]);
    } else if (flag == "--workers" && i + 1 < argc) {
      cfg.serve_workers = std::atoi(argv[++i]);
    } else if (flag == "--deadline-us" && i + 1 < argc) {
      cfg.serve_deadline_us = std::atof(argv[++i]);
    } else if (flag == "--retries" && i + 1 < argc) {
      cfg.serve_retries = std::atoi(argv[++i]);
    } else if (flag == "--backend" && i + 1 < argc) {
      cfg.inference_backend = argv[++i];
    } else if (flag == "--arrival" && i + 1 < argc) {
      cfg.serve_arrival = argv[++i];
    } else if (flag == "--burst-factor" && i + 1 < argc) {
      cfg.serve_burst_factor = std::atof(argv[++i]);
    } else if (flag == "--pareto-alpha" && i + 1 < argc) {
      cfg.serve_pareto_alpha = std::atof(argv[++i]);
    } else if (flag == "--tenant-rate" && i + 1 < argc) {
      cfg.serve_tenant_rate = std::atof(argv[++i]);
    } else if (flag == "--tenant-burst" && i + 1 < argc) {
      cfg.serve_tenant_burst = std::atof(argv[++i]);
    } else if (flag == "--restart-budget" && i + 1 < argc) {
      cfg.serve_restart_budget = std::atoi(argv[++i]);
    } else if (flag == "--reload-watch" && i + 1 < argc) {
      cfg.serve_reload_watch = argv[++i];
    } else {
      std::fprintf(stderr, "unknown serve-bench option '%s'\n", flag.c_str());
      return usage();
    }
  }
  cfg.validate();
  cfg.agent.seed = cfg.seed;

  // Untrained seeded net: serve latency and the robustness counters do
  // not depend on policy quality. All catalog apps have 4 kernel types,
  // so one net serves the mixed workload.
  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg.agent);

  serve::ServiceConfig sc;
  sc.cpus = cfg.ncpu;
  sc.gpus = cfg.ngpu;
  sc.queue_capacity = static_cast<std::size_t>(cfg.serve_queue);
  sc.max_active = static_cast<std::size_t>(cfg.serve_active);
  sc.workers = cfg.serve_workers > 0 ? cfg.serve_workers : 1;
  sc.deadline_us = cfg.serve_deadline_us;
  sc.max_retries = cfg.serve_retries;
  sc.inference_backend = rl::parse_inference_backend(cfg.inference_backend);
  sc.record_latencies = true;
  sc.watchdog_period_ms = 200.0;
  sc.default_tenant.rate_per_s = cfg.serve_tenant_rate;
  sc.default_tenant.burst = cfg.serve_tenant_burst;
  sc.supervise.restart_budget = cfg.serve_restart_budget;
  serve::DecisionService svc(net, cfg.agent, sc);

  // Hot-reload plumbing: a watcher thread polls the checkpoint file's
  // mtime and reloads on change; SIGHUP forces an immediate attempt.
  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  if (!cfg.serve_reload_watch.empty()) {
    std::signal(SIGHUP, on_sighup);
    const std::string path = cfg.serve_reload_watch;
    watcher = std::thread([&svc, &watch_stop, path] {
      auto mtime_of = [&path]() -> long {
        struct stat st {};
        return stat(path.c_str(), &st) == 0
                   ? static_cast<long>(st.st_mtime)
                   : -1;
      };
      long last_mtime = mtime_of();
      while (!watch_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        const long m = mtime_of();
        const bool forced = g_sighup != 0;
        if (forced) g_sighup = 0;
        if (!forced && (m < 0 || m == last_mtime)) continue;
        last_mtime = m;
        const serve::ReloadResult rr = svc.reload_from_file(path);
        std::printf("reload %s: version %llu%s%s\n",
                    serve::reload_status_name(rr.status),
                    static_cast<unsigned long long>(rr.version),
                    rr.reason.empty() ? "" : " — ", rr.reason.c_str());
      }
    });
  }

  serve::LoadGenConfig lg;
  lg.sessions = cfg.serve_sessions;
  lg.rate = cfg.serve_rate;
  lg.seed = cfg.seed;
  lg.sigma = cfg.sigma;
  lg.arrival = parse_arrival(cfg.serve_arrival);
  lg.burst_factor = cfg.serve_burst_factor;
  lg.pareto_alpha = cfg.serve_pareto_alpha;
  std::printf("serving %d sessions at %.1f/s %s arrivals (queue %d, "
              "active %d, workers %d, deadline %.0f us, retries %d, "
              "backend %s)...\n",
              cfg.serve_sessions, cfg.serve_rate,
              serve::arrival_mode_name(lg.arrival), cfg.serve_queue,
              cfg.serve_active, sc.workers, cfg.serve_deadline_us,
              cfg.serve_retries,
              rl::inference_backend_name(sc.inference_backend));
  const serve::LoadReport r = serve::run_poisson_load(svc, lg);
  if (watcher.joinable()) {
    watch_stop.store(true, std::memory_order_relaxed);
    watcher.join();
  }
  const serve::DecisionService::Counters fc = svc.counters();
  svc.shutdown();

  std::printf("offered   %d\n", r.offered);
  std::printf("admitted  %llu  shed %llu\n",
              static_cast<unsigned long long>(r.admitted),
              static_cast<unsigned long long>(r.shed));
  std::printf("completed %llu  quarantined %llu  retries %llu\n",
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.quarantined),
              static_cast<unsigned long long>(r.retries));
  std::printf("decisions %llu (%.0f/s)  timeouts %llu  fallbacks %llu\n",
              static_cast<unsigned long long>(r.decisions),
              r.decisions_per_s,
              static_cast<unsigned long long>(r.timeouts),
              static_cast<unsigned long long>(r.fallbacks));
  std::printf("decide latency p50 %.1f us, p99 %.1f us\n", r.p50_decide_us,
              r.p99_decide_us);
  std::printf("%.1f sessions/s over %.2f s; mean makespan %.1f ms\n",
              r.sessions_per_s, r.duration_s, r.mean_makespan);
  if (fc.reloads > 0 || fc.reload_rejects > 0 || fc.worker_restarts > 0 ||
      fc.tenant_shed > 0) {
    std::printf("reloads %llu (rejected %llu)  worker restarts %llu  "
                "tenant shed %llu  active weight version %llu%s\n",
                static_cast<unsigned long long>(fc.reloads),
                static_cast<unsigned long long>(fc.reload_rejects),
                static_cast<unsigned long long>(fc.worker_restarts),
                static_cast<unsigned long long>(fc.tenant_shed),
                static_cast<unsigned long long>(svc.active_weight_version()),
                svc.degraded() ? "  [DEGRADED: one-shot MCT]" : "");
  }
  return 0;
}

// Episodes of one DAG under the sharded simulation core with the
// decentralized shard:<inner> scheduler family, RunConfig-driven.
// Prints makespan plus the cluster counters (steals, heartbeat
// transitions, rescues, dropped proposals); the committed P x K scaling
// sweep lives in bench/cluster_scale.
int cmd_cluster_bench(int argc, char** argv) {
  cluster::register_cluster_scheduler();
  core::RunConfig cfg = core::RunConfig::from_env();
  int runs = 5;
  int i = 2;
  if (argc >= 4 && std::strcmp(argv[2], "--config") == 0) {
    cfg = core::RunConfig::from_file(argv[3]);
    i = 4;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--app" && i + 1 < argc) {
      cfg.app = argv[++i];
    } else if (flag == "--tiles" && i + 1 < argc) {
      cfg.tiles = std::atoi(argv[++i]);
    } else if (flag == "--ncpu" && i + 1 < argc) {
      cfg.ncpu = std::atoi(argv[++i]);
    } else if (flag == "--ngpu" && i + 1 < argc) {
      cfg.ngpu = std::atoi(argv[++i]);
    } else if (flag == "--sigma" && i + 1 < argc) {
      cfg.sigma = std::atof(argv[++i]);
    } else if (flag == "--scheduler" && i + 1 < argc) {
      cfg.scheduler = argv[++i];
    } else if (flag == "--runs" && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (flag == "--seed" && i + 1 < argc) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (flag == "--shards" && i + 1 < argc) {
      cfg.cluster_shards = std::atoi(argv[++i]);
    } else if (flag == "--stale-ms" && i + 1 < argc) {
      cfg.cluster_stale_ms = std::atof(argv[++i]);
    } else if (flag == "--hb-ms" && i + 1 < argc) {
      cfg.cluster_hb_ms = std::atof(argv[++i]);
    } else if (flag == "--parallel" && i + 1 < argc) {
      cfg.cluster_parallel = std::atoi(argv[++i]);
    } else if (flag == "--comm-tile-bytes" && i + 1 < argc) {
      cfg.comm_tile_bytes = std::atof(argv[++i]);
    } else if (flag == "--comm-bandwidth" && i + 1 < argc) {
      cfg.comm_bandwidth = std::atof(argv[++i]);
    } else if (flag == "--comm-latency-ms" && i + 1 < argc) {
      cfg.comm_latency_ms = std::atof(argv[++i]);
    } else if (flag == "--backend" && i + 1 < argc) {
      cfg.inference_backend = argv[++i];
    } else {
      std::fprintf(stderr, "unknown cluster-bench option '%s'\n",
                   flag.c_str());
      return usage();
    }
  }
  cfg.validate();
  if (runs < 1) runs = 1;

  const auto graph = cfg.make_graph();
  const auto platform = cfg.make_platform();
  const auto costs = cfg.make_costs();

  // Make "readys" resolvable inside cluster specs ("shard(...):readys",
  // "guarded:readys") with the configured inference backend. Untrained
  // seeded net: scheduling throughput does not depend on policy quality.
  cfg.agent.seed = cfg.seed;
  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg.agent);
  rl::ReadysOptions readys_defaults;
  readys_defaults.backend = rl::parse_inference_backend(cfg.inference_backend);
  rl::register_readys_scheduler(net, cfg.agent.window, cfg.random_offer,
                                readys_defaults);

  // A bare inner spec gets wrapped into the decentralized family from
  // the cluster_* knobs; a spec already naming shard(...) is kept as is
  // so --config can pin exact options.
  std::string spec = cfg.scheduler;
  if (cfg.cluster_shards > 1 && spec.rfind("shard", 0) != 0) {
    spec = "shard(shards=" + std::to_string(cfg.cluster_shards) +
           ",stale_ms=" + std::to_string(cfg.cluster_stale_ms) +
           ",hb_ms=" + std::to_string(cfg.cluster_hb_ms) +
           ",parallel=" + std::to_string(cfg.cluster_parallel) + "):" + spec;
  }

  std::vector<double> mks;
  std::size_t steals = 0, stolen = 0, rescues = 0, dropped = 0, hb = 0;
  std::string sched_name;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t tasks_done = 0;
  for (int run = 0; run < runs; ++run) {
    sched::SchedulerConfig sc;
    sc.seed = cfg.seed + static_cast<std::uint64_t>(run);
    auto scheduler = sched::make_scheduler(spec, sc);
    sched_name = scheduler->name();
    cluster::ClusterSimulator::Options opt;
    opt.sigma = cfg.sigma;
    opt.seed = cfg.seed + static_cast<std::uint64_t>(run);
    opt.shards = cfg.cluster_shards;
    if (cfg.has_comm()) opt.comm = cfg.make_comm();
    cluster::ClusterSimulator sim(graph, platform, costs, opt);
    const auto r = sim.run(*scheduler);
    mks.push_back(r.makespan);
    tasks_done += r.trace.size();
    if (const auto* ss =
            dynamic_cast<const cluster::ShardScheduler*>(scheduler.get())) {
      steals += ss->steals();
      stolen += ss->stolen_tasks();
      rescues += ss->rescue_fallbacks();
      dropped += ss->dropped_assignments();
      hb += ss->heartbeat().total_transitions();
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto s = util::summarize(mks);
  std::printf("%s on %s via %s, sigma=%.2f, K=%d, %d runs\n",
              graph.name().c_str(), platform.name().c_str(),
              sched_name.c_str(), cfg.sigma, cfg.cluster_shards, runs);
  std::printf("makespan %.1f ms (+/- %.1f), %.0f scheduled tasks/s wall\n",
              s.mean, s.ci95_half_width,
              wall_s > 0 ? static_cast<double>(tasks_done) / wall_s : 0.0);
  std::printf("steals %zu (tasks %zu)  heartbeat transitions %zu  "
              "rescues %zu  dropped %zu\n",
              steals, stolen, hb, rescues, dropped);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string cmd = argv[1];
    if (cmd == "train") return cmd_train(argc, argv);
    if (cmd == "evaluate") return cmd_evaluate(argc, argv);
    if (cmd == "compare") return cmd_compare(argc, argv);
    if (cmd == "gantt") return cmd_gantt(argc, argv);
    if (cmd == "dot") return cmd_dot(argc, argv);
    if (cmd == "serve-bench") return cmd_serve_bench(argc, argv);
    if (cmd == "cluster-bench") return cmd_cluster_bench(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
