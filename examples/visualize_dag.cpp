// Exports the task graphs of the three factorizations as Graphviz DOT
// files and prints summary statistics (task/edge counts per kernel,
// depth) — handy for inspecting what the scheduler actually sees.
//
// Usage: visualize_dag [tiles] [output_dir]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/readys.hpp"

using namespace readys;

int main(int argc, char** argv) {
  const int tiles = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  for (auto app : {core::App::kCholesky, core::App::kLu, core::App::kQr}) {
    const auto graph = core::make_graph(app, tiles);
    const auto path = (std::filesystem::path(out_dir) /
                       (graph.name() + ".dot"))
                          .string();
    dag::write_dot(graph, path);

    std::printf("\n%s: %zu tasks, %zu edges, depth %zu -> %s\n",
                graph.name().c_str(), graph.num_tasks(), graph.num_edges(),
                graph.depth(), path.c_str());
    util::Table table({"kernel", "count", "CPU (ms)", "GPU (ms)", "accel"});
    const auto costs = core::make_costs(app);
    const auto counts = graph.kernel_counts();
    for (int k = 0; k < graph.num_kernel_types(); ++k) {
      const double cpu = costs.expected(k, sim::ResourceType::kCpu);
      const double gpu = costs.expected(k, sim::ResourceType::kGpu);
      table.add_row({graph.kernel_name(k),
                     std::to_string(counts[static_cast<std::size_t>(k)]),
                     util::Table::num(cpu, 0), util::Table::num(gpu, 0),
                     util::Table::num(cpu / gpu, 1) + "x"});
    }
    table.print();
  }
  std::printf("\nrender with: dot -Tpng <file>.dot -o <file>.png\n");
  return 0;
}
