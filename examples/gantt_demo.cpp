// Schedule visualization demo: executes HEFT and MCT on a tiled LU
// factorization, prints ASCII Gantt charts side by side and exports
// Chrome-trace JSON files viewable in chrome://tracing or Perfetto.
//
// Usage: gantt_demo [tiles] [sigma]

#include <cstdio>
#include <cstdlib>

#include "core/readys.hpp"

using namespace readys;

int main(int argc, char** argv) {
  const int tiles = argc > 1 ? std::atoi(argv[1]) : 6;
  const double sigma = argc > 2 ? std::atof(argv[2]) : 0.0;

  const auto graph = core::make_graph(core::App::kLu, tiles);
  const auto costs = core::make_costs(core::App::kLu);
  const auto platform = sim::Platform::hybrid(2, 2);
  std::printf("LU T=%d (%zu tasks) on %s, sigma=%.2f\n\n", tiles,
              graph.num_tasks(), platform.name().c_str(), sigma);

  sched::HeftScheduler heft;
  sched::MctScheduler mct;
  for (sim::Scheduler* sched :
       std::initializer_list<sim::Scheduler*>{&heft, &mct}) {
    sim::Simulator sim(graph, platform, costs, {sigma, 42});
    const auto result = sim.run(*sched);
    std::printf("== %s: makespan %.1f ms ==\n", sched->name().c_str(),
                result.makespan);
    std::fputs(
        sim::to_ascii_gantt(result.trace, graph, platform, 100).c_str(),
        stdout);
    const auto util_per_resource = result.trace.utilization(platform);
    std::printf("utilization:");
    for (double u : util_per_resource) std::printf(" %.0f%%", 100.0 * u);
    std::printf("\n");
    const std::string json_path = sched->name() + "_trace.json";
    sim::write_chrome_trace(result.trace, graph, platform, json_path);
    std::printf("chrome trace: %s (open in chrome://tracing)\n\n",
                json_path.c_str());
  }
  return 0;
}
