// Transfer learning demo (paper §V-F): train a READYS agent on a small
// Cholesky instance, save its weights, reload them into a fresh agent and
// schedule a larger instance without retraining.
//
// Usage: train_and_transfer [train_tiles] [test_tiles] [episodes]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/readys.hpp"

using namespace readys;

int main(int argc, char** argv) {
  const int train_tiles = argc > 1 ? std::atoi(argv[1]) : 4;
  const int test_tiles = argc > 2 ? std::atoi(argv[2]) : 8;
  const int episodes = argc > 3 ? std::atoi(argv[3]) : 2500;

  const auto costs = core::make_costs(core::App::kCholesky);
  const auto platform = sim::Platform::hybrid(2, 2);
  const auto train_graph = core::make_graph(core::App::kCholesky, train_tiles);
  const auto test_graph = core::make_graph(core::App::kCholesky, test_tiles);

  rl::AgentConfig cfg;
  rl::ReadysAgent teacher(train_graph.num_kernel_types(), cfg);
  std::printf("training on T=%d (%zu tasks), %d episodes...\n", train_tiles,
              train_graph.num_tasks(), episodes);
  teacher.train(train_graph, platform, costs,
                {.episodes = episodes, .sigma = 0.2});

  const auto weights =
      (std::filesystem::temp_directory_path() / "readys_transfer.txt")
          .string();
  teacher.save(weights);
  std::printf("weights saved to %s\n", weights.c_str());

  rl::ReadysAgent student(test_graph.num_kernel_types(), cfg);
  student.load(weights);
  std::filesystem::remove(weights);

  std::printf("\ntransfer to T=%d (%zu tasks) without retraining:\n",
              test_tiles, test_graph.num_tasks());
  util::Table table({"sigma", "READYS (transfer)", "HEFT", "MCT",
                     "READYS/HEFT improvement"});
  for (double sigma : {0.0, 0.2, 0.4, 0.8}) {
    const int runs = 5;
    const double readys_mk = util::mean(
        student.evaluate(test_graph, platform, costs, sigma, runs, 1234));
    const double heft_mk = util::mean(core::evaluate_makespans(
        test_graph, platform, costs, core::heft_factory(), sigma, runs,
        1234));
    const double mct_mk = util::mean(core::evaluate_makespans(
        test_graph, platform, costs, core::mct_factory(), sigma, runs, 1234));
    table.add_row({util::Table::num(sigma, 2), util::Table::num(readys_mk, 1),
                   util::Table::num(heft_mk, 1), util::Table::num(mct_mk, 1),
                   util::Table::num(heft_mk / readys_mk, 3)});
  }
  table.print();
  std::printf("\n(improvement > 1: the transferred agent beats HEFT)\n");
  return 0;
}
