// Compares every built-in scheduling heuristic (no learning involved)
// across the three factorization kernels, three platforms and a sweep of
// noise levels — a miniature of the paper's experimental grid that runs
// in seconds.
//
// Usage: compare_heuristics [tiles] [runs]

#include <cstdio>
#include <cstdlib>

#include "core/readys.hpp"

using namespace readys;

int main(int argc, char** argv) {
  const int tiles = argc > 1 ? std::atoi(argv[1]) : 8;
  const int runs = argc > 2 ? std::atoi(argv[2]) : 10;

  util::ThreadPool pool;
  const std::vector<std::pair<std::string, core::SchedulerFactory>> scheds{
      {"HEFT", core::heft_factory()},
      {"MCT", core::mct_factory()},
      {"GREEDY-EFT", core::greedy_eft_factory()},
      {"CP-DYN", core::critical_path_factory()},
      {"RANDOM", core::random_factory()},
  };

  for (auto app : {core::App::kCholesky, core::App::kLu, core::App::kQr}) {
    const auto graph = core::make_graph(app, tiles);
    const auto costs = core::make_costs(app);
    for (const auto& platform :
         {sim::Platform::cpus(4), sim::Platform::hybrid(2, 2),
          sim::Platform::gpus(4)}) {
      std::printf("\n=== %s T=%d (%zu tasks) on %s, %d runs/point ===\n",
                  core::app_name(app).c_str(), tiles, graph.num_tasks(),
                  platform.name().c_str(), runs);
      util::Table table(
          {"scheduler", "sigma=0", "sigma=0.25", "sigma=0.5", "sigma=1.0"});
      for (const auto& [name, factory] : scheds) {
        std::vector<std::string> row{name};
        for (double sigma : {0.0, 0.25, 0.5, 1.0}) {
          const auto mks = core::evaluate_makespans(
              graph, platform, costs, factory, sigma, runs, 77, &pool);
          row.push_back(util::Table::num(util::mean(mks), 1));
        }
        table.add_row(row);
      }
      table.print();
    }
  }
  std::printf("\n(mean makespans in ms; lower is better)\n");
  return 0;
}
