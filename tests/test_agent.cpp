#include <gtest/gtest.h>

#include <filesystem>

#include "dag/cholesky.hpp"
#include "rl/agent.hpp"
#include "rl/readys_scheduler.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;

namespace {

rr::AgentConfig tiny_config() {
  rr::AgentConfig cfg;
  cfg.hidden = 16;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.unroll = 16;
  cfg.seed = 3;
  return cfg;
}

}  // namespace

TEST(Agent, TrainEvaluateRoundTrip) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent agent(4, tiny_config());
  const auto report = agent.train(graph, platform, costs, {.episodes = 5});
  EXPECT_EQ(report.episode_rewards.size(), 5u);
  const auto makespans = agent.evaluate(graph, platform, costs, 0.0, 3, 7);
  EXPECT_EQ(makespans.size(), 3u);
  for (double mk : makespans) EXPECT_GT(mk, 0.0);
}

TEST(Agent, SaveLoadPreservesPolicy) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent a(4, tiny_config());
  a.train(graph, platform, costs, {.episodes = 3});
  const auto path =
      (std::filesystem::temp_directory_path() / "readys_agent.txt").string();
  a.save(path);

  auto cfg2 = tiny_config();
  cfg2.seed = 999;  // different init, must be overwritten by load
  rr::ReadysAgent b(4, cfg2);
  b.load(path);
  std::filesystem::remove(path);

  const auto ma = a.evaluate(graph, platform, costs, 0.0, 3, 11);
  const auto mb = b.evaluate(graph, platform, costs, 0.0, 3, 11);
  EXPECT_EQ(ma, mb);
}

TEST(Agent, TransfersAcrossProblemSizes) {
  // Train on T=3, run on T=5 — must produce a valid schedule without any
  // retraining (the paper's transfer-learning setting).
  const auto small = rd::cholesky_graph(3);
  const auto big = rd::cholesky_graph(5);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent agent(4, tiny_config());
  agent.train(small, platform, costs, {.episodes = 5});
  const auto makespans = agent.evaluate(big, platform, costs, 0.2, 2, 3);
  EXPECT_EQ(makespans.size(), 2u);
  for (double mk : makespans) EXPECT_GT(mk, 0.0);
}

TEST(ReadysScheduler, RunsUnderSimulatorWithValidTrace) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent agent(4, tiny_config());
  for (double sigma : {0.0, 0.5}) {
    rr::ReadysScheduler sched(agent.net(), agent.config().window,
                              /*greedy=*/true, /*seed=*/4);
    rs::Simulator sim(graph, platform, costs, {sigma, 21});
    const auto result = sim.run(sched);
    EXPECT_EQ(result.trace.validate(graph, platform), "") << sigma;
    EXPECT_EQ(result.trace.size(), graph.num_tasks());
  }
}

TEST(ReadysScheduler, GreedyIsSeedIndependentDeterministicPolicy) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent agent(4, tiny_config());
  rr::ReadysScheduler s1(agent.net(), 1, true, 5);
  rr::ReadysScheduler s2(agent.net(), 1, true, 5);
  const double m1 = rs::simulate_makespan(graph, platform, costs, s1, 0.0, 9);
  const double m2 = rs::simulate_makespan(graph, platform, costs, s2, 0.0, 9);
  EXPECT_DOUBLE_EQ(m1, m2);
}

TEST(ReadysScheduler, SamplingModeStillValid) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent agent(4, tiny_config());
  rr::ReadysScheduler sched(agent.net(), 1, /*greedy=*/false, 6);
  rs::Simulator sim(graph, platform, costs, {0.3, 13});
  const auto result = sim.run(sched);
  EXPECT_EQ(result.trace.validate(graph, platform), "");
}
