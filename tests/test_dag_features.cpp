#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "dag/cholesky.hpp"
#include "dag/dot_export.hpp"
#include "dag/features.hpp"

namespace rd = readys::dag;
namespace rc = readys::core;

TEST(StaticFeatures, ChainGraphDescendantProfile) {
  // 0 -> 1 -> 2, all the same type: F counts the downstream mass.
  rd::TaskGraph g("chain", {"A"});
  g.add_task(0);
  g.add_task(0);
  g.add_task(0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  rd::StaticFeatures f(g);
  EXPECT_NEAR(f.descendant_mass(0, 0), 1.0, 1e-12);        // 3/3
  EXPECT_NEAR(f.descendant_mass(1, 0), 2.0 / 3.0, 1e-12);  // 2/3
  EXPECT_NEAR(f.descendant_mass(2, 0), 1.0 / 3.0, 1e-12);  // 1/3
}

TEST(StaticFeatures, SourceSeesAllMassOfEveryType) {
  for (auto app : {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
    const auto g = rc::make_graph(app, 5);
    rd::StaticFeatures f(g);
    const auto src = g.sources().front();
    for (int type = 0; type < g.num_kernel_types(); ++type) {
      EXPECT_NEAR(f.descendant_mass(src, type), 1.0, 1e-9)
          << rc::app_name(app) << " type " << type;
    }
  }
}

TEST(StaticFeatures, SinkHasOnlyItsOwnMass) {
  const auto g = rd::cholesky_graph(4);
  rd::StaticFeatures f(g);
  const auto sink = g.sinks().front();
  const auto counts = g.kernel_counts();
  for (int type = 0; type < g.num_kernel_types(); ++type) {
    const double expected =
        type == g.kernel(sink)
            ? 1.0 / static_cast<double>(counts[static_cast<std::size_t>(type)])
            : 0.0;
    EXPECT_NEAR(f.descendant_mass(sink, type), expected, 1e-12);
  }
}

TEST(StaticFeatures, ValuesAreNormalized) {
  const auto g = rd::cholesky_graph(6);
  rd::StaticFeatures f(g);
  for (rd::TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_GE(f.norm_out_degree(t), 0.0);
    EXPECT_LE(f.norm_out_degree(t), 1.0);
    EXPECT_GE(f.norm_in_degree(t), 0.0);
    EXPECT_LE(f.norm_in_degree(t), 1.0);
    for (int type = 0; type < g.num_kernel_types(); ++type) {
      EXPECT_GE(f.descendant_mass(t, type), -1e-12);
      EXPECT_LE(f.descendant_mass(t, type), 1.0 + 1e-9);
    }
  }
}

TEST(StaticFeatures, SplitMergePreservesMass) {
  // Diamond: 0 -> {1, 2} -> 3. Node 3's unit splits between 1 and 2.
  rd::TaskGraph g("diamond", {"A", "B"});
  g.add_task(0);  // 0
  g.add_task(1);  // 1
  g.add_task(1);  // 2
  g.add_task(0);  // 3
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  rd::StaticFeatures f(g);
  // Source: all mass of both types (2 of type A, 2 of type B).
  EXPECT_NEAR(f.descendant_mass(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(f.descendant_mass(0, 1), 1.0, 1e-12);
  // Node 1: itself (1 of 2 B's) + half of node 3 (0.5 of 2 A's).
  EXPECT_NEAR(f.descendant_mass(1, 1), 0.5, 1e-12);
  EXPECT_NEAR(f.descendant_mass(1, 0), 0.25, 1e-12);
}

TEST(StaticFeatures, WriteStaticLayout) {
  const auto g = rd::cholesky_graph(3);
  rd::StaticFeatures f(g);
  ASSERT_EQ(f.type_width(), 4);
  ASSERT_EQ(f.static_width(), 10);
  std::vector<double> row(10, -1.0);
  const auto src = g.sources().front();
  f.write_static(src, g, row.data());
  EXPECT_DOUBLE_EQ(row[2 + rd::kPotrf], 1.0);  // one-hot type
  EXPECT_DOUBLE_EQ(row[2 + rd::kGemm], 0.0);
  EXPECT_NEAR(row[6 + rd::kPotrf], 1.0, 1e-12);  // full downstream mass
}

TEST(DotExport, ContainsEveryTaskAndEdge) {
  const auto g = rd::cholesky_graph(3);
  const std::string dot = rd::to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("POTRF"), std::string::npos);
  EXPECT_NE(dot.find("GEMM"), std::string::npos);
  std::size_t arrows = 0;
  for (std::size_t p = dot.find("->"); p != std::string::npos;
       p = dot.find("->", p + 2)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, g.num_edges());
}
