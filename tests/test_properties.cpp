// Cross-cutting property tests: invariances and dominance relations that
// must hold for any instance, exercised over randomized inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/readys.hpp"

namespace rc = readys::core;
namespace rd = readys::dag;
namespace rn = readys::nn;
namespace rs = readys::sim;
namespace rt = readys::tensor;
namespace ru = readys::util;

namespace {

/// Applies permutation p to a graph's node order (edges relabeled).
std::pair<rt::Tensor, rt::Tensor> permuted_gcn_inputs(
    const rt::Tensor& features,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges,
    const std::vector<std::size_t>& p) {
  const std::size_t n = features.rows();
  rt::Tensor pf(n, features.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < features.cols(); ++c) {
      pf.at(p[i], c) = features.at(i, c);
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> pe;
  pe.reserve(edges.size());
  for (auto [u, v] : edges) pe.emplace_back(p[u], p[v]);
  return {pf, rn::normalized_adjacency(n, pe)};
}

}  // namespace

TEST(GcnProperty, PermutationEquivariance) {
  // Relabeling the nodes must permute the embeddings identically — the
  // core justification for using a GCN on scheduling windows.
  ru::Rng rng(3);
  const std::size_t n = 7;
  rn::GCNLayer layer(5, 6, rng);
  rt::Tensor features = rt::Tensor::randn(n, 5, rng);
  std::vector<std::pair<std::size_t, std::size_t>> edges = {
      {0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {4, 6}};
  const rt::Tensor ahat = rn::normalized_adjacency(n, edges);
  const rt::Tensor out =
      layer.forward(rt::Var(ahat), rt::Var(features)).value();

  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), 0u);
  rng.shuffle(p);
  const auto [pf, pahat] = permuted_gcn_inputs(features, edges, p);
  const rt::Tensor pout =
      layer.forward(rt::Var(pahat), rt::Var(pf)).value();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      EXPECT_NEAR(pout.at(p[i], c), out.at(i, c), 1e-9);
    }
  }
}

TEST(HeftProperty, NeverWorseThanChainLowerBoundAndWithinWorkBound) {
  // HEFT's makespan must lie between the fastest-resource critical path
  // and the all-on-one-slowest-resource upper bound, for every app/size.
  for (auto app : {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
    for (int t : {2, 4, 6, 8}) {
      const auto g = rc::make_graph(app, t);
      const auto c = rc::make_costs(app);
      const auto p = rs::Platform::hybrid(2, 2);
      const double mk = readys::sched::heft_expected_makespan(g, p, c);
      double serial_cpu = 0.0;
      for (rd::TaskId i = 0; i < g.num_tasks(); ++i) {
        serial_cpu += c.expected(g.kernel(i), rs::ResourceType::kCpu);
      }
      EXPECT_GT(mk, 0.0);
      EXPECT_LE(mk, serial_cpu) << rc::app_name(app) << " T=" << t;
    }
  }
}

TEST(HeftProperty, MoreResourcesNeverHurtMuch) {
  // Adding a GPU to the platform should not increase HEFT's expected
  // makespan (HEFT is not optimal, so allow a tiny tolerance).
  for (auto app : {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
    const auto g = rc::make_graph(app, 6);
    const auto c = rc::make_costs(app);
    const double small = readys::sched::heft_expected_makespan(
        g, rs::Platform::hybrid(2, 1), c);
    const double big = readys::sched::heft_expected_makespan(
        g, rs::Platform::hybrid(2, 2), c);
    EXPECT_LE(big, small * 1.05) << rc::app_name(app);
  }
}

TEST(EngineProperty, ReadySetMatchesDependencyState) {
  // Drive a random execution; at every decision instant each ready task
  // must have all predecessors done and must not be running or done.
  ru::Rng rng(11);
  const auto g = rc::make_graph(rc::App::kLu, 4);
  const auto c = rc::make_costs(rc::App::kLu);
  const auto p = rs::Platform::hybrid(2, 1);
  rs::SimEngine e(g, p, c, 0.4, 9);
  while (!e.finished()) {
    for (rd::TaskId t : e.ready()) {
      EXPECT_FALSE(e.is_done(t));
      for (rd::TaskId q : g.predecessors(t)) {
        EXPECT_TRUE(e.is_done(q));
      }
      for (const auto& info : e.running()) EXPECT_NE(info.task, t);
    }
    // Start a random subset of (ready, idle) pairs, then advance.
    auto idle = e.idle_resources();
    while (!idle.empty() && !e.ready().empty() && rng.uniform() < 0.7) {
      const auto t = e.ready()[rng.uniform_index(e.ready().size())];
      const auto r = idle[rng.uniform_index(idle.size())];
      e.start(t, r);
      idle = e.idle_resources();
    }
    if (!e.advance()) {
      ASSERT_FALSE(e.ready().empty());
      e.start(e.ready().front(), e.idle_resources().front());
    }
  }
  EXPECT_EQ(e.trace().validate(g, p), "");
}

TEST(EngineProperty, MakespanEqualsLastTraceFinish) {
  const auto g = rc::make_graph(rc::App::kQr, 4);
  const auto c = rc::make_costs(rc::App::kQr);
  const auto p = rs::Platform::hybrid(1, 2);
  readys::sched::MctScheduler mct;
  rs::Simulator sim(g, p, c, {0.3, 5});
  const auto result = sim.run(mct);
  double last = 0.0;
  for (const auto& entry : result.trace.entries()) {
    last = std::max(last, entry.finish);
  }
  EXPECT_DOUBLE_EQ(result.makespan, last);
}

TEST(NoiseProperty, MeanScalesWithSigmaTruncation) {
  // E[max(0, N(E, sE))] >= E and increases with s (truncation at zero
  // moves mass upward).
  ru::Rng rng(7);
  auto mean_of = [&](double sigma) {
    rs::NoiseModel noise(sigma);
    double acc = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) acc += noise.sample(100.0, rng);
    return acc / n;
  };
  const double m0 = mean_of(0.0);
  const double m1 = mean_of(1.0);
  const double m2 = mean_of(2.0);
  EXPECT_DOUBLE_EQ(m0, 100.0);
  EXPECT_GT(m1, 100.0);
  EXPECT_GT(m2, m1);
}

TEST(FeatureProperty, DescendantProfileDropsAlongTopologicalOrder) {
  // Per type, the total descendant mass (summed over types) of a task is
  // strictly larger than that of any of its successors in a single-source
  // factorization DAG... not per-type, but the scalar total must shrink
  // by at least the successor's own split share. We check the weaker,
  // always-true property: every node's total mass is positive and the
  // source dominates everyone.
  for (auto app : {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
    const auto g = rc::make_graph(app, 5);
    rd::StaticFeatures f(g);
    const auto counts = g.kernel_counts();
    auto total = [&](rd::TaskId t) {
      double acc = 0.0;
      for (int k = 0; k < g.num_kernel_types(); ++k) {
        acc += f.descendant_mass(t, k) *
               static_cast<double>(counts[static_cast<std::size_t>(k)]);
      }
      return acc;
    };
    const auto src = g.sources().front();
    EXPECT_NEAR(total(src), static_cast<double>(g.num_tasks()), 1e-6);
    for (rd::TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_GT(total(t), 0.0);
      EXPECT_LE(total(t), total(src) + 1e-9);
    }
  }
}

TEST(SchedulerProperty2, HeftExpectedMakespanMonotoneInCosts) {
  // Doubling every kernel duration must exactly double HEFT's makespan
  // (the schedule is scale-invariant).
  const auto g = rc::make_graph(rc::App::kCholesky, 6);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c1 = rs::CostModel::cholesky();
  std::vector<std::vector<double>> doubled;
  for (int k = 0; k < c1.num_kernels(); ++k) {
    doubled.push_back({2.0 * c1.expected(k, rs::ResourceType::kCpu),
                       2.0 * c1.expected(k, rs::ResourceType::kGpu)});
  }
  const rs::CostModel c2("doubled", doubled);
  EXPECT_NEAR(readys::sched::heft_expected_makespan(g, p, c2),
              2.0 * readys::sched::heft_expected_makespan(g, p, c1), 1e-9);
}
