#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <set>

#include "dag/cholesky.hpp"
#include "rl/env.hpp"
#include "sched/heft.hpp"
#include "util/rng.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;

namespace {

rr::SchedulingEnv make_env(double sigma = 0.0, int window = 1,
                           std::uint64_t seed = 1, int tiles = 4) {
  static const rs::Platform platform = rs::Platform::hybrid(2, 2);
  static const rs::CostModel costs = rs::CostModel::cholesky();
  // deque: stable addresses, envs hold references into it
  static std::deque<rd::TaskGraph> graphs;
  graphs.push_back(rd::cholesky_graph(tiles));
  return rr::SchedulingEnv(graphs.back(), platform, costs,
                           {sigma, window, seed});
}

/// Always schedules the first ready task (never idles).
double run_first_fit(rr::SchedulingEnv& env, std::uint64_t seed) {
  env.reset(seed);
  bool done = env.done();
  double reward = 0.0;
  while (!done) {
    const auto result = env.step(0);
    reward += result.reward;
    done = result.done;
  }
  EXPECT_NEAR(reward,
              (env.heft_reference() - env.makespan()) / env.heft_reference(),
              1e-12);
  return env.makespan();
}

}  // namespace

TEST(Env, FirstObservationMatchesInitialState) {
  auto env = make_env();
  const auto& obs = env.observation();
  EXPECT_EQ(obs.ready_tasks.size(), 1u);
  // Three other idle resources could still take the task, so declining
  // here is safe and ∅ must be offered.
  EXPECT_TRUE(obs.allow_idle);
  EXPECT_FALSE(env.done());
  EXPECT_GT(env.heft_reference(), 0.0);
}

TEST(Env, IdleMaskedOnLastCandidateWhenNothingRuns) {
  // Single-resource platform: the first decision cannot be declined
  // (nothing is running and no other resource exists) -> ∅ masked.
  static const auto graph = rd::cholesky_graph(3);
  const rs::Platform platform = rs::Platform::cpus(1);
  const rs::CostModel costs = rs::CostModel::cholesky();
  rr::SchedulingEnv env(graph, platform, costs, {0.0, 1, 1});
  EXPECT_FALSE(env.observation().allow_idle);
}

TEST(Env, DecliningEveryProcessorForcesTheLastOne) {
  auto env = make_env();
  env.reset(1);
  // Keep declining: with 4 idle resources and nothing running, the ∅
  // action must disappear on the last candidate, forcing progress.
  int declines = 0;
  while (env.observation().allow_idle && !env.engine().any_running()) {
    env.step(env.observation().idle_action());
    ++declines;
    ASSERT_LT(declines, 4);
  }
  EXPECT_FALSE(env.observation().allow_idle);
  env.step(0);  // forced placement
  EXPECT_GE(env.engine().num_started(), 1u);
}

TEST(Env, EpisodeTerminatesAndExecutesEveryTask) {
  auto env = make_env();
  run_first_fit(env, 3);
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.engine().trace().size(), 20u);  // Cholesky T=4
  EXPECT_EQ(env.engine().trace().validate(env.engine().graph(),
                                          env.engine().platform()),
            "");
}

TEST(Env, TerminalRewardSignMatchesHeftComparison) {
  auto env = make_env();
  const double mk = run_first_fit(env, 3);
  const double expected_reward =
      (env.heft_reference() - mk) / env.heft_reference();
  // Whatever the policy quality, reward must be < 1 and finite.
  EXPECT_LT(expected_reward, 1.0);
  EXPECT_TRUE(std::isfinite(expected_reward));
}

TEST(Env, DeterministicUnderSameSeed) {
  auto env = make_env(0.4);
  const double m1 = run_first_fit(env, 5);
  const double m2 = run_first_fit(env, 5);
  EXPECT_DOUBLE_EQ(m1, m2);
  const double m3 = run_first_fit(env, 6);
  EXPECT_NE(m1, m3);
}

TEST(Env, IdleActionParksProcessorWithoutDeadlock) {
  auto env = make_env();
  env.reset(1);
  // Keep answering ∅ whenever allowed: the episode must still finish
  // because ∅ is masked on the last safe candidate and completions
  // re-open parked processors.
  bool done = env.done();
  int idles = 0;
  while (!done) {
    const auto& obs = env.observation();
    std::size_t action = 0;
    if (obs.allow_idle && idles < 100) {
      action = obs.idle_action();
      ++idles;
    }
    done = env.step(action).done;
  }
  EXPECT_TRUE(done);
  EXPECT_GT(idles, 0);
  EXPECT_EQ(env.engine().trace().validate(env.engine().graph(),
                                          env.engine().platform()),
            "");
}

TEST(Env, InvalidActionIndexThrows) {
  auto env = make_env();
  env.reset(1);
  EXPECT_THROW(env.step(env.observation().num_actions()), std::out_of_range);
}

TEST(Env, SteppingAfterDoneThrows) {
  auto env = make_env();
  run_first_fit(env, 1);
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(Env, HeftReferenceMatchesStandalone) {
  const auto graph = rd::cholesky_graph(6);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  rr::SchedulingEnv env(graph, platform, costs, {0.0, 1, 1});
  EXPECT_DOUBLE_EQ(
      env.heft_reference(),
      readys::sched::heft_expected_makespan(graph, platform, costs));
}

TEST(Env, RandomPolicyProducesValidSchedulesUnderNoise) {
  readys::util::Rng rng(9);
  auto env = make_env(0.6, 2, 1, 5);
  for (int episode = 0; episode < 5; ++episode) {
    env.reset(static_cast<std::uint64_t>(episode));
    bool done = env.done();
    while (!done) {
      const auto& obs = env.observation();
      done = env.step(rng.uniform_index(obs.num_actions())).done;
    }
    EXPECT_EQ(env.engine().trace().validate(env.engine().graph(),
                                            env.engine().platform()),
              "")
        << "episode " << episode;
  }
}

TEST(Env, DeterministicOfferPicksLowestIdleResource) {
  static const auto graph = rd::cholesky_graph(4);
  const rs::Platform platform = rs::Platform::hybrid(2, 2);
  const rs::CostModel costs = rs::CostModel::cholesky();
  rr::SchedulingEnv env(graph, platform, costs,
                        {0.0, 1, 1, /*random_offer=*/false});
  EXPECT_EQ(env.observation().current_resource, 0);
  env.step(env.observation().idle_action());  // decline CPU 0
  EXPECT_EQ(env.observation().current_resource, 1);
}

TEST(Env, RandomOfferVariesWithSeed) {
  static const auto graph = rd::cholesky_graph(4);
  const rs::Platform platform = rs::Platform::hybrid(2, 2);
  const rs::CostModel costs = rs::CostModel::cholesky();
  rr::SchedulingEnv env(graph, platform, costs,
                        {0.0, 1, 1, /*random_offer=*/true});
  std::set<int> offered;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    env.reset(seed);
    offered.insert(env.observation().current_resource);
  }
  EXPECT_GT(offered.size(), 1u);  // the draw actually varies
}

TEST(Env, DecisionCountAtLeastTaskCount) {
  auto env = make_env();
  run_first_fit(env, 2);
  EXPECT_GE(env.decisions_this_episode(), 20u);
}
