#include <gtest/gtest.h>

#include <cmath>

#include "nn/gcn.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "tensor/ops.hpp"

namespace rn = readys::nn;
namespace rt = readys::tensor;
using readys::util::Rng;

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  rn::Linear layer(3, 2, rng);
  rt::Var x(rt::Tensor::randn(5, 3, rng));
  auto y = layer.forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  rn::Linear layer(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(layer.parameters().size(), 1u);
  rt::Var zero(rt::Tensor::zeros(1, 3));
  auto y = layer.forward(zero);
  EXPECT_DOUBLE_EQ(y.value().abs_max(), 0.0);
}

TEST(Linear, ParameterRegistration) {
  Rng rng(3);
  rn::Linear layer(4, 4, rng);
  auto named = layer.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(layer.parameter_count(), 4u * 4u + 4u);
}

TEST(Module, ZeroGradClearsGradients) {
  Rng rng(4);
  rn::Linear layer(2, 2, rng);
  rt::Var x(rt::Tensor::randn(1, 2, rng));
  rt::sum_all(layer.forward(x)).backward();
  bool any_nonzero = false;
  for (auto& p : layer.parameters()) {
    any_nonzero = any_nonzero || p.grad().abs_max() > 0.0;
  }
  EXPECT_TRUE(any_nonzero);
  layer.zero_grad();
  for (auto& p : layer.parameters()) {
    EXPECT_DOUBLE_EQ(p.grad().abs_max(), 0.0);
  }
}

TEST(Module, CopyParametersFrom) {
  Rng rng1(5);
  Rng rng2(6);
  rn::Linear a(3, 3, rng1);
  rn::Linear b(3, 3, rng2);
  b.copy_parameters_from(a);
  auto pa = a.parameters();
  auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value() == pb[i].value());
  }
}

TEST(Module, CopyParametersShapeMismatchThrows) {
  Rng rng(7);
  rn::Linear a(3, 3, rng);
  rn::Linear b(3, 4, rng);
  EXPECT_THROW(b.copy_parameters_from(a), std::invalid_argument);
}

TEST(Mlp, ForwardShapeAndDepth) {
  Rng rng(8);
  rn::Mlp mlp({6, 8, 8, 1}, rng);
  rt::Var x(rt::Tensor::randn(3, 6, rng));
  auto y = mlp.forward(x);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 1u);
  EXPECT_EQ(mlp.named_parameters().size(), 6u);  // 3 layers x (W, b)
}

TEST(Mlp, RejectsSingleSize) {
  Rng rng(9);
  EXPECT_THROW(rn::Mlp({4}, rng), std::invalid_argument);
}

TEST(NormalizedAdjacency, IsolatedNodesSelfLoopOnly) {
  auto a = rn::normalized_adjacency(3, {});
  // With only self loops, Ahat is the identity.
  EXPECT_TRUE(a == rt::Tensor::eye(3));
}

TEST(NormalizedAdjacency, SymmetricAndRowNormalized) {
  auto a = rn::normalized_adjacency(3, {{0, 1}, {1, 2}});
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(a.at(i, j), a.at(j, i), 1e-12);
    }
  }
  // Known value: deg(0)=2, deg(1)=3 -> entry (0,1) = 1/sqrt(6).
  EXPECT_NEAR(a.at(0, 1), 1.0 / std::sqrt(6.0), 1e-12);
}

TEST(GcnLayer, PropagatesNeighborInformation) {
  Rng rng(10);
  rn::GCNLayer layer(2, 2, rng);
  // Two nodes connected vs not: outputs of node 0 must differ when node 1
  // changes iff they are connected.
  rt::Tensor feats = rt::Tensor::from_rows({{1.0, 0.0}, {0.0, 1.0}});
  rt::Tensor feats2 = rt::Tensor::from_rows({{1.0, 0.0}, {5.0, -3.0}});
  auto connected = rn::normalized_adjacency(2, {{0, 1}});
  auto isolated = rn::normalized_adjacency(2, {});

  auto out_conn_1 = layer.forward(rt::Var(connected), rt::Var(feats)).value();
  auto out_conn_2 = layer.forward(rt::Var(connected), rt::Var(feats2)).value();
  EXPECT_GT(std::abs(out_conn_1.at(0, 0) - out_conn_2.at(0, 0)), 1e-9);

  auto out_iso_1 = layer.forward(rt::Var(isolated), rt::Var(feats)).value();
  auto out_iso_2 = layer.forward(rt::Var(isolated), rt::Var(feats2)).value();
  EXPECT_NEAR(out_iso_1.at(0, 0), out_iso_2.at(0, 0), 1e-12);
}

TEST(GcnLayer, GradientsFlowToWeights) {
  Rng rng(11);
  rn::GCNLayer layer(3, 4, rng);
  rt::Var h(rt::Tensor::randn(5, 3, rng));
  auto ahat = rn::normalized_adjacency(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  rt::sum_all(rt::square(layer.forward(rt::Var(ahat), h))).backward();
  for (auto& p : layer.parameters()) {
    EXPECT_GT(p.grad().abs_max(), 0.0);
  }
}

TEST(Glorot, BoundsRespected) {
  Rng rng(12);
  auto w = rn::glorot_uniform(10, 10, rng);
  const double limit = std::sqrt(6.0 / 20.0);
  EXPECT_LE(w.abs_max(), limit);
  EXPECT_GT(w.norm(), 0.0);
}
